/**
 * @file
 * Extension study: dual-issue in-order lanes — the paper's
 * future-work suggestion for the xloop.or kernels whose lanes stall
 * on intra-iteration RAW dependences while out-of-order hosts exploit
 * the ILP (Section IV-C). Compares 1-wide vs 2-wide lanes on the
 * or/uc kernels most limited by intra-iteration ILP.
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    std::printf("Extension: dual-issue lanes (speedup vs serial GP on "
                "io)\n\n");
    std::printf("%-14s %10s %10s %10s\n", "kernel", "io+x", "io+x2w",
                "gain");
    bool ok = true;
    for (const std::string name :
         {"adpcm-or", "covar-or", "sha-or", "dither-or", "sgemm-uc",
          "viterbi-uc", "symm-or", "mm-orm"}) {
        const Cell g = gpBaseline(name, configs::io());
        const Cell w1 = runCell(name, configs::ioX(),
                                ExecMode::Specialized);
        const Cell w2 = runCell(name, configs::ioX2w(),
                                ExecMode::Specialized);
        ok &= w1.passed && w2.passed;
        std::printf("%-14s %9.2fx %9.2fx %9.2fx\n", name.c_str(),
                    ratio(g.cycles, w1.cycles),
                    ratio(g.cycles, w2.cycles),
                    ratio(w1.cycles, w2.cycles));
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
