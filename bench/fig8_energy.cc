/**
 * @file
 * Reproduces Figure 8: dynamic energy efficiency vs. performance
 * scatter for specialized and adaptive execution on io+x, ooo/2+x,
 * and ooo/4+x, each normalized to the serial GP binary on the
 * corresponding baseline GPP (McPAT-class 45 nm event energies).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

namespace {

void
panel(const char *title, const SysConfig &base, const SysConfig &xcfg)
{
    std::printf("--- %s (normalized to %s) ---\n", title,
                base.name.c_str());
    std::printf("%-14s %8s %8s %8s %8s\n", "kernel", "S perf", "S eff",
                "A perf", "A eff");
    for (const auto &name : xloops::tableIIKernelNames()) {
        const Cell g = gpBaseline(name, base);
        const Cell s = runCell(name, xcfg, ExecMode::Specialized);
        const Cell a = runCell(name, xcfg, ExecMode::Adaptive);
        std::printf("%-14s %8.2f %8.2f %8.2f %8.2f\n", name.c_str(),
                    ratio(g.cycles, s.cycles),
                    s.energyNj > 0 ? g.energyNj / s.energyNj : 0.0,
                    ratio(g.cycles, a.cycles),
                    a.energyNj > 0 ? g.energyNj / a.energyNj : 0.0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Figure 8: energy efficiency vs performance "
                "(perf = speedup, eff = baseline_energy / energy)\n\n");
    panel("io+x", configs::io(), configs::ioX());
    panel("ooo/2+x", configs::ooo2(), configs::ooo2X());
    panel("ooo/4+x", configs::ooo4(), configs::ooo4X());
    return 0;
}
