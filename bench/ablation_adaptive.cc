/**
 * @file
 * Adaptive-execution overhead sensitivity. EXPERIMENTS.md notes that
 * our Table II datasets are smaller than the paper's, so the fixed
 * profiling thresholds (256 iterations / 2000 cycles) eat a larger
 * fraction of each loop. This harness sweeps the trip count of a
 * synthetic uc kernel and shows adaptive execution converging to
 * specialized execution as the loop grows — the regime the paper's
 * Figure 7 numbers live in.
 */

#include <cstdio>
#include <string>

#include "asm/assembler.h"
#include "system/system.h"

using namespace xloops;

namespace {

std::string
kernelOfTripCount(unsigned n)
{
    // Enough work per iteration that specialization clearly wins.
    return "  li r1, 0\n  li r2, " + std::to_string(n) +
           "\n  la r7, out\nbody:\n"
           "  slli r8, r1, 2\n"
           "  andi r9, r8, 4092\n"
           "  add r9, r7, r9\n"
           "  mul r10, r1, r1\n"
           "  xor r10, r10, r8\n"
           "  sw r10, 0(r9)\n"
           "  xloop.uc r1, r2, body\n  halt\n"
           "  .data\nout: .space 4096\n";
}

} // namespace

int
main()
{
    std::printf("Adaptive overhead vs trip count (ooo/4+x, normalized "
                "to ooo/4 GP binary)\n\n");
    std::printf("%10s %8s %8s %10s\n", "trip count", "S", "A", "A/S");
    for (const unsigned n : {256u, 512u, 1024u, 4096u, 16384u, 65536u}) {
        const Program prog = assemble(kernelOfTripCount(n));
        auto cyclesOf = [&](const SysConfig &cfg, ExecMode mode) {
            XloopsSystem sys(cfg);
            sys.loadProgram(prog);
            return sys.run(prog, mode).cycles;
        };
        const Cycle gp = cyclesOf(configs::ooo4(), ExecMode::Traditional);
        const Cycle s =
            cyclesOf(configs::ooo4X(), ExecMode::Specialized);
        const Cycle a = cyclesOf(configs::ooo4X(), ExecMode::Adaptive);
        const double sS = static_cast<double>(gp) / static_cast<double>(s);
        const double sA = static_cast<double>(gp) / static_cast<double>(a);
        std::printf("%10u %8.2f %8.2f %9.0f%%\n", n, sS, sA,
                    100.0 * sA / sS);
    }
    std::printf("\nWith paper-scale trip counts the profiling phases "
                "amortize and adaptive\nexecution approaches pure "
                "specialized performance (paper Section IV-D).\n");
    return 0;
}
