/**
 * @file
 * Extension study: data-dependent-exit loops (xloop.om.de), the
 * control pattern the paper's conclusion lists as future work.
 * Measures a linear-search loop whose trip count is unknown at entry,
 * sweeping how deep into the array the hit lies: speculative lanes
 * overrun the exit and get cancelled, so the win grows with the
 * search length while staying architecturally exact.
 */

#include <cstdio>

#include "asm/assembler.h"
#include "system/system.h"

using namespace xloops;

namespace {

const char *searchSrc = R"(
  li r1, 0
  li r2, 0
  la r5, hay
  li r6, 123456
  la r7, foundidx
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)
  bne r11, r6, miss
  li r2, 1
  sw r1, 0(r7)
miss:
  xloop.om.de r1, r2, body
  halt
  .data
hay:      .space 4096
foundidx: .word -1
)";

} // namespace

int
main()
{
    const Program prog = assemble(searchSrc);
    std::printf("Extension: data-dependent-exit search loop "
                "(io+x vs io traditional)\n\n");
    std::printf("%8s %12s %12s %9s %10s\n", "hit at", "trad cyc",
                "spec cyc", "speedup", "cancelled");
    for (const unsigned hit : {15u, 63u, 255u, 1023u}) {
        auto setup = [&](MainMemory &mem) {
            for (unsigned i = 0; i < 1024; i++)
                mem.writeWord(prog.symbol("hay") + 4 * i, i);
            mem.writeWord(prog.symbol("hay") + 4 * hit, 123456);
        };
        XloopsSystem trad(configs::io());
        trad.loadProgram(prog);
        setup(trad.memory());
        const Cycle t = trad.run(prog, ExecMode::Traditional).cycles;

        XloopsSystem spec(configs::ioX());
        spec.loadProgram(prog);
        setup(spec.memory());
        const Cycle s = spec.run(prog, ExecMode::Specialized).cycles;
        const bool ok =
            spec.memory().readWord(prog.symbol("foundidx")) == hit;
        std::printf("%8u %12llu %12llu %8.2fx %10llu %s\n", hit,
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(s),
                    static_cast<double>(t) / static_cast<double>(s),
                    static_cast<unsigned long long>(
                        spec.lpsuModel().stats().get(
                            "cancelled_iterations")),
                    ok ? "" : "WRONG RESULT");
    }
    std::printf("\nSpeculative iterations beyond the exit are cancelled "
                "with their stores still\nbuffered in the LSQs, so the "
                "result is exactly the serial one.\n");
    return 0;
}
