/**
 * @file
 * chaos — kill -9 crash-recovery harness for xloopsd.
 *
 * Proves the durability contract of the write-ahead job journal
 * (docs/SERVICE.md section 7) end to end, against the real daemon
 * over the real socket:
 *
 *   1. Baseline: an uninterrupted daemon runs the whole job matrix
 *      and the stats document of every job is recorded.
 *   2. Chaos: a fresh daemon takes the same matrix from concurrent
 *      submitters and is repeatedly SIGKILLed mid-load. Before each
 *      restart the harness replays the journal itself and counts the
 *      acknowledged-but-unfinished jobs; after the restart the
 *      daemon's `recovered` counter must match exactly — an
 *      acknowledged job is never lost, an unacknowledged one never
 *      invented.
 *   3. Verdict: the final generation drains its recovered backlog,
 *      the matrix is resubmitted, and every stats document must be
 *      byte-identical to the baseline — deterministic simulation plus
 *      the content-addressed cache make at-least-once execution look
 *      exactly-once.
 *
 * Submitter threads ride through restarts on the client's connect
 * retry; requests severed by a kill are tolerated (the journal is the
 * ground truth, not the connection). Exits 0 on PASS, 1 with a
 * message on the first violated invariant. The service_crash_recovery
 * ctest runs a short configuration; CI soaks a longer one.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.h"
#include "common/log.h"
#include "service/client.h"
#include "service/journal.h"
#include "service/protocol.h"

using namespace xloops;

namespace {

struct Options
{
    std::string xloopsd;          ///< daemon binary (required)
    std::string workdir;          ///< scratch root (required)
    unsigned cycles = 5;          ///< kill -9 / restart rounds
    unsigned killAfterMs = 700;   ///< load time before each kill
    unsigned clients = 3;         ///< concurrent submitter threads
    unsigned seeds = 4;           ///< fault-seed variants per kernel
    std::vector<std::string> kernels = {"rgb2cmyk-uc", "dynprog-om",
                                        "ssearch-uc"};
    u64 injectSeed = 1;
    double injectRate = 0.0;
    u64 ckptEveryInsts = 4096;    ///< daemon --ckpt-every-insts
    bool verbose = false;
};

struct BaselineEntry
{
    std::string status;
    std::string statsJson;
};

[[noreturn]] void
failOut(const std::string &msg)
{
    std::fprintf(stderr, "chaos: FAIL: %s\n", msg.c_str());
    std::exit(1);
}

std::vector<JobSpec>
jobMatrix(const Options &opts)
{
    std::vector<JobSpec> specs;
    for (const std::string &kernel : opts.kernels) {
        for (unsigned s = 0; s < opts.seeds; s++) {
            JobSpec spec;
            spec.kernel = kernel;
            spec.injectSeed = opts.injectSeed + s;
            spec.injectRate = opts.injectRate;
            specs.push_back(spec);
        }
    }
    return specs;
}

/** One running daemon generation. */
class Daemon
{
  public:
    Daemon(const Options &opts, const std::string &dir,
           const std::string &sock)
        : binary(opts.xloopsd), workdir(dir), socketPath(sock),
          ckptEvery(opts.ckptEveryInsts)
    {
    }

    void start()
    {
        const pid_t child = ::fork();
        if (child < 0)
            failOut(strf("fork: ", std::strerror(errno)));
        if (child == 0) {
            // Daemon output accumulates across generations in one log.
            const std::string log = workdir + "/xloopsd.log";
            const int fd =
                ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, 1);
                ::dup2(fd, 2);
                ::close(fd);
            }
            const std::string cacheIndex = workdir + "/cache.json";
            const std::string journal = workdir + "/journal.jnl";
            const std::string ckpt = std::to_string(ckptEvery);
            // One worker on purpose: submitters outrun the daemon, so
            // every kill lands on a non-trivial acknowledged backlog.
            const char *argv[] = {
                binary.c_str(),      "--socket",    socketPath.c_str(),
                "--workers",         "1",           "--artifact-dir",
                workdir.c_str(),     "--cache-index", cacheIndex.c_str(),
                "--journal",         journal.c_str(),
                "--ckpt-every-insts", ckpt.c_str(), nullptr};
            ::execv(binary.c_str(), const_cast<char **>(argv));
            std::fprintf(stderr, "execv %s: %s\n", binary.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
        pid = child;
        waitForPing();
    }

    void killHard()
    {
        ::kill(pid, SIGKILL);
        reap();
    }

    /** SIGTERM drain; the daemon must exit 0. */
    void stopGracefully()
    {
        ::kill(pid, SIGTERM);
        const int status = reap();
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            failOut(strf("daemon exited ", status,
                         " on SIGTERM, want a clean 0"));
    }

    /** One request/response against this generation. */
    JsonValue request(const Request &req, unsigned retryMs = 2000) const
    {
        ServiceClient client(socketPath, retryMs);
        return jsonParse(client.request(encodeRequest(req)));
    }

  private:
    int reap()
    {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0)
            failOut(strf("waitpid: ", std::strerror(errno)));
        pid = -1;
        return status;
    }

    void waitForPing()
    {
        Request ping;
        ping.op = "ping";
        for (unsigned tries = 0; tries < 100; tries++) {
            try {
                if (request(ping, 100).at("status").asString() == "ok")
                    return;
            } catch (const FatalError &) {
            }
            int status = 0;
            if (::waitpid(pid, &status, WNOHANG) == pid) {
                pid = -1;
                failOut("daemon died on startup (see xloopsd.log)");
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        failOut("daemon never answered ping");
    }

    std::string binary;
    std::string workdir;
    std::string socketPath;
    u64 ckptEvery;
    pid_t pid = -1;
};

u64
statsCounter(const Daemon &daemon, const char *name)
{
    Request req;
    req.op = "stats";
    const JsonValue v = daemon.request(req);
    return v.at(name).asU64();
}

/** Submit @p spec synchronously; empty status = connection severed. */
BaselineEntry
submitOne(const std::string &sock, const JobSpec &spec,
          unsigned retryMs)
{
    BaselineEntry e;
    try {
        ServiceClient client(sock, retryMs);
        Request req;
        req.op = "submit";
        req.job = spec;
        const JsonValue v =
            jsonParse(client.request(encodeRequest(req)));
        e.status = v.at("status").asString();
        if (v.has("stats"))
            e.statsJson = v.at("stats").asString();
    } catch (const FatalError &) {
        // The daemon vanished mid-request: whether the job was
        // acknowledged is exactly what the journal records.
    }
    return e;
}

void
mkdirOrDie(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        failOut(strf("mkdir ", dir, ": ", std::strerror(errno)));
}

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: chaos --xloopsd <bin> --workdir <dir> [options]\n"
        "  --cycles <n>           kill -9 / restart rounds (default "
        "5)\n"
        "  --kill-after-ms <n>    load time before each kill (default "
        "700)\n"
        "  --clients <n>          concurrent submitters (default 3)\n"
        "  --kernels <k1,k2>      kernels in the job matrix\n"
        "  --seeds <n>            fault-seed variants per kernel "
        "(default 4)\n"
        "  --inject-seed <n>      base fault seed (default 1)\n"
        "  --inject-rate <p>      per-opportunity fault probability\n"
        "  --ckpt-every-insts <n> daemon checkpoint cadence (default "
        "4096)\n"
        "  --verbose              per-cycle chatter\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "--xloopsd")
                opts.xloopsd = next();
            else if (arg == "--workdir")
                opts.workdir = next();
            else if (arg == "--cycles")
                opts.cycles = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--kill-after-ms")
                opts.killAfterMs = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--clients")
                opts.clients = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--kernels") {
                opts.kernels.clear();
                std::string list = next();
                size_t start = 0;
                while (start <= list.size()) {
                    const size_t comma = list.find(',', start);
                    const std::string item = list.substr(
                        start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
                    if (!item.empty())
                        opts.kernels.push_back(item);
                    if (comma == std::string::npos)
                        break;
                    start = comma + 1;
                }
                if (opts.kernels.empty())
                    fatal("--kernels list is empty");
            } else if (arg == "--seeds")
                opts.seeds = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--inject-seed")
                opts.injectSeed =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                opts.injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--ckpt-every-insts")
                opts.ckptEveryInsts =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--verbose")
                opts.verbose = true;
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            }
        }
        if (opts.xloopsd.empty() || opts.workdir.empty()) {
            printUsage(stderr);
            fatal("--xloopsd and --workdir are required");
        }

        mkdirOrDie(opts.workdir);
        const std::vector<JobSpec> specs = jobMatrix(opts);

        // ---- Phase 1: the uninterrupted baseline --------------------
        const std::string baseDir = opts.workdir + "/baseline";
        mkdirOrDie(baseDir);
        std::vector<BaselineEntry> baseline;
        {
            Daemon daemon(opts, baseDir, baseDir + "/xloopsd.sock");
            daemon.start();
            for (const JobSpec &spec : specs) {
                BaselineEntry e = submitOne(
                    baseDir + "/xloopsd.sock", spec, 2000);
                if (e.status.empty())
                    failOut("baseline submit lost its connection");
                if (e.status == "done" && e.statsJson.empty())
                    failOut("baseline job done without a stats doc");
                baseline.push_back(std::move(e));
            }
            daemon.stopGracefully();
        }
        std::printf("chaos: baseline %zu jobs recorded\n",
                    baseline.size());

        // ---- Phase 2: kill -9 under load ----------------------------
        const std::string chaosDir = opts.workdir + "/chaos";
        mkdirOrDie(chaosDir);
        const std::string sock = chaosDir + "/xloopsd.sock";
        const std::string journal = chaosDir + "/journal.jnl";

        Daemon daemon(opts, chaosDir, sock);
        daemon.start();

        u64 totalRecovered = 0;
        std::atomic<u64> severed{0};
        for (unsigned cycle = 1; cycle <= opts.cycles; cycle++) {
            std::atomic<bool> stop{false};
            std::vector<std::thread> submitters;
            for (unsigned c = 0; c < opts.clients; c++) {
                submitters.emplace_back([&, c] {
                    unsigned j = c;  // stagger the matrix per thread
                    while (!stop.load()) {
                        const BaselineEntry e = submitOne(
                            sock, specs[j % specs.size()], 250);
                        if (e.status.empty())
                            severed++;
                        j++;
                    }
                });
            }

            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.killAfterMs));
            daemon.killHard();
            stop = true;
            for (std::thread &t : submitters)
                t.join();

            // The harness replays the dead generation's journal
            // itself: these jobs were acknowledged (fsync'd accept)
            // and never finished, so recovery owes us exactly them.
            const JournalRecovery owed =
                recoverPending(replayJournal(journal));

            daemon.start();
            const u64 recovered = statsCounter(daemon, "recovered");
            if (recovered != owed.pending.size())
                failOut(strf("cycle ", cycle, ": journal owes ",
                             owed.pending.size(),
                             " acknowledged job(s) but the daemon "
                             "recovered ", recovered));
            totalRecovered += recovered;
            if (opts.verbose)
                std::printf("chaos: cycle %u: recovered %llu "
                            "(severed so far %llu)\n",
                            cycle,
                            static_cast<unsigned long long>(recovered),
                            static_cast<unsigned long long>(
                                severed.load()));
        }

        // ---- Phase 3: drain, resubmit, compare ----------------------
        // Let the final generation finish its recovered backlog.
        {
            Request req;
            req.op = "health";
            for (unsigned tries = 0;; tries++) {
                const JsonValue v = daemon.request(req);
                if (v.at("in_flight").asU64() == 0)
                    break;
                if (tries > 600)
                    failOut("recovered backlog never drained");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        }

        size_t compared = 0;
        for (size_t i = 0; i < specs.size(); i++) {
            const BaselineEntry e = submitOne(sock, specs[i], 2000);
            if (e.status != baseline[i].status)
                failOut(strf("job ", i, " (", specs[i].kernel,
                             " seed ", specs[i].injectSeed,
                             "): status '", e.status,
                             "' after chaos, baseline '",
                             baseline[i].status, "'"));
            if (e.status != "done")
                continue;
            if (e.statsJson != baseline[i].statsJson)
                failOut(strf("job ", i, " (", specs[i].kernel,
                             " seed ", specs[i].injectSeed,
                             "): stats document differs from the "
                             "uninterrupted baseline — determinism "
                             "broken"));
            compared++;
        }
        daemon.stopGracefully();

        std::printf(
            "chaos: PASS (%u kill -9 cycles, %llu jobs recovered "
            "from the journal, %llu requests severed, %zu/%zu stats "
            "docs byte-identical to the baseline)\n",
            opts.cycles,
            static_cast<unsigned long long>(totalRecovered),
            static_cast<unsigned long long>(severed.load()), compared,
            specs.size());
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "chaos: %s\n", err.what());
        return 1;
    }
}
