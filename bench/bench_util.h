/**
 * @file
 * Shared helpers for the experiment harnesses (one binary per paper
 * table/figure). Each helper runs a kernel on a configuration and
 * validates the result; harnesses only format rows.
 */

#ifndef XLOOPS_BENCH_BENCH_UTIL_H
#define XLOOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "energy/energy.h"
#include "kernels/kernel.h"

namespace xloops::benchutil {

/** Cycles + validation + stats for one (kernel, config, mode) cell. */
struct Cell
{
    Cycle cycles = 0;
    bool passed = false;
    double energyNj = 0;
    StatGroup stats;
};

inline Cell
runCell(const std::string &kernel, const SysConfig &cfg, ExecMode mode,
        bool gp_binary = false)
{
    const KernelRun run =
        runKernel(kernelByName(kernel), cfg, mode, gp_binary);
    Cell cell;
    cell.cycles = run.result.cycles;
    cell.passed = run.passed;
    cell.stats = run.result.stats;
    const EnergyModel model;
    cell.energyNj = model.dynamicEnergy(cfg, run.result.stats).totalNj();
    if (!run.passed)
        std::fprintf(stderr, "VALIDATION FAILED: %s\n", run.error.c_str());
    return cell;
}

/** GP-ISA serial binary on a baseline GPP (the normalization basis). */
inline Cell
gpBaseline(const std::string &kernel, const SysConfig &cfg)
{
    return runCell(kernel, cfg, ExecMode::Traditional, true);
}

inline double
ratio(Cycle base, Cycle other)
{
    return other == 0 ? 0.0
                      : static_cast<double>(base) /
                            static_cast<double>(other);
}

/**
 * Machine-readable results for one experiment harness: rows of named
 * numeric metrics written as `BENCH_<name>.json` next to the text
 * table, sharing the stable sorted JSON serializer with
 * `xsim --stats-json` so downstream tooling parses one schema.
 */
class BenchReport
{
  public:
    explicit BenchReport(const std::string &name) : benchName(name) {}

    /** Start a row (e.g. one kernel); returns its index. */
    size_t
    beginRow(const std::string &label)
    {
        rows.push_back({label, {}});
        return rows.size() - 1;
    }

    /** Add a metric to the most recent row. */
    void
    metric(const std::string &key, double value)
    {
        rows.back().metrics[key] = value;
    }

    void
    note(const std::string &key, const std::string &value)
    {
        notes[key] = value;
    }

    /** Write BENCH_<name>.json into @p dir (default: cwd). */
    bool
    write(const std::string &dir = ".") const
    {
        const std::string path = dir + "/BENCH_" + benchName + ".json";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        JsonWriter w(out, /*pretty=*/true);
        w.beginObject();
        w.field("schema", "xloops-bench-1");
        w.field("bench", benchName);
        for (const auto &[key, value] : notes)
            w.field(key, value);
        w.key("rows").beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.field("label", row.label);
            for (const auto &[key, value] : row.metrics)
                w.field(key, value);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    struct Row
    {
        std::string label;
        std::map<std::string, double> metrics;
    };

    std::string benchName;
    std::map<std::string, std::string> notes;
    std::vector<Row> rows;
};

} // namespace xloops::benchutil

#endif // XLOOPS_BENCH_BENCH_UTIL_H
