/**
 * @file
 * Shared helpers for the experiment harnesses (one binary per paper
 * table/figure). Each helper runs a kernel on a configuration and
 * validates the result; harnesses only format rows.
 */

#ifndef XLOOPS_BENCH_BENCH_UTIL_H
#define XLOOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "energy/energy.h"
#include "kernels/kernel.h"

namespace xloops::benchutil {

/** Cycles + validation + stats for one (kernel, config, mode) cell. */
struct Cell
{
    Cycle cycles = 0;
    bool passed = false;
    double energyNj = 0;
    StatGroup stats;
};

inline Cell
runCell(const std::string &kernel, const SysConfig &cfg, ExecMode mode,
        bool gp_binary = false)
{
    const KernelRun run =
        runKernel(kernelByName(kernel), cfg, mode, gp_binary);
    Cell cell;
    cell.cycles = run.result.cycles;
    cell.passed = run.passed;
    cell.stats = run.result.stats;
    const EnergyModel model;
    cell.energyNj = model.dynamicEnergy(cfg, run.result.stats).totalNj();
    if (!run.passed)
        std::fprintf(stderr, "VALIDATION FAILED: %s\n", run.error.c_str());
    return cell;
}

/** GP-ISA serial binary on a baseline GPP (the normalization basis). */
inline Cell
gpBaseline(const std::string &kernel, const SysConfig &cfg)
{
    return runCell(kernel, cfg, ExecMode::Traditional, true);
}

inline double
ratio(Cycle base, Cycle other)
{
    return other == 0 ? 0.0
                      : static_cast<double>(base) /
                            static_cast<double>(other);
}

} // namespace xloops::benchutil

#endif // XLOOPS_BENCH_BENCH_UTIL_H
