/**
 * @file
 * Shared helpers for the experiment harnesses (one binary per paper
 * table/figure). Each helper runs a kernel on a configuration and
 * validates the result; harnesses only format rows.
 */

#ifndef XLOOPS_BENCH_BENCH_UTIL_H
#define XLOOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/pool.h"
#include "energy/energy.h"
#include "kernels/kernel.h"
#include "system/sweep.h"

namespace xloops::benchutil {

/**
 * Parse the experiment harnesses' common command line: `--jobs N`
 * selects the worker count for the sweep (default: XLOOPS_JOBS or the
 * hardware concurrency, see defaultJobs()). Anything else prints
 * usage and exits 1.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    unsigned jobs = 0;  // 0 = defaultJobs()
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
            std::exit(1);
        }
    }
    return jobs;
}

/** Cycles + validation + stats for one (kernel, config, mode) cell. */
struct Cell
{
    Cycle cycles = 0;
    bool passed = false;
    double energyNj = 0;
    StatGroup stats;
};

inline Cell
runCell(const std::string &kernel, const SysConfig &cfg, ExecMode mode,
        bool gp_binary = false)
{
    const KernelRun run =
        runKernel(kernelByName(kernel), cfg, mode, gp_binary);
    Cell cell;
    cell.cycles = run.result.cycles;
    cell.passed = run.passed;
    cell.stats = run.result.stats;
    const EnergyModel model;
    cell.energyNj = model.dynamicEnergy(cfg, run.result.stats).totalNj();
    if (!run.passed)
        std::fprintf(stderr, "VALIDATION FAILED: %s\n", run.error.c_str());
    return cell;
}

/** GP-ISA serial binary on a baseline GPP (the normalization basis). */
inline Cell
gpBaseline(const std::string &kernel, const SysConfig &cfg)
{
    return runCell(kernel, cfg, ExecMode::Traditional, true);
}

/** Adapt one parallel-sweep result to the Cell the row formatters
 *  use (same validation-failure reporting as runCell). */
inline Cell
toCell(const SweepCellResult &r)
{
    Cell cell;
    cell.cycles = r.cycles;
    cell.passed = r.passed;
    cell.stats = r.stats;
    cell.energyNj = r.energyNj;
    if (!r.passed)
        std::fprintf(stderr, "VALIDATION FAILED: %s\n", r.error.c_str());
    return cell;
}

/** Shorthand for building sweep cells in the harnesses. */
inline SweepCell
cell(const std::string &kernel, const SysConfig &cfg, ExecMode mode,
     bool gp_binary = false)
{
    return SweepCell{kernel, cfg, mode, gp_binary};
}

/** GP-ISA baseline sweep cell. */
inline SweepCell
gpCell(const std::string &kernel, const SysConfig &cfg)
{
    return cell(kernel, cfg, ExecMode::Traditional, true);
}

/** Run a harness's cells across @p jobs workers, skipping per-cell
 *  stats-JSON capture (the harnesses only read cycles/stats). */
inline std::vector<SweepCellResult>
runBenchSweep(const std::vector<SweepCell> &cells, unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.captureStats = false;
    return runSweep(cells, opts);
}

inline double
ratio(Cycle base, Cycle other)
{
    return other == 0 ? 0.0
                      : static_cast<double>(base) /
                            static_cast<double>(other);
}

/**
 * Machine-readable results for one experiment harness: rows of named
 * numeric metrics written as `BENCH_<name>.json` next to the text
 * table, sharing the stable sorted JSON serializer with
 * `xsim --stats-json` so downstream tooling parses one schema.
 */
class BenchReport
{
  public:
    explicit BenchReport(const std::string &name) : benchName(name) {}

    /** Start a row (e.g. one kernel); returns its index. */
    size_t
    beginRow(const std::string &label)
    {
        rows.push_back({label, {}});
        return rows.size() - 1;
    }

    /** Add a metric to the most recent row. */
    void
    metric(const std::string &key, double value)
    {
        rows.back().metrics[key] = value;
    }

    void
    note(const std::string &key, const std::string &value)
    {
        notes[key] = value;
    }

    /** Write BENCH_<name>.json into @p dir (default: cwd). */
    bool
    write(const std::string &dir = ".") const
    {
        const std::string path = dir + "/BENCH_" + benchName + ".json";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        JsonWriter w(out, /*pretty=*/true);
        w.beginObject();
        w.field("schema", "xloops-bench-1");
        w.field("bench", benchName);
        for (const auto &[key, value] : notes)
            w.field(key, value);
        w.key("rows").beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.field("label", row.label);
            for (const auto &[key, value] : row.metrics)
                w.field(key, value);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    struct Row
    {
        std::string label;
        std::map<std::string, double> metrics;
    };

    std::string benchName;
    std::map<std::string, std::string> notes;
    std::vector<Row> rows;
};

} // namespace xloops::benchutil

#endif // XLOOPS_BENCH_BENCH_UTIL_H
