/**
 * @file
 * loadgen — service-layer load generator and latency harness.
 *
 * Drives a fleet of concurrent clients submitting simulation jobs and
 * reports throughput (jobs/sec) and latency percentiles (p50/p99)
 * under configurable fault injection, including a fraction of
 * guaranteed-divergence specimens (lockstep + certain architectural
 * corruption) to exercise the capsule path under load.
 *
 * Two transports, same workload:
 *   --socket <path>  drive a running xloopsd over the wire protocol
 *                    (what the CI service soak uses)
 *   (no --socket)    drive an in-process Supervisor directly — the
 *                    full supervision stack minus the socket, which
 *                    is how the committed BENCH_service.json is
 *                    produced (reproducible without a daemon)
 *
 * The harness asserts the service's crash-isolation contract as it
 * goes: every job that failed with a SimError must have produced a
 * replay capsule. A violation exits 1.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/supervisor.h"

using namespace xloops;

namespace {

struct JobResult
{
    std::string status;
    double latencyMs = 0;
    bool cached = false;
    bool hasCapsule = false;
    std::string errorKind;
    u64 attempts = 0;
    // Server-side span timings from the xloops-result-1 reply: where
    // the latency went (queueing vs cache lookup vs simulation).
    u64 queueWaitUs = 0;
    u64 cacheLookupUs = 0;
    u64 simUs = 0;
};

struct Options
{
    std::string socketPath;  ///< "" = in-process supervisor
    unsigned clients = 4;
    unsigned jobsPerClient = 8;
    std::vector<std::string> kernels = {"rgb2cmyk-uc", "dynprog-om"};
    u64 injectSeed = 1;
    double injectRate = 0.0;
    double divergenceFrac = 0.0;
    u64 deadlineMs = 0;
    std::string outDir = ".";
    /** Interleave telemetry-off and telemetry-on passes and report
     *  the best-of throughput delta. In-process only: the toggle is
     *  process-local. */
    bool telemetryOverhead = false;
    unsigned overheadReps = 3;
};

JobSpec
specForJob(const Options &opts, unsigned client, unsigned j)
{
    const unsigned index = client * opts.jobsPerClient + j;
    JobSpec spec;
    spec.kernel = opts.kernels[index % opts.kernels.size()];
    // Distinct seeds per job defeat the result cache on purpose: this
    // measures simulation throughput, not cache hit latency.
    spec.injectSeed = opts.injectSeed + index;
    spec.injectRate = opts.injectRate;

    // A deterministic stripe of jobs is guaranteed to diverge:
    // lockstep with certain architectural corruption. These must all
    // come back "failed" with a capsule.
    if (opts.divergenceFrac > 0.0) {
        const double position =
            static_cast<double>(index % 100) / 100.0;
        if (position < opts.divergenceFrac) {
            spec.lockstep = true;
            spec.injectRate = 0.0;
            spec.injectArchRate = 1.0;
        }
    }
    if (opts.deadlineMs)
        spec.deadlineMs = opts.deadlineMs;
    return spec;
}

JobResult
submitOverSocket(const Options &opts, const JobSpec &spec)
{
    ServiceClient client(opts.socketPath);
    Request req;
    req.op = "submit";
    req.job = spec;

    const auto t0 = std::chrono::steady_clock::now();
    const std::string line = client.request(encodeRequest(req));
    const auto t1 = std::chrono::steady_clock::now();

    const JsonValue v = jsonParse(line);
    JobResult r;
    r.status = v.at("status").asString();
    r.latencyMs = std::chrono::duration<double, std::milli>(t1 - t0)
                      .count();
    r.cached = v.has("cached") && v.at("cached").asBool();
    r.hasCapsule = v.has("capsule_path");
    if (v.has("error_kind"))
        r.errorKind = v.at("error_kind").asString();
    if (v.has("attempts"))
        r.attempts = v.at("attempts").asU64();
    if (v.has("queue_wait_us"))
        r.queueWaitUs = v.at("queue_wait_us").asU64();
    if (v.has("cache_lookup_us"))
        r.cacheLookupUs = v.at("cache_lookup_us").asU64();
    if (v.has("sim_us"))
        r.simUs = v.at("sim_us").asU64();
    return r;
}

JobResult
submitInProcess(Supervisor &sup, const JobSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();
    const Admission adm = sup.submit(spec);
    JobResult r;
    if (!adm.accepted) {
        r.status = adm.reason == "overloaded" ? "overloaded"
                                              : "invalid";
        r.latencyMs = 0;
        return r;
    }
    const JobOutcome o = sup.wait(adm.jobId);
    const auto t1 = std::chrono::steady_clock::now();
    r.status = jobStatusName(o.status);
    r.latencyMs = std::chrono::duration<double, std::milli>(t1 - t0)
                      .count();
    r.cached = o.cached;
    r.hasCapsule = !o.capsulePath.empty();
    r.errorKind = o.errorKind;
    r.attempts = static_cast<u64>(o.attempts > 0 ? o.attempts : 0);
    r.queueWaitUs = o.queueWaitUs;
    r.cacheLookupUs = o.cacheLookupUs;
    r.simUs = o.simUs;
    return r;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

struct PassStats
{
    std::vector<JobResult> results;
    double wallSec = 0;
};

/** One full fleet run (all clients x all jobs) against a fresh
 *  in-process Supervisor, or the daemon at opts.socketPath. */
PassStats
runPass(const Options &opts)
{
    std::unique_ptr<Supervisor> localSup;
    if (opts.socketPath.empty()) {
        SupervisorConfig scfg;
        scfg.artifactDir = opts.outDir;
        localSup = std::make_unique<Supervisor>(scfg);
    }

    PassStats pass;
    std::mutex resultsMutex;
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::thread> fleet;
    fleet.reserve(opts.clients);
    for (unsigned c = 0; c < opts.clients; c++) {
        fleet.emplace_back([&, c] {
            for (unsigned j = 0; j < opts.jobsPerClient; j++) {
                const JobSpec spec = specForJob(opts, c, j);
                JobResult r;
                try {
                    r = opts.socketPath.empty()
                            ? submitInProcess(*localSup, spec)
                            : submitOverSocket(opts, spec);
                } catch (const FatalError &err) {
                    r.status = "connection-error";
                    std::fprintf(stderr, "client %u: %s\n", c,
                                 err.what());
                }
                std::lock_guard<std::mutex> lock(resultsMutex);
                pass.results.push_back(r);
            }
        });
    }
    for (std::thread &t : fleet)
        t.join();
    pass.wallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return pass;
}

/** Outcome counts plus mean server-side span timings. */
struct Tally
{
    size_t done = 0, failed = 0, shed = 0, cancelled = 0, cached = 0,
           capsuled = 0, errors = 0, missingCapsules = 0, retried = 0;
    u64 attemptsTotal = 0;
    double queueWaitUsMean = 0;
    double cacheLookupUsMean = 0;
    double simUsMean = 0;
    std::vector<double> latencies;
};

Tally
tallyResults(const std::vector<JobResult> &results)
{
    Tally t;
    double queueWaitSum = 0, cacheLookupSum = 0, simSum = 0;
    for (const JobResult &r : results) {
        if (r.status == "done") {
            t.done++;
            t.cached += r.cached ? 1 : 0;
        } else if (r.status == "failed") {
            t.failed++;
            t.capsuled += r.hasCapsule ? 1 : 0;
            // Checker failures have no SimError and thus no capsule;
            // every other failure kind must have one.
            if (!r.hasCapsule && r.errorKind != "checker" &&
                r.errorKind != "fatal")
                t.missingCapsules++;
        } else if (r.status == "overloaded") {
            t.shed++;
        } else if (r.status == "cancelled") {
            t.cancelled++;
        } else {
            t.errors++;
        }
        t.attemptsTotal += r.attempts;
        t.retried += r.attempts > 1 ? 1 : 0;
        queueWaitSum += static_cast<double>(r.queueWaitUs);
        cacheLookupSum += static_cast<double>(r.cacheLookupUs);
        simSum += static_cast<double>(r.simUs);
        if (r.latencyMs > 0)
            t.latencies.push_back(r.latencyMs);
    }
    if (!results.empty()) {
        const double n = static_cast<double>(results.size());
        t.queueWaitUsMean = queueWaitSum / n;
        t.cacheLookupUsMean = cacheLookupSum / n;
        t.simUsMean = simSum / n;
    }
    std::sort(t.latencies.begin(), t.latencies.end());
    return t;
}

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: loadgen [options]\n"
        "  --socket <path>        drive a running xloopsd (default: "
        "in-process)\n"
        "  --clients <n>          concurrent clients (default 4)\n"
        "  --jobs-per-client <n>  jobs per client (default 8)\n"
        "  --kernels <k1,k2>      kernels to cycle through\n"
        "  --inject-seed <n>      base fault seed (default 1)\n"
        "  --inject-rate <p>      per-opportunity fault probability\n"
        "  --divergence-frac <f>  fraction of jobs that are "
        "guaranteed-divergence specimens\n"
        "  --deadline-ms <n>      per-job wall-clock deadline\n"
        "  --telemetry-overhead   interleave telemetry-off/on passes "
        "and report the\n"
        "                         best-of throughput delta (in-process "
        "only)\n"
        "  --overhead-reps <n>    passes per setting (default 3)\n"
        "  --out <dir>            where BENCH_service.json goes "
        "(default .)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "--socket")
                opts.socketPath = next();
            else if (arg == "--clients")
                opts.clients = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--jobs-per-client")
                opts.jobsPerClient = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--kernels") {
                opts.kernels.clear();
                std::string list = next();
                size_t start = 0;
                while (start <= list.size()) {
                    const size_t comma = list.find(',', start);
                    const std::string item = list.substr(
                        start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
                    if (!item.empty())
                        opts.kernels.push_back(item);
                    if (comma == std::string::npos)
                        break;
                    start = comma + 1;
                }
                if (opts.kernels.empty())
                    fatal("--kernels list is empty");
            } else if (arg == "--inject-seed")
                opts.injectSeed =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                opts.injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--divergence-frac")
                opts.divergenceFrac =
                    std::strtod(next().c_str(), nullptr);
            else if (arg == "--deadline-ms")
                opts.deadlineMs =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--telemetry-overhead")
                opts.telemetryOverhead = true;
            else if (arg == "--overhead-reps")
                opts.overheadReps = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--out")
                opts.outDir = next();
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            }
        }

        benchutil::BenchReport report("service");
        report.note("transport", opts.socketPath.empty()
                                     ? "in-process"
                                     : "socket");
        report.note("inject_rate_str",
                    std::to_string(opts.injectRate));
        report.note("divergence_frac_str",
                    std::to_string(opts.divergenceFrac));

        const auto rate = [](const PassStats &p) {
            return p.wallSec > 0
                       ? static_cast<double>(p.results.size()) /
                             p.wallSec
                       : 0.0;
        };

        // Overhead mode: interleave kill-switch-off and -on passes
        // and compare best-of rates (best-of shaves scheduler noise,
        // interleaving cancels warmup drift). The switch is
        // process-local, so the comparison is only meaningful against
        // an in-process supervisor; for the true-zero baseline, build
        // with -DXLOOPS_METRICS_DISABLED (docs/OBSERVABILITY.md).
        PassStats pass;
        PassStats offPass;
        double offBestRate = 0, onBestRate = 0;
        if (opts.telemetryOverhead) {
            if (!opts.socketPath.empty())
                fatal("--telemetry-overhead is in-process only");
            for (unsigned r = 0; r < opts.overheadReps; r++) {
                metricsEnable(false);
                offPass = runPass(opts);
                offBestRate = std::max(offBestRate, rate(offPass));
                metricsEnable(true);
                pass = runPass(opts);
                onBestRate = std::max(onBestRate, rate(pass));
            }
        } else {
            pass = runPass(opts);
        }
        const Tally t = tallyResults(pass.results);

        const size_t total = pass.results.size();
        const double jobsPerSec = rate(pass);
        const double p50 = percentile(t.latencies, 0.50);
        const double p99 = percentile(t.latencies, 0.99);

        std::printf("loadgen: %zu jobs in %.2fs = %.2f jobs/sec\n",
                    total, pass.wallSec, jobsPerSec);
        std::printf(
            "  done %zu (cached %zu), failed %zu (capsuled %zu), "
            "shed %zu, cancelled %zu, errors %zu\n",
            t.done, t.cached, t.failed, t.capsuled, t.shed,
            t.cancelled, t.errors);
        std::printf("  latency p50 %.1fms p99 %.1fms\n", p50, p99);
        std::printf("  spans: queue %.0fus cache %.0fus sim %.0fus "
                    "(mean), %zu retried\n",
                    t.queueWaitUsMean, t.cacheLookupUsMean,
                    t.simUsMean, t.retried);

        report.beginRow("overall");
        report.metric("clients", opts.clients);
        report.metric("jobs", static_cast<double>(total));
        report.metric("jobs_per_sec", jobsPerSec);
        report.metric("latency_p50_ms", p50);
        report.metric("latency_p99_ms", p99);
        report.metric("done", static_cast<double>(t.done));
        report.metric("cached", static_cast<double>(t.cached));
        report.metric("failed", static_cast<double>(t.failed));
        report.metric("capsuled", static_cast<double>(t.capsuled));
        report.metric("shed", static_cast<double>(t.shed));
        report.metric("cancelled", static_cast<double>(t.cancelled));
        report.metric("retried", static_cast<double>(t.retried));
        report.metric("queue_wait_us_mean", t.queueWaitUsMean);
        report.metric("cache_lookup_us_mean", t.cacheLookupUsMean);
        report.metric("sim_us_mean", t.simUsMean);

        if (opts.telemetryOverhead) {
            const double overheadPct =
                offBestRate > 0
                    ? (offBestRate - onBestRate) / offBestRate * 100.0
                    : 0.0;
            std::printf("  telemetry: off %.2f jobs/sec, on %.2f "
                        "jobs/sec (best of %u), overhead %.2f%%\n",
                        offBestRate, onBestRate, opts.overheadReps,
                        overheadPct);
            const Tally offT = tallyResults(offPass.results);
            report.beginRow("telemetry_off");
            report.metric("jobs", static_cast<double>(
                                      offPass.results.size()));
            report.metric("jobs_per_sec", offBestRate);
            report.metric("latency_p50_ms",
                          percentile(offT.latencies, 0.50));
            report.metric("latency_p99_ms",
                          percentile(offT.latencies, 0.99));
            report.beginRow("telemetry_overhead");
            report.metric("jobs_per_sec_on", onBestRate);
            report.metric("overhead_pct", overheadPct);
            report.metric("reps", opts.overheadReps);
            if (offT.errors) {
                std::fprintf(stderr,
                             "FAILED: transport errors in the "
                             "telemetry-off pass\n");
                return 1;
            }
        }
        report.write(opts.outDir);

        if (t.missingCapsules) {
            std::fprintf(stderr,
                         "FAILED: %zu SimError failures without a "
                         "capsule\n",
                         t.missingCapsules);
            return 1;
        }
        if (t.errors) {
            std::fprintf(stderr, "FAILED: %zu transport errors\n",
                         t.errors);
            return 1;
        }
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "loadgen: %s\n", err.what());
        return 1;
    }
}
