/**
 * @file
 * Reproduces Table V: post-place-and-route area and cycle-time
 * estimates for the LPSU, sweeping instruction buffer capacity
 * (96-192 entries, 4 lanes) and lane count (2-8 lanes, 128 entries),
 * via the analytical VLSI model calibrated to the paper's 40 nm flow.
 */

#include <cstdio>

#include "vlsi/vlsi_model.h"

using namespace xloops;

int
main()
{
    std::printf("Table V: VLSI area and cycle-time results\n\n");
    std::printf("%-16s %8s %9s %9s %9s %10s\n", "config", "CT (ns)",
                "GPP mm^2", "LPSU mm^2", "total", "overhead");
    const VlsiEstimate scalar = vlsiEstimate(0, 0);
    std::printf("%-16s %8.2f %9.2f %9s %9.2f %10s\n", "scalar GPP",
                scalar.cycleTimeNs, scalar.gppAreaMm2, "-",
                scalar.gppAreaMm2, "-");
    for (const auto &row : tableVSweep()) {
        std::printf("%-16s %8.2f %9.2f %9.3f %9.2f %9.0f%%\n",
                    row.name.c_str(), row.cycleTimeNs, row.gppAreaMm2,
                    row.lpsuAreaMm2, row.totalAreaMm2,
                    100.0 * row.areaOverhead);
    }
    std::printf("\nPaper anchors: lpsu+i128+ln4 = 0.36 mm^2 total "
                "(43%% over the 0.25 mm^2 GPP), 2.14 ns.\n");
    return 0;
}
