/**
 * @file
 * Ablations of the LPSU design choices DESIGN.md calls out, beyond
 * the paper's Figure 9 grid:
 *
 *  1. cross-lane store-load forwarding + value-based violation
 *     filtering (the paper's "more aggressive implementation") on the
 *     squash-dominated om/ua kernels;
 *  2. lane-count sweep 1..8 on a uc kernel (scaling shape);
 *  3. scan-phase cost sensitivity (0/1/4 cycles per scanned
 *     instruction) on a short-trip-count loop nest;
 *  4. LSQ capacity sweep on the LSQ-structural-hazard kernels.
 */

#include "asm/assembler.h"
#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

namespace {

struct SpecOutcome
{
    Cycle cycles;
    u64 squashes;
    u64 filtered;
    bool passed;
};

SpecOutcome
specialize(const std::string &kernel, const SysConfig &cfg)
{
    const Kernel &k = kernelByName(kernel);
    const Program prog = assemble(k.source);
    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    if (k.setup)
        k.setup(sys.memory(), prog);
    const SysResult res = sys.run(prog, ExecMode::Specialized);
    const KernelRun check = runKernel(k, cfg, ExecMode::Specialized);
    return {res.cycles, sys.lpsuModel().stats().get("squashes"),
            sys.lpsuModel().stats().get("squashes_filtered"),
            check.passed};
}

} // namespace

int
main()
{
    std::printf("Ablation 1: cross-lane forwarding + value-based "
                "violation filtering (io+x vs io+xf)\n\n");
    std::printf("%-14s %10s %9s | %10s %9s %9s %8s\n", "kernel",
                "base cyc", "squashes", "fwd cyc", "squashes",
                "filtered", "speedup");
    bool ok = true;
    for (const std::string name :
         {"dynprog-om", "ksack-sm-om", "knn-om", "hsort-ua",
          "rsort-ua", "war-om"}) {
        const SpecOutcome base = specialize(name, configs::ioX());
        const SpecOutcome fwd = specialize(name, configs::ioXf());
        ok &= base.passed && fwd.passed;
        std::printf("%-14s %10llu %9llu | %10llu %9llu %9llu %7.2fx\n",
                    name.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(base.squashes),
                    static_cast<unsigned long long>(fwd.cycles),
                    static_cast<unsigned long long>(fwd.squashes),
                    static_cast<unsigned long long>(fwd.filtered),
                    ratio(base.cycles, fwd.cycles));
    }

    std::printf("\nAblation 2: lane-count sweep, rgb2cmyk-uc "
                "(speedup vs serial GP on io)\n\n  lanes: ");
    const Cell g = gpBaseline("rgb2cmyk-uc", configs::io());
    for (const unsigned lanes : {1u, 2u, 3u, 4u, 6u, 8u}) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.lanes = lanes;
        const Cell s = runCell("rgb2cmyk-uc", cfg, ExecMode::Specialized);
        ok &= s.passed;
        std::printf("%u=%.2fx  ", lanes, ratio(g.cycles, s.cycles));
    }

    std::printf("\n\nAblation 3: scan cost sensitivity, war-uc "
                "(inner xloop re-specialized every outer iteration)\n\n"
                "  scan cycles/inst: ");
    const Cell gw = gpBaseline("war-uc", configs::io());
    for (const unsigned cost : {0u, 1u, 4u}) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.scanCyclesPerInst = cost;
        const Cell s = runCell("war-uc", cfg, ExecMode::Specialized);
        ok &= s.passed;
        std::printf("%u=%.2fx  ", cost, ratio(gw.cycles, s.cycles));
    }

    std::printf("\n\nAblation 4: LSQ capacity sweep, btree-ua and "
                "war-om (speedup vs serial GP on io)\n\n");
    for (const std::string name : {"btree-ua", "war-om"}) {
        const Cell gb = gpBaseline(name, configs::io());
        std::printf("  %-10s: ", name.c_str());
        for (const unsigned entries : {4u, 8u, 16u, 32u}) {
            SysConfig cfg = configs::ioX();
            cfg.lpsu.lsqLoadEntries = entries;
            cfg.lpsu.lsqStoreEntries = entries;
            const Cell s = runCell(name, cfg, ExecMode::Specialized);
            ok &= s.passed;
            std::printf("%u+%u=%.2fx  ", entries, entries,
                        ratio(gb.cycles, s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
