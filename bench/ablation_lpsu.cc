/**
 * @file
 * Ablations of the LPSU design choices DESIGN.md calls out, beyond
 * the paper's Figure 9 grid:
 *
 *  1. cross-lane store-load forwarding + value-based violation
 *     filtering (the paper's "more aggressive implementation") on the
 *     squash-dominated om/ua kernels;
 *  2. lane-count sweep 1..8 on a uc kernel (scaling shape);
 *  3. scan-phase cost sensitivity (0/1/4 cycles per scanned
 *     instruction) on a short-trip-count loop nest;
 *  4. LSQ capacity sweep on the LSQ-structural-hazard kernels.
 *
 * All four ablations are one flat cell list run through the parallel
 * sweep harness (`--jobs N`); sections only index into the results.
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main(int argc, char **argv)
{
    const unsigned jobs = parseJobs(argc, argv);

    const std::vector<std::string> fwdKernels = {
        "dynprog-om", "ksack-sm-om", "knn-om", "hsort-ua", "rsort-ua",
        "war-om"};
    const std::vector<unsigned> laneCounts = {1, 2, 3, 4, 6, 8};
    const std::vector<unsigned> scanCosts = {0, 1, 4};
    const std::vector<std::string> lsqKernels = {"btree-ua", "war-om"};
    const std::vector<unsigned> lsqSizes = {4, 8, 16, 32};

    std::vector<SweepCell> cells;
    // Section 1: two cells (io+x, io+xf) per forwarding kernel.
    const size_t fwdAt = cells.size();
    for (const std::string &name : fwdKernels) {
        cells.push_back(cell(name, configs::ioX(),
                             ExecMode::Specialized));
        cells.push_back(cell(name, configs::ioXf(),
                             ExecMode::Specialized));
    }
    // Section 2: serial baseline, then the lane sweep.
    const size_t lanesAt = cells.size();
    cells.push_back(gpCell("rgb2cmyk-uc", configs::io()));
    for (const unsigned lanes : laneCounts) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.lanes = lanes;
        cells.push_back(cell("rgb2cmyk-uc", cfg, ExecMode::Specialized));
    }
    // Section 3: serial baseline, then the scan-cost sweep.
    const size_t scanAt = cells.size();
    cells.push_back(gpCell("war-uc", configs::io()));
    for (const unsigned cost : scanCosts) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.scanCyclesPerInst = cost;
        cells.push_back(cell("war-uc", cfg, ExecMode::Specialized));
    }
    // Section 4: per kernel, serial baseline then the LSQ sweep.
    const size_t lsqAt = cells.size();
    for (const std::string &name : lsqKernels) {
        cells.push_back(gpCell(name, configs::io()));
        for (const unsigned entries : lsqSizes) {
            SysConfig cfg = configs::ioX();
            cfg.lpsu.lsqLoadEntries = entries;
            cfg.lpsu.lsqStoreEntries = entries;
            cells.push_back(cell(name, cfg, ExecMode::Specialized));
        }
    }

    const std::vector<SweepCellResult> results =
        runBenchSweep(cells, jobs);
    bool ok = true;

    std::printf("Ablation 1: cross-lane forwarding + value-based "
                "violation filtering (io+x vs io+xf)\n\n");
    std::printf("%-14s %10s %9s | %10s %9s %9s %8s\n", "kernel",
                "base cyc", "squashes", "fwd cyc", "squashes",
                "filtered", "speedup");
    for (size_t k = 0; k < fwdKernels.size(); k++) {
        const SweepCellResult &base = results[fwdAt + 2 * k];
        const SweepCellResult &fwd = results[fwdAt + 2 * k + 1];
        ok &= base.passed && fwd.passed;
        std::printf("%-14s %10llu %9llu | %10llu %9llu %9llu %7.2fx\n",
                    fwdKernels[k].c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(
                        base.stats.get("squashes")),
                    static_cast<unsigned long long>(fwd.cycles),
                    static_cast<unsigned long long>(
                        fwd.stats.get("squashes")),
                    static_cast<unsigned long long>(
                        fwd.stats.get("squashes_filtered")),
                    ratio(base.cycles, fwd.cycles));
    }

    std::printf("\nAblation 2: lane-count sweep, rgb2cmyk-uc "
                "(speedup vs serial GP on io)\n\n  lanes: ");
    const Cell g = toCell(results[lanesAt]);
    for (size_t i = 0; i < laneCounts.size(); i++) {
        const Cell s = toCell(results[lanesAt + 1 + i]);
        ok &= s.passed;
        std::printf("%u=%.2fx  ", laneCounts[i],
                    ratio(g.cycles, s.cycles));
    }

    std::printf("\n\nAblation 3: scan cost sensitivity, war-uc "
                "(inner xloop re-specialized every outer iteration)\n\n"
                "  scan cycles/inst: ");
    const Cell gw = toCell(results[scanAt]);
    for (size_t i = 0; i < scanCosts.size(); i++) {
        const Cell s = toCell(results[scanAt + 1 + i]);
        ok &= s.passed;
        std::printf("%u=%.2fx  ", scanCosts[i],
                    ratio(gw.cycles, s.cycles));
    }

    std::printf("\n\nAblation 4: LSQ capacity sweep, btree-ua and "
                "war-om (speedup vs serial GP on io)\n\n");
    const size_t lsqStride = 1 + lsqSizes.size();
    for (size_t k = 0; k < lsqKernels.size(); k++) {
        const Cell gb = toCell(results[lsqAt + k * lsqStride]);
        std::printf("  %-10s: ", lsqKernels[k].c_str());
        for (size_t i = 0; i < lsqSizes.size(); i++) {
            const Cell s = toCell(results[lsqAt + k * lsqStride + 1 + i]);
            ok &= s.passed;
            std::printf("%u+%u=%.2fx  ", lsqSizes[i], lsqSizes[i],
                        ratio(gb.cycles, s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
