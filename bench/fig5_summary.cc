/**
 * @file
 * Reproduces Figure 5: for every kernel, the speedup of the serial GP
 * binary on ooo/2 and ooo/4 (normalized to the in-order GPP) next to
 * specialized execution on ooo/2+x (normalized to ooo/2). Shows where
 * a simple GPP plus an LPSU is complexity-effective against wider
 * out-of-order machines. Cells run through the parallel sweep harness
 * (`--jobs N`).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main(int argc, char **argv)
{
    const unsigned jobs = parseJobs(argc, argv);

    std::printf("Figure 5: speedup summary (bars, one group per "
                "kernel)\n\n");
    std::printf("%-14s %9s %9s %12s\n", "kernel", "ooo2/io", "ooo4/io",
                "ooo2+x:S/o2");

    const std::vector<std::string> kernels = tableIIKernelNames();
    std::vector<SweepCell> cells;
    for (const auto &name : kernels) {
        cells.push_back(gpCell(name, configs::io()));
        cells.push_back(gpCell(name, configs::ooo2()));
        cells.push_back(gpCell(name, configs::ooo4()));
        cells.push_back(cell(name, configs::ooo2X(),
                             ExecMode::Specialized));
    }
    const std::vector<SweepCellResult> results =
        runBenchSweep(cells, jobs);
    constexpr size_t stride = 4;

    bool ok = true;
    for (size_t k = 0; k < kernels.size(); k++) {
        const SweepCellResult *row = &results[k * stride];
        const Cell io = toCell(row[0]);
        const Cell o2 = toCell(row[1]);
        const Cell o4 = toCell(row[2]);
        const Cell sx = toCell(row[3]);
        ok &= io.passed && o2.passed && o4.passed && sx.passed;
        std::printf("%-14s %9.2f %9.2f %12.2f\n", kernels[k].c_str(),
                    ratio(io.cycles, o2.cycles),
                    ratio(io.cycles, o4.cycles),
                    ratio(o2.cycles, sx.cycles));
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
