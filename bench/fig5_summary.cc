/**
 * @file
 * Reproduces Figure 5: for every kernel, the speedup of the serial GP
 * binary on ooo/2 and ooo/4 (normalized to the in-order GPP) next to
 * specialized execution on ooo/2+x (normalized to ooo/2). Shows where
 * a simple GPP plus an LPSU is complexity-effective against wider
 * out-of-order machines.
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    std::printf("Figure 5: speedup summary (bars, one group per "
                "kernel)\n\n");
    std::printf("%-14s %9s %9s %12s\n", "kernel", "ooo2/io", "ooo4/io",
                "ooo2+x:S/o2");
    bool ok = true;
    for (const auto &name : tableIIKernelNames()) {
        const Cell io = gpBaseline(name, configs::io());
        const Cell o2 = gpBaseline(name, configs::ooo2());
        const Cell o4 = gpBaseline(name, configs::ooo4());
        const Cell sx =
            runCell(name, configs::ooo2X(), ExecMode::Specialized);
        ok &= io.passed && o2.passed && o4.passed && sx.passed;
        std::printf("%-14s %9.2f %9.2f %12.2f\n", name.c_str(),
                    ratio(io.cycles, o2.cycles),
                    ratio(io.cycles, o4.cycles),
                    ratio(o2.cycles, sx.cycles));
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
