/**
 * @file
 * Reproduces Figure 9: LPSU microarchitectural design space
 * exploration on the ooo/4 host — baseline 4-lane LPSU, +t (2-way
 * vertical multithreading), x8 (eight lanes), +r (2x shared memory
 * ports and LLFUs), +m (16+16-entry LSQs) — on kernels representative
 * of each dependence pattern (paper Section IV-F).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    const std::vector<std::string> kernels = {
        "sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or", "btree-ua"};
    const std::vector<SysConfig> cfgs = {
        configs::ooo4X(), configs::ooo4X4t(), configs::ooo4X8(),
        configs::ooo4X8r(), configs::ooo4X8rm()};

    std::printf("Figure 9: LPSU design-space exploration "
                "(speedup vs serial GP binary on ooo/4)\n\n");
    std::printf("%-12s", "kernel");
    for (const auto &cfg : cfgs)
        std::printf(" %13s", cfg.name.c_str());
    std::printf("\n");

    bool ok = true;
    for (const auto &name : kernels) {
        const Cell g = gpBaseline(name, configs::ooo4());
        std::printf("%-12s", name.c_str());
        for (const auto &cfg : cfgs) {
            const Cell s = runCell(name, cfg, ExecMode::Specialized);
            ok &= s.passed;
            std::printf(" %13.2f", ratio(g.cycles, s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
