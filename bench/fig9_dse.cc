/**
 * @file
 * Reproduces Figure 9: LPSU microarchitectural design space
 * exploration on the ooo/4 host — baseline 4-lane LPSU, +t (2-way
 * vertical multithreading), x8 (eight lanes), +r (2x shared memory
 * ports and LLFUs), +m (16+16-entry LSQs) — on kernels representative
 * of each dependence pattern (paper Section IV-F). Cells run through
 * the parallel sweep harness (`--jobs N`).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main(int argc, char **argv)
{
    const unsigned jobs = parseJobs(argc, argv);

    const std::vector<std::string> kernels = {
        "sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or", "btree-ua"};
    const std::vector<SysConfig> cfgs = {
        configs::ooo4X(), configs::ooo4X4t(), configs::ooo4X8(),
        configs::ooo4X8r(), configs::ooo4X8rm()};

    std::printf("Figure 9: LPSU design-space exploration "
                "(speedup vs serial GP binary on ooo/4)\n\n");
    std::printf("%-12s", "kernel");
    for (const auto &cfg : cfgs)
        std::printf(" %13s", cfg.name.c_str());
    std::printf("\n");

    std::vector<SweepCell> cells;
    for (const auto &name : kernels) {
        cells.push_back(gpCell(name, configs::ooo4()));
        for (const auto &cfg : cfgs)
            cells.push_back(cell(name, cfg, ExecMode::Specialized));
    }
    const std::vector<SweepCellResult> results =
        runBenchSweep(cells, jobs);
    const size_t stride = 1 + cfgs.size();

    bool ok = true;
    for (size_t k = 0; k < kernels.size(); k++) {
        const SweepCellResult *row = &results[k * stride];
        const Cell g = toCell(row[0]);
        std::printf("%-12s", kernels[k].c_str());
        for (size_t c = 0; c < cfgs.size(); c++) {
            const Cell s = toCell(row[1 + c]);
            ok &= s.passed;
            std::printf(" %13.2f", ratio(g.cycles, s.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
