/**
 * @file
 * Reproduces Figure 7: specialized vs. adaptive execution on ooo/4+x,
 * both normalized to the serial GP binary on ooo/4. Adaptive
 * execution must recover the kernels where specialization loses to
 * the aggressive out-of-order host, at only a small cost where
 * specialization wins (profiling thresholds: 256 iterations or 2000
 * cycles, paper Section IV-D).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    std::printf("Figure 7: specialized vs adaptive on ooo/4+x "
                "(normalized to ooo/4)\n\n");
    std::printf("%-14s %6s %6s %10s\n", "kernel", "S", "A", "A rescues?");
    bool ok = true;
    for (const auto &name : tableIIKernelNames()) {
        const Cell g = gpBaseline(name, configs::ooo4());
        const Cell s =
            runCell(name, configs::ooo4X(), ExecMode::Specialized);
        const Cell a =
            runCell(name, configs::ooo4X(), ExecMode::Adaptive);
        ok &= g.passed && s.passed && a.passed;
        const double sS = ratio(g.cycles, s.cycles);
        const double sA = ratio(g.cycles, a.cycles);
        std::printf("%-14s %6.2f %6.2f %10s\n", name.c_str(), sS, sA,
                    (sS < 0.95 && sA > sS) ? "yes" : "-");
    }
    std::printf("\nvalidation: %s\n", ok ? "ALL PASSED" : "FAILED");
    return ok ? 0 : 1;
}
