/**
 * @file
 * Reproduces Figure 10: energy efficiency vs. performance of
 * specialized execution of the uc kernels relative to the scalar GPP,
 * at the VLSI level. The key RTL result is that an LPSU instruction
 * buffer access is ~10x cheaper than an instruction cache access, so
 * loop-resident execution saves substantial fetch energy (paper
 * Section V-C: speedups 2.4-4x, efficiency gains 1.6-2.1x).
 *
 * Substitution note: the paper's RTL lacked xi support and recompiled
 * without LSR; our kernels keep xi (the cycle-level ISA), which the
 * paper shows mainly affects sgemm. Documented in EXPERIMENTS.md.
 */

#include "bench_util.h"
#include "compiler/codegen.h"

using namespace xloops;
using namespace xloops::benchutil;

namespace {

/** Compile a saxpy-like uc kernel with/without loop strength
 *  reduction and report specialized cycles on io+x — the paper's
 *  no-xi RTL artifact, reproduced through the compiler. */
void
noXiStudy()
{
    std::printf("\nno-xi study (compiled saxpy, io+x specialized):\n");
    for (const bool lsr : {true, false}) {
        CodeGen cg;
        cg.lsrEnabled(lsr);
        cg.declareArray("x", 256);
        cg.declareArray("y", 256);
        Loop init;
        init.iv = "i";
        init.lower = cst(0);
        init.upper = cst(256);
        init.body.push_back(store("x", var("i"), var("i")));
        init.body.push_back(store("y", var("i"), mul(var("i"), cst(2))));
        Loop compute;
        compute.iv = "i";
        compute.lower = cst(0);
        compute.upper = cst(256);
        compute.pragma = Pragma::Unordered;
        compute.body.push_back(store(
            "y", var("i"),
            add(mul(ld("x", var("i")), cst(7)), ld("y", var("i")))));
        const Program prog =
            cg.compileToProgram({nested(init), nested(compute)});
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        const SysResult res = sys.run(prog, ExecMode::Specialized);
        std::printf("  %-10s %8llu cycles, %llu lane insts\n",
                    lsr ? "with xi" : "no xi (RTL)",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.laneInsts));
    }
    std::printf("  (the paper's RTL lacked xi support and saw sgemm "
                "slow down for this reason)\n");
}

} // namespace

int
main()
{
    const std::vector<std::string> kernels = {
        "rgb2cmyk-uc", "sgemm-uc", "ssearch-uc", "symm-uc", "viterbi-uc",
        "war-uc"};

    std::printf("Figure 10: VLSI energy efficiency vs performance "
                "(uc kernels, io+x vs io)\n\n");
    std::printf("%-14s %9s %12s %14s %14s\n", "kernel", "speedup",
                "energy eff", "ifetch nJ gp", "ifetch nJ lpsu");
    const EnergyModel model;
    for (const auto &name : kernels) {
        const Cell g = gpBaseline(name, configs::io());
        const Cell s = runCell(name, configs::ioX(),
                               ExecMode::Specialized);
        // Instruction-fetch energy split: GPP insts fetch from the
        // icache, lane insts from the (10x cheaper) IB.
        const double gpFetch = static_cast<double>(g.stats.get("insts")) *
                               model.table().icacheAccess / 1000.0;
        const double lpsuFetch =
            (static_cast<double>(s.stats.get("insts")) *
                 model.table().icacheAccess +
             static_cast<double>(s.stats.get("lane_insts")) *
                 model.table().ibAccess) /
            1000.0;
        std::printf("%-14s %9.2f %12.2f %14.1f %14.1f\n", name.c_str(),
                    ratio(g.cycles, s.cycles),
                    s.energyNj > 0 ? g.energyNj / s.energyNj : 0.0,
                    gpFetch, lpsuFetch);
    }
    noXiStudy();
    return 0;
}
