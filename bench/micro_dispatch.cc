/**
 * @file
 * Functional-execution dispatch microbenchmark: the legacy per-opcode
 * switch (cpu/exec_core.cc via FunctionalExecutor) against the
 * threaded computed-goto interpreter over cached superblocks
 * (cpu/threaded.h), in instructions per second.
 *
 * Measures whole-kernel functional runs (reload + input setup every
 * repetition, identically for both paths) plus a synthetic
 * five-instruction arithmetic loop that retires ~5M instructions per
 * repetition, making per-run setup negligible — that row is the
 * cleanest read of raw dispatch throughput. Writes
 * BENCH_dispatch.json (rows of insts/sec + speedup, plus a geomean
 * summary) via the shared xloops-bench-1 reporter.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "bench_util.h"
#include "cpu/functional.h"
#include "cpu/threaded.h"
#include "kernels/kernel.h"

namespace {

using namespace xloops;

// ~1M iterations x 5 instructions: long enough that program reload is
// noise, mixed enough (alu + branch) to exercise the dispatch loop
// rather than one handler.
const char *const syntheticLoop = R"(
  addi r1, r0, 0
  lui  r2, 123
loop:
  addi r3, r3, 1
  xor  r4, r3, r1
  add  r5, r5, r4
  addi r1, r1, 1
  blt  r1, r2, loop
  halt
)";

/**
 * Accumulate >= 0.2 s of *execution* time (program reload and input
 * setup run untimed between repetitions — they are identical for both
 * paths and are not dispatch) and return instructions/sec; best of
 * three trials.
 */
double
instsPerSec(const std::function<void()> &prepare,
            const std::function<u64()> &execute)
{
    double best = 0.0;
    for (int trial = 0; trial < 3; trial++) {
        prepare();
        execute();  // warm caches (and the superblock cache)
        u64 insts = 0;
        double elapsed = 0.0;
        do {
            prepare();
            const auto t0 = std::chrono::steady_clock::now();
            insts += execute();
            elapsed += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        } while (elapsed < 0.2);
        best = std::max(best, static_cast<double>(insts) / elapsed);
    }
    return best;
}

struct Workload
{
    std::string label;
    Program prog;
    std::function<void(MainMemory &, const Program &)> setup;
};

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;

    std::vector<Workload> workloads;
    for (const char *name :
         {"rgb2cmyk-uc", "sgemm-uc", "viterbi-uc", "kmeans-or",
          "dynprog-om"}) {
        const Kernel &k = kernelByName(name);
        workloads.push_back({name, assemble(k.source), k.setup});
    }
    workloads.push_back({"synthetic-loop", assemble(syntheticLoop), {}});

    benchutil::BenchReport report("dispatch");
    std::printf("%-16s %14s %14s %8s\n", "workload", "switch M/s",
                "threaded M/s", "speedup");

    double logSum = 0.0;
    for (const Workload &w : workloads) {
        MainMemory switchMem;
        const double switchRate = instsPerSec(
            [&] {
                w.prog.loadInto(switchMem);
                if (w.setup)
                    w.setup(switchMem, w.prog);
            },
            [&] {
                FunctionalExecutor exec(switchMem);
                return exec.run(w.prog).dynInsts;
            });

        MainMemory threadedMem;
        ThreadedExecutor threaded(threadedMem);
        const double threadedRate = instsPerSec(
            [&] {
                w.prog.loadInto(threadedMem);
                if (w.setup)
                    w.setup(threadedMem, w.prog);
                threaded.regFile() = RegFile{};
            },
            [&] { return threaded.run(w.prog).dynInsts; });

        const double speedup = threadedRate / switchRate;
        logSum += std::log(speedup);
        std::printf("%-16s %14.1f %14.1f %7.2fx\n", w.label.c_str(),
                    switchRate / 1e6, threadedRate / 1e6, speedup);
        report.beginRow(w.label);
        report.metric("switch_insts_per_sec", switchRate);
        report.metric("threaded_insts_per_sec", threadedRate);
        report.metric("speedup", speedup);
    }

    const double geomean =
        std::exp(logSum / static_cast<double>(workloads.size()));
    std::printf("%-16s %37.2fx geomean\n", "summary", geomean);
    report.beginRow("summary");
    report.metric("geomean_speedup", geomean);
    report.write();
    return 0;
}
