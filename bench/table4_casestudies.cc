/**
 * @file
 * Reproduces Table IV: application case studies — hand-scheduled
 * xloop.or kernels (adpcm/dither/sha "-or-opt") and manual loop
 * transformations into unordered-concurrent form (bfs/dither/kmeans/
 * qsort/rsort "-uc"). Speedups of specialized execution on io+x,
 * ooo/2+x, and ooo/4+x, normalized to the serial GP binary on the
 * corresponding baseline, with the untransformed kernel alongside.
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

namespace {

void
row(const std::string &name)
{
    const Cell gIo = gpBaseline(name, configs::io());
    const Cell gO2 = gpBaseline(name, configs::ooo2());
    const Cell gO4 = gpBaseline(name, configs::ooo4());
    const Cell sIo = runCell(name, configs::ioX(), ExecMode::Specialized);
    const Cell sO2 =
        runCell(name, configs::ooo2X(), ExecMode::Specialized);
    const Cell sO4 =
        runCell(name, configs::ooo4X(), ExecMode::Specialized);
    std::printf("%-14s %8.2f %8.2f %8.2f\n", name.c_str(),
                ratio(gIo.cycles, sIo.cycles),
                ratio(gO2.cycles, sO2.cycles),
                ratio(gO4.cycles, sO4.cycles));
}

} // namespace

int
main()
{
    std::printf("Table IV: case study results (specialized speedups)\n\n");
    std::printf("%-14s %8s %8s %8s\n", "kernel", "io+x", "ooo/2+x",
                "ooo/4+x");

    std::printf("-- hand-scheduled xloop.or (vs compiler-scheduled) --\n");
    for (const std::string name :
         {"adpcm-or", "adpcm-or-opt", "dither-or", "dither-or-opt",
          "sha-or", "sha-or-opt"})
        row(name);

    std::printf("-- manual loop transformations (vs annotated serial) "
                "--\n");
    for (const std::string name :
         {"bfs-uc-db", "bfs-uc", "dither-uc", "kmeans-or", "kmeans-uc",
          "qsort-uc-db", "qsort-uc", "rsort-ua", "rsort-uc"})
        row(name);
    return 0;
}
