/**
 * @file
 * Reproduces Table II: traditional (T), specialized (S), and adaptive
 * (A) speedups of the XLOOPS binary on io/ooo2/ooo4 (+x), each
 * normalized to the serial GP-ISA binary on the same baseline GPP,
 * plus the XLOOPS/GP dynamic instruction ratio (X/G).
 *
 * All cells (14 per kernel x 25 kernels) run through the parallel
 * sweep harness (`--jobs N`); the printed table and BENCH_table2.json
 * are identical for every worker count.
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main(int argc, char **argv)
{
    const unsigned jobs = parseJobs(argc, argv);

    std::printf("Table II: XLOOPS application kernels, cycle-level "
                "results\n");
    std::printf("Speedups normalized to the serial GP-ISA binary on the "
                "same baseline GPP.\n\n");
    std::printf("%-14s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s\n",
                "kernel", "X/G", "io:T", "io:S", "io:A", "o2:T", "o2:S",
                "o2:A", "o4:T", "o4:S", "o4:A");

    const auto hosts = std::vector<std::pair<SysConfig, SysConfig>>{
        {configs::io(), configs::ioX()},
        {configs::ooo2(), configs::ooo2X()},
        {configs::ooo4(), configs::ooo4X()},
    };
    const char *hostTags[] = {"io", "o2", "o4"};

    // 14 cells per kernel: the two dynamic-instruction-count runs for
    // X/G, then {gp baseline, T, S, A} on each of the three hosts.
    const std::vector<std::string> kernels = tableIIKernelNames();
    std::vector<SweepCell> cells;
    for (const auto &name : kernels) {
        cells.push_back(cell(name, configs::io(), ExecMode::Traditional));
        cells.push_back(gpCell(name, configs::io()));
        for (const auto &[base, xcfg] : hosts) {
            cells.push_back(gpCell(name, base));
            cells.push_back(cell(name, base, ExecMode::Traditional));
            cells.push_back(cell(name, xcfg, ExecMode::Specialized));
            cells.push_back(cell(name, xcfg, ExecMode::Adaptive));
        }
    }
    const std::vector<SweepCellResult> results =
        runBenchSweep(cells, jobs);
    constexpr size_t stride = 14;

    BenchReport report("table2");
    report.note("normalization",
                "serial GP-ISA binary on the same baseline GPP");

    bool allPassed = true;
    for (size_t k = 0; k < kernels.size(); k++) {
        const std::string &name = kernels[k];
        const SweepCellResult *row = &results[k * stride];
        const double xg = static_cast<double>(row[0].xlDynInsts) /
                          static_cast<double>(row[1].xlDynInsts);

        std::printf("%-14s %5.2f |", name.c_str(), xg);
        report.beginRow(name);
        report.metric("xg_inst_ratio", xg);
        for (size_t h = 0; h < hosts.size(); h++) {
            const Cell g = toCell(row[2 + 4 * h]);
            const Cell t = toCell(row[3 + 4 * h]);
            const Cell s = toCell(row[4 + 4 * h]);
            const Cell a = toCell(row[5 + 4 * h]);
            allPassed &= g.passed && t.passed && s.passed && a.passed;
            std::printf(" %5.2f %5.2f %5.2f |", ratio(g.cycles, t.cycles),
                        ratio(g.cycles, s.cycles),
                        ratio(g.cycles, a.cycles));
            const std::string tag = hostTags[h];
            report.metric(tag + "_T", ratio(g.cycles, t.cycles));
            report.metric(tag + "_S", ratio(g.cycles, s.cycles));
            report.metric(tag + "_A", ratio(g.cycles, a.cycles));
            report.metric(tag + "_base_cycles",
                          static_cast<double>(g.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", allPassed ? "ALL PASSED" : "FAILED");
    report.note("validation", allPassed ? "pass" : "fail");
    report.write();
    return allPassed ? 0 : 1;
}
