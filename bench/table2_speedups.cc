/**
 * @file
 * Reproduces Table II: traditional (T), specialized (S), and adaptive
 * (A) speedups of the XLOOPS binary on io/ooo2/ooo4 (+x), each
 * normalized to the serial GP-ISA binary on the same baseline GPP,
 * plus the XLOOPS/GP dynamic instruction ratio (X/G).
 */

#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    std::printf("Table II: XLOOPS application kernels, cycle-level "
                "results\n");
    std::printf("Speedups normalized to the serial GP-ISA binary on the "
                "same baseline GPP.\n\n");
    std::printf("%-14s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s\n",
                "kernel", "X/G", "io:T", "io:S", "io:A", "o2:T", "o2:S",
                "o2:A", "o4:T", "o4:S", "o4:A");

    const auto hosts = std::vector<std::pair<SysConfig, SysConfig>>{
        {configs::io(), configs::ioX()},
        {configs::ooo2(), configs::ooo2X()},
        {configs::ooo4(), configs::ooo4X()},
    };
    const char *hostTags[] = {"io", "o2", "o4"};

    BenchReport report("table2");
    report.note("normalization",
                "serial GP-ISA binary on the same baseline GPP");

    bool allPassed = true;
    for (const auto &name : tableIIKernelNames()) {
        // Dynamic instruction ratio via the functional model.
        const KernelRun xl = runKernel(kernelByName(name), configs::io(),
                                       ExecMode::Traditional, false);
        const KernelRun gp = runKernel(kernelByName(name), configs::io(),
                                       ExecMode::Traditional, true);
        const double xg = static_cast<double>(xl.xlDynInsts) /
                          static_cast<double>(gp.xlDynInsts);

        std::printf("%-14s %5.2f |", name.c_str(), xg);
        report.beginRow(name);
        report.metric("xg_inst_ratio", xg);
        for (size_t h = 0; h < hosts.size(); h++) {
            const auto &[base, xcfg] = hosts[h];
            const Cell g = gpBaseline(name, base);
            const Cell t = runCell(name, base, ExecMode::Traditional);
            const Cell s = runCell(name, xcfg, ExecMode::Specialized);
            const Cell a = runCell(name, xcfg, ExecMode::Adaptive);
            allPassed &= g.passed && t.passed && s.passed && a.passed;
            std::printf(" %5.2f %5.2f %5.2f |", ratio(g.cycles, t.cycles),
                        ratio(g.cycles, s.cycles),
                        ratio(g.cycles, a.cycles));
            const std::string tag = hostTags[h];
            report.metric(tag + "_T", ratio(g.cycles, t.cycles));
            report.metric(tag + "_S", ratio(g.cycles, s.cycles));
            report.metric(tag + "_A", ratio(g.cycles, a.cycles));
            report.metric(tag + "_base_cycles",
                          static_cast<double>(g.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nvalidation: %s\n", allPassed ? "ALL PASSED" : "FAILED");
    report.note("validation", allPassed ? "pass" : "fail");
    report.write();
    return allPassed ? 0 : 1;
}
