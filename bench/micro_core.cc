/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates
 * themselves: instruction encode/decode, assembly, functional
 * execution rate, and LPSU cycle-loop throughput. Useful for keeping
 * the experiment harnesses fast as the models grow.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "cpu/functional.h"
#include "kernels/kernel.h"

namespace {

using namespace xloops;

void
BM_EncodeDecode(benchmark::State &state)
{
    const Instruction inst{.op = Op::ADD, .rd = 3, .rs1 = 4, .rs2 = 5};
    for (auto _ : state) {
        const u32 word = inst.encode();
        benchmark::DoNotOptimize(Instruction::decode(word));
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_AssembleKernel(benchmark::State &state)
{
    const Kernel &k = kernelByName("adpcm-or");
    for (auto _ : state)
        benchmark::DoNotOptimize(assemble(k.source));
}
BENCHMARK(BM_AssembleKernel);

void
BM_RawFetchDecode(benchmark::State &state)
{
    // The old hot path: full decode on every dynamic instruction.
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    Addr pc = prog.textBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prog.fetch(pc));
        pc += 4;
        if (!prog.inText(pc))
            pc = prog.textBase;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawFetchDecode);

void
BM_PredecodedFetch(benchmark::State &state)
{
    // The new hot path: a bounds check plus an array load.
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    const DecodedProgram &dec = prog.decoded();
    Addr pc = prog.textBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(&dec.fetch(pc));
        pc += 4;
        if (!prog.inText(pc))
            pc = prog.textBase;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredecodedFetch);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    u64 insts = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        k.setup(mem, prog);
        FunctionalExecutor exec(mem);
        insts += exec.run(prog).dynInsts;
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalExecution);

void
BM_SpecializedExecution(benchmark::State &state)
{
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    u64 cycles = 0;
    for (auto _ : state) {
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        k.setup(sys.memory(), prog);
        cycles += sys.run(prog, ExecMode::Specialized).cycles;
    }
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_SpecializedExecution);

} // namespace

BENCHMARK_MAIN();
