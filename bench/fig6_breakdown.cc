/**
 * @file
 * Reproduces Figure 6: breakdown of lane activity during specialized
 * execution on io+x — execute vs. stall (RAW, CIR wait, memory port,
 * LLFU, LSQ structural, commit/AMO wait) vs. idle, plus squashed
 * work, as percentages of total lane-cycles.
 */

#include "asm/assembler.h"
#include "bench_util.h"

using namespace xloops;
using namespace xloops::benchutil;

int
main()
{
    std::printf("Figure 6: specialized-execution lane cycle breakdown "
                "(io+x, %% of lane-cycles)\n\n");
    std::printf("%-14s %6s %6s %6s %6s %6s %6s %6s %6s %7s\n", "kernel",
                "exec", "raw", "cir", "mport", "llfu", "lsq", "commit",
                "idle", "squash");
    for (const auto &name : tableIIKernelNames()) {
        const Kernel &k = kernelByName(name);
        const Program prog = assemble(k.source);
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        if (k.setup)
            k.setup(sys.memory(), prog);
        sys.run(prog, ExecMode::Specialized);
        const StatGroup &s = sys.lpsuModel().stats();

        const double exec = static_cast<double>(s.get("lane_exec_cycles"));
        const double raw =
            static_cast<double>(s.get("lane_raw_stall_cycles"));
        const double cir =
            static_cast<double>(s.get("lane_cir_stall_cycles") +
                                s.get("lane_cib_stall_cycles"));
        const double mport =
            static_cast<double>(s.get("lane_memport_stall_cycles"));
        const double llfu =
            static_cast<double>(s.get("lane_llfu_stall_cycles"));
        const double lsq =
            static_cast<double>(s.get("lane_lsq_stall_cycles"));
        const double commit =
            static_cast<double>(s.get("lane_commit_stall_cycles") +
                                s.get("lane_amo_stall_cycles"));
        const double idle =
            static_cast<double>(s.get("lane_idle_cycles"));
        const double squash = static_cast<double>(s.get("squash_cycles"));
        const double total =
            exec + raw + cir + mport + llfu + lsq + commit + idle;
        if (total == 0)
            continue;
        auto pct = [total](double v) { return 100.0 * v / total; };
        std::printf("%-14s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
                    "%5.1f%% %5.1f%% %5.1f%% %6.1f%%\n",
                    name.c_str(), pct(exec), pct(raw), pct(cir),
                    pct(mport), pct(llfu), pct(lsq), pct(commit),
                    pct(idle), pct(squash));
    }
    return 0;
}
