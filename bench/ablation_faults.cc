/**
 * @file
 * Fault-injection hook overhead ablation.
 *
 * The robustness hooks (injector checks, watchdog compare, storm
 * window) sit on the LPSU's hottest per-cycle and per-access paths;
 * the contract is that with injection disabled (seed == 0) they cost
 * a single predicted branch each, i.e. specialized-execution
 * throughput is unchanged within noise (<2%). Compare:
 *
 *   BM_SpecializedNoFaults   — hooks compiled in, injection disabled
 *   BM_SpecializedWithFaults — adversarial schedule at various rates
 *   BM_WatchdogArmed         — tight watchdog that never trips
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "common/fault.h"
#include "kernels/kernel.h"

namespace {

using namespace xloops;

Cycle
runOnce(const Kernel &k, const Program &prog, const SysConfig &cfg)
{
    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    k.setup(sys.memory(), prog);
    return sys.run(prog, ExecMode::Specialized).cycles;
}

void
BM_SpecializedNoFaults(benchmark::State &state)
{
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    const SysConfig cfg = configs::ioX();
    u64 cycles = 0;
    for (auto _ : state)
        cycles += runOnce(k, prog, cfg);
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_SpecializedNoFaults);

void
BM_SpecializedWithFaults(benchmark::State &state)
{
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(
        17, static_cast<double>(state.range(0)) / 1000.0);
    u64 cycles = 0;
    for (auto _ : state)
        cycles += runOnce(k, prog, cfg);
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_SpecializedWithFaults)->Arg(10)->Arg(50)->Arg(100);

void
BM_WatchdogArmed(benchmark::State &state)
{
    // A tight-but-sufficient watchdog: the compare runs every cycle
    // but never trips, isolating the cost of the armed watchdog.
    const Kernel &k = kernelByName("viterbi-uc");
    const Program prog = assemble(k.source);
    SysConfig cfg = configs::ioX();
    cfg.lpsu.watchdogCycles = 10'000;
    u64 cycles = 0;
    for (auto _ : state)
        cycles += runOnce(k, prog, cfg);
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_WatchdogArmed);

} // namespace

BENCHMARK_MAIN();
