/**
 * @file
 * Quickstart: write an XLOOPS assembly kernel, run the same binary
 * traditionally and specialized, and inspect the speedup.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "asm/assembler.h"
#include "isa/disasm.h"
#include "system/system.h"

using namespace xloops;

int
main()
{
    // y[i] = a*x[i] + y[i] over 256 elements, encoded as an
    // unordered-concurrent xloop with xi pointer induction.
    const char *src = R"(
  li r1, 0              # loop index
  li r2, 256            # loop bound
  li r3, 7              # a
  la r5, x
  la r6, y
body:
  lw r10, 0(r5)
  mul r10, r10, r3
  lw r11, 0(r6)
  add r10, r10, r11
  sw r10, 0(r6)
  addiu.xi r5, 4
  addiu.xi r6, 4
  xloop.uc r1, r2, body
  halt
  .data
x: .space 1024
y: .space 1024
)";

    const Program prog = assemble(src);

    std::printf("disassembly of the loop body:\n");
    for (Addr pc = prog.symbol("body"); pc <= prog.symbol("body") + 28;
         pc += 4)
        std::printf("  %08x: %s\n", pc,
                    disassemble(prog.fetch(pc), pc).c_str());

    auto runMode = [&](ExecMode mode) {
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        for (u32 i = 0; i < 256; i++) {
            sys.memory().writeWord(prog.symbol("x") + 4 * i, i);
            sys.memory().writeWord(prog.symbol("y") + 4 * i, 1000 + i);
        }
        const SysResult res = sys.run(prog, mode);
        // Verify: y[i] = 7*i + 1000 + i.
        for (u32 i = 0; i < 256; i++) {
            if (sys.memory().readWord(prog.symbol("y") + 4 * i) !=
                7 * i + 1000 + i) {
                std::printf("WRONG RESULT at %u\n", i);
                return Cycle{0};
            }
        }
        return res.cycles;
    };

    const Cycle trad = runMode(ExecMode::Traditional);
    const Cycle spec = runMode(ExecMode::Specialized);
    std::printf("\ntraditional execution: %llu cycles\n",
                static_cast<unsigned long long>(trad));
    std::printf("specialized execution: %llu cycles\n",
                static_cast<unsigned long long>(spec));
    std::printf("speedup on a 4-lane LPSU: %.2fx\n",
                static_cast<double>(trad) / static_cast<double>(spec));
    return 0;
}
