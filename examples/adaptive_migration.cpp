/**
 * @file
 * Adaptive execution (paper Section II-E): the same binary, the same
 * hardware — the APT profiles traditional and specialized execution
 * and migrates each xloop to whichever is faster.
 *
 * sha-or has a long inter-iteration register critical path, so the
 * 4-way OoO host wins and adaptive execution migrates back to the
 * GPP; viterbi-uc parallelizes cleanly, so it stays on the LPSU.
 */

#include <cstdio>

#include "kernels/kernel.h"

using namespace xloops;

namespace {

void
show(const std::string &name)
{
    const Kernel &k = kernelByName(name);
    const SysConfig base = configs::ooo4();
    const SysConfig xcfg = configs::ooo4X();

    const KernelRun gp = runKernel(k, base, ExecMode::Traditional, true);
    const KernelRun spec = runKernel(k, xcfg, ExecMode::Specialized);
    const KernelRun adapt = runKernel(k, xcfg, ExecMode::Adaptive);

    const double sS = static_cast<double>(gp.result.cycles) /
                      static_cast<double>(spec.result.cycles);
    const double sA = static_cast<double>(gp.result.cycles) /
                      static_cast<double>(adapt.result.cycles);
    std::printf("%-12s specialized %.2fx | adaptive %.2fx  ->  %s\n",
                name.c_str(), sS, sA,
                sA > sS ? "APT migrated the loop back to the GPP"
                        : "APT kept the loop on the LPSU");
}

} // namespace

int
main()
{
    std::printf("Adaptive execution on ooo/4+x (speedups vs the serial "
                "GP binary on ooo/4)\n\n");
    show("sha-or");
    show("stencil-om");
    show("viterbi-uc");
    show("rgb2cmyk-uc");
    std::printf("\nAdaptive execution turns worst-case specialization "
                "losses into modest wins\nwhile keeping most of the "
                "specialization upside — the paper's Figure 7.\n");
    return 0;
}
