/**
 * @file
 * Dynamic-bound worklists (xloop.uc.db): run the bfs-uc-db kernel —
 * the paper's Figure 1(e) idiom, where iterations reserve worklist
 * slots with an AMO and monotonically raise the loop bound — across
 * the three XLOOPS hosts and show how the hardware discovers the
 * dynamically generated parallelism.
 */

#include <cstdio>

#include "asm/assembler.h"
#include "kernels/kernel.h"

using namespace xloops;

int
main()
{
    const Kernel &k = kernelByName("bfs-uc-db");

    std::printf("bfs-uc-db: label-correcting BFS on a 64-node graph\n\n");
    for (const auto &cfg :
         {configs::ioX(), configs::ooo2X(), configs::ooo4X()}) {
        const KernelRun trad =
            runKernel(k, cfg, ExecMode::Traditional);
        const KernelRun spec =
            runKernel(k, cfg, ExecMode::Specialized);
        std::printf("%-9s traditional %8llu cycles | specialized %8llu "
                    "cycles | speedup %.2fx | %s\n",
                    cfg.name.c_str(),
                    static_cast<unsigned long long>(trad.result.cycles),
                    static_cast<unsigned long long>(spec.result.cycles),
                    static_cast<double>(trad.result.cycles) /
                        static_cast<double>(spec.result.cycles),
                    spec.passed ? "distances verified" : spec.error.c_str());
    }

    // Peek at the dynamic bound growth on one run.
    const Program prog = assemble(k.source);
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    k.setup(sys.memory(), prog);
    sys.run(prog, ExecMode::Specialized);
    std::printf("\nworklist grew to %u entries; LMU recorded %llu bound "
                "updates\n",
                sys.memory().readWord(prog.symbol("tail")),
                static_cast<unsigned long long>(
                    sys.lpsuModel().stats().get("bound_updates")));
    std::printf("distances from node 0: ");
    for (unsigned v = 0; v < 8; v++)
        std::printf("%u ", sys.memory().readWord(prog.symbol("dist") + 4 * v));
    std::printf("...\n");
    return 0;
}
