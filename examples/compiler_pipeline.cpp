/**
 * @file
 * The xcc compiler pipeline end-to-end: annotate a Floyd-Warshall
 * loop nest with pragmas (paper Figure 2), let dependence analysis
 * pick the xloop encodings, generate XLOOPS assembly (including the
 * xi instructions produced by loop strength reduction), and run the
 * binary both traditionally and specialized.
 */

#include <cstdio>

#include "asm/assembler.h"
#include "compiler/codegen.h"
#include "system/system.h"

using namespace xloops;

int
main()
{
    constexpr i32 n = 12;

    // #pragma xloops ordered   for (i ...)
    // #pragma xloops unordered for (j ...)
    //     path[i][j] = min(path[i][j], path[i][k] + path[k][j]);
    const ExprPtr pij = add(mul(var("i"), var("n")), var("j"));
    const ExprPtr pik = add(mul(var("i"), var("n")), var("k"));
    const ExprPtr pkj = add(mul(var("k"), var("n")), var("j"));

    Loop jL;
    jL.iv = "j";
    jL.lower = cst(0);
    jL.upper = var("n");
    jL.pragma = Pragma::Unordered;
    jL.hintSpecialize = false;
    jL.body.push_back(store("path", pij,
                            bin(BinOp::Min, ld("path", pij),
                                add(ld("path", pik), ld("path", pkj)))));
    Loop iL;
    iL.iv = "i";
    iL.lower = cst(0);
    iL.upper = var("n");
    iL.pragma = Pragma::Ordered;
    iL.body.push_back(nested(jL));
    Loop kL;
    kL.iv = "k";
    kL.lower = cst(0);
    kL.upper = var("n");
    kL.body.push_back(nested(iL));

    // Pattern selection (the paper's analysis passes).
    const LoopSelection selI = selectPattern(iL);
    const LoopSelection selJ = selectPattern(jL);
    std::printf("pattern selection:\n");
    std::printf("  i loop (ordered pragma)  -> xloop.%s  "
                "(carried memory dependence: %s)\n",
                patternName(selI.pattern),
                selI.carriedMemDep ? "yes" : "no");
    std::printf("  j loop (unordered pragma)-> xloop.%s\n\n",
                patternName(selJ.pattern));

    // Code generation.
    CodeGen cg;
    cg.declareArray("path", n * n);
    std::vector<Stmt> top;
    // Initialize path with a pseudo-random adjacency.
    Loop init;
    init.iv = "i";
    init.lower = cst(0);
    init.upper = cst(n * n);
    init.body.push_back(store(
        "path", var("i"),
        add(bin(BinOp::Rem, mul(var("i"), cst(37)), cst(100)), cst(1))));
    top.push_back(nested(init));
    top.push_back(assign("n", cst(n)));
    top.push_back(nested(kL));

    const std::string text = cg.compile(top);
    std::printf("generated assembly (first lines):\n");
    size_t pos = 0;
    for (int line = 0; line < 14 && pos != std::string::npos; line++) {
        const size_t next = text.find('\n', pos);
        std::printf("  %s\n", text.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    std::printf("  ...\n\n");

    const Program bin = assemble(text);
    auto cyclesOf = [&](ExecMode mode) {
        XloopsSystem sys(configs::ooo2X());
        sys.loadProgram(bin);
        return sys.run(bin, mode).cycles;
    };
    const Cycle trad = cyclesOf(ExecMode::Traditional);
    const Cycle spec = cyclesOf(ExecMode::Specialized);
    std::printf("compiled war kernel on ooo/2+x: traditional %llu "
                "cycles, specialized %llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(trad),
                static_cast<unsigned long long>(spec),
                static_cast<double>(trad) / static_cast<double>(spec));
    return 0;
}
