#!/bin/sh
# End-to-end smoke test of the xloopsd service stack, registered with
# ctest as service_smoke. Exercises the full client→daemon→supervisor
# path the unit tests cover only in-process:
#
#   1. daemon comes up and answers --ping
#   2. cold submit runs a job; warm resubmit is served from the result
#      cache and the two --stats-out files are byte-identical
#   3. a guaranteed-divergence job fails, its capsule downloads via
#      --capsule-out, and check_capsule.py validates it (when python3
#      is available)
#   4. SIGTERM drains gracefully: exit 0, cache index persisted
#
# usage: service_smoke.sh <xloopsd> <xloopsc> <check_capsule.py|->
set -u

XLOOPSD=$1
XLOOPSC=$2
CHECK_CAPSULE=$3

WORK=$(mktemp -d) || exit 1
SOCK="$WORK/xloopsd.sock"
DAEMON_PID=""

fail()
{
    echo "service_smoke: FAIL: $1" >&2
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
    exit 1
}

"$XLOOPSD" --socket "$SOCK" --workers 2 --artifact-dir "$WORK" \
    --cache-index "$WORK/cache.json" &
DAEMON_PID=$!

# Wait for the daemon to come up (ping retries, ~5s budget).
tries=0
until "$XLOOPSC" --socket "$SOCK" --ping >/dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -ge 50 ] && fail "daemon never answered ping"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
done
echo "service_smoke: ping ok"

# Cold submit, then warm resubmit of the identical spec: the second
# must be a cache hit with a byte-identical stats document.
"$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$WORK/cold.json" > "$WORK/cold.out" \
    || fail "cold submit exited $?"
warm_out=$("$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$WORK/warm.json") || fail "warm submit exited $?"
case "$warm_out" in
*cached*) ;;
*) fail "warm submit was not a cache hit: $warm_out" ;;
esac
cmp -s "$WORK/cold.json" "$WORK/warm.json" \
    || fail "cached stats are not byte-identical"
echo "service_smoke: warm hit byte-identical"

# A guaranteed divergence: lockstep with certain architectural
# corruption. Must fail (exit 2) and hand back a valid capsule.
"$XLOOPSC" --socket "$SOCK" -k kmeans-or -c io+x -m S --lockstep \
    --inject-seed 1 --inject-rate 0 --inject-arch-rate 1 \
    --capsule-out "$WORK/capsule.json" > "$WORK/diverge.out" 2>&1
code=$?
[ "$code" -eq 2 ] || fail "divergence job exited $code, want 2"
[ -s "$WORK/capsule.json" ] || fail "no capsule downloaded"
if [ "$CHECK_CAPSULE" != "-" ]; then
    python3 "$CHECK_CAPSULE" "$WORK/capsule.json" \
        || fail "capsule failed validation"
fi
echo "service_smoke: divergence capsuled"

# Graceful drain: SIGTERM must finish cleanly (exit 0) and persist
# the cache index.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
code=$?
DAEMON_PID=""
[ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM, want 0"
[ -s "$WORK/cache.json" ] || fail "cache index not persisted"
echo "service_smoke: drained cleanly, cache persisted"

rm -rf "$WORK"
echo "service_smoke: PASS"
