#!/bin/sh
# End-to-end smoke test of the xloopsd service stack, registered with
# ctest as service_smoke. Exercises the full client→daemon→supervisor
# path the unit tests cover only in-process:
#
#   1. daemon comes up and answers --ping
#   2. cold submit runs a job; warm resubmit is served from the result
#      cache and the two --stats-out files are byte-identical
#   3. the telemetry surface: `xloopsc health` is healthy (exit 0),
#      `xloopsc metrics` returns a valid xloops-metrics-1 snapshot
#      whose conservation invariant check_metrics.py confirms (when
#      python3 is available), and the Prometheus exposition carries
#      the job-accounting family
#   4. a guaranteed-divergence job fails, its capsule downloads via
#      --capsule-out, embeds the flight-recorder dump, and
#      check_capsule.py validates it (when python3 is available)
#   5. SIGTERM drains gracefully: exit 0, cache index persisted,
#      metrics log and flight dump written
#
# usage: service_smoke.sh <xloopsd> <xloopsc> <check_capsule.py|-> \
#            [check_metrics.py|-]
set -u

XLOOPSD=$1
XLOOPSC=$2
CHECK_CAPSULE=$3
CHECK_METRICS=${4:--}

WORK=$(mktemp -d) || exit 1
SOCK="$WORK/xloopsd.sock"
DAEMON_PID=""

fail()
{
    echo "service_smoke: FAIL: $1" >&2
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
    exit 1
}

"$XLOOPSD" --socket "$SOCK" --workers 2 --artifact-dir "$WORK" \
    --cache-index "$WORK/cache.json" \
    --metrics-log "$WORK/metrics.ndjson" --metrics-interval-ms 200 \
    --flight-dump "$WORK/flight.json" &
DAEMON_PID=$!

# Wait for the daemon to come up (ping retries, ~5s budget).
tries=0
until "$XLOOPSC" --socket "$SOCK" --ping >/dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -ge 50 ] && fail "daemon never answered ping"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
done
echo "service_smoke: ping ok"

# Cold submit, then warm resubmit of the identical spec: the second
# must be a cache hit with a byte-identical stats document.
"$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$WORK/cold.json" > "$WORK/cold.out" \
    || fail "cold submit exited $?"
warm_out=$("$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$WORK/warm.json") || fail "warm submit exited $?"
case "$warm_out" in
*cached*) ;;
*) fail "warm submit was not a cache hit: $warm_out" ;;
esac
cmp -s "$WORK/cold.json" "$WORK/warm.json" \
    || fail "cached stats are not byte-identical"
echo "service_smoke: warm hit byte-identical"

# The health surface: an idle daemon is healthy (exit 0).
health_out=$("$XLOOPSC" --socket "$SOCK" health) \
    || fail "health probe exited $?"
case "$health_out" in
healthy*) ;;
*) fail "health reported: $health_out" ;;
esac

# The metrics surface: a JSON snapshot that validates (including the
# jobs_admitted == completed + failed + shed + cancelled + in_flight
# conservation invariant), plus the Prometheus text exposition.
"$XLOOPSC" --socket "$SOCK" metrics --metrics-out "$WORK/metrics.json" \
    >/dev/null || fail "metrics scrape exited $?"
[ -s "$WORK/metrics.json" ] || fail "empty metrics snapshot"
if [ "$CHECK_METRICS" != "-" ]; then
    python3 "$CHECK_METRICS" --require-jobs "$WORK/metrics.json" \
        || fail "metrics snapshot failed validation"
fi
"$XLOOPSC" --socket "$SOCK" metrics --prom \
    | grep -q "xloops_jobs_admitted_total" \
    || fail "prom exposition lacks the job-accounting family"
echo "service_smoke: metrics and health surfaces ok"

# A guaranteed divergence: lockstep with certain architectural
# corruption. Must fail (exit 2) and hand back a valid capsule.
"$XLOOPSC" --socket "$SOCK" -k kmeans-or -c io+x -m S --lockstep \
    --inject-seed 1 --inject-rate 0 --inject-arch-rate 1 \
    --capsule-out "$WORK/capsule.json" > "$WORK/diverge.out" 2>&1
code=$?
[ "$code" -eq 2 ] || fail "divergence job exited $code, want 2"
[ -s "$WORK/capsule.json" ] || fail "no capsule downloaded"
grep -q '"flight"' "$WORK/capsule.json" \
    || fail "capsule does not embed the flight-recorder dump"
if [ "$CHECK_CAPSULE" != "-" ]; then
    python3 "$CHECK_CAPSULE" "$WORK/capsule.json" \
        || fail "capsule failed validation"
fi
echo "service_smoke: divergence capsuled (with flight dump)"

# Graceful drain: SIGTERM must finish cleanly (exit 0) and persist
# the cache index.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
code=$?
DAEMON_PID=""
[ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM, want 0"
[ -s "$WORK/cache.json" ] || fail "cache index not persisted"
[ -s "$WORK/flight.json" ] || fail "flight dump not written on drain"
grep -q '"xloops-flight-1"' "$WORK/flight.json" \
    || fail "flight dump has the wrong schema"
[ -s "$WORK/metrics.ndjson" ] || fail "metrics log not written"
if [ "$CHECK_METRICS" != "-" ]; then
    python3 "$CHECK_METRICS" "$WORK/metrics.ndjson" \
        || fail "metrics log failed validation"
fi
echo "service_smoke: drained cleanly, cache + telemetry persisted"

rm -rf "$WORK"
echo "service_smoke: PASS"
