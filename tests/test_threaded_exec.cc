// Exhaustive per-opcode differential tests: the threaded-dispatch
// executor (cpu/threaded.h) must be observationally identical to the
// legacy switch executor (cpu/functional.h) — same register file, same
// memory digest, same dynamic instruction counts and stat counters,
// same FatalError text on every trap path (bad fetch, undecodable
// word, instruction-limit valve). Every opcode in opcodes.h gets
// randomized operand/state cases drawn from a named RNG stream; a
// mismatch re-runs the case in lockstep and reports the first
// divergent instruction disassembled.

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.h"
#include "asm/program.h"
#include "common/log.h"
#include "common/rng.h"
#include "cpu/functional.h"
#include "cpu/threaded.h"
#include "isa/disasm.h"
#include "isa/op_meta.h"
#include "kernels/kernel.h"

namespace xloops {
namespace {

// The candidate instruction sits at this word of a HALT-filled text
// segment, so negative branch/xloop offsets stay in text while large
// random offsets still exercise the out-of-text trap paths.
constexpr size_t candidateWord = 32;
constexpr size_t textWords = 64;
constexpr Addr arenaBase = 0x200000;
constexpr unsigned arenaWords = 1024;
constexpr u64 caseValve = 256;  // shared maxInsts valve per case

/** One randomized differential case: program, registers, data. */
struct CaseSetup
{
    Program prog;
    std::array<u32, numArchRegs> regs{};
    std::vector<u32> arena;  // words at arenaBase
};

/** Everything observable about one executor's run of a case. */
struct Outcome
{
    bool threw = false;
    std::string error;
    u64 dynInsts = 0;
    bool halted = false;
    std::array<u32, numArchRegs> regs{};
    u64 memDigest = 0;
    std::string stats;

    bool
    operator==(const Outcome &o) const = default;
};

std::string
describe(const Outcome &o)
{
    std::ostringstream ss;
    ss << (o.threw ? "threw \"" + o.error + "\""
                   : strf("clean dynInsts=", o.dynInsts,
                          " halted=", o.halted));
    ss << " memDigest=0x" << std::hex << o.memDigest << std::dec;
    for (unsigned r = 0; r < numArchRegs; r++)
        if (o.regs[r])
            ss << " r" << r << "=0x" << std::hex << o.regs[r] << std::dec;
    if (!o.stats.empty())
        ss << " stats{" << o.stats << "}";
    return ss.str();
}

void
initMemory(MainMemory &mem, const CaseSetup &s)
{
    s.prog.loadInto(mem);
    for (unsigned i = 0; i < s.arena.size(); i++)
        mem.writeWord(arenaBase + 4 * i, s.arena[i]);
}

Outcome
runLegacy(const CaseSetup &s)
{
    MainMemory mem;
    initMemory(mem, s);
    FunctionalExecutor exec(mem);
    exec.regFile().regs = s.regs;
    Outcome o;
    try {
        const FuncResult r = exec.run(s.prog, caseValve);
        o.dynInsts = r.dynInsts;
        o.halted = r.halted;
    } catch (const FatalError &err) {
        o.threw = true;
        o.error = err.what();
    }
    o.regs = exec.regFile().regs;
    o.memDigest = mem.digest();
    o.stats = exec.stats().dump();
    return o;
}

Outcome
runThreaded(const CaseSetup &s)
{
    MainMemory mem;
    initMemory(mem, s);
    ThreadedExecutor exec(mem);
    exec.regFile().regs = s.regs;
    Outcome o;
    try {
        const FuncResult r = exec.run(s.prog, caseValve);
        o.dynInsts = r.dynInsts;
        o.halted = r.halted;
    } catch (const FatalError &err) {
        o.threw = true;
        o.error = err.what();
    }
    o.regs = exec.regFile().regs;
    o.memDigest = mem.digest();
    o.stats = exec.stats().dump();
    return o;
}

/**
 * Lockstep diagnosis of a failed case: single-step the legacy
 * semantics and the threaded executor side by side and name the first
 * instruction after which their architectural state differs,
 * disassembled.
 */
std::string
diagnose(const CaseSetup &s)
{
    MainMemory legacyMem, threadedMem;
    initMemory(legacyMem, s);
    initMemory(threadedMem, s);
    RegFile legacyRegs;
    legacyRegs.regs = s.regs;
    ThreadedExecutor exec(threadedMem);
    exec.regFile().regs = s.regs;
    ThreadedExecutor::Cursor cur;
    cur.pc = s.prog.entry;

    const DecodedProgram &dec = s.prog.decoded();
    Addr legacyPc = s.prog.entry;
    for (u64 n = 0; n < caseValve; n++) {
        std::string legacyTrap, threadedTrap;
        Instruction inst;
        bool legacyHalted = false;
        try {
            inst = dec.fetch(legacyPc);
            const StepResult st =
                ExecCore::step(inst, legacyPc, legacyRegs, legacyMem, n);
            legacyHalted = st.halted;
            if (!st.halted)
                legacyPc = st.nextPc;
        } catch (const FatalError &err) {
            legacyTrap = err.what();
        }
        try {
            exec.execute(s.prog, cur, 1);
        } catch (const FatalError &err) {
            threadedTrap = err.what();
        }
        const std::string at =
            strf("inst #", n, " @pc=0x", std::hex, legacyPc, std::dec,
                 ": ", disassemble(inst, legacyPc));
        if (legacyTrap != threadedTrap)
            return strf("first divergence at ", at, " — legacy trap \"",
                        legacyTrap, "\" vs threaded trap \"", threadedTrap,
                        "\"");
        if (!legacyTrap.empty())
            return "both trapped identically; divergence is in "
                   "post-trap state";
        if (legacyRegs.regs != exec.regFile().regs)
            return strf("first divergence at ", at, " — register file");
        if (legacyMem.digest() != threadedMem.digest())
            return strf("first divergence at ", at, " — memory digest");
        if (!cur.halted && legacyPc != cur.pc)
            return strf("first divergence at ", at, " — next pc legacy=0x",
                        std::hex, legacyPc, " threaded=0x", cur.pc);
        if (legacyHalted != cur.halted)
            return strf("first divergence at ", at, " — halt state");
        if (legacyHalted)
            break;
    }
    return "no per-instruction divergence found (stat or valve "
           "bookkeeping differs)";
}

Instruction
haltInst()
{
    Instruction h;
    h.op = Op::HALT;
    return h;
}

/** A valid random instance of @p op (field ranges per Format). */
Instruction
randomInst(Op op, Rng &rng)
{
    Instruction inst;
    inst.op = op;
    auto reg = [&] { return static_cast<RegId>(rng.nextBelow(32)); };
    // Half the control transfers stay inside the HALT-filled text,
    // half roam the whole immediate range to exercise fetch faults.
    auto wordOffset = [&](i32 lo, i32 hi, i32 wildLo, i32 wildHi) {
        return rng.nextBelow(2) ? rng.nextRange(lo, hi)
                                : rng.nextRange(wildLo, wildHi);
    };
    switch (opTraits(op).format) {
      case Format::R:
      case Format::A:
        inst.rd = reg();
        inst.rs1 = reg();
        inst.rs2 = reg();
        break;
      case Format::I:
        inst.rd = reg();
        inst.rs1 = reg();
        inst.imm = rng.nextRange(-8192, 8191);
        break;
      case Format::S:
        inst.rs2 = reg();
        inst.rs1 = reg();
        inst.imm = rng.nextRange(-8192, 8191);
        break;
      case Format::U:
      case Format::C:
        inst.rd = reg();
        inst.imm = static_cast<i32>(rng.nextBelow(1 << 19));
        break;
      case Format::B:
        inst.rs1 = reg();
        inst.rs2 = reg();
        inst.imm = wordOffset(-static_cast<i32>(candidateWord),
                              static_cast<i32>(textWords - candidateWord) -
                                  1,
                              -8192, 8191);
        break;
      case Format::J:
        inst.rd = reg();
        inst.imm = wordOffset(-static_cast<i32>(candidateWord),
                              static_cast<i32>(textWords - candidateWord) -
                                  1,
                              -262144, 262143);
        break;
      case Format::X:
        inst.rd = reg();
        inst.rs1 = reg();
        inst.hint = rng.nextBelow(2) != 0;
        inst.imm =
            wordOffset(-static_cast<i32>(candidateWord), -1, -4096, -1);
        break;
      case Format::XI:
        inst.rd = reg();
        if (op == Op::ADDIU_XI)
            inst.imm = rng.nextRange(-8192, 8191);
        else
            inst.rs2 = reg();
        break;
      case Format::N:
        break;
    }
    return inst;
}

/** Register values biased toward the interesting regions: small
 *  indices, arena pointers, sign boundaries, full-range garbage. */
u32
randomRegValue(Rng &rng)
{
    switch (rng.nextBelow(4)) {
      case 0: return rng.nextBelow(64);
      case 1: return arenaBase + 4 * rng.nextBelow(arenaWords);
      case 2: return static_cast<u32>(-rng.nextRange(0, 64));
      default: return static_cast<u32>(rng.next());
    }
}

CaseSetup
randomCase(Op op, Rng &rng)
{
    CaseSetup s;
    s.prog.text.assign(textWords, haltInst().encode());
    s.prog.text[candidateWord] = randomInst(op, rng).encode();
    s.prog.entry = s.prog.textBase + 4 * candidateWord;
    for (unsigned r = 1; r < numArchRegs; r++)
        s.regs[r] = randomRegValue(rng);
    s.arena.resize(arenaWords);
    for (u32 &w : s.arena)
        w = static_cast<u32>(rng.next());
    return s;
}

TEST(ThreadedExec, EveryOpcodeDifferential)
{
    constexpr unsigned casesPerOpcode = 200;
    RngPool pool(0xd1ff0001);
    for (unsigned i = 0; i < numOpcodes; i++) {
        const Op op = static_cast<Op>(i);
        const char *mnem = opTraits(op).mnemonic;
        SCOPED_TRACE(mnem);
        Rng &rng = pool.stream(std::string("diff.") + mnem);
        for (unsigned c = 0; c < casesPerOpcode; c++) {
            const CaseSetup s = randomCase(op, rng);
            const Outcome legacy = runLegacy(s);
            const Outcome threaded = runThreaded(s);
            if (legacy == threaded)
                continue;
            FAIL() << mnem << " case " << c << ":\n  legacy:   "
                   << describe(legacy) << "\n  threaded: "
                   << describe(threaded) << "\n  " << diagnose(s);
        }
    }
}

// An undecodable word must fault identically whether it is the entry
// instruction, reached by falling through a straight-line block, or
// reached by a taken branch — and the superblock builder must keep
// the fault lazy (the block before it executes fine).
TEST(ThreadedExec, UndecodableWordTrapParity)
{
    const u32 badWord = 0xff000000u;  // opcode 255: illegal

    struct Variant
    {
        const char *label;
        size_t badAt;      // word index of the illegal word
        size_t entryAt;    // word index execution starts from
    };
    const Variant variants[] = {
        {"entry is illegal", 4, 4},
        {"fall-through into illegal", 4, 2},
        {"branch into illegal", 10, 0},
    };
    for (const Variant &v : variants) {
        SCOPED_TRACE(v.label);
        CaseSetup s;
        s.prog.text.assign(textWords, haltInst().encode());
        // Words before the bad one are NOPs so execution flows on.
        Instruction nop;
        nop.op = Op::NOP;
        for (size_t w = 0; w < v.badAt; w++)
            s.prog.text[w] = nop.encode();
        if (v.label == std::string("branch into illegal")) {
            Instruction b;  // beq r0, r0, +10: always taken
            b.op = Op::BEQ;
            b.imm = static_cast<i32>(v.badAt);
            s.prog.text[0] = b.encode();
        }
        s.prog.text[v.badAt] = badWord;
        s.prog.entry = s.prog.textBase + 4 * v.entryAt;
        const Outcome legacy = runLegacy(s);
        const Outcome threaded = runThreaded(s);
        EXPECT_TRUE(legacy.threw);
        EXPECT_EQ(legacy, threaded)
            << "legacy:   " << describe(legacy)
            << "\nthreaded: " << describe(threaded);
    }
}

// The instruction-limit valve must trip after the same count with the
// same FatalError text — including the legacy quirk that maxInsts == 0
// still executes one instruction before tripping.
TEST(ThreadedExec, InstLimitValveMatches)
{
    // beq r0, r0, 0 → unconditional self-loop.
    Instruction self;
    self.op = Op::BEQ;
    self.imm = 0;
    Program prog;
    prog.text = {self.encode()};

    for (const u64 maxInsts : {u64{0}, u64{1}, u64{2}, u64{100}}) {
        SCOPED_TRACE(maxInsts);
        MainMemory lm, tm;
        prog.loadInto(lm);
        prog.loadInto(tm);
        FunctionalExecutor legacy(lm);
        ThreadedExecutor threaded(tm);
        std::string legacyErr, threadedErr;
        try {
            legacy.run(prog, maxInsts);
        } catch (const FatalError &err) {
            legacyErr = err.what();
        }
        try {
            threaded.run(prog, maxInsts);
        } catch (const FatalError &err) {
            threadedErr = err.what();
        }
        EXPECT_FALSE(legacyErr.empty());
        EXPECT_EQ(legacyErr, threadedErr);
        EXPECT_EQ(legacy.stats().dump(), threaded.stats().dump());
    }
}

// The constexpr metadata table must agree with the runtime operand
// queries (srcRegs/destReg) and classification helpers on every
// opcode: the threaded executor trusts the table, the rest of the
// system trusts the queries, and they must never drift.
TEST(ThreadedExec, OpMetaMatchesInstructionQueries)
{
    Rng rng(0x0f0e0d0c);
    for (unsigned i = 0; i < numOpcodes; i++) {
        const Op op = static_cast<Op>(i);
        SCOPED_TRACE(opTraits(op).mnemonic);
        const OpMeta &m = opMeta(op);

        // Nonzero register fields so destReg()'s r0 special case
        // cannot mask a classification difference.
        Instruction inst = randomInst(op, rng);
        inst.rd = inst.rd ? inst.rd : 1;
        inst.rs1 = inst.rs1 ? inst.rs1 : 2;
        inst.rs2 = inst.rs2 ? inst.rs2 : 3;

        EXPECT_EQ(m.writesRd, inst.destReg() != numArchRegs);

        RegId src[2] = {0, 0};
        const unsigned n = inst.srcRegs(src);
        bool readsRs1 = false, readsRs2 = false, readsRd = false;
        for (unsigned k = 0; k < n; k++) {
            readsRs1 |= src[k] == inst.rs1 && m.readsRs1;
            readsRs2 |= src[k] == inst.rs2 && m.readsRs2;
            readsRd |= src[k] == inst.rd && m.readsRd;
        }
        // Every flagged operand class must appear in srcRegs and
        // vice versa (operand identity, not just count).
        EXPECT_EQ(m.readsRs1, readsRs1);
        EXPECT_EQ(m.readsRs2, readsRs2);
        EXPECT_EQ(m.readsRd, readsRd);
        EXPECT_EQ(static_cast<unsigned>(m.readsRs1) + m.readsRs2 +
                      m.readsRd,
                  n);

        EXPECT_EQ(m.memRead, inst.isLoad() || inst.isAmo());
        EXPECT_EQ(m.memWrite, inst.isStore() || inst.isAmo());
        EXPECT_EQ(m.isAmo, inst.isAmo());
        EXPECT_EQ(m.endsBlock, inst.isControl() || op == Op::HALT);
        EXPECT_EQ(m.handler == OpHandler::Xloop ||
                      m.handler == OpHandler::XloopDe,
                  inst.isXloop());
        EXPECT_EQ(m.handler == OpHandler::AddiuXi ||
                      m.handler == OpHandler::AdduXi,
                  inst.isXi());
    }
}

// Chunked execute() with arbitrary budget boundaries must land on the
// same final state as one uninterrupted run — the property sampled
// simulation's fast-forward depends on.
TEST(ThreadedExec, CursorResumeMatchesSingleRun)
{
    const Kernel &k = kernelByName("rgb2cmyk-uc");
    const Program prog = assemble(k.source);

    MainMemory wholeMem;
    prog.loadInto(wholeMem);
    k.setup(wholeMem, prog);
    ThreadedExecutor whole(wholeMem);
    const FuncResult ref = whole.run(prog);

    MainMemory chunkMem;
    prog.loadInto(chunkMem);
    k.setup(chunkMem, prog);
    ThreadedExecutor chunked(chunkMem);
    ThreadedExecutor::Cursor cur;
    cur.pc = prog.entry;
    Rng rng(0xc0ffee);
    while (!cur.halted)
        chunked.execute(prog, cur, 1 + rng.nextBelow(997));
    chunked.stats().set("dyn_insts", cur.dynInsts);

    EXPECT_EQ(cur.dynInsts, ref.dynInsts);
    EXPECT_EQ(whole.regFile().regs, chunked.regFile().regs);
    EXPECT_EQ(wholeMem.digest(), chunkMem.digest());
    EXPECT_EQ(whole.stats().dump(), chunked.stats().dump());
}

// Superblock cache lifecycle: populated lazily, keyed to the program
// identity (a different program rebinds and drops every block), and
// emptied by invalidate().
TEST(ThreadedExec, SuperblockCacheBindsAndInvalidates)
{
    const Program progA = assemble(kernelByName("rgb2cmyk-uc").source);
    const Program progB = assemble(kernelByName("kmeans-or").source);

    MainMemory mem;
    ThreadedExecutor exec(mem);

    progA.loadInto(mem);
    kernelByName("rgb2cmyk-uc").setup(mem, progA);
    exec.run(progA);
    const u64 genA = exec.cacheGeneration();
    EXPECT_GT(exec.cachedBlocks(), 0u);
    EXPECT_EQ(exec.cacheCapacity(), progA.numInsts());

    // Same program again: no rebind, cache kept.
    ThreadedExecutor::Cursor cur;
    cur.pc = progA.entry;
    exec.execute(progA, cur, 10);
    EXPECT_EQ(exec.cacheGeneration(), genA);

    // Different program: rebind drops all of A's blocks.
    progB.loadInto(mem);
    kernelByName("kmeans-or").setup(mem, progB);
    exec.run(progB);
    EXPECT_GT(exec.cacheGeneration(), genA);
    EXPECT_EQ(exec.cacheCapacity(), progB.numInsts());

    exec.invalidate();
    EXPECT_EQ(exec.cachedBlocks(), 0u);
    EXPECT_EQ(exec.cacheCapacity(), 0u);
}

// Thread-safety contract of the superblock cache: executors are
// per-thread objects, but they share one immutable DecodedProgram.
// Run the same kernel concurrently on independent executors (TSan
// covers this test in CI) and require identical results.
TEST(ThreadedExec, ConcurrentExecutorsShareDecodedProgram)
{
    const Kernel &k = kernelByName("dynprog-om");
    const Program prog = assemble(k.source);
    (void)prog.decoded();  // pre-built, shared read-only by all threads

    constexpr unsigned nThreads = 8;
    std::vector<u64> digests(nThreads);
    std::vector<u64> insts(nThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nThreads; t++) {
        threads.emplace_back([&, t] {
            MainMemory mem;
            prog.loadInto(mem);
            k.setup(mem, prog);
            ThreadedExecutor exec(mem);
            insts[t] = exec.run(prog).dynInsts;
            digests[t] = mem.digest();
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (unsigned t = 1; t < nThreads; t++) {
        EXPECT_EQ(digests[t], digests[0]);
        EXPECT_EQ(insts[t], insts[0]);
    }
}

} // namespace
} // namespace xloops
