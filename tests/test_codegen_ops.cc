// Operator torture for the xcc back end: every BinOp is compiled
// inside an xloop over a grid of left/right operand pairs and the
// results are compared against the C++ reference semantics, under
// both traditional and specialized execution.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "compiler/codegen.h"
#include "system/system.h"

namespace xloops {
namespace {

i32
reference(BinOp op, i32 a, i32 b)
{
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return static_cast<i32>(
          static_cast<u32>(a) * static_cast<u32>(b));
      case BinOp::Div: return b == 0 ? -1 : a / b;
      case BinOp::Rem: return b == 0 ? a : a % b;
      case BinOp::And: return a & b;
      case BinOp::Or: return a | b;
      case BinOp::Xor: return a ^ b;
      case BinOp::Shl: return static_cast<i32>(
          static_cast<u32>(a) << (static_cast<u32>(b) & 31));
      case BinOp::Shr: return static_cast<i32>(
          static_cast<u32>(a) >> (static_cast<u32>(b) & 31));
      case BinOp::Lt: return a < b;
      case BinOp::Le: return a <= b;
      case BinOp::Gt: return a > b;
      case BinOp::Ge: return a >= b;
      case BinOp::Eq: return a == b;
      case BinOp::Ne: return a != b;
      case BinOp::Min: return a < b ? a : b;
      case BinOp::Max: return a > b ? a : b;
    }
    return 0;
}

const std::vector<std::pair<i32, i32>> &
operandGrid()
{
    static const std::vector<std::pair<i32, i32>> grid = [] {
        std::vector<std::pair<i32, i32>> g;
        const i32 interesting[] = {0, 1, -1, 2, 7, -8, 127, 4096, -4096};
        for (const i32 a : interesting)
            for (const i32 b : interesting)
                g.emplace_back(a, b);
        return g;
    }();
    return grid;
}

class CodegenOps : public ::testing::TestWithParam<BinOp>
{
};

TEST_P(CodegenOps, MatchesReferenceSemantics)
{
    const BinOp op = GetParam();
    const auto &grid = operandGrid();
    const auto n = static_cast<i32>(grid.size());

    CodeGen cg;
    cg.declareArray("lhs", grid.size());
    cg.declareArray("rhs", grid.size());
    cg.declareArray("res", grid.size());

    std::vector<Stmt> prog;
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = cst(n);
    loop.pragma = Pragma::Unordered;
    loop.body.push_back(store(
        "res", var("i"),
        bin(op, ld("lhs", var("i")), ld("rhs", var("i")))));
    prog.push_back(nested(loop));

    const Program bin2 = cg.compileToProgram(prog);

    for (const ExecMode mode :
         {ExecMode::Traditional, ExecMode::Specialized}) {
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(bin2);
        for (size_t i = 0; i < grid.size(); i++) {
            sys.memory().writeWord(bin2.symbol("lhs") + 4 * i,
                                   static_cast<u32>(grid[i].first));
            sys.memory().writeWord(bin2.symbol("rhs") + 4 * i,
                                   static_cast<u32>(grid[i].second));
        }
        sys.run(bin2, mode);
        for (size_t i = 0; i < grid.size(); i++) {
            const i32 got = static_cast<i32>(
                sys.memory().readWord(bin2.symbol("res") + 4 * i));
            EXPECT_EQ(got, reference(op, grid[i].first, grid[i].second))
                << "op " << static_cast<int>(op) << " operands ("
                << grid[i].first << ", " << grid[i].second << ") mode "
                << execModeName(mode);
        }
    }
}

std::string
binOpName(const ::testing::TestParamInfo<BinOp> &info)
{
    static const char *names[] = {"Add", "Sub", "Mul", "Div", "Rem",
                                  "And", "Or",  "Xor", "Shl", "Shr",
                                  "Lt",  "Le",  "Gt",  "Ge",  "Eq",
                                  "Ne",  "Min", "Max"};
    return names[static_cast<int>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, CodegenOps,
    ::testing::Values(BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                      BinOp::Rem, BinOp::And, BinOp::Or, BinOp::Xor,
                      BinOp::Shl, BinOp::Shr, BinOp::Lt, BinOp::Le,
                      BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne,
                      BinOp::Min, BinOp::Max),
    binOpName);

} // namespace
} // namespace xloops
