// Service-layer unit tests: bounded-queue admission control, the
// content-addressed result cache (byte-identity and persistence),
// the retry taxonomy and deterministic backoff (satellite of the
// service PR: bounded retries, monotone backoff, divergence never
// retried but always capsuled), the wire-protocol codecs, and the
// supervisor driven directly (no socket).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/flight.h"
#include "common/loop_profile.h"
#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sim_error.h"
#include "kernels/kernel.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "service/retry.h"
#include "service/supervisor.h"
#include "system/config.h"

namespace xloops {
namespace {

// ---------------------------------------------------------------- queue

TEST(BoundedJobQueue, ShedsBeyondTheBound)
{
    BoundedJobQueue q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "third push must shed";
    EXPECT_EQ(q.depth(), 2u);

    u64 id = 0;
    EXPECT_TRUE(q.pop(id));
    EXPECT_EQ(id, 1u);  // FIFO
    EXPECT_TRUE(q.tryPush(3)) << "a pop frees a slot";
}

TEST(BoundedJobQueue, CloseRefusesPushesAndDrainsPoppers)
{
    BoundedJobQueue q(4);
    EXPECT_TRUE(q.tryPush(1));
    q.close();
    EXPECT_TRUE(q.isClosed());
    EXPECT_FALSE(q.tryPush(2)) << "closed queue refuses pushes";

    u64 id = 0;
    EXPECT_TRUE(q.pop(id)) << "backlog still drains after close";
    EXPECT_EQ(id, 1u);
    EXPECT_FALSE(q.pop(id)) << "closed and empty: poppers exit";
}

TEST(BoundedJobQueue, RemoveUnqueuesACancelledJob)
{
    BoundedJobQueue q(4);
    q.tryPush(1);
    q.tryPush(2);
    q.tryPush(3);
    EXPECT_TRUE(q.remove(2));
    EXPECT_FALSE(q.remove(2)) << "already removed";
    u64 id = 0;
    q.pop(id);
    EXPECT_EQ(id, 1u);
    q.pop(id);
    EXPECT_EQ(id, 3u);
}

// ---------------------------------------------------------------- cache

JobSpec
specimenSpec()
{
    JobSpec s;
    s.kernel = "rgb2cmyk-uc";
    s.config = "io+x";
    s.mode = "S";
    return s;
}

TEST(ResultCache, HitIsByteIdentical)
{
    ResultCache cache(8);
    const u64 key = resultCacheKey(0x1234, specimenSpec());
    std::string out;
    EXPECT_FALSE(cache.lookup(key, out));
    EXPECT_EQ(cache.misses(), 1u);

    const std::string doc = "{\n  \"cycles\": 42\n}\n";
    cache.insert(key, doc);
    ASSERT_TRUE(cache.lookup(key, out));
    EXPECT_EQ(out, doc) << "hits are served verbatim";
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(ResultCache, KeyCoversEveryResultAffectingKnob)
{
    const JobSpec base = specimenSpec();
    const u64 k0 = resultCacheKey(1, base);
    EXPECT_EQ(k0, resultCacheKey(1, base)) << "key is stable";
    EXPECT_NE(k0, resultCacheKey(2, base)) << "program image";

    JobSpec s = base;
    s.injectSeed = 7;
    EXPECT_NE(k0, resultCacheKey(1, s)) << "fault seed";
    s = base;
    s.injectSeed = 7;
    s.injectRate = 0.05;
    const u64 kRate = resultCacheKey(1, s);
    s.injectRate = 0.05000000000000001;  // differs only in low bits
    EXPECT_NE(kRate, resultCacheKey(1, s)) << "rate is bit-exact";
    s = base;
    s.mode = "T";
    EXPECT_NE(k0, resultCacheKey(1, s)) << "mode";
    s = base;
    s.maxInsts = 1000;
    EXPECT_NE(k0, resultCacheKey(1, s)) << "instruction valve";
    s = base;
    s.lockstep = true;
    EXPECT_NE(k0, resultCacheKey(1, s)) << "lockstep";

    // The deadline is a service quota, NOT part of the simulated
    // machine: two jobs differing only in deadline share a result.
    s = base;
    s.deadlineMs = 12345;
    EXPECT_EQ(k0, resultCacheKey(1, s));
}

TEST(ResultCache, IndexRoundTripsThroughDisk)
{
    const std::string path =
        testing::TempDir() + "/xloops_cache_index.json";
    const std::string doc = "{\"cycles\": 7,\n \"note\": \"x\\\"y\"}\n";
    const u64 key = resultCacheKey(99, specimenSpec());
    {
        ResultCache cache(8);
        cache.insert(key, doc);
        cache.saveIndex(path);
    }
    ResultCache restored(8);
    EXPECT_EQ(restored.loadIndex(path), 1u);
    std::string out;
    ASSERT_TRUE(restored.lookup(key, out));
    EXPECT_EQ(out, doc) << "byte-identical across daemon restarts";

    ResultCache cold(8);
    EXPECT_EQ(cold.loadIndex(testing::TempDir() + "/nonexistent.json"),
              0u)
        << "a missing index is a cold start, not an error";
}

TEST(ResultCache, FifoEvictionBoundsTheCache)
{
    ResultCache cache(2);
    cache.insert(1, "one");
    cache.insert(2, "two");
    cache.insert(3, "three");
    EXPECT_EQ(cache.size(), 2u);
    std::string out;
    EXPECT_FALSE(cache.lookup(1, out)) << "oldest entry evicted";
    EXPECT_TRUE(cache.lookup(2, out));
    EXPECT_TRUE(cache.lookup(3, out));
}

// ---------------------------------------------------------------- retry

TEST(Retry, TaxonomyNeverRetriesDivergence)
{
    // Retryable = the *schedule* wedged; a fresh attempt can win.
    EXPECT_EQ(classifySimError(SimErrorKind::Watchdog),
              FailureClass::Retryable);
    EXPECT_EQ(classifySimError(SimErrorKind::CycleLimit),
              FailureClass::Retryable);
    EXPECT_EQ(classifySimError(SimErrorKind::StructuralHang),
              FailureClass::Retryable);
    EXPECT_EQ(classifySimError(SimErrorKind::Deadline),
              FailureClass::Retryable);

    // Fatal = deterministic or explicit; a retry reproduces the
    // failure (or destroys divergence evidence).
    EXPECT_EQ(classifySimError(SimErrorKind::Divergence),
              FailureClass::Fatal);
    EXPECT_EQ(classifySimError(SimErrorKind::InstLimit),
              FailureClass::Fatal);
    EXPECT_EQ(classifySimError(SimErrorKind::Interrupted),
              FailureClass::Fatal);
    EXPECT_EQ(classifySimError(SimErrorKind::Cancelled),
              FailureClass::Fatal);
}

TEST(Retry, BackoffIsMonotoneAndBounded)
{
    RetryPolicy policy;
    policy.baseBackoffMs = 100;
    policy.maxBackoffMs = 5'000;
    policy.jitterFrac = 0.0;  // isolate the exponential shape

    RngPool pool(42);
    Rng &jitter = retryJitterStream(pool);
    u64 prev = 0;
    for (unsigned i = 0; i < 12; i++) {
        const u64 wait = backoffMs(policy, i, jitter);
        EXPECT_GE(wait, prev) << "retry " << i;
        EXPECT_LE(wait, policy.maxBackoffMs) << "retry " << i;
        prev = wait;
    }
    EXPECT_EQ(prev, policy.maxBackoffMs) << "growth saturates the cap";
}

TEST(Retry, JitterIsDeterministicFromTheNamedStream)
{
    RetryPolicy policy;
    policy.jitterFrac = 0.25;

    // Same root seed => identical wait sequence, run to run.
    RngPool a(7), b(7);
    for (unsigned i = 0; i < 6; i++) {
        const u64 wa = backoffMs(policy, i, retryJitterStream(a));
        const u64 wb = backoffMs(policy, i, retryJitterStream(b));
        EXPECT_EQ(wa, wb) << "retry " << i;
        // Jitter stays within [1-f, 1+f] of the capped exponential.
        u64 ideal = policy.baseBackoffMs;
        for (unsigned j = 0; j < i; j++)
            ideal = std::min(ideal * 2, policy.maxBackoffMs);
        EXPECT_GE(wa, static_cast<u64>(ideal * 0.74));
        EXPECT_LE(wa, static_cast<u64>(ideal * 1.26));
    }

    // The stream advances identically whatever jitterFrac is, so
    // flipping jitter off in a config cannot shift any *other*
    // consumer of the pool.
    RngPool withJitter(9), noJitter(9);
    RetryPolicy flat = policy;
    flat.jitterFrac = 0.0;
    for (unsigned i = 0; i < 4; i++) {
        backoffMs(policy, i, retryJitterStream(withJitter));
        backoffMs(flat, i, retryJitterStream(noJitter));
    }
    EXPECT_EQ(retryJitterStream(withJitter).rawState(),
              retryJitterStream(noJitter).rawState());
}

// ---------------------------------------------------------------- job

TEST(JobSpec, ValidateRejectsBadSpecsUpFront)
{
    std::string why;
    JobSpec s = specimenSpec();
    EXPECT_TRUE(s.validate(why)) << why;

    s.kernel = "no-such-kernel";
    EXPECT_FALSE(s.validate(why));

    s = specimenSpec();
    s.mode = "Z";
    EXPECT_FALSE(s.validate(why));

    s = specimenSpec();
    s.mode = "S";
    s.config = "io";  // no LPSU
    EXPECT_FALSE(s.validate(why));

    s = specimenSpec();
    s.gpBinary = true;  // GP binary only runs in mode T
    EXPECT_FALSE(s.validate(why));

    s = specimenSpec();
    s.injectArchRate = 1.0;  // corruption needs a seed
    EXPECT_FALSE(s.validate(why));

    s = specimenSpec();
    s.maxInsts = 0;
    EXPECT_FALSE(s.validate(why));
}

TEST(JobSpec, JsonRoundTripIsExact)
{
    JobSpec s = specimenSpec();
    s.maxInsts = 123456;
    s.deadlineMs = 2500;
    s.injectSeed = 77;
    s.injectRate = 0.05;
    s.injectArchRate = 1e-9;
    s.haveWatchdog = true;
    s.watchdogCycles = 4096;
    s.lockstep = true;
    s.maxRetries = 1;

    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    s.toJson(w);
    w.endObject();
    const JobSpec back = jobSpecFromJson(jsonParse(os.str()));

    EXPECT_EQ(back.kernel, s.kernel);
    EXPECT_EQ(back.config, s.config);
    EXPECT_EQ(back.mode, s.mode);
    EXPECT_EQ(back.maxInsts, s.maxInsts);
    EXPECT_EQ(back.deadlineMs, s.deadlineMs);
    EXPECT_EQ(back.injectSeed, s.injectSeed);
    EXPECT_EQ(back.injectRate, s.injectRate) << "bit-exact";
    EXPECT_EQ(back.injectArchRate, s.injectArchRate) << "bit-exact";
    EXPECT_EQ(back.haveWatchdog, s.haveWatchdog);
    EXPECT_EQ(back.watchdogCycles, s.watchdogCycles);
    EXPECT_EQ(back.lockstep, s.lockstep);
    EXPECT_EQ(back.maxRetries, s.maxRetries);
}

// ------------------------------------------------------------- protocol

TEST(Protocol, RequestRoundTrip)
{
    Request req;
    req.op = "submit";
    req.job = specimenSpec();
    req.job.injectSeed = 5;
    req.job.injectRate = 0.02;
    const std::string line = encodeRequest(req);
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "requests are single-line";

    const Request back = parseRequest(line);
    EXPECT_EQ(back.op, "submit");
    EXPECT_EQ(back.job.kernel, req.job.kernel);
    EXPECT_EQ(back.job.injectRate, req.job.injectRate);

    EXPECT_THROW(parseRequest("{\"schema\":\"bogus\"}"), FatalError);
    EXPECT_THROW(parseRequest(
                     "{\"schema\":\"xloops-job-1\",\"op\":\"zap\"}"),
                 FatalError);
}

TEST(Protocol, OutcomeEncodingIsSingleLineAndComplete)
{
    JobOutcome o;
    o.jobId = 9;
    o.status = JobStatus::Failed;
    o.attempts = 3;
    o.error = "line one\nline two";  // embedded newline must escape
    o.errorKind = "watchdog";
    o.capsulePath = "/tmp/job-9.capsule.json";
    o.statsJson = "{\n  \"cycles\": 1\n}\n";

    const std::string line = encodeOutcome(o);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const JsonValue v = jsonParse(line);
    EXPECT_EQ(v.at("schema").asString(), "xloops-result-1");
    EXPECT_EQ(v.at("status").asString(), "failed");
    EXPECT_EQ(v.at("attempts").asU64(), 3u);
    EXPECT_EQ(v.at("error").asString(), o.error);
    EXPECT_EQ(v.at("stats").asString(), o.statsJson)
        << "the stats document survives byte-for-byte";
}

TEST(Protocol, OutcomeCarriesSpanTimings)
{
    JobOutcome o;
    o.jobId = 4;
    o.status = JobStatus::Done;
    o.attempts = 2;
    o.cached = false;
    o.queueWaitUs = 120;
    o.cacheLookupUs = 3;
    o.simUs = 4500;

    const JsonValue v = jsonParse(encodeOutcome(o));
    EXPECT_EQ(v.at("queue_wait_us").asU64(), 120u);
    EXPECT_EQ(v.at("cache_lookup_us").asU64(), 3u);
    EXPECT_EQ(v.at("sim_us").asU64(), 4500u);
    EXPECT_EQ(v.at("attempts").asU64(), 2u);
    EXPECT_FALSE(v.at("cached").asBool());
}

TEST(Protocol, MetricsAndHealthRequestsParse)
{
    EXPECT_EQ(parseRequest("{\"schema\":\"xloops-job-1\","
                           "\"op\":\"metrics\"}")
                  .op,
              "metrics");
    EXPECT_EQ(parseRequest("{\"schema\":\"xloops-job-1\","
                           "\"op\":\"health\"}")
                  .op,
              "health");
}

TEST(Protocol, MetricsResponseRoundTripsBothExpositions)
{
    // The metrics payloads embed JSON-in-JSON and multi-line
    // Prometheus text; both must survive the single-line framing.
    const std::string metricsJson =
        "{\"schema\":\"xloops-metrics-1\",\"counters\":{}}";
    const std::string prom =
        "# TYPE xloops_x_total counter\nxloops_x_total 1\n";
    const std::string line = encodeMetrics(metricsJson, prom);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const JsonValue v = jsonParse(line);
    EXPECT_EQ(v.at("status").asString(), "ok");
    EXPECT_EQ(v.at("metrics").asString(), metricsJson);
    EXPECT_EQ(v.at("prom").asString(), prom);
}

TEST(Protocol, HealthResponseCarriesEveryField)
{
    HealthInfo h;
    h.uptimeUs = 123456;
    h.queued = 2;
    h.inFlight = 5;
    h.running = 3;
    h.cacheEntries = 17;
    h.degraded = true;
    h.draining = false;

    const JsonValue v = jsonParse(encodeHealth(h));
    EXPECT_EQ(v.at("status").asString(), "ok");
    EXPECT_EQ(v.at("uptime_us").asU64(), 123456u);
    EXPECT_EQ(v.at("queued").asU64(), 2u);
    EXPECT_EQ(v.at("in_flight").asU64(), 5u);
    EXPECT_EQ(v.at("running").asU64(), 3u);
    EXPECT_EQ(v.at("cache_entries").asU64(), 17u);
    EXPECT_TRUE(v.at("degraded").asBool());
    EXPECT_FALSE(v.at("draining").asBool());
}

// ----------------------------------------------------------- supervisor

SupervisorConfig
testConfig(const std::string &tag)
{
    SupervisorConfig cfg;
    cfg.workers = 1;
    cfg.retry.baseBackoffMs = 1;  // keep retry tests fast
    cfg.retry.maxBackoffMs = 2;
    cfg.artifactDir = testing::TempDir() + "/xloops_sup_" + tag;
    // TempDir persists across runs, and the journal opens O_APPEND —
    // a stale journal.jnl (or checkpoint) from a previous invocation
    // would replay as a bogus prior generation. Start hermetic.
    (void)std::system(("rm -rf " + cfg.artifactDir +
                       " && mkdir -p " + cfg.artifactDir).c_str());
    return cfg;
}

TEST(Supervisor, RunsAJobAndServesTheSecondFromCache)
{
    Supervisor sup(testConfig("cache"));
    const Admission a1 = sup.submit(specimenSpec());
    ASSERT_TRUE(a1.accepted) << a1.reason;
    const JobOutcome o1 = sup.wait(a1.jobId);
    EXPECT_EQ(o1.status, JobStatus::Done);
    EXPECT_EQ(o1.attempts, 1u);
    EXPECT_FALSE(o1.cached);
    EXPECT_FALSE(o1.statsJson.empty());

    const Admission a2 = sup.submit(specimenSpec());
    ASSERT_TRUE(a2.accepted);
    const JobOutcome o2 = sup.wait(a2.jobId);
    EXPECT_EQ(o2.status, JobStatus::Done);
    EXPECT_TRUE(o2.cached);
    EXPECT_EQ(o2.statsJson, o1.statsJson)
        << "cache hit is byte-identical to the cold run";
    EXPECT_EQ(sup.cache().hits(), 1u);
}

TEST(Supervisor, DivergenceIsNeverRetriedButAlwaysCapsuled)
{
    Supervisor sup(testConfig("div"));
    JobSpec spec = specimenSpec();
    spec.lockstep = true;
    spec.injectSeed = 1;
    spec.injectRate = 0.0;
    spec.injectArchRate = 1.0;  // certain architectural corruption
    spec.maxRetries = 3;        // must be ignored: divergence is fatal

    const Admission adm = sup.submit(spec);
    ASSERT_TRUE(adm.accepted) << adm.reason;
    const JobOutcome o = sup.wait(adm.jobId);
    EXPECT_EQ(o.status, JobStatus::Failed);
    EXPECT_EQ(o.attempts, 1u) << "divergence must not retry";
    EXPECT_EQ(o.errorKind, "divergence");
    EXPECT_FALSE(o.capsulePath.empty());

    const std::string capsule = sup.capsuleText(adm.jobId);
    ASSERT_FALSE(capsule.empty());
    const JsonValue v = jsonParse(capsule);
    EXPECT_EQ(v.at("schema").asString(), "xloops-capsule-1");
}

TEST(Supervisor, RetryableFailureIsBoundedAndThenCapsuled)
{
    SupervisorConfig cfg = testConfig("retry");
    cfg.retry.maxRetries = 2;
    Supervisor sup(cfg);

    JobSpec spec = specimenSpec();
    spec.haveWatchdog = true;
    spec.watchdogCycles = 1;  // wedges instantly, every attempt

    const Admission adm = sup.submit(spec);
    ASSERT_TRUE(adm.accepted) << adm.reason;
    const JobOutcome o = sup.wait(adm.jobId);
    EXPECT_EQ(o.status, JobStatus::Failed);
    EXPECT_EQ(o.attempts, 3u) << "1 try + maxRetries, no more";
    EXPECT_EQ(o.errorKind, "watchdog");
    EXPECT_FALSE(o.capsulePath.empty())
        << "exhausted retries still leave a capsule";
    EXPECT_GE(sup.stats().retries, 2u);
}

TEST(Supervisor, BoundedQueueShedsDeterministically)
{
    SupervisorConfig cfg = testConfig("shed");
    cfg.queueDepth = 1;
    cfg.startPaused = true;  // jobs queue but cannot start
    Supervisor sup(cfg);

    const Admission a1 = sup.submit(specimenSpec());
    EXPECT_TRUE(a1.accepted);
    const Admission a2 = sup.submit(specimenSpec());
    EXPECT_FALSE(a2.accepted);
    EXPECT_EQ(a2.reason, "overloaded");
    EXPECT_EQ(sup.status(a2.jobId).status, JobStatus::Shed);
    EXPECT_EQ(sup.stats().shed, 1u);

    // Draining cancels the job still queued behind the pause gate.
    sup.drain();
    EXPECT_EQ(sup.status(a1.jobId).status, JobStatus::Cancelled);
    EXPECT_FALSE(sup.submit(specimenSpec()).accepted)
        << "a draining supervisor refuses new work";
}

TEST(Supervisor, CancelUnqueuesAJobBeforeItRuns)
{
    SupervisorConfig cfg = testConfig("cancel");
    cfg.startPaused = true;
    Supervisor sup(cfg);

    const Admission adm = sup.submit(specimenSpec());
    ASSERT_TRUE(adm.accepted);
    EXPECT_TRUE(sup.cancel(adm.jobId));
    const JobOutcome o = sup.wait(adm.jobId);
    EXPECT_EQ(o.status, JobStatus::Cancelled);
    EXPECT_EQ(o.attempts, 0u) << "never ran";
    EXPECT_FALSE(sup.cancel(adm.jobId)) << "already terminal";

    sup.resume();
    sup.drain();
}

TEST(Supervisor, OutcomeRecordsSpanTimingsAndFlightEvents)
{
    Supervisor sup(testConfig("spans"));
    const Admission a1 = sup.submit(specimenSpec());
    ASSERT_TRUE(a1.accepted) << a1.reason;
    const JobOutcome o1 = sup.wait(a1.jobId);
    ASSERT_EQ(o1.status, JobStatus::Done);
    EXPECT_GT(o1.simUs, 0u) << "a cold run spent time simulating";

    // The warm hit skips simulation entirely: sim_us stays zero.
    const Admission a2 = sup.submit(specimenSpec());
    ASSERT_TRUE(a2.accepted);
    const JobOutcome o2 = sup.wait(a2.jobId);
    ASSERT_TRUE(o2.cached);
    EXPECT_EQ(o2.simUs, 0u) << "cache hits never simulate";

    // The flight recorder saw the whole lifecycle, in order: job 1
    // admitted, started, finished; job 2 admitted, started,
    // cache-hit, finished.
    std::vector<FlightKind> kinds;
    for (const FlightEvent &ev : sup.flight().events())
        kinds.push_back(ev.kind);
    const std::vector<FlightKind> want = {
        FlightKind::JobAdmitted, FlightKind::JobStarted,
        FlightKind::JobFinished, FlightKind::JobAdmitted,
        FlightKind::JobStarted,  FlightKind::JobCacheHit,
        FlightKind::JobFinished,
    };
    EXPECT_EQ(kinds, want);
}

TEST(Supervisor, PublishMetricsUpholdsConservation)
{
    SupervisorConfig cfg = testConfig("conserve");
    cfg.queueDepth = 1;
    cfg.startPaused = true;
    Supervisor sup(cfg);

    // One admitted job held behind the pause gate, one shed.
    const Admission a1 = sup.submit(specimenSpec());
    ASSERT_TRUE(a1.accepted);
    const Admission a2 = sup.submit(specimenSpec());
    ASSERT_FALSE(a2.accepted);
    EXPECT_EQ(a2.reason, "overloaded");

    // Mid-flight scrape: the queued job counts as in-flight.
    sup.publishMetrics();
    MetricsSnapshot s = metricsRegistry().snapshot();
    const auto invariantHolds = [&s] {
        return s.counters.at("xloops_jobs_admitted_total") ==
               s.counters.at("xloops_jobs_completed_total") +
                   s.counters.at("xloops_jobs_failed_total") +
                   s.counters.at("xloops_jobs_shed_total") +
                   s.counters.at("xloops_jobs_cancelled_total") +
                   s.gauges.at("xloops_jobs_in_flight");
    };
    EXPECT_EQ(s.counters.at("xloops_jobs_admitted_total"), 2u);
    EXPECT_EQ(s.counters.at("xloops_jobs_shed_total"), 1u);
    EXPECT_EQ(s.gauges.at("xloops_jobs_in_flight"), 1u);
    EXPECT_TRUE(invariantHolds());

    // Run to completion, scrape again: in-flight drains to zero and
    // the invariant still balances.
    sup.resume();
    (void)sup.wait(a1.jobId);
    sup.publishMetrics();
    s = metricsRegistry().snapshot();
    EXPECT_EQ(s.gauges.at("xloops_jobs_in_flight"), 0u);
    EXPECT_EQ(s.counters.at("xloops_jobs_completed_total"), 1u);
    EXPECT_TRUE(invariantHolds());

    sup.drain();
}

TEST(Supervisor, HealthReportsDegradedWhenSheddingOrDraining)
{
    SupervisorConfig cfg = testConfig("health");
    cfg.queueDepth = 1;
    cfg.startPaused = true;
    Supervisor sup(cfg);

    HealthInfo h = sup.health();
    EXPECT_FALSE(h.degraded);
    EXPECT_FALSE(h.draining);
    EXPECT_EQ(h.queued, 0u);
    EXPECT_EQ(h.inFlight, 0u);

    // A full queue is the shedding regime: degraded.
    const Admission adm = sup.submit(specimenSpec());
    ASSERT_TRUE(adm.accepted);
    h = sup.health();
    EXPECT_TRUE(h.degraded);
    EXPECT_EQ(h.queued, 1u);
    EXPECT_EQ(h.inFlight, 1u);

    sup.resume();
    (void)sup.wait(adm.jobId);
    h = sup.health();
    EXPECT_FALSE(h.degraded);
    EXPECT_GT(h.uptimeUs, 0u);

    sup.drain();
    h = sup.health();
    EXPECT_TRUE(h.draining);
    EXPECT_TRUE(h.degraded) << "draining is a degraded state";
}

// ------------------------------------------------------- crash recovery

TEST(Supervisor, RecoversJournalledJobsAfterCrash)
{
    SupervisorConfig cfg = testConfig("recover");
    cfg.journalPath = cfg.artifactDir + "/journal.jnl";

    // Fabricate a dead generation's journal: job 7 was accepted but no
    // worker ever took it; job 9 died mid-attempt; job 11 finished.
    {
        Journal j(cfg.journalPath);
        const JobSpec spec = specimenSpec();
        j.append(JournalEvent::Accepted, 7, "", 0, &spec, true);
        j.append(JournalEvent::Accepted, 9, "", 0, &spec, true);
        j.append(JournalEvent::Started, 9);
        j.append(JournalEvent::Attempt, 9, "", 1);
        j.append(JournalEvent::Accepted, 11, "", 0, &spec, true);
        j.append(JournalEvent::Started, 11);
        j.append(JournalEvent::Completed, 11, "", 1, nullptr, true);
    }

    Supervisor sup(cfg);
    // Both unfinished jobs were re-accepted under this generation's
    // ids (allocation starts at 1) in acceptance order.
    const JobOutcome o1 = sup.wait(1);
    const JobOutcome o2 = sup.wait(2);
    EXPECT_EQ(o1.status, JobStatus::Done);
    EXPECT_EQ(o2.status, JobStatus::Done);

    const SupervisorStats s = sup.stats();
    EXPECT_EQ(s.recovered, 2u) << "finished job 11 must not re-run";
    EXPECT_EQ(s.done, 2u);

    // The flight ring shows the recovery happened.
    unsigned recoveredEvents = 0;
    for (const FlightEvent &ev : sup.flight().events())
        if (ev.kind == FlightKind::JobRecovered)
            recoveredEvents++;
    EXPECT_EQ(recoveredEvents, 2u);
    sup.drain();

    // This generation's journal reaches a settled state: replaying it
    // now finds nothing pending (both re-runs reached terminal
    // records), so a third generation would recover nothing.
    const JournalRecovery rec =
        recoverPending(replayJournal(cfg.journalPath));
    EXPECT_TRUE(rec.pending.empty());
    EXPECT_EQ(rec.completed, 2u);
}

TEST(Supervisor, RecoveredJobBypassesTheAdmissionBound)
{
    SupervisorConfig cfg = testConfig("recover_full");
    cfg.journalPath = cfg.artifactDir + "/journal.jnl";
    cfg.queueDepth = 1;
    cfg.startPaused = true;

    {
        Journal j(cfg.journalPath);
        const JobSpec spec = specimenSpec();
        j.append(JournalEvent::Accepted, 1, "", 0, &spec, true);
        j.append(JournalEvent::Accepted, 2, "", 0, &spec, true);
        j.append(JournalEvent::Accepted, 3, "", 0, &spec, true);
    }

    // All three acknowledged jobs must survive even though the queue
    // only admits one — recovery force-pushes past the bound (and a
    // fresh submission now sheds, feeling their backpressure).
    Supervisor sup(cfg);
    EXPECT_EQ(sup.stats().recovered, 3u);
    EXPECT_EQ(sup.stats().queued, 3u);
    const Admission fresh = sup.submit(specimenSpec());
    EXPECT_FALSE(fresh.accepted);
    EXPECT_EQ(fresh.reason, "overloaded");

    sup.resume();
    for (u64 id = 1; id <= 3; id++)
        EXPECT_EQ(sup.wait(id).status, JobStatus::Done);
    sup.drain();
}

TEST(Supervisor, ResumesARecoveredJobFromItsCheckpoint)
{
    SupervisorConfig cfg = testConfig("resume");
    cfg.journalPath = cfg.artifactDir + "/journal.jnl";
    // Counts committed GPP instructions — specialized iterations run
    // on the LPSU, so keep this small or a short kernel halts before
    // its first checkpoint boundary.
    cfg.checkpointEveryInsts = 16;

    const JobSpec spec = specimenSpec();

    // The uninterrupted baseline: what the job's stats document must
    // be, byte for byte, no matter where the crash interrupts it.
    std::string baseline;
    {
        SupervisorConfig base = testConfig("resume_base");
        Supervisor bsup(base);
        const Admission adm = bsup.submit(spec);
        ASSERT_TRUE(adm.accepted);
        baseline = bsup.wait(adm.jobId).statsJson;
        ASSERT_FALSE(baseline.empty());
        bsup.drain();
    }

    // Capture a mid-run checkpoint exactly as the dead generation's
    // periodic sink would have left it (profiler included — its state
    // is part of the stats document).
    std::string ckpt;
    {
        RunOptions ropts;
        ropts.checkpointEvery = cfg.checkpointEveryInsts;
        ropts.checkpointSink = [&](u64, const std::string &json) {
            if (ckpt.empty())
                ckpt = json;  // keep the earliest: a mid-run state
        };
        LoopProfiler profiler;
        RunHooks hooks;
        hooks.runOptions = &ropts;
        hooks.profiler = &profiler;
        runKernel(kernelByName(spec.kernel), configs::byName(spec.config),
                  ExecMode::Specialized, false, hooks);
        ASSERT_FALSE(ckpt.empty())
            << "kernel too short for checkpointEveryInsts";
    }

    {
        std::ofstream out(cfg.artifactDir + "/job-42.ckpt.json");
        out << ckpt;
    }
    {
        Journal j(cfg.journalPath);
        j.append(JournalEvent::Accepted, 42, "", 0, &spec, true);
        j.append(JournalEvent::Started, 42);
        j.append(JournalEvent::Attempt, 42, "", 1);
    }

    Supervisor sup(cfg);
    const JobOutcome out = sup.wait(1);
    EXPECT_EQ(out.status, JobStatus::Done);
    EXPECT_EQ(out.statsJson, baseline)
        << "resume-from-checkpoint must be byte-identical to the "
           "uninterrupted run";
    EXPECT_EQ(sup.stats().recovered, 1u);
    EXPECT_EQ(sup.stats().resumed, 1u);

    unsigned resumedEvents = 0;
    for (const FlightEvent &ev : sup.flight().events())
        if (ev.kind == FlightKind::JobResumed)
            resumedEvents++;
    EXPECT_EQ(resumedEvents, 1u);
    sup.drain();
}

TEST(ResultCache, CorruptEntryIsQuarantinedAndBecomesAMiss)
{
    const std::string dir =
        testing::TempDir() + "/xloops_cache_quarantine";
    (void)std::system(("mkdir -p " + dir).c_str());

    const std::string path = dir + "/index.json";
    const u64 key = resultCacheKey(7, specimenSpec());
    {
        ResultCache cache(8);
        cache.insert(key, "{\"cycles\": 123}\n");
        cache.saveIndex(path);
    }

    // Rot one byte of the stored result text on disk.
    std::string text;
    {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    const size_t at = text.find("123");
    ASSERT_NE(at, std::string::npos);
    text[at] = '9';
    {
        std::ofstream out(path);
        out << text;
    }

    ResultCache restored(8);
    restored.setQuarantineDir(dir);
    u64 hookKey = 0;
    restored.setCorruptionHook(
        [&](u64 k, const std::string &) { hookKey = k; });
    EXPECT_EQ(restored.loadIndex(path), 0u)
        << "the rotted entry must not load";
    EXPECT_EQ(restored.corruptions(), 1u);
    EXPECT_EQ(hookKey, key);
    std::string out;
    EXPECT_FALSE(restored.lookup(key, out))
        << "a corrupt entry is a miss (re-simulate), never an answer";
}

TEST(ResultCache, LegacyPlainStringIndexEntriesStillLoad)
{
    // Pre-durability indexes stored entries as bare strings; they
    // must keep loading (and gain checksums) rather than strand a
    // fleet's warm caches on upgrade.
    const std::string path =
        testing::TempDir() + "/xloops_cache_legacy.json";
    const u64 key = resultCacheKey(3, specimenSpec());
    const std::string doc = "{\"cycles\": 5}\n";
    {
        std::ofstream out(path);
        JsonWriter w(out, /*pretty=*/true);
        w.beginObject();
        w.field("schema", "xloops-cache-1");
        w.field("num_entries", 1);
        w.key("entries").beginObject();
        w.key(strf("0x", std::hex, key));
        w.value(doc);
        w.endObject();
        w.endObject();
    }
    ResultCache cache(8);
    EXPECT_EQ(cache.loadIndex(path), 1u);
    std::string out;
    ASSERT_TRUE(cache.lookup(key, out));
    EXPECT_EQ(out, doc);
}

TEST(ResultCache, UnreadableIndexIsAColdStartNotACrash)
{
    const std::string path =
        testing::TempDir() + "/xloops_cache_torn.json";
    {
        std::ofstream out(path);
        out << "{\"schema\": \"xloops-cache-1\", \"entr";  // torn write
    }
    ResultCache cache(8);
    EXPECT_EQ(cache.loadIndex(path), 0u)
        << "a torn index must not keep the daemon down";
    EXPECT_EQ(cache.corruptions(), 1u);
}

// A preset stop flag surfaces as the matching SimError kind through a
// full kernel run — the mechanism the service deadline watchdog and
// the xsim signal handlers both rely on.
TEST(StopFlag, CauseSelectsTheSimErrorKindAndExitCode)
{
    const std::atomic<u32> deadline{
        static_cast<u32>(StopCause::Deadline)};
    RunOptions ropts;
    ropts.stopFlag = &deadline;
    RunHooks hooks;
    hooks.runOptions = &ropts;
    try {
        runKernel(kernelByName("rgb2cmyk-uc"), configs::byName("io+x"),
                  ExecMode::Specialized, false, hooks);
        FAIL() << "expected a SimError";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimErrorKind::Deadline);
        EXPECT_EQ(err.exitCode(), 3);
    }

    const std::atomic<u32> interrupted{
        static_cast<u32>(StopCause::Interrupted)};
    ropts.stopFlag = &interrupted;
    try {
        runKernel(kernelByName("rgb2cmyk-uc"), configs::byName("io+x"),
                  ExecMode::Specialized, false, hooks);
        FAIL() << "expected a SimError";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimErrorKind::Interrupted);
        EXPECT_EQ(err.exitCode(), 6) << "the dedicated interrupt code";
    }
}

} // namespace
} // namespace xloops
