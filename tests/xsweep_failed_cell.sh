#!/bin/sh
# A sweep cell that dies (instruction valve) must not wedge or abort
# the sweep: the driver finishes the matrix, prints a per-cell failure
# summary, and exits 6 — distinct from every xsim exit code, so a
# harness can tell "sweep completed with failed cells" from a
# driver-level death. Registered with ctest as cli_xsweep_failed_cell.
#
# usage: xsweep_failed_cell.sh <xsweep>
set -u

XSWEEP=$1

out=$("$XSWEEP" --kernels rgb2cmyk-uc --modes S --max-insts 10 2>&1)
code=$?
echo "$out"

[ "$code" -eq 6 ] || {
    echo "xsweep_failed_cell: FAIL: exit $code, want 6" >&2
    exit 1
}
case "$out" in
*"failed cells: 1/1"*) ;;
*)
    echo "xsweep_failed_cell: FAIL: missing failure summary" >&2
    exit 1
    ;;
esac
echo "xsweep_failed_cell: PASS"
