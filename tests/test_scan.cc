// Unit tests for the LMU's scan-phase static analysis (scanXloop):
// body extraction, pattern/db decoding, CIR identification with the
// idx/bound/MIV exclusions, last-CIR-write tracking, early-push
// safety under internal backward branches, MIVT construction
// (including register-increment addu.xi), and live-in counting.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "lpsu/lpsu.h"

namespace xloops {
namespace {

ScanInfo
scanOf(const std::string &src, const RegFile &regs = RegFile{},
       unsigned skip = 0)
{
    const Program prog = assemble(src);
    // Find the (skip+1)-th xloop instruction.
    for (Addr pc = prog.textBase; prog.inText(pc); pc += 4) {
        if (prog.fetch(pc).isXloop()) {
            if (skip == 0)
                return scanXloop(prog, pc, regs);
            skip--;
        }
    }
    throw FatalError("no xloop in test program");
}

TEST(Scan, BodyRangeAndPattern)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n  add r3, r4, r5\n  sub r6, r7, r8\n"
        "  xloop.om r1, r2, body\n  halt\n");
    EXPECT_EQ(si.body.size(), 2u);
    EXPECT_EQ(si.pattern, LoopPattern::OM);
    EXPECT_FALSE(si.dynamicBound);
    EXPECT_TRUE(si.ordersMemory());
    EXPECT_FALSE(si.ordersRegisters());
    EXPECT_EQ(si.idxReg, 1);
    EXPECT_EQ(si.boundReg, 2);
}

TEST(Scan, DynamicBoundFlag)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n  addi r2, r2, 0\n"
        "  xloop.uc.db r1, r2, body\n  halt\n");
    EXPECT_TRUE(si.dynamicBound);
    EXPECT_EQ(si.pattern, LoopPattern::UC);
}

TEST(Scan, CirDetectionReadBeforeWrite)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n  li r3, 0\n"
        "body:\n"
        "  add r3, r3, r1\n"    // r3: read-then-write -> CIR
        "  add r4, r1, r1\n"    // r4: write-first -> temp
        "  add r5, r4, r4\n"
        "  xloop.or r1, r2, body\n  halt\n");
    EXPECT_EQ(si.numCirs, 1u);
    EXPECT_TRUE(si.isCir[3]);
    EXPECT_FALSE(si.isCir[4]);
    EXPECT_FALSE(si.isCir[5]);
}

TEST(Scan, IdxBoundAndMivExcludedFromCirs)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n"
        "  add r4, r1, r2\n"     // reads idx and bound
        "  addi r2, r2, 1\n"     // writes bound (db pattern)
        "  addiu.xi r5, 4\n"     // MIV
        "  sw r4, 0(r5)\n"
        "  xloop.or.db r1, r2, body\n  halt\n");
    EXPECT_EQ(si.numCirs, 0u);
    EXPECT_TRUE(si.isMiv[5]);
    EXPECT_EQ(si.mivInc[5], 4);
}

TEST(Scan, AdduXiTakesIncrementFromLiveIns)
{
    RegFile regs;
    regs.set(9, 24);  // loop-invariant stride register
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n"
        "  addu.xi r5, r9\n"
        "  xloop.uc r1, r2, body\n  halt\n",
        regs);
    EXPECT_TRUE(si.isMiv[5]);
    EXPECT_EQ(si.mivInc[5], 24);
}

TEST(Scan, LastCirWriteIsLargestPc)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n  li r3, 0\n"
        "body:\n"
        "  add r3, r3, r1\n"
        "  add r4, r3, r1\n"
        "  add r3, r3, r4\n"    // <- last write
        "  xloop.or r1, r2, body\n  halt\n");
    ASSERT_TRUE(si.isCir[3]);
    EXPECT_EQ(si.lastCirWritePc[3], si.bodyStart + 8);
    EXPECT_TRUE(si.earlyPushOk[3]);
}

TEST(Scan, BackwardBranchDisablesEarlyPush)
{
    // An inner loop after the last CIR write is harmless, but a
    // backward edge crossing the write is not.
    const ScanInfo crossing = scanOf(
        "  li r1, 0\n  li r2, 8\n  li r3, 0\n"
        "body:\n"
        "inner:\n"
        "  add r3, r3, r1\n"      // CIR write inside the inner loop
        "  addi r4, r4, 1\n"
        "  blt r4, r2, inner\n"   // backward edge crosses the write
        "  xloop.or r1, r2, body\n  halt\n");
    ASSERT_TRUE(crossing.isCir[3]);
    EXPECT_FALSE(crossing.earlyPushOk[3]);

    const ScanInfo after = scanOf(
        "  li r1, 0\n  li r2, 8\n  li r3, 0\n"
        "body:\n"
        "  add r3, r3, r1\n"      // CIR write before the inner loop
        "  li r4, 0\n"
        "inner:\n"
        "  addi r4, r4, 1\n"
        "  blt r4, r2, inner\n"
        "  xloop.or r1, r2, body\n  halt\n");
    ASSERT_TRUE(after.isCir[3]);
    EXPECT_TRUE(after.earlyPushOk[3]);
}

TEST(Scan, LiveInCounting)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n"
        "  add r4, r5, r6\n"     // r5, r6 live-in; r4 not
        "  add r4, r4, r1\n"     // r1 (idx) live-in
        "  sw r4, 0(r7)\n"       // r7 live-in
        "  xloop.uc r1, r2, body\n  halt\n");
    // r1, r5, r6, r7 read before written; r2 read by the xloop but
    // not inside the body (the LMU copies it anyway via idx/bound
    // handling; only body live-ins are counted here).
    EXPECT_EQ(si.numLiveIns, 4u);
}

TEST(Scan, NestedXloopCountsAsBodyInstruction)
{
    const ScanInfo si = scanOf(
        "  li r1, 0\n  li r2, 8\n"
        "body:\n"
        "  li r3, 0\n"
        "inner:\n"
        "  addi r4, r4, 1\n"
        "  xloop.uc r3, r2, inner, nohint\n"
        "  xloop.om r1, r2, body\n  halt\n",
        RegFile{}, 1);  // scan the outer (second) xloop
    EXPECT_EQ(si.pattern, LoopPattern::OM);
    EXPECT_EQ(si.body.size(), 3u);
    EXPECT_TRUE(si.body[2].isXloop());
}

TEST(Scan, NonXloopPcPanics)
{
    const Program prog = assemble("  add r1, r2, r3\n  halt\n");
    RegFile regs;
    EXPECT_THROW(scanXloop(prog, prog.textBase, regs), PanicError);
}

} // namespace
} // namespace xloops
