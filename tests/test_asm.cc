// Assembler tests: directives, labels, pseudo-instruction expansion,
// symbol resolution, error reporting, and end-to-end image layout.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "isa/disasm.h"
#include "mem/memory.h"

namespace xloops {
namespace {

Instruction
instAt(const Program &prog, size_t index)
{
    return Instruction::decode(prog.text.at(index));
}

TEST(Assembler, MinimalProgram)
{
    const Program prog = assemble("  halt\n");
    ASSERT_EQ(prog.text.size(), 1u);
    EXPECT_EQ(instAt(prog, 0).op, Op::HALT);
    EXPECT_EQ(prog.entry, textBaseDefault);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program prog = assemble(
        "# leading comment\n"
        "\n"
        "  add r1, r2, r3   # trailing\n"
        "  halt ; alt comment\n");
    ASSERT_EQ(prog.text.size(), 2u);
    EXPECT_EQ(instAt(prog, 0).op, Op::ADD);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    const Program prog = assemble(
        "top:\n"
        "  beq r1, r2, done\n"
        "  j top\n"
        "done:\n"
        "  halt\n");
    const Instruction beq = instAt(prog, 0);
    EXPECT_EQ(beq.imm, 2);   // two words forward
    const Instruction jal = instAt(prog, 1);
    EXPECT_EQ(jal.op, Op::JAL);
    EXPECT_EQ(jal.imm, -1);
    EXPECT_EQ(prog.symbol("top"), textBaseDefault);
    EXPECT_EQ(prog.symbol("done"), textBaseDefault + 8);
}

TEST(Assembler, LiSmallExpandsToAddi)
{
    const Program prog = assemble("  li r4, -100\n  halt\n");
    const Instruction inst = instAt(prog, 0);
    EXPECT_EQ(inst.op, Op::ADDI);
    EXPECT_EQ(inst.rd, 4);
    EXPECT_EQ(inst.rs1, 0);
    EXPECT_EQ(inst.imm, -100);
}

TEST(Assembler, LiLargeExpandsToLuiOri)
{
    const Program prog = assemble("  li r4, 0x12345678\n  halt\n");
    ASSERT_EQ(prog.text.size(), 3u);
    EXPECT_EQ(instAt(prog, 0).op, Op::LUI);
    EXPECT_EQ(instAt(prog, 1).op, Op::ORI);
    // Verify composition: lui shifts by 13.
    const u32 value = 0x12345678;
    EXPECT_EQ((static_cast<u32>(instAt(prog, 0).imm) << 13) |
                  static_cast<u32>(instAt(prog, 1).imm),
              value);
}

TEST(Assembler, LaAlwaysTwoInstructions)
{
    const Program prog = assemble(
        "  la r5, buf\n"
        "  halt\n"
        "  .data\n"
        "buf: .word 7\n");
    ASSERT_EQ(prog.text.size(), 3u);
    const u32 addr = (static_cast<u32>(instAt(prog, 0).imm) << 13) |
                     static_cast<u32>(instAt(prog, 1).imm);
    EXPECT_EQ(addr, prog.symbol("buf"));
}

TEST(Assembler, DataDirectives)
{
    const Program prog = assemble(
        "  halt\n"
        "  .data\n"
        "a:  .word 1, 2, -3\n"
        "b:  .space 8\n"
        "c:  .byte 1, 2\n"
        "    .align 4\n"
        "d:  .word a\n");
    MainMemory mem;
    prog.loadInto(mem);
    const Addr a = prog.symbol("a");
    EXPECT_EQ(mem.readWord(a), 1u);
    EXPECT_EQ(mem.readWord(a + 4), 2u);
    EXPECT_EQ(static_cast<i32>(mem.readWord(a + 8)), -3);
    const Addr b = prog.symbol("b");
    EXPECT_EQ(b, a + 12);
    const Addr c = prog.symbol("c");
    EXPECT_EQ(c, b + 8);
    const Addr d = prog.symbol("d");
    EXPECT_EQ(d % 4, 0u);
    EXPECT_EQ(mem.readWord(d), a);  // .word of a symbol stores its address
}

TEST(Assembler, FloatDirective)
{
    const Program prog = assemble(
        "  halt\n"
        "  .data\n"
        "f: .float 1.5, -0.25\n");
    MainMemory mem;
    prog.loadInto(mem);
    EXPECT_FLOAT_EQ(mem.readFloat(prog.symbol("f")), 1.5f);
    EXPECT_FLOAT_EQ(mem.readFloat(prog.symbol("f") + 4), -0.25f);
}

TEST(Assembler, LoadStoreOperands)
{
    const Program prog = assemble(
        "  lw r1, 8(r2)\n"
        "  sw r1, -4(r3)\n"
        "  halt\n");
    const Instruction lw = instAt(prog, 0);
    EXPECT_EQ(lw.rd, 1);
    EXPECT_EQ(lw.rs1, 2);
    EXPECT_EQ(lw.imm, 8);
    const Instruction sw = instAt(prog, 1);
    EXPECT_EQ(sw.rs2, 1);
    EXPECT_EQ(sw.rs1, 3);
    EXPECT_EQ(sw.imm, -4);
}

TEST(Assembler, AmoSyntax)
{
    const Program prog = assemble("  amoadd r3, r7, (r8)\n  halt\n");
    const Instruction amo = instAt(prog, 0);
    EXPECT_EQ(amo.op, Op::AMOADD);
    EXPECT_EQ(amo.rd, 3);
    EXPECT_EQ(amo.rs2, 7);
    EXPECT_EQ(amo.rs1, 8);
}

TEST(Assembler, XloopEncodesBackwardBodyAndHint)
{
    const Program prog = assemble(
        "body:\n"
        "  add r3, r3, r4\n"
        "  xloop.uc r1, r2, body\n"
        "  xloop.or r1, r2, body, nohint\n"
        "  halt\n");
    const Instruction uc = instAt(prog, 1);
    EXPECT_EQ(uc.op, Op::XLOOP_UC);
    EXPECT_EQ(uc.imm, -1);
    EXPECT_TRUE(uc.hint);
    const Instruction orr = instAt(prog, 2);
    EXPECT_EQ(orr.op, Op::XLOOP_OR);
    EXPECT_EQ(orr.imm, -2);
    EXPECT_FALSE(orr.hint);
}

TEST(Assembler, PseudoBranchesAndMov)
{
    const Program prog = assemble(
        "top:\n"
        "  mov r1, r2\n"
        "  beqz r1, top\n"
        "  bnez r1, top\n"
        "  bgt r1, r2, top\n"
        "  ble r1, r2, top\n"
        "  halt\n");
    EXPECT_EQ(instAt(prog, 0).op, Op::ADDI);
    EXPECT_EQ(instAt(prog, 1).op, Op::BEQ);
    EXPECT_EQ(instAt(prog, 1).rs2, 0);
    EXPECT_EQ(instAt(prog, 2).op, Op::BNE);
    // bgt r1,r2 -> blt r2,r1
    EXPECT_EQ(instAt(prog, 3).op, Op::BLT);
    EXPECT_EQ(instAt(prog, 3).rs1, 2);
    EXPECT_EQ(instAt(prog, 3).rs2, 1);
    EXPECT_EQ(instAt(prog, 4).op, Op::BGE);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("  frobnicate r1\n"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("  j nowhere\n  halt\n"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("a:\n  nop\na:\n  halt\n"), FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("  add r1, r2\n"), FatalError);
}

TEST(AssemblerErrors, XloopForwardLabel)
{
    EXPECT_THROW(assemble("  xloop.uc r1, r2, later\nlater:\n  halt\n"),
                 FatalError);
}

TEST(AssemblerErrors, RegisterOutOfRange)
{
    EXPECT_THROW(assemble("  add r32, r1, r2\n"), FatalError);
}

TEST(AssemblerErrors, InstructionInDataSection)
{
    EXPECT_THROW(assemble("  .data\n  add r1, r2, r3\n"), FatalError);
}

TEST(AssemblerErrors, MessageIncludesLineNumber)
{
    try {
        assemble("  nop\n  nop\n  bogus r1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Program, FetchOutsideTextThrows)
{
    const Program prog = assemble("  halt\n");
    EXPECT_THROW(prog.fetch(prog.textBase + 4), FatalError);
    EXPECT_THROW(prog.fetch(prog.textBase - 4), FatalError);
    EXPECT_NO_THROW(prog.fetch(prog.textBase));
}

TEST(Program, DisassembleRoundTripThroughAssembler)
{
    const Program prog = assemble(
        "body:\n"
        "  lw r6, 0(r5)\n"
        "  add r6, r6, r7\n"
        "  sw r6, 0(r5)\n"
        "  addiu.xi r5, 4\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n");
    // Every word must decode and disassemble without throwing.
    for (size_t i = 0; i < prog.text.size(); i++) {
        const Instruction inst = instAt(prog, i);
        EXPECT_FALSE(disassemble(inst).empty());
    }
}

} // namespace
} // namespace xloops
