// System-level tests: configuration presets, execution-mode plumbing,
// adaptive profiling table behaviour, scan-phase accounting, and
// cross-mode invariants on a mixed multi-loop program.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "system/system.h"

namespace xloops {
namespace {

TEST(Configs, MainGridNamesAndShapes)
{
    const auto grid = configs::mainGrid();
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0].name, "io");
    EXPECT_EQ(grid[5].name, "ooo/4+x");
    EXPECT_FALSE(grid[0].hasLpsu);
    EXPECT_TRUE(grid[3].hasLpsu);
    EXPECT_EQ(grid[2].gpp.width, 4u);
    EXPECT_EQ(grid[2].gpp.kind, GppConfig::Kind::OutOfOrder);
}

TEST(Configs, ByNameRoundTripsAndRejectsUnknown)
{
    for (const auto &cfg : configs::mainGrid())
        EXPECT_EQ(configs::byName(cfg.name).name, cfg.name);
    EXPECT_EQ(configs::byName("ooo/4+x8+r+m").lpsu.lsqLoadEntries, 16u);
    EXPECT_THROW(configs::byName("pentium"), FatalError);
}

TEST(Configs, DseVariantsDifferFromBase)
{
    EXPECT_TRUE(configs::ooo4X4t().lpsu.multithreading);
    EXPECT_EQ(configs::ooo4X8().lpsu.lanes, 8u);
    EXPECT_EQ(configs::ooo4X8r().lpsu.memPorts, 2u);
    EXPECT_EQ(configs::ooo4X8r().lpsu.llfus, 2u);
}

TEST(System, SpecializedModeRequiresLpsu)
{
    const Program prog = assemble("  halt\n");
    XloopsSystem sys(configs::io());
    sys.loadProgram(prog);
    EXPECT_THROW(sys.run(prog, ExecMode::Specialized), FatalError);
    EXPECT_THROW(sys.run(prog, ExecMode::Adaptive), FatalError);
    EXPECT_NO_THROW(sys.run(prog, ExecMode::Traditional));
}

TEST(System, ModeNames)
{
    EXPECT_STREQ(execModeName(ExecMode::Traditional), "T");
    EXPECT_STREQ(execModeName(ExecMode::Specialized), "S");
    EXPECT_STREQ(execModeName(ExecMode::Adaptive), "A");
}

TEST(System, RunsAreRepeatable)
{
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 64\n  la r7, out\nbody:\n"
        "  slli r8, r1, 2\n  add r9, r7, r8\n  sw r1, 0(r9)\n"
        "  xloop.uc r1, r2, body\n  halt\n"
        "  .data\nout: .space 256\n");
    XloopsSystem sys(configs::ooo2X());
    sys.loadProgram(prog);
    const Cycle first = sys.run(prog, ExecMode::Specialized).cycles;
    const Cycle second = sys.run(prog, ExecMode::Specialized).cycles;
    EXPECT_EQ(first, second);
}

TEST(System, MultipleXloopsInOneProgram)
{
    // Two different xloops back to back; both specialize, and the
    // LPSU re-scans when the resident body changes.
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 32\n  la r7, a\n"
        "b1:\n"
        "  slli r8, r1, 2\n  add r9, r7, r8\n  sw r1, 0(r9)\n"
        "  xloop.uc r1, r2, b1\n"
        "  li r1, 0\n  la r7, b\n"
        "b2:\n"
        "  slli r8, r1, 2\n  add r9, r7, r8\n"
        "  slli r10, r1, 1\n  sw r10, 0(r9)\n"
        "  xloop.uc r1, r2, b2\n"
        "  halt\n"
        "  .data\na: .space 128\nb: .space 128\n");
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    const SysResult res = sys.run(prog, ExecMode::Specialized);
    EXPECT_EQ(res.xloopsSpecialized, 2u);
    EXPECT_EQ(sys.lpsuModel().stats().get("scans"), 2u);
    for (u32 i = 0; i < 32; i++) {
        EXPECT_EQ(sys.memory().readWord(prog.symbol("a") + 4 * i), i);
        EXPECT_EQ(sys.memory().readWord(prog.symbol("b") + 4 * i), 2 * i);
    }
}

TEST(Apt, ProfilesAccumulateAcrossInstancesAndDecisionSticks)
{
    AdaptiveController apt(16, 10, 100000);
    AptEntry &e = apt.lookup(0x1000);
    EXPECT_EQ(e.state, AptEntry::State::ProfileGpp);
    for (int i = 0; i < 5; i++) {
        e.gppIters++;
        e.gppCycles += 7;
    }
    EXPECT_FALSE(apt.profilingDone(e));
    for (int i = 0; i < 5; i++)
        e.gppIters++;
    EXPECT_TRUE(apt.profilingDone(e));
    e.state = AptEntry::State::DecidedLpsu;
    EXPECT_EQ(apt.lookup(0x1000).state, AptEntry::State::DecidedLpsu);
}

TEST(Apt, FifoReplacementEvictsOldEntries)
{
    AdaptiveController apt(2, 256, 2000);
    apt.lookup(0x100).state = AptEntry::State::DecidedLpsu;
    apt.lookup(0x200);
    apt.lookup(0x300);  // evicts 0x100
    EXPECT_EQ(apt.lookup(0x100).state, AptEntry::State::ProfileGpp);
}

TEST(Apt, CycleThresholdAlsoEndsProfiling)
{
    AdaptiveController apt(16, 256, 2000);
    AptEntry &e = apt.lookup(0x1000);
    e.gppIters = 3;
    e.gppCycles = 2500;
    EXPECT_TRUE(apt.profilingDone(e));
}

TEST(System, StatsMergeContainsGppAndLpsuCounters)
{
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 16\n  la r7, out\nbody:\n"
        "  slli r8, r1, 2\n  add r9, r7, r8\n  sw r1, 0(r9)\n"
        "  xloop.uc r1, r2, body\n  halt\n"
        "  .data\nout: .space 64\n");
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    const SysResult res = sys.run(prog, ExecMode::Specialized);
    EXPECT_GT(res.stats.get("insts"), 0u);        // GPP side
    EXPECT_GT(res.stats.get("lane_insts"), 0u);   // LPSU side
    EXPECT_GT(res.stats.get("lpsu_scan_cycles"), 0u);
    EXPECT_EQ(res.stats.get("cycles_total"), res.cycles);
}

TEST(System, TraditionalIgnoresTheLpsu)
{
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 16\nbody:\n  add r3, r3, r1\n"
        "  xloop.uc r1, r2, body\n  halt\n");
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    const SysResult res = sys.run(prog, ExecMode::Traditional);
    EXPECT_EQ(res.laneInsts, 0u);
    EXPECT_EQ(res.xloopsSpecialized, 0u);
}

} // namespace
} // namespace xloops
