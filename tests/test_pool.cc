// Worker-pool unit tests: deterministic result merge regardless of
// task completion order, deterministic exception propagation as
// SimError, pool-of-1 == inline execution, and per-task seed
// derivation (the property the sweep's fault determinism rests on).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/pool.h"
#include "common/rng.h"
#include "common/sim_error.h"

namespace xloops {
namespace {

TEST(WorkerPool, MapCollectsResultsInSubmissionOrder)
{
    const WorkerPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    const std::vector<u64> out =
        pool.map<u64>(100, [](size_t i) { return u64{i} * i; });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], u64{i} * i);
}

TEST(WorkerPool, MergeIsTaskOrderIndependent)
{
    // Give early tasks the *most* work so they finish last: results
    // must still come back in submission order, not completion order.
    const WorkerPool pool(8);
    const std::vector<std::string> out =
        pool.map<std::string>(64, [](size_t i) {
            volatile u64 sink = 0;
            for (u64 spin = 0; spin < (64 - i) * 2000; spin++)
                sink += spin;
            return "task-" + std::to_string(i);
        });
    for (size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], "task-" + std::to_string(i));
}

TEST(WorkerPool, PoolOfOneEqualsInlineExecution)
{
    std::vector<u64> inlineOut;
    for (size_t i = 0; i < 40; i++)
        inlineOut.push_back(mix64(i));

    const auto task = [](size_t i) { return mix64(i); };
    EXPECT_EQ(WorkerPool(1).map<u64>(40, task), inlineOut);
    EXPECT_EQ(WorkerPool(8).map<u64>(40, task), inlineOut);
}

TEST(WorkerPool, AllTasksRunExactlyOnce)
{
    const WorkerPool pool(6);
    std::vector<std::atomic<unsigned>> hits(500);
    pool.run(500, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 1u) << "task " << i;
}

TEST(WorkerPool, ExceptionPropagatesAsSimError)
{
    const WorkerPool pool(4);
    const auto failing = [](size_t i) {
        if (i == 23) {
            MachineSnapshot snap;
            snap.context = "test task";
            throw SimError(SimErrorKind::InstLimit, "task 23 wedged",
                           snap);
        }
    };
    try {
        pool.run(64, failing);
        FAIL() << "expected a SimError";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimErrorKind::InstLimit);
        EXPECT_NE(std::string(err.what()).find("task 23 wedged"),
                  std::string::npos);
    }
    // Pool of one behaves the same.
    EXPECT_THROW(WorkerPool(1).run(64, failing), SimError);
}

TEST(WorkerPool, LowestIndexExceptionWinsDeterministically)
{
    // Several tasks fail; the propagated error must always be the
    // lowest task index's, no matter which worker hit which first.
    for (int attempt = 0; attempt < 10; attempt++) {
        const WorkerPool pool(8);
        try {
            pool.run(64, [](size_t i) {
                if (i % 7 == 3)  // fails at 3, 10, 17, ...
                    throw FatalError("failed at " + std::to_string(i));
            });
            FAIL() << "expected a FatalError";
        } catch (const FatalError &err) {
            EXPECT_STREQ(err.what(), "failed at 3");
        }
    }
}

TEST(WorkerPool, TasksQueuedBehindAFailureAreCancelledInline)
{
    // Once an exception is going to win lowest-index propagation,
    // tasks still queued behind it must be cancelled, not silently
    // executed: their results would be discarded by the rethrow, and
    // a service job must not keep burning cycles after its batch is
    // already doomed.
    const WorkerPool pool(1);
    std::vector<std::atomic<unsigned>> hits(32);
    EXPECT_THROW(pool.run(32,
                          [&](size_t i) {
                              hits[i]++;
                              if (i == 3)
                                  throw FatalError("task 3 fails");
                          }),
                 FatalError);
    for (size_t i = 0; i <= 3; i++)
        EXPECT_EQ(hits[i].load(), 1u) << "task " << i;
    for (size_t i = 4; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 0u)
            << "task " << i << " ran after the failure";
}

TEST(WorkerPool, TasksQueuedBehindAFailureAreCancelledParallel)
{
    // Two workers: task 1 fails immediately while task 0 is still
    // sleeping. Everything above index 1 must be skipped — only the
    // already-running task 0 (whose index is *below* the failure, so
    // its result could never be discarded) completes.
    const WorkerPool pool(2);
    std::vector<std::atomic<unsigned>> hits(32);
    try {
        pool.run(32, [&](size_t i) {
            hits[i]++;
            if (i == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            if (i == 1)
                throw FatalError("failed at 1");
        });
        FAIL() << "expected a FatalError";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "failed at 1");
    }
    EXPECT_EQ(hits[0].load(), 1u);
    EXPECT_EQ(hits[1].load(), 1u);
    for (size_t i = 2; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 0u)
            << "task " << i << " ran after the failure";
}

TEST(WorkerPool, PreCancelledTokenRunsNothing)
{
    CancelToken token;
    token.cancel();
    RunControl control;
    control.cancel = &token;

    for (const unsigned jobs : {1u, 4u}) {
        const WorkerPool pool(jobs);
        std::vector<std::atomic<unsigned>> hits(16);
        try {
            pool.run(16, [&](size_t i) { hits[i]++; }, control);
            FAIL() << "expected a SimError";
        } catch (const SimError &err) {
            EXPECT_EQ(err.kind(), SimErrorKind::Cancelled);
        }
        for (size_t i = 0; i < hits.size(); i++)
            EXPECT_EQ(hits[i].load(), 0u) << "task " << i;
    }
}

TEST(WorkerPool, CancelMidBatchSkipsTheRemainder)
{
    CancelToken token;
    RunControl control;
    control.cancel = &token;

    const WorkerPool pool(2);
    std::atomic<unsigned> ran{0};
    try {
        pool.run(
            64,
            [&](size_t i) {
                ran++;
                if (i == 0)
                    token.cancel();
                else
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
            },
            control);
        FAIL() << "expected a SimError";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimErrorKind::Cancelled);
    }
    // At most the two tasks already in flight when the cancel landed
    // (one per worker) can have completed after it.
    EXPECT_LT(ran.load(), 64u);
}

TEST(WorkerPool, DeadlineStopsTheBatch)
{
    RunControl control;
    control.deadlineMs = 1;

    for (const unsigned jobs : {1u, 2u}) {
        const WorkerPool pool(jobs);
        std::atomic<unsigned> ran{0};
        try {
            pool.run(
                8,
                [&](size_t) {
                    ran++;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                },
                control);
            FAIL() << "expected a SimError";
        } catch (const SimError &err) {
            EXPECT_EQ(err.kind(), SimErrorKind::Deadline);
            EXPECT_NE(std::string(err.what()).find("batch stopped"),
                      std::string::npos);
        }
        EXPECT_LT(ran.load(), 8u);
    }
}

TEST(WorkerPool, EmptyBatchAndSingleTask)
{
    const WorkerPool pool(4);
    EXPECT_NO_THROW(pool.run(0, [](size_t) { FAIL(); }));
    const std::vector<int> one =
        pool.map<int>(1, [](size_t) { return 42; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 42);
}

TEST(TaskSeed, DerivedSeedsAreStableDistinctAndNonzero)
{
    std::set<u64> seen;
    for (size_t i = 0; i < 1000; i++) {
        const u64 s = taskSeed(7, i);
        EXPECT_NE(s, 0u);
        EXPECT_EQ(s, taskSeed(7, i));  // stable
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
    EXPECT_NE(taskSeed(7, 0), taskSeed(8, 0));  // root seed matters
}

} // namespace
} // namespace xloops
