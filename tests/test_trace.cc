// Observability subsystem: the tracer, the per-loop profiler, and the
// JSON pipeline must observe without perturbing — stats are
// byte-identical with observers on or off, trace emission is monotone
// in cycle, squash/replay events pair up, and the per-loop stall
// breakdown attributes every lane-cycle exactly once.

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.h"
#include "common/json.h"
#include "common/loop_profile.h"
#include "common/sim_error.h"
#include "common/trace.h"
#include "kernels/kernel.h"

namespace xloops {
namespace {

// --------------------------------------------------------------------
// Histogram bucket math
// --------------------------------------------------------------------

TEST(HistogramBuckets, BoundaryMath)
{
    // Bucket 0 holds value 0; bucket k >= 1 holds [2^(k-1), 2^k).
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);

    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketLo(1), 1u);
    EXPECT_EQ(Histogram::bucketLo(2), 2u);
    EXPECT_EQ(Histogram::bucketLo(3), 4u);
    EXPECT_EQ(Histogram::bucketLo(11), 1024u);

    // Every value lands in the bucket whose range contains it.
    for (u64 v : {u64{0}, u64{1}, u64{5}, u64{16}, u64{100}, u64{65536}}) {
        const unsigned b = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLo(b));
        if (b > 0)
            EXPECT_LT(v, Histogram::bucketLo(b + 1));
    }
}

TEST(HistogramBuckets, SampleStatistics)
{
    Histogram h;
    h.sample(0);
    h.sample(3);
    h.sample(5, 2);  // weighted
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 13u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 4.0);
    ASSERT_GE(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);  // the 0
    EXPECT_EQ(h.buckets()[2], 1u);  // the 3
    EXPECT_EQ(h.buckets()[3], 2u);  // the weighted 5

    Histogram other;
    other.sample(100);
    h.merge(other);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 100u);
}

// --------------------------------------------------------------------
// JSON serializer (shared by --stats-json and the bench reporter)
// --------------------------------------------------------------------

TEST(Json, EscapeRoundTrip)
{
    const std::string nasty =
        "plain \"quoted\" back\\slash \n\t\r ctrl:\x01 utf8: \xc3\xa9";
    EXPECT_EQ(jsonUnescape(jsonEscape(nasty)), nasty);
    EXPECT_EQ(jsonEscape("\""), "\\\"");
    EXPECT_EQ(jsonEscape("\\"), "\\\\");
    EXPECT_EQ(jsonUnescape("\\u0041"), "A");
}

TEST(Json, WriterProducesValidSortedOutput)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("alpha", u64{42});
    w.field("beta", "va\"lue");
    w.key("list").beginArray().value(1).value(2).endArray();
    w.field("neg", i64{-7});
    w.field("pi", 3.25);
    w.field("yes", true);
    w.endObject();
    EXPECT_TRUE(jsonValidate(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"va\\\"lue\""), std::string::npos);
}

TEST(Json, ValidatorRejectsMalformed)
{
    EXPECT_TRUE(jsonValidate("{\"a\": [1, 2.5, -3, null, true, \"x\"]}"));
    EXPECT_FALSE(jsonValidate("{\"a\": }"));
    EXPECT_FALSE(jsonValidate("{\"a\": 1,}"));
    EXPECT_FALSE(jsonValidate("[1, 2"));
    EXPECT_FALSE(jsonValidate("{\"a\": 1} trailing"));
    EXPECT_FALSE(jsonValidate(""));
}

// --------------------------------------------------------------------
// Trace semantics on real kernel runs
// --------------------------------------------------------------------

struct TracedRun
{
    Tracer tracer;
    LoopProfiler profiler;
    KernelRun run;

    TracedRun(const std::string &kernel, const SysConfig &cfg,
              ExecMode mode)
    {
        tracer.enable();
        RunHooks hooks;
        hooks.tracer = &tracer;
        hooks.profiler = &profiler;
        run = runKernel(kernelByName(kernel), cfg, mode, false, hooks);
        EXPECT_TRUE(run.passed) << run.error;
    }
};

TEST(Trace, EmissionIsMonotoneInCycle)
{
    TracedRun t("dynprog-om", configs::ioX(), ExecMode::Specialized);
    ASSERT_GT(t.tracer.size(), 0u);
    Cycle prev = 0;
    for (size_t i = 0; i < t.tracer.size(); i++) {
        const TraceEvent &ev = t.tracer.at(i);
        EXPECT_GE(ev.cycle, prev)
            << "event " << i << " (" << traceEventLine(ev)
            << ") went back in time";
        prev = ev.cycle;
    }
    // The render is valid JSON even for a large event stream.
    std::ostringstream os;
    t.tracer.writeChromeJson(os);
    EXPECT_TRUE(jsonValidate(os.str()));
}

TEST(Trace, SquashReplayPairing)
{
    // dynprog-om squashes naturally under memory-order speculation.
    TracedRun t("dynprog-om", configs::ioX(), ExecMode::Specialized);

    u64 squashes = 0, replays = 0;
    std::vector<bool> pending(16, false);
    for (size_t i = 0; i < t.tracer.size(); i++) {
        const TraceEvent &ev = t.tracer.at(i);
        if (ev.comp != TraceComp::Lane)
            continue;
        if (ev.kind == TraceKind::Squash) {
            squashes++;
            pending[ev.index] = true;
        } else if (ev.kind == TraceKind::Replay) {
            replays++;
            // A replay is only legal while its lane has a squash open.
            EXPECT_TRUE(pending[ev.index])
                << "unpaired replay: " << traceEventLine(ev);
            pending[ev.index] = false;
        }
    }
    ASSERT_GT(squashes, 0u) << "kernel no longer squashes; pick another";
    EXPECT_GT(replays, 0u);
    // Every replay closes a squash; squashes can outnumber replays
    // only via re-squash before re-issue or end-of-loop cancellation.
    EXPECT_LE(replays, squashes);
    EXPECT_EQ(squashes,
              t.run.result.stats.get("squashes"));
}

TEST(Trace, StallBreakdownSumsToLaneCycles)
{
    const SysConfig cfg = configs::ioX();
    for (const char *kernel : {"dynprog-om", "sha-or", "rgb2cmyk-uc"}) {
        TracedRun t(kernel, cfg, ExecMode::Specialized);
        ASSERT_FALSE(t.profiler.loops().empty());
        for (const auto &[pc, p] : t.profiler.loops()) {
            // Exactly one attribution per lane per engine cycle.
            EXPECT_EQ(p.busyCycles + p.totalStallCycles(),
                      static_cast<Cycle>(cfg.lpsu.lanes) * p.engineCycles)
                << kernel << " loop 0x" << std::hex << pc;
            EXPECT_EQ(p.iterCycles.count(), p.specIters);
            EXPECT_GT(p.invocations, 0u);
        }
    }
}

TEST(Trace, RingBufferDropsOldestButKeepsCount)
{
    Tracer tiny(16);  // the constructor's minimum capacity
    tiny.enable();
    for (unsigned i = 0; i < 20; i++)
        tiny.emit(i, TraceComp::Sys, 0, TraceKind::Commit, i, 0);
    EXPECT_EQ(tiny.size(), 16u);
    EXPECT_EQ(tiny.totalEmitted(), 20u);
    EXPECT_EQ(tiny.dropped(), 4u);
    // Oldest-first: the survivors are events 4..19.
    EXPECT_EQ(tiny.at(0).a0, 4);
    EXPECT_EQ(tiny.at(15).a0, 19);
    const auto last2 = tiny.lastEvents(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].a0, 18);
    EXPECT_EQ(last2[1].a0, 19);
}

// --------------------------------------------------------------------
// Observer neutrality
// --------------------------------------------------------------------

TEST(ObserverNeutrality, StatsAreByteIdenticalWithTracingOn)
{
    for (const ExecMode mode :
         {ExecMode::Specialized, ExecMode::Adaptive}) {
        const Kernel &k = kernelByName("dynprog-om");
        const SysConfig cfg = configs::ioX();

        const KernelRun plain = runKernel(k, cfg, mode);

        Tracer tracer;
        tracer.enable();
        LoopProfiler profiler;
        RunHooks hooks;
        hooks.tracer = &tracer;
        hooks.profiler = &profiler;
        const KernelRun observed = runKernel(k, cfg, mode, false, hooks);

        EXPECT_TRUE(plain.passed && observed.passed);
        EXPECT_EQ(plain.result.cycles, observed.result.cycles);
        EXPECT_EQ(plain.result.stats.dump(), observed.result.stats.dump())
            << "observers must not perturb statistics";
        EXPECT_GT(tracer.totalEmitted(), 0u);
    }
}

TEST(ObserverNeutrality, DisabledTracerEmitsNothing)
{
    Tracer tracer;  // never enabled
    LoopProfiler profiler;
    RunHooks hooks;
    hooks.tracer = &tracer;
    hooks.profiler = &profiler;
    const KernelRun run = runKernel(kernelByName("dynprog-om"),
                                    configs::ioX(), ExecMode::Specialized,
                                    false, hooks);
    EXPECT_TRUE(run.passed);
    EXPECT_EQ(tracer.totalEmitted(), 0u);
    // The profiler still rolls up (it is gated separately).
    EXPECT_FALSE(profiler.loops().empty());
}

// --------------------------------------------------------------------
// Post-mortem integration
// --------------------------------------------------------------------

TEST(Snapshot, EmbedsRecentTraceEvents)
{
    // A 1-cycle watchdog trips mid-loop; with a tracer attached the
    // machine snapshot carries the last events for the post-mortem.
    SysConfig cfg = configs::ioX();
    cfg.lpsu.watchdogCycles = 1;
    const Kernel &k = kernelByName("dynprog-om");
    const Program prog = assemble(k.source);
    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    if (k.setup)
        k.setup(sys.memory(), prog);
    Tracer tracer;
    tracer.enable();
    sys.setObserver(&tracer, nullptr);
    try {
        sys.run(prog, ExecMode::Specialized);
        FAIL() << "watchdog never fired";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), SimErrorKind::Watchdog);
        EXPECT_FALSE(error.snapshot().recentEvents.empty());
        const std::string what = error.what();
        EXPECT_NE(what.find("trace"), std::string::npos);
    }
}

} // namespace
} // namespace xloops
