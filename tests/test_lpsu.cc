// LPSU specialized-execution tests: every inter-iteration dependence
// pattern (uc, or, om, orm, ua, uc.db) is checked for architectural
// correctness against the serial golden model, plus speedup sanity,
// squash behaviour, scan residency, IB fallback, and nesting.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "cpu/functional.h"
#include "system/system.h"

namespace xloops {
namespace {

/** Run under a config/mode and also serially; return both memories. */
struct DualRun
{
    Program prog;
    XloopsSystem sys;
    SysResult result;
    MainMemory golden;

    DualRun(const std::string &src, const SysConfig &cfg, ExecMode mode)
        : prog(assemble(src)), sys(cfg)
    {
        sys.loadProgram(prog);
        result = sys.run(prog, mode);
        prog.loadInto(golden);
        FunctionalExecutor exec(golden);
        exec.run(prog);
    }

    void
    expectRegionMatchesGolden(const std::string &symbol, unsigned words)
    {
        const Addr base = prog.symbol(symbol);
        for (unsigned i = 0; i < words; i++) {
            EXPECT_EQ(sys.memory().readWord(base + 4 * i),
                      golden.readWord(base + 4 * i))
                << symbol << "[" << i << "]";
        }
    }
};

TEST(LpsuUc, VectorAddMatchesSerialAndSpeedsUp)
{
    // Fill a and b through .word directives instead: simpler — use
    // indices as data by initializing in a serial prologue loop.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 64\n"
        "  la r5, a\n"
        "  la r6, b\n"
        "init:\n"                     // serial init (traditional loop)
        "  slli r8, r1, 2\n"
        "  add r9, r5, r8\n"
        "  sw r1, 0(r9)\n"
        "  add r9, r6, r8\n"
        "  slli r10, r1, 1\n"
        "  sw r10, 0(r9)\n"
        "  addi r1, r1, 1\n"
        "  blt r1, r2, init\n"
        "  li r1, 0\n"
        "  la r7, c\n"
        "body:\n"
        "  lw r8, 0(r5)\n"
        "  lw r9, 0(r6)\n"
        "  add r10, r8, r9\n"
        "  sw r10, 0(r7)\n"
        "  addiu.xi r5, 4\n"
        "  addiu.xi r6, 4\n"
        "  addiu.xi r7, 4\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "a: .space 256\n"
        "b: .space 256\n"
        "c: .space 256\n";

    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("c", 64);
    // c[i] = i + 2i = 3i
    for (unsigned i = 0; i < 64; i++)
        EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("c") + 4 * i),
                  3 * i);
    EXPECT_EQ(spec.result.xloopsSpecialized, 1u);
    EXPECT_GT(spec.result.laneInsts, 0u);

    DualRun trad(src, configs::ioX(), ExecMode::Traditional);
    trad.expectRegionMatchesGolden("c", 64);
    EXPECT_LT(spec.result.cycles, trad.result.cycles);  // speedup
}

TEST(LpsuUc, FourLanesApproachFourX)
{
    // Compute-heavy independent iterations: speedup should approach
    // the lane count.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 256\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  add r10, r1, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  xor r10, r10, r1\n"
        "  and r11, r10, r1\n"
        "  or r10, r10, r11\n"
        "  sw r10, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 1024\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    DualRun trad(src, configs::io(), ExecMode::Traditional);
    spec.expectRegionMatchesGolden("out", 256);
    const double speedup = static_cast<double>(trad.result.cycles) /
                           static_cast<double>(spec.result.cycles);
    EXPECT_GT(speedup, 2.4) << "speedup " << speedup;
    EXPECT_LT(speedup, 4.5) << "speedup " << speedup;
}

TEST(LpsuUc, XiCorrectUnderLoadImbalance)
{
    // Iterations have data-dependent work (a variable inner delay),
    // so uc load balancing executes different counts per lane; the
    // xi-updated pointer must still be exact for every iteration.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 100\n"
        "  la r7, out\n"
        "body:\n"
        "  andi r8, r1, 7\n"
        "  li r9, 0\n"
        "spin:\n"
        "  addi r9, r9, 1\n"
        "  blt r9, r8, spin\n"
        "  sw r1, 0(r7)\n"
        "  addiu.xi r7, 4\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 400\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    for (unsigned i = 0; i < 100; i++)
        EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("out") + 4 * i),
                  i) << i;
}

TEST(LpsuOr, PrefixSumMatchesSerial)
{
    // out[i] = sum of 0..i; rX is the CIR.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 128\n"
        "  li r3, 0\n"          // rX: running sum (CIR)
        "  la r7, out\n"
        "body:\n"
        "  add r3, r3, r1\n"    // CIR read+write
        "  sw r3, 0(r7)\n"
        "  addiu.xi r7, 4\n"
        "  xloop.or r1, r2, body\n"
        "  la r8, fin\n"
        "  sw r3, 0(r8)\n"      // CIR is a defined live-out
        "  halt\n"
        "  .data\n"
        "out: .space 512\n"
        "fin: .word 0\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 128);
    spec.expectRegionMatchesGolden("fin", 1);
    u32 expect = 0;
    for (u32 i = 0; i < 128; i++) {
        expect += i;
        EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("out") + 4 * i),
                  expect);
    }
}

TEST(LpsuOr, ShortCriticalPathPipelines)
{
    // CIR critical path is one add; the rest of the body is
    // independent work that should overlap across lanes.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 200\n"
        "  li r3, 0\n"
        "  la r7, out\n"
        "body:\n"
        "  add r3, r3, r1\n"          // CIR update (early in body)
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  add r10, r1, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  xor r10, r10, r3\n"
        "  sw r10, 0(r9)\n"
        "  xloop.or r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 800\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    DualRun trad(src, configs::io(), ExecMode::Traditional);
    spec.expectRegionMatchesGolden("out", 200);
    EXPECT_LT(spec.result.cycles * 2, trad.result.cycles);
}

TEST(LpsuOr, ConditionalCirUpdateHandled)
{
    // The CIR write is skipped on odd iterations; the lane must still
    // forward the (unchanged) CIR value to the next iteration.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 50\n"
        "  li r3, 0\n"
        "  la r7, out\n"
        "body:\n"
        "  andi r8, r1, 1\n"
        "  add r9, r3, r0\n"     // read CIR first
        "  bnez r8, skip\n"
        "  add r3, r3, r1\n"     // conditional CIR write
        "skip:\n"
        "  slli r10, r1, 2\n"
        "  add r11, r7, r10\n"
        "  sw r9, 0(r11)\n"
        "  xloop.or r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 200\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 50);
}

const std::string ksackLikeSrc =
    // out[i] = out[i-K] + w[i], a genuine cross-iteration memory
    // dependence with distance K=2 (ordered through memory).
    "  li r1, 0\n"
    "  li r2, 96\n"
    "  la r7, out\n"
    "  la r6, w\n"
    "  li r5, 0\n"
    "init:\n"
    "  slli r8, r5, 2\n"
    "  add r9, r6, r8\n"
    "  andi r10, r5, 15\n"
    "  sw r10, 0(r9)\n"
    "  addi r5, r5, 1\n"
    "  blt r5, r2, init\n"
    "  li r1, 2\n"              // start at i=2
    "body:\n"
    "  slli r8, r1, 2\n"
    "  add r9, r7, r8\n"
    "  lw r10, -8(r9)\n"        // out[i-2]: cross-iteration load
    "  add r11, r6, r8\n"
    "  lw r12, 0(r11)\n"
    "  add r13, r10, r12\n"
    "  sw r13, 0(r9)\n"
    "  xloop.om r1, r2, body\n"
    "  halt\n"
    "  .data\n"
    "w:   .space 384\n"
    "out: .space 384\n";

TEST(LpsuOm, CrossIterationMemoryDepMatchesSerial)
{
    DualRun spec(ksackLikeSrc, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 96);
    // Distance-2 dependence with 4 lanes: lanes 2 ahead must observe
    // violations/stalls; at least the run must be architecturally
    // identical to serial.
    EXPECT_GT(spec.result.laneInsts, 0u);
}

TEST(LpsuOm, ConflictsCauseSquashes)
{
    DualRun spec(ksackLikeSrc, configs::ioX(), ExecMode::Specialized);
    const u64 squashes = spec.sys.lpsuModel().stats().get("squashes");
    EXPECT_GT(squashes, 0u);
}

TEST(LpsuOm, IndependentIterationsDoNotSquash)
{
    // om-annotated loop whose iterations never actually conflict:
    // speculation should find the parallelism with zero squashes.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 64\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  lw r10, 0(r9)\n"
        "  add r10, r10, r1\n"
        "  sw r10, 0(r9)\n"
        "  xloop.om r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 256\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 64);
    EXPECT_EQ(spec.sys.lpsuModel().stats().get("squashes"), 0u);
    DualRun trad(src, configs::io(), ExecMode::Traditional);
    EXPECT_LT(spec.result.cycles, trad.result.cycles);
}

TEST(LpsuOrm, RegisterAndMemoryOrderingTogether)
{
    // Greedy matching flavour: a CIR counter plus ordered memory
    // updates (out[k++] = i when condition).
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 60\n"
        "  li r3, 0\n"          // k (CIR)
        "  la r7, out\n"
        "  la r6, taken\n"
        "body:\n"
        "  andi r8, r1, 3\n"
        "  bnez r8, skip\n"
        "  slli r9, r3, 2\n"
        "  add r10, r7, r9\n"
        "  sw r1, 0(r10)\n"      // out[k] = i (memory ordered)
        "  addi r3, r3, 1\n"     // k++ (register ordered)
        "skip:\n"
        "  slli r11, r1, 2\n"
        "  add r12, r6, r11\n"
        "  sw r8, 0(r12)\n"
        "  xloop.orm r1, r2, body\n"
        "  la r13, kf\n"
        "  sw r3, 0(r13)\n"
        "  halt\n"
        "  .data\n"
        "out:   .space 240\n"
        "taken: .space 240\n"
        "kf:    .word 0\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 60);
    spec.expectRegionMatchesGolden("taken", 60);
    spec.expectRegionMatchesGolden("kf", 1);
    EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("kf")), 15u);
}

TEST(LpsuUa, AtomicHistogramTotalsCorrect)
{
    // Each iteration amoadds into one of 8 buckets. ua allows any
    // order; bucket totals must match the serial run exactly.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 200\n"
        "  la r7, hist\n"
        "body:\n"
        "  andi r8, r1, 7\n"
        "  slli r8, r8, 2\n"
        "  add r9, r7, r8\n"
        "  li r10, 1\n"
        "  amoadd r11, r10, (r9)\n"
        "  xloop.ua r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "hist: .space 32\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("hist", 8);
    EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("hist")), 25u);
}

TEST(LpsuDb, DynamicBoundWorklistProcessesEverything)
{
    // Worklist seeded with one item; items < 40 append item+1 via an
    // AMO-reserved slot and raise the bound.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 1\n"                // bound starts at 1
        "  la r7, wl\n"
        "  la r6, tail\n"
        "  li r8, 1\n"
        "  sw r8, 0(r6)\n"            // tail = 1 (item 0 in list)
        "  sw r0, 0(r7)\n"            // wl[0] = 0
        "  la r12, sum\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  lw r10, 0(r9)\n"           // item = wl[i]
        "  lw r11, 0(r12)\n"
        "  add r11, r11, r10\n"
        "  sw r11, 0(r12)\n"          // sum += item (racy but 1 writer
                                      // per i in practice? use amo)
        "  li r13, 40\n"
        "  bge r10, r13, done\n"
        "  li r14, 1\n"
        "  amoadd r15, r14, (r6)\n"   // slot = tail++ (atomic)
        "  slli r16, r15, 2\n"
        "  add r17, r7, r16\n"
        "  addi r18, r10, 1\n"
        "  sw r18, 0(r17)\n"          // wl[slot] = item+1
        "  addi r2, r15, 1\n"         // bound = slot+1 (from the AMO
                                      // result, so lanes agree)
        "done:\n"
        "  xloop.uc.db r1, r2, body\n"
        "  la r20, cnt\n"
        "  sw r1, 0(r20)\n"
        "  halt\n"
        "  .data\n"
        "wl:   .space 1024\n"
        "tail: .word 0\n"
        "sum:  .word 0\n"
        "cnt:  .word 0\n";
    // NOTE: the sum update is load-add-store on shared memory; with
    // uc semantics that is racy, but items are processed one per
    // iteration and the worklist here is a chain, so only the bound
    // and tail are contended (via AMO). To keep the test deterministic
    // we check the worklist contents and count, not the racy sum.
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("cnt")), 41u);
    for (unsigned i = 0; i <= 40; i++)
        EXPECT_EQ(spec.sys.memory().readWord(spec.prog.symbol("wl") + 4 * i),
                  i) << i;
}

TEST(LpsuFallback, OversizedBodyRunsTraditionally)
{
    std::string src =
        "  li r1, 0\n"
        "  li r2, 10\n"
        "  la r7, out\n"
        "body:\n";
    for (int i = 0; i < 200; i++)  // > 128 IB entries
        src += "  add r8, r1, r2\n";
    src +=
        "  slli r9, r1, 2\n"
        "  add r10, r7, r9\n"
        "  sw r8, 0(r10)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 40\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 10);
    EXPECT_EQ(spec.result.xloopsSpecialized, 0u);
    EXPECT_EQ(spec.sys.lpsuModel().stats().get("ib_fallbacks"), 1u);
}

TEST(LpsuNesting, OuterOmWithInnerTraditionalLoop)
{
    // Floyd-Warshall shape: outer xloop.om (hinted), inner loop runs
    // traditionally inside each lane.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 16\n"           // outer bound
        "  la r7, m\n"
        "body:\n"
        "  li r3, 0\n"
        "  li r4, 16\n"           // inner bound
        "  slli r8, r1, 6\n"      // row i * 64 bytes
        "  add r9, r7, r8\n"
        "inner:\n"
        "  slli r10, r3, 2\n"
        "  add r11, r9, r10\n"
        "  lw r12, 0(r11)\n"
        "  add r12, r12, r1\n"
        "  add r12, r12, r3\n"
        "  sw r12, 0(r11)\n"
        "  addi r3, r3, 1\n"
        "  blt r3, r4, inner\n"
        "  xloop.om r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "m: .space 1024\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("m", 256);
}

TEST(LpsuScan, ResidencySkipsInstructionRewrites)
{
    // The same xloop executed twice (outer traditional loop): the
    // second scan should not re-write instructions.
    const std::string src =
        "  li r20, 0\n"
        "  li r21, 2\n"
        "outer:\n"
        "  li r1, 0\n"
        "  li r2, 32\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  sw r1, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  addi r20, r20, 1\n"
        "  blt r20, r21, outer\n"
        "  halt\n"
        "  .data\n"
        "out: .space 128\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    const StatGroup &ls = spec.sys.lpsuModel().stats();
    EXPECT_EQ(ls.get("scans"), 2u);
    EXPECT_EQ(ls.get("scan_inst_writes"), 3u);  // body written once
}

TEST(LpsuMt, MultithreadingCorrectAndNotSlower)
{
    // RAW-stall-heavy uc body (dependent chain): vertical MT should
    // hide the stalls.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 256\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  mul r10, r1, r1\n"
        "  mul r11, r10, r1\n"
        "  add r12, r11, r10\n"
        "  sw r12, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 1024\n";
    DualRun mt(src, configs::ooo4X4t(), ExecMode::Specialized);
    DualRun base(src, configs::ooo4X(), ExecMode::Specialized);
    mt.expectRegionMatchesGolden("out", 256);
    EXPECT_LE(mt.result.cycles, base.result.cycles + 32);
}

TEST(LpsuDse, EightLanesFasterOnParallelWork)
{
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 512\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  add r10, r1, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  add r10, r10, r1\n"
        "  sw r10, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 2048\n";
    DualRun x4(src, configs::ooo4X(), ExecMode::Specialized);
    DualRun x8(src, configs::ooo4X8(), ExecMode::Specialized);
    x8.expectRegionMatchesGolden("out", 512);
    EXPECT_LT(x8.result.cycles, x4.result.cycles);
}

TEST(LpsuAdaptive, SlowSpecializationMigratesBackToGpp)
{
    // The CIR is read first and written last, so the in-order lanes
    // fully serialize; the body also carries independent work that a
    // 4-way OoO overlaps across iterations. ooo/4 traditional wins.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 2000\n"
        "  li r3, 1\n"          // CIR: read first, written last
        "  la r7, out\n"
        "body:\n"
        "  add r4, r3, r1\n"    // consume CIR early
        "  slli r8, r1, 2\n"    // 7 CIR-independent ops (OoO overlaps
        "  add r9, r7, r8\n"    // these across iterations)
        "  add r10, r1, r1\n"
        "  xor r10, r10, r8\n"
        "  or r11, r10, r1\n"
        "  and r12, r11, r10\n"
        "  add r12, r12, r11\n"
        "  slli r5, r4, 1\n"    // serial chain to the final CIR write
        "  xor r5, r5, r1\n"
        "  add r5, r5, r4\n"
        "  srli r6, r5, 2\n"
        "  add r3, r3, r6\n"    // last CIR write: long critical path
        "  sw r12, 0(r9)\n"
        "  xloop.or r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 8000\n";
    DualRun adaptive(src, configs::ooo4X(), ExecMode::Adaptive);
    DualRun spec(src, configs::ooo4X(), ExecMode::Specialized);
    DualRun trad(src, configs::ooo4X(), ExecMode::Traditional);
    adaptive.expectRegionMatchesGolden("out", 2000);
    // Specialization should be slower than traditional here, and
    // adaptive should land near the better (traditional) side.
    EXPECT_GT(spec.result.cycles, trad.result.cycles);
    EXPECT_LT(adaptive.result.cycles,
              spec.result.cycles + spec.result.cycles / 10);
    EXPECT_LT(adaptive.result.cycles,
              trad.result.cycles + trad.result.cycles / 3);
}

TEST(LpsuAdaptive, FastSpecializationStaysOnLpsu)
{
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 4000\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  mul r10, r1, r1\n"
        "  sw r10, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 16000\n";
    DualRun adaptive(src, configs::ioX(), ExecMode::Adaptive);
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    DualRun trad(src, configs::ioX(), ExecMode::Traditional);
    adaptive.expectRegionMatchesGolden("out", 4000);
    EXPECT_LT(spec.result.cycles, trad.result.cycles);
    // Adaptive pays the GPP profiling phase but must stay close to
    // pure specialized execution.
    EXPECT_LT(adaptive.result.cycles,
              spec.result.cycles + trad.result.cycles / 4);
}

TEST(LpsuHint, NoHintMeansNoSpecialization)
{
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 32\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  sw r1, 0(r9)\n"
        "  xloop.uc r1, r2, body, nohint\n"
        "  halt\n"
        "  .data\n"
        "out: .space 128\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 32);
    EXPECT_EQ(spec.result.xloopsSpecialized, 0u);
}

TEST(LpsuEdge, ZeroRemainingIterations)
{
    // Loop whose bound equals start+1: the GPP's first iteration is
    // the only one; the LPSU has nothing to do.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 1\n"
        "  la r7, out\n"
        "body:\n"
        "  sw r1, 0(r7)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .word 0\n";
    DualRun spec(src, configs::ioX(), ExecMode::Specialized);
    spec.expectRegionMatchesGolden("out", 1);
    EXPECT_EQ(spec.result.xloopsSpecialized, 0u);
}

TEST(LpsuStats, Fig6CategoriesArePopulated)
{
    DualRun spec(ksackLikeSrc, configs::ioX(), ExecMode::Specialized);
    const StatGroup &ls = spec.sys.lpsuModel().stats();
    EXPECT_GT(ls.get("lane_exec_cycles"), 0u);
    // The distance-2 memory dependence forces commit waits or
    // squashes on the far lanes.
    EXPECT_GT(ls.get("lane_commit_stall_cycles") + ls.get("squashes"), 0u);
}

} // namespace
} // namespace xloops
