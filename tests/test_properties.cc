// Property-based tests: randomly generated loop bodies (from a
// constrained generator, seeded and deterministic) must preserve the
// architectural contract of each xloop pattern on every
// microarchitecture:
//
//  - om/orm: specialized memory state identical to serial execution;
//  - or: CIR chains and all stores identical to serial execution;
//  - uc (race-free by construction): identical to serial execution;
//  - specialized uc execution is never slower than ~lane-count bound
//    and never pathologically slower than traditional execution.

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/rng.h"
#include "cpu/functional.h"
#include "system/system.h"

namespace xloops {
namespace {

constexpr unsigned datWords = 512;
constexpr unsigned iters = 96;

/** Emits a random but well-formed xloop body. */
class LoopGen
{
  public:
    LoopGen(u64 seed, LoopPattern pattern) : rng(seed), pat(pattern) {}

    std::string
    generate()
    {
        std::ostringstream os;
        os << "  li r1, 4\n";                 // start above the lookback
        os << "  li r2, " << 4 + iters << "\n";
        os << "  la r5, dat\n";
        if (usesCir())
            os << "  li r3, 1\n";             // CIR seed
        os << "body:\n";
        os << "  slli r10, r1, 2\n";
        os << "  add r10, r5, r10\n";         // &dat[i]

        initialized = {"r10"};
        haveValue = {"r10"};
        const unsigned steps = 3 + rng.nextBelow(8);
        for (unsigned s = 0; s < steps; s++)
            emitStep(os);
        // Every iteration stores something to its own element so runs
        // are comparable.
        os << "  sw " << pick() << ", 0(r10)\n";
        if (usesCir() && pat == LoopPattern::ORM)
            os << "  add r3, r3, " << pick() << "\n";

        os << "  " << xloopMnemonic() << " r1, r2, body\n";
        if (usesCir()) {
            os << "  la r20, cirout\n";
            os << "  sw r3, 0(r20)\n";
        }
        os << "  halt\n";
        os << "  .data\n";
        os << "dat: .space " << 4 * datWords << "\n";
        os << "cirout: .word 0\n";
        return os.str();
    }

  private:
    bool usesCir() const
    {
        return pat == LoopPattern::OR || pat == LoopPattern::ORM;
    }
    bool ordersMemory() const
    {
        return pat == LoopPattern::OM || pat == LoopPattern::ORM ||
               pat == LoopPattern::UA;
    }

    const char *
    xloopMnemonic() const
    {
        switch (pat) {
          case LoopPattern::UC: return "xloop.uc";
          case LoopPattern::OR: return "xloop.or";
          case LoopPattern::OM: return "xloop.om";
          case LoopPattern::ORM: return "xloop.orm";
          case LoopPattern::UA: return "xloop.ua";
        }
        return "?";
    }

    std::string
    pick()
    {
        if (haveValue.empty())
            return "r1";
        return haveValue[rng.nextBelow(
            static_cast<u32>(haveValue.size()))];
    }

    std::string
    freshTemp()
    {
        const std::string reg = "r" + std::to_string(11 + nextTemp);
        nextTemp = (nextTemp + 1) % 8;
        return reg;
    }

    void
    emitStep(std::ostringstream &os)
    {
        const unsigned kind = rng.nextBelow(12);
        if (kind >= 10) {
            // Forward branch guarding one simple statement: exercises
            // dynamically skipped CIR writes / stores.
            const std::string skip =
                "sk" + std::to_string(labelCounter++);
            os << "  andi r19, " << pick() << ", "
               << (1 + rng.nextBelow(3)) << "\n";
            os << "  beqz r19, " << skip << "\n";
            if (usesCir() && rng.nextBelow(2) == 0) {
                os << "  add r3, r3, " << pick() << "\n";  // guarded CIR
            } else if (ordersMemory()) {
                os << "  sw " << pick() << ", 0(r10)\n";  // guarded store
            } else {
                // A conditionally-defined temp must never be read (it
                // would be a live-in write, illegal in an xloop), so
                // write into a scratch register that is never picked.
                os << "  xor r21, " << pick() << ", " << pick()
                   << "\n";
            }
            os << skip << ":\n";
            return;
        }
        if (kind < 3) {
            // Load: uc may only touch its own element; ordered
            // patterns may look back up to 3 iterations.
            const int back =
                ordersMemory() ? -static_cast<int>(rng.nextBelow(4)) : 0;
            const std::string dst = freshTemp();
            os << "  lw " << dst << ", " << 4 * back << "(r10)\n";
            haveValue.push_back(dst);
        } else if (kind < 5 && ordersMemory()) {
            // Store with lookback (creates real cross-iteration
            // dependences for om/orm/ua).
            const int back = -static_cast<int>(rng.nextBelow(3));
            os << "  sw " << pick() << ", " << 4 * back << "(r10)\n";
        } else if (kind < 7 && usesCir() && pat == LoopPattern::OR) {
            // CIR update.
            os << "  add r3, r3, " << pick() << "\n";
            haveValue.push_back("r3");
        } else {
            static const char *ops[] = {"add", "sub", "xor", "and",
                                        "or"};
            const std::string dst = freshTemp();
            os << "  " << ops[rng.nextBelow(5)] << " " << dst << ", "
               << pick() << ", " << pick() << "\n";
            haveValue.push_back(dst);
        }
    }

    Rng rng;
    LoopPattern pat;
    std::vector<std::string> initialized;
    std::vector<std::string> haveValue;
    unsigned nextTemp = 0;
    unsigned labelCounter = 0;
};

void
fillDat(MainMemory &mem, const Program &prog, u64 seed)
{
    Rng rng(seed ^ 0x1234);
    for (unsigned i = 0; i < datWords; i++)
        mem.writeWord(prog.symbol("dat") + 4 * i, rng.nextBelow(1000));
}

struct PropertyParam
{
    LoopPattern pattern;
    u64 seed;
};

class RandomLoops : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(RandomLoops, SpecializedMatchesSerialEverywhere)
{
    const auto [pattern, seed] = GetParam();
    LoopGen gen(seed, pattern);
    const std::string src = gen.generate();
    const Program prog = assemble(src);

    MainMemory golden;
    prog.loadInto(golden);
    fillDat(golden, prog, seed);
    FunctionalExecutor exec(golden);
    exec.run(prog);

    for (const auto &cfg : {configs::ioX(), configs::ooo2X(),
                            configs::ooo4X8rm(), configs::ooo4X4t(),
                            configs::ioX2w(), configs::ioXf()}) {
        for (const ExecMode mode :
             {ExecMode::Specialized, ExecMode::Adaptive}) {
            XloopsSystem sys(cfg);
            sys.loadProgram(prog);
            fillDat(sys.memory(), prog, seed);
            sys.run(prog, mode);
            for (unsigned i = 0; i < datWords; i++) {
                ASSERT_EQ(sys.memory().readWord(prog.symbol("dat") + 4 * i),
                          golden.readWord(prog.symbol("dat") + 4 * i))
                    << cfg.name << "/" << execModeName(mode) << " seed "
                    << seed << " dat[" << i << "]\nsource:\n" << src;
            }
            ASSERT_EQ(sys.memory().readWord(prog.symbol("cirout")),
                      golden.readWord(prog.symbol("cirout")))
                << cfg.name << " seed " << seed;
        }
    }
}

TEST_P(RandomLoops, SpecializedMatchesSerialUnderInjection)
{
    // The same architectural contract must hold under adversarial
    // schedules: injected squashes, memory-latency jitter, structural
    // (CIB/LSQ) pressure, delayed broadcasts, and forced migrations
    // perturb timing only, never results.
    const auto [pattern, seed] = GetParam();
    LoopGen gen(seed, pattern);
    const std::string src = gen.generate();
    const Program prog = assemble(src);

    MainMemory golden;
    prog.loadInto(golden);
    fillDat(golden, prog, seed);
    FunctionalExecutor exec(golden);
    exec.run(prog);

    for (const double rate : {0.02, 0.10}) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.faults =
            FaultConfig::uniform(0x9e3779b97f4a7c15ull ^ seed, rate);
        for (const ExecMode mode :
             {ExecMode::Specialized, ExecMode::Adaptive}) {
            XloopsSystem sys(cfg);
            sys.loadProgram(prog);
            fillDat(sys.memory(), prog, seed);
            sys.run(prog, mode);
            for (unsigned i = 0; i < datWords; i++) {
                ASSERT_EQ(sys.memory().readWord(prog.symbol("dat") + 4 * i),
                          golden.readWord(prog.symbol("dat") + 4 * i))
                    << "inject rate " << rate << " "
                    << execModeName(mode) << " seed " << seed << " dat["
                    << i << "]\nsource:\n" << src;
            }
            ASSERT_EQ(sys.memory().readWord(prog.symbol("cirout")),
                      golden.readWord(prog.symbol("cirout")))
                << "inject rate " << rate << " seed " << seed;
        }
    }
}

TEST_P(RandomLoops, SpeedupWithinSaneBounds)
{
    const auto [pattern, seed] = GetParam();
    LoopGen gen(seed, pattern);
    const std::string src = gen.generate();
    const Program prog = assemble(src);

    auto cyclesOf = [&](const SysConfig &cfg, ExecMode mode) {
        XloopsSystem sys(cfg);
        sys.loadProgram(prog);
        fillDat(sys.memory(), prog, seed);
        return sys.run(prog, mode).cycles;
    };
    const Cycle trad = cyclesOf(configs::io(), ExecMode::Traditional);
    const Cycle spec = cyclesOf(configs::ioX(), ExecMode::Specialized);
    // Specialization can never beat lanes x ideal, and the scan
    // overhead on a ~100-iteration loop is bounded.
    EXPECT_GT(spec * 5, trad) << "impossible speedup, seed " << seed;
    if (pattern == LoopPattern::UC)
        EXPECT_LT(spec, trad + trad / 4) << "uc slowdown, seed " << seed;
}

std::vector<PropertyParam>
propertyGrid()
{
    std::vector<PropertyParam> grid;
    for (const LoopPattern pat :
         {LoopPattern::UC, LoopPattern::OR, LoopPattern::OM,
          LoopPattern::ORM, LoopPattern::UA}) {
        for (u64 seed = 1; seed <= 14; seed++)
            grid.push_back({pat, seed});
    }
    return grid;
}

std::string
propertyName(const ::testing::TestParamInfo<PropertyParam> &info)
{
    return std::string(patternName(info.param.pattern)) + "_seed" +
           std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Generated, RandomLoops,
                         ::testing::ValuesIn(propertyGrid()),
                         propertyName);

} // namespace
} // namespace xloops
