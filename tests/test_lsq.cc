// Direct unit tests for the per-lane speculative load-store queue:
// byte-accurate own-store forwarding, overlap detection, capacity,
// drain ordering, squash clearing, and value-based violation
// filtering.

#include <gtest/gtest.h>

#include "common/log.h"
#include "lpsu/lsq.h"
#include "mem/memory.h"

namespace xloops {
namespace {

TEST(LaneLsq, EmptyAndCapacity)
{
    LaneLsq lsq(2, 2);
    EXPECT_TRUE(lsq.empty());
    EXPECT_FALSE(lsq.loadsFull());
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 1));
    ASSERT_TRUE(lsq.pushLoad(0x104, 4, 2));
    EXPECT_TRUE(lsq.loadsFull());
    EXPECT_FALSE(lsq.storesFull());
    ASSERT_TRUE(lsq.pushStore(0x200, 4, 7));
    ASSERT_TRUE(lsq.pushStore(0x204, 4, 8));
    EXPECT_TRUE(lsq.storesFull());
    EXPECT_EQ(lsq.numLoads(), 2u);
    EXPECT_EQ(lsq.numStores(), 2u);
}

TEST(LaneLsq, OverflowIsAStructuralStallNotAPanic)
{
    // Capacity pressure is an expected condition the lane handles
    // (squash-and-retry); enqueue signals it instead of aborting,
    // and the rejected access leaves the queue untouched.
    LaneLsq lsq(1, 1);
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 0));
    EXPECT_FALSE(lsq.pushLoad(0x104, 4, 0));
    EXPECT_EQ(lsq.numLoads(), 1u);
    EXPECT_FALSE(lsq.loadOverlaps(0x104, 4));
    ASSERT_TRUE(lsq.pushStore(0x200, 4, 0));
    EXPECT_FALSE(lsq.pushStore(0x204, 4, 0));
    EXPECT_EQ(lsq.numStores(), 1u);
    EXPECT_FALSE(lsq.fullyCovered(0x204, 4));
}

TEST(LaneLsq, ExactForwarding)
{
    MainMemory mem;
    mem.writeWord(0x100, 0x11111111);
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 0x22222222));
    EXPECT_TRUE(lsq.fullyCovered(0x100, 4));
    EXPECT_EQ(lsq.coveredRead(mem, 0x100, 4), 0x22222222u);
}

TEST(LaneLsq, PartialCoverageComposesWithMemory)
{
    MainMemory mem;
    mem.writeWord(0x100, 0xaabbccdd);
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushStore(0x101, 1, 0xee));  // overwrite byte 1 only
    EXPECT_FALSE(lsq.fullyCovered(0x100, 4));
    EXPECT_EQ(lsq.coveredRead(mem, 0x100, 4), 0xaabbeeddu);
}

TEST(LaneLsq, LaterStoresWin)
{
    MainMemory mem;
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 0x11111111));
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 0x22222222));
    EXPECT_EQ(lsq.coveredRead(mem, 0x100, 4), 0x22222222u);
    // Narrow later store patches only its bytes.
    ASSERT_TRUE(lsq.pushStore(0x102, 2, 0x9999));
    EXPECT_EQ(lsq.coveredRead(mem, 0x100, 4), 0x99992222u);
}

TEST(LaneLsq, LoadOverlapDetection)
{
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 0));
    EXPECT_TRUE(lsq.loadOverlaps(0x100, 4));
    EXPECT_TRUE(lsq.loadOverlaps(0x102, 2));
    EXPECT_TRUE(lsq.loadOverlaps(0xfc, 8));
    EXPECT_FALSE(lsq.loadOverlaps(0x104, 4));
    EXPECT_FALSE(lsq.loadOverlaps(0xfc, 4));
}

TEST(LaneLsq, DrainPreservesProgramOrder)
{
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 1));
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 2));
    ASSERT_TRUE(lsq.pushStore(0x104, 4, 3));
    const LsqAccess a = lsq.popOldestStore();
    const LsqAccess b = lsq.popOldestStore();
    const LsqAccess c = lsq.popOldestStore();
    EXPECT_EQ(a.value, 1u);
    EXPECT_EQ(b.value, 2u);
    EXPECT_EQ(c.value, 3u);
    EXPECT_FALSE(lsq.hasStores());
    EXPECT_THROW(lsq.popOldestStore(), PanicError);
}

TEST(LaneLsq, ClearAndClearLoads)
{
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 0));
    ASSERT_TRUE(lsq.pushStore(0x200, 4, 1));
    lsq.clearLoads();
    EXPECT_EQ(lsq.numLoads(), 0u);
    EXPECT_TRUE(lsq.hasStores());
    lsq.clear();
    EXPECT_TRUE(lsq.empty());
}

TEST(LaneLsq, ValueBasedFilteringDetectsRealChanges)
{
    MainMemory mem;
    mem.writeWord(0x100, 50);
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 50));  // observed the old value
    // Producer now stores the same value: benign violation.
    EXPECT_FALSE(lsq.loadsWouldChange(mem, 0x100, 4));
    // Producer changes the value: genuine violation.
    mem.writeWord(0x100, 51);
    EXPECT_TRUE(lsq.loadsWouldChange(mem, 0x100, 4));
    // Non-overlapping store never matters.
    EXPECT_FALSE(lsq.loadsWouldChange(mem, 0x200, 4));
}

TEST(LaneLsq, ValueFilteringHonoursOwnStores)
{
    // The lane's own store shadows memory: even if memory changed,
    // a re-executed load would still see the own-store value.
    MainMemory mem;
    mem.writeWord(0x100, 50);
    LaneLsq lsq(8, 8);
    ASSERT_TRUE(lsq.pushStore(0x100, 4, 77));
    ASSERT_TRUE(lsq.pushLoad(0x100, 4, 77));
    mem.writeWord(0x100, 99);
    EXPECT_FALSE(lsq.loadsWouldChange(mem, 0x100, 4));
}

} // namespace
} // namespace xloops
