// Write-ahead job journal unit tests: the CRC32 framing (including
// the known-answer vector shared with tools/check_journal.py), torn
// tail truncation after a simulated kill -9, rejection of a record
// whose bytes rotted in place, replay idempotence (the property that
// makes recovery safe to re-run), and the lifecycle classification
// recoverPending() derives for the supervisor. Plus the atomic file
// replacement primitive everything durable is built on.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/log.h"
#include "common/serialize.h"
#include "service/job.h"
#include "service/journal.h"

namespace xloops {
namespace {

JobSpec
specimen(const std::string &kernel = "rgb2cmyk-uc")
{
    JobSpec s;
    s.kernel = kernel;
    s.config = "io+x";
    s.mode = "S";
    return s;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeAll(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

// ------------------------------------------------------------ primitives

TEST(Crc32, MatchesTheIeeeKnownAnswer)
{
    // The classic CRC-32 check vector — zlib.crc32(b"123456789")
    // gives the same value, which is what lets check_journal.py
    // verify journals from Python.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0u);

    // Chaining via the seed equals one pass over the concatenation.
    const u32 whole = crc32(std::string("xloops-journal"));
    const u32 chained =
        crc32(std::string("journal"), crc32(std::string("xloops-")));
    EXPECT_EQ(chained, whole);
}

TEST(AtomicWriteFile, ReplacesContentCompletely)
{
    const std::string path = tmpPath("atomic_write.txt");
    atomicWriteFile(path, "first version\n");
    EXPECT_EQ(readAll(path), "first version\n");
    atomicWriteFile(path, "v2");
    EXPECT_EQ(readAll(path), "v2");

    // The temporary sibling must not survive a successful write.
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
    EXPECT_FALSE(tmp.good());
}

// --------------------------------------------------------------- framing

TEST(Journal, RoundTripsRecordsThroughReplay)
{
    const std::string path = tmpPath("journal_roundtrip.jnl");
    writeAll(path, "");  // truncate any previous run's file
    {
        Journal j(path);
        const JobSpec spec = specimen();
        j.append(JournalEvent::Accepted, 1, "", 0, &spec, true);
        j.append(JournalEvent::Started, 1);
        j.append(JournalEvent::Attempt, 1, "", 1);
        j.append(JournalEvent::Completed, 1, "", 1, nullptr, true);
        EXPECT_EQ(j.recordsWritten(), 5u);  // + the open header
        EXPECT_GE(j.fsyncs(), 3u);          // open, accept, terminal
    }

    const JournalReplay replay = replayJournal(path);
    EXPECT_FALSE(replay.tornTail);
    ASSERT_EQ(replay.records.size(), 5u);
    EXPECT_EQ(replay.records[0].ev, JournalEvent::Open);
    EXPECT_EQ(replay.records[1].ev, JournalEvent::Accepted);
    EXPECT_EQ(replay.records[1].jobId, 1u);
    EXPECT_FALSE(replay.records[1].specJson.empty());
    EXPECT_EQ(replay.records[3].attempt, 1u);
    EXPECT_EQ(replay.records[4].ev, JournalEvent::Completed);

    // The embedded spec survives the round trip intact.
    const JournalRecovery rec = recoverPending(replay);
    EXPECT_TRUE(rec.pending.empty());
    EXPECT_EQ(rec.completed, 1u);
}

TEST(Journal, MissingFileIsAColdStart)
{
    const JournalReplay replay =
        replayJournal(tmpPath("no_such_journal.jnl"));
    EXPECT_TRUE(replay.records.empty());
    EXPECT_FALSE(replay.tornTail);
    EXPECT_TRUE(recoverPending(replay).pending.empty());
}

TEST(Journal, TornTailIsTruncatedNotFatal)
{
    const std::string path = tmpPath("journal_torn.jnl");
    writeAll(path, "");
    {
        Journal j(path);
        const JobSpec spec = specimen();
        j.append(JournalEvent::Accepted, 1, "", 0, &spec, true);
        j.append(JournalEvent::Completed, 1, "", 1, nullptr, true);
    }
    // kill -9 mid-append: the final record stops mid-line.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "xj1 deadbeef {\"seq\":99,\"t_us\":1,\"ev\":\"acc";
    }

    const JournalReplay replay = replayJournal(path);
    EXPECT_TRUE(replay.tornTail);
    EXPECT_GT(replay.tornBytes, 0u);
    ASSERT_EQ(replay.records.size(), 3u)
        << "every record before the tear survives";
    EXPECT_TRUE(recoverPending(replay).pending.empty());
}

TEST(Journal, CrcCorruptedRecordStopsReplay)
{
    const std::string path = tmpPath("journal_rot.jnl");
    writeAll(path, "");
    {
        Journal j(path);
        const JobSpec spec = specimen();
        j.append(JournalEvent::Accepted, 1, "", 0, &spec, true);
        j.append(JournalEvent::Started, 1);
        j.append(JournalEvent::Completed, 1, "", 1, nullptr, true);
    }

    // Flip one payload byte of the Started record (line 3). Its CRC
    // no longer matches, so replay must stop *before* it — WAL
    // semantics: nothing after a bad record can be trusted.
    std::string text = readAll(path);
    size_t line = 0, seen = 0;
    for (size_t i = 0; i < text.size(); i++) {
        if (seen == 2 && text.compare(i, 9, "\"started\"") == 0) {
            text[i + 1] = 'X';
            line = i;
            break;
        }
        if (text[i] == '\n')
            seen++;
    }
    ASSERT_NE(line, 0u) << "test bug: started record not found";
    writeAll(path, text);

    const JournalReplay replay = replayJournal(path);
    EXPECT_TRUE(replay.tornTail);
    ASSERT_EQ(replay.records.size(), 2u)
        << "open + accepted survive; the rotten record and everything "
           "after it are dropped";

    // With the terminal record unreachable, the job is conservatively
    // pending again — at-least-once execution, never lost.
    const JournalRecovery rec = recoverPending(replay);
    ASSERT_EQ(rec.pending.size(), 1u);
    EXPECT_EQ(rec.pending[0].oldJobId, 1u);
}

// -------------------------------------------------------------- recovery

TEST(Journal, RecoveryClassifiesLifecycles)
{
    const std::string path = tmpPath("journal_classify.jnl");
    writeAll(path, "");
    {
        Journal j(path);
        const JobSpec a = specimen();
        const JobSpec b = specimen("sgemm-uc");
        const JobSpec c = specimen("ssearch-uc");
        const JobSpec d = specimen();
        // Job 1: accepted only — crashed before any worker took it.
        j.append(JournalEvent::Accepted, 1, "", 0, &a, true);
        // Job 2: mid-attempt (accepted, started, attempt 2).
        j.append(JournalEvent::Accepted, 2, "", 0, &b, true);
        j.append(JournalEvent::Started, 2);
        j.append(JournalEvent::Attempt, 2, "", 1);
        j.append(JournalEvent::Backoff, 2, "100ms", 1);
        j.append(JournalEvent::Attempt, 2, "", 2);
        // Job 3: finished — must NOT be recovered.
        j.append(JournalEvent::Accepted, 3, "", 0, &c, true);
        j.append(JournalEvent::Started, 3);
        j.append(JournalEvent::Completed, 3, "", 1, nullptr, true);
        // Job 4: shed at admission — terminal, not recovered.
        j.append(JournalEvent::Accepted, 4, "", 0, &d, true);
        j.append(JournalEvent::Shed, 4, "queue full", 0, nullptr, true);
    }

    const JournalReplay replay = replayJournal(path);
    const JournalRecovery rec = recoverPending(replay);
    ASSERT_EQ(rec.pending.size(), 2u);
    EXPECT_EQ(rec.completed, 1u);
    EXPECT_EQ(rec.shed, 1u);

    EXPECT_EQ(rec.pending[0].oldJobId, 1u);
    EXPECT_FALSE(rec.pending[0].started);
    EXPECT_EQ(rec.pending[0].attempts, 0u);
    EXPECT_EQ(rec.pending[0].spec.kernel, "rgb2cmyk-uc");

    EXPECT_EQ(rec.pending[1].oldJobId, 2u);
    EXPECT_TRUE(rec.pending[1].started);
    EXPECT_EQ(rec.pending[1].attempts, 2u);
    EXPECT_EQ(rec.pending[1].spec.kernel, "sgemm-uc");
}

TEST(Journal, ReplayIsIdempotent)
{
    const std::string path = tmpPath("journal_idem.jnl");
    writeAll(path, "");
    {
        Journal j(path);
        const JobSpec a = specimen();
        const JobSpec b = specimen("sgemm-uc");
        j.append(JournalEvent::Accepted, 1, "", 0, &a, true);
        j.append(JournalEvent::Started, 1);
        j.append(JournalEvent::Accepted, 2, "", 0, &b, true);
        j.append(JournalEvent::Failed, 1, "watchdog", 3, nullptr, true);
    }

    // Replaying twice (a recovery that itself crashed and re-ran)
    // must derive the identical pending set — recovery is a pure
    // function of the on-disk bytes, with no hidden state.
    const JournalRecovery r1 = recoverPending(replayJournal(path));
    const JournalRecovery r2 = recoverPending(replayJournal(path));
    ASSERT_EQ(r1.pending.size(), 1u);
    ASSERT_EQ(r2.pending.size(), r1.pending.size());
    EXPECT_EQ(r1.pending[0].oldJobId, r2.pending[0].oldJobId);
    EXPECT_EQ(r1.pending[0].started, r2.pending[0].started);
    EXPECT_EQ(r1.pending[0].attempts, r2.pending[0].attempts);
    EXPECT_EQ(r1.pending[0].spec.kernel, r2.pending[0].spec.kernel);
    EXPECT_EQ(r1.failed, r2.failed);
}

} // namespace
} // namespace xloops
