// Differential lockstep verification tests: kernel sweeps across
// execution modes and fault seeds asserting shadow/timing equivalence
// (or a well-formed Divergence for kernels whose patterns legitimately
// leave serial semantics), divergence payload structure, the seeded
// architectural-corruption end-to-end capsule demo, and replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/sim_error.h"
#include "kernels/kernel.h"
#include "system/capsule.h"
#include "system/lockstep.h"
#include "system/system.h"

namespace xloops {
namespace {

RunOptions
lockstepOpts()
{
    RunOptions opts;
    opts.lockstep = true;
    return opts;
}

KernelRun
runLockstep(const std::string &kernel, const SysConfig &cfg, ExecMode mode)
{
    const RunOptions opts = lockstepOpts();
    RunHooks hooks;
    hooks.runOptions = &opts;
    return runKernel(kernelByName(kernel), cfg, mode, false, hooks);
}

// --------------------------------------------------------------------
// Lockstep equivalence sweeps
// --------------------------------------------------------------------

// Serial-equivalent kernels (one per pattern family): lockstep must
// pass in every execution mode on both an in-order and an OoO host.
const char *const serialEquivalentKernels[] = {
    "rgb2cmyk-uc", "sgemm-uc", "adpcm-or", "kmeans-or",
    "dynprog-om",  "mm-orm",   "hsort-ua",
};

TEST(Lockstep, SerialEquivalentKernelsAllModes)
{
    for (const char *name : serialEquivalentKernels) {
        for (const ExecMode mode :
             {ExecMode::Traditional, ExecMode::Specialized,
              ExecMode::Adaptive}) {
            const KernelRun run = runLockstep(name, configs::ioX(), mode);
            EXPECT_TRUE(run.passed)
                << name << " mode " << execModeName(mode) << ": "
                << run.error;
        }
    }
}

TEST(Lockstep, SerialEquivalentKernelsOooHost)
{
    for (const char *name : {"viterbi-uc", "sha-or", "stencil-om"}) {
        const KernelRun run =
            runLockstep(name, configs::ooo2X(), ExecMode::Specialized);
        EXPECT_TRUE(run.passed) << name << ": " << run.error;
    }
}

// Timing-only fault injection shakes the schedule but never the
// architecture: ordered-pattern kernels must stay lockstep-equivalent
// under every seed (the injector's core contract).
TEST(Lockstep, TimingFaultsPreserveEquivalence)
{
    for (const u64 seed : {3u, 5u, 9u}) {
        SysConfig cfg = configs::ioX();
        cfg.lpsu.faults = FaultConfig::uniform(seed, 0.05);
        for (const char *name : {"adpcm-or", "dynprog-om", "mm-orm"}) {
            const KernelRun run =
                runLockstep(name, cfg, ExecMode::Specialized);
            EXPECT_TRUE(run.passed)
                << name << " seed " << seed << ": " << run.error;
        }
    }
}

// Unordered worklist kernels (uc with dynamic-bound appends) may
// legitimately produce valid non-serial-equivalent schedules: lockstep
// either passes or raises a *well-formed* Divergence — never anything
// else.
TEST(Lockstep, WorklistKernelsCleanOrWellFormedDivergence)
{
    for (const char *name : {"bfs-uc-db", "qsort-uc-db"}) {
        try {
            const KernelRun run =
                runLockstep(name, configs::ioX(), ExecMode::Specialized);
            EXPECT_TRUE(run.passed) << name << ": " << run.error;
        } catch (const DivergenceError &e) {
            const DivergenceInfo &d = e.divergence();
            EXPECT_EQ(e.kind(), SimErrorKind::Divergence);
            EXPECT_EQ(e.exitCode(), 5);
            EXPECT_FALSE(d.site.empty());
            EXPECT_NE(d.pc, 0u);
            EXPECT_TRUE(d.regMismatch || d.memMismatch);
            EXPECT_TRUE(d.sameAs(d));
        }
    }
}

// --------------------------------------------------------------------
// Divergence payload
// --------------------------------------------------------------------

TEST(Divergence, SameAsComparesIdentityNotInstIndex)
{
    DivergenceInfo a;
    a.site = "xloop-exit";
    a.pc = 0x1040;
    a.instIndex = 100;
    a.iteration = 7;
    a.regMismatch = true;
    a.reg = 3;
    a.mainValue = 1;
    a.shadowValue = 2;

    DivergenceInfo b = a;
    b.instIndex = 50;  // detection point may differ between runs
    EXPECT_TRUE(a.sameAs(b));

    b = a;
    b.reg = 4;
    EXPECT_FALSE(a.sameAs(b));
    b = a;
    b.site = "halt";
    EXPECT_FALSE(a.sameAs(b));
    b = a;
    b.iteration = 8;
    EXPECT_FALSE(a.sameAs(b));
}

// A lockstep run actually compares: the checker is not a no-op.
TEST(Lockstep, CheckerComparesEveryCommit)
{
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 16\nbody:\n"
        "  addi r3, r1, 5\n  xloop.uc r1, r2, body\n  halt\n");
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    const SysResult res =
        sys.run(prog, ExecMode::Specialized, 500'000'000, lockstepOpts());
    EXPECT_GT(res.gppInsts, 0u);
}

// An architecturally corrupted hand-back is caught *at the loop*, not
// by the end-of-run checker: the corrupted register is named.
TEST(Lockstep, ArchCorruptionRaisesDivergenceAtLoopExit)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults.seed = 1;
    cfg.lpsu.faults.archCorruptRate = 1.0;
    try {
        runLockstep("kmeans-or", cfg, ExecMode::Specialized);
        FAIL() << "corrupted hand-back escaped the lockstep checker";
    } catch (const DivergenceError &e) {
        const DivergenceInfo &d = e.divergence();
        EXPECT_EQ(d.site, "xloop-exit");
        EXPECT_TRUE(d.regMismatch);
        EXPECT_NE(d.reg, 0);
        EXPECT_NE(d.mainValue, d.shadowValue);
        EXPECT_GE(d.iteration, 0);
    }
}

// Without lockstep the same corrupted run must still be caught by the
// end-of-run golden checker OR surface as a wrong answer — but with
// lockstep, detection happens mid-run with a machine snapshot.
TEST(Lockstep, CorruptionDetectionIsMidRun)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults.seed = 1;
    cfg.lpsu.faults.archCorruptRate = 1.0;
    try {
        runLockstep("kmeans-or", cfg, ExecMode::Specialized);
        FAIL() << "expected DivergenceError";
    } catch (const DivergenceError &e) {
        EXPECT_GT(e.snapshot().gppInsts, 0u);
        EXPECT_FALSE(e.snapshot().context.empty());
    }
}

// --------------------------------------------------------------------
// End-to-end: divergence capsule -> replay reproduces identically
// --------------------------------------------------------------------

TEST(CapsuleE2E, SeededCorruptionCapsuleReplaysIdentically)
{
    const std::string path = "test_differential_capsule.json";

    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults.seed = 1;
    cfg.lpsu.faults.archCorruptRate = 1.0;

    CapsuleRunSpec spec;
    spec.configName = "io+x";
    spec.modeName = "S";
    spec.workload = "kmeans-or";
    spec.lockstep = true;
    spec.injectSeed = 1;
    spec.injectRate = 0.0;
    spec.archCorruptRate = 1.0;

    RunOptions opts = lockstepOpts();
    opts.checkpointEvery = 50;  // keep one in memory for the capsule
    CapsuleContext ctx;
    RunHooks hooks;
    hooks.runOptions = &opts;
    hooks.capsule = &ctx;

    DivergenceInfo recorded;
    try {
        runKernel(kernelByName("kmeans-or"), cfg, ExecMode::Specialized,
                  false, hooks);
        FAIL() << "expected DivergenceError";
    } catch (const DivergenceError &e) {
        recorded = e.divergence();
        ASSERT_TRUE(ctx.valid);
        EXPECT_FALSE(ctx.lastCheckpoint.empty());
        EXPECT_GT(ctx.lastCheckpointInst, 0u);
        writeCapsule(path, spec, ctx, e);
    }

    // The capsule is complete and self-describing.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const JsonValue v = jsonParse(buf.str());
    EXPECT_EQ(v.at("schema").asString(), "xloops-capsule-1");
    EXPECT_EQ(v.at("config").asString(), "io+x");
    EXPECT_EQ(v.at("error").at("kind").asString(), "divergence");
    EXPECT_EQ(v.at("error").at("exit_code").asU64(), 5u);
    ASSERT_TRUE(v.at("error").has("divergence"));
    EXPECT_TRUE(v.has("program"));
    EXPECT_TRUE(v.has("initial_mem"));
    EXPECT_TRUE(v.has("checkpoint"));

    // Replay re-executes, verifies the identical first divergence
    // (same site, loop pc, iteration, register), re-verifies from the
    // embedded checkpoint, and bisects. Exit 0 = fully reproduced.
    EXPECT_EQ(replayCapsule(path), 0);

    // The recorded divergence names the corrupted register precisely.
    EXPECT_EQ(recorded.site, "xloop-exit");
    EXPECT_TRUE(recorded.regMismatch);

    std::remove(path.c_str());
}

// A tampered capsule (different divergence identity) must NOT replay
// as identical.
TEST(CapsuleE2E, TamperedCapsuleFailsReplay)
{
    const std::string path = "test_differential_tampered.json";

    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults.seed = 1;
    cfg.lpsu.faults.archCorruptRate = 1.0;

    CapsuleRunSpec spec;
    spec.configName = "io+x";
    spec.modeName = "S";
    spec.workload = "kmeans-or";
    spec.lockstep = true;
    spec.injectSeed = 999;  // wrong seed: different corruption site
    spec.injectRate = 0.0;
    spec.archCorruptRate = 1.0;

    RunOptions opts = lockstepOpts();
    CapsuleContext ctx;
    RunHooks hooks;
    hooks.runOptions = &opts;
    hooks.capsule = &ctx;
    try {
        runKernel(kernelByName("kmeans-or"), cfg, ExecMode::Specialized,
                  false, hooks);
        FAIL() << "expected DivergenceError";
    } catch (const DivergenceError &e) {
        writeCapsule(path, spec, ctx, e);
    }
    EXPECT_NE(replayCapsule(path), 0);
    std::remove(path.c_str());
}

} // namespace
} // namespace xloops
