// Energy and VLSI analytical model tests: table arithmetic, the
// paper's calibration anchors (IB 10x cheaper than I$, ~43% area
// overhead for the primary LPSU design), and end-to-end energy
// ordering between configurations.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "energy/energy.h"
#include "system/system.h"
#include "vlsi/vlsi_model.h"

namespace xloops {
namespace {

TEST(EnergyTable, IbIsTenTimesCheaperThanIcache)
{
    const EnergyTable tbl;
    EXPECT_NEAR(tbl.icacheAccess / tbl.ibAccess, 10.0, 0.01);
}

TEST(EnergyModel, ZeroStatsZeroEnergy)
{
    EnergyModel model;
    StatGroup stats;
    const EnergyBreakdown e = model.dynamicEnergy(configs::io(), stats);
    EXPECT_DOUBLE_EQ(e.totalNj(), 0.0);
}

TEST(EnergyModel, OooCostsMorePerInstructionThanInOrder)
{
    EnergyModel model;
    StatGroup stats;
    stats.set("insts", 1000);
    stats.set("loads", 100);
    stats.set("stores", 50);
    stats.set("branches", 100);
    const double io = model.dynamicEnergy(configs::io(), stats).totalNj();
    const double o2 = model.dynamicEnergy(configs::ooo2(), stats).totalNj();
    const double o4 = model.dynamicEnergy(configs::ooo4(), stats).totalNj();
    EXPECT_GT(o2, io * 1.2);
    EXPECT_GT(o4, o2);
}

TEST(EnergyModel, LaneInstructionsCheaperThanGppInstructions)
{
    EnergyModel model;
    StatGroup gppStats;
    gppStats.set("insts", 1000);
    StatGroup laneStats;
    laneStats.set("lane_insts", 1000);
    const double gpp =
        model.dynamicEnergy(configs::io(), gppStats).totalNj();
    const double lane =
        model.dynamicEnergy(configs::ioX(), laneStats).totalNj();
    // The icache-vs-IB difference dominates per-instruction energy.
    EXPECT_LT(lane, gpp * 0.55);
}

TEST(EnergyModel, EndToEndSpecializedBeatsOooEfficiency)
{
    // Same kernel run on ooo/2 (GP) and ooo/2+x specialized: energy
    // per unit work must be lower when specialized (paper Fig. 8b).
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 512\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  add r10, r1, r1\n"
        "  add r10, r10, r1\n"
        "  xor r10, r10, r8\n"
        "  sw r10, 0(r9)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 2048\n";
    const Program prog = assemble(src);
    EnergyModel model;

    XloopsSystem gp(configs::ooo2());
    gp.loadProgram(prog);
    const SysResult gpRes = gp.run(prog, ExecMode::Traditional);
    const double gpNj =
        model.dynamicEnergy(configs::ooo2(), gpRes.stats).totalNj();

    XloopsSystem sp(configs::ooo2X());
    sp.loadProgram(prog);
    const SysResult spRes = sp.run(prog, ExecMode::Specialized);
    const double spNj =
        model.dynamicEnergy(configs::ooo2X(), spRes.stats).totalNj();

    EXPECT_LT(spNj, gpNj);
    EXPECT_GT(EnergyModel::relativeEfficiency(gpNj, spNj), 1.2);
}

TEST(Vlsi, PrimaryDesignMatchesTableVAnchors)
{
    const VlsiEstimate primary = vlsiEstimate(4, 128);
    // Paper: lpsu+i128+ln4 total 0.36 mm^2, 43% larger than the
    // 0.25 mm^2 scalar GPP, cycle time ~2.14 ns.
    EXPECT_NEAR(primary.totalAreaMm2, 0.36, 0.01);
    EXPECT_NEAR(primary.areaOverhead, 0.43, 0.03);
    EXPECT_NEAR(primary.cycleTimeNs, 2.14, 0.03);
}

TEST(Vlsi, AreaGrowsLinearlyWithLanes)
{
    const double a2 = vlsiEstimate(2, 128).totalAreaMm2;
    const double a4 = vlsiEstimate(4, 128).totalAreaMm2;
    const double a6 = vlsiEstimate(6, 128).totalAreaMm2;
    const double a8 = vlsiEstimate(8, 128).totalAreaMm2;
    EXPECT_NEAR(a4 - a2, a6 - a4, 1e-9);
    EXPECT_NEAR(a6 - a4, a8 - a6, 1e-9);
    // Paper's endpoints: 0.31 (ln2) .. ~0.44-0.46 (ln8).
    EXPECT_NEAR(a2, 0.31, 0.01);
    EXPECT_NEAR(a8, 0.45, 0.02);
}

TEST(Vlsi, IbSizeHasWeakAreaEffect)
{
    const double i96 = vlsiEstimate(4, 96).totalAreaMm2;
    const double i192 = vlsiEstimate(4, 192).totalAreaMm2;
    // Paper: 0.35 -> 0.37 over a 2x IB range (41-48% overhead).
    EXPECT_NEAR(i96, 0.35, 0.01);
    EXPECT_NEAR(i192, 0.37, 0.01);
    const double over96 = vlsiEstimate(4, 96).areaOverhead;
    const double over192 = vlsiEstimate(4, 192).areaOverhead;
    EXPECT_GT(over96, 0.38);
    EXPECT_LT(over192, 0.50);
}

TEST(Vlsi, CycleTimeGrowsWithLanes)
{
    EXPECT_LT(vlsiEstimate(2, 128).cycleTimeNs,
              vlsiEstimate(8, 128).cycleTimeNs);
    EXPECT_NEAR(vlsiEstimate(2, 128).cycleTimeNs, 1.98, 0.03);
}

TEST(Vlsi, TableVSweepHasSevenRows)
{
    const auto rows = tableVSweep();
    EXPECT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[1].name, "lpsu+i128+ln4");
}

} // namespace
} // namespace xloops
