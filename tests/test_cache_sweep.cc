// Parameterized sweep of the L1 cache timing model: geometry
// invariants (hit after fill, conflict behaviour, capacity misses)
// must hold across sizes, associativities, and line sizes.

#include <gtest/gtest.h>

#include "mem/cache.h"

namespace xloops {
namespace {

struct CacheParam
{
    u32 sizeBytes;
    u32 assoc;
    u32 lineBytes;
};

class CacheSweep : public ::testing::TestWithParam<CacheParam>
{
  protected:
    CacheConfig
    cfg() const
    {
        CacheConfig c;
        c.sizeBytes = GetParam().sizeBytes;
        c.assoc = GetParam().assoc;
        c.lineBytes = GetParam().lineBytes;
        return c;
    }
};

TEST_P(CacheSweep, FirstAccessMissesSecondHits)
{
    L1Cache cache(cfg());
    EXPECT_GT(cache.access(0x4000, false), cfg().hitLatency);
    EXPECT_EQ(cache.access(0x4000, false), cfg().hitLatency);
    // Same line, different offset.
    EXPECT_EQ(cache.access(0x4000 + cfg().lineBytes - 1, false),
              cfg().hitLatency);
}

TEST_P(CacheSweep, WholeCacheIsResident)
{
    L1Cache cache(cfg());
    // Touch exactly capacity worth of lines, then re-touch: all hits.
    const u32 lines = cfg().sizeBytes / cfg().lineBytes;
    for (u32 l = 0; l < lines; l++)
        cache.access(l * cfg().lineBytes, false);
    for (u32 l = 0; l < lines; l++)
        EXPECT_EQ(cache.access(l * cfg().lineBytes, false),
                  cfg().hitLatency) << l;
}

TEST_P(CacheSweep, TwiceCapacityThrashes)
{
    L1Cache cache(cfg());
    const u32 lines = 2 * cfg().sizeBytes / cfg().lineBytes;
    // Two sequential passes over 2x capacity with LRU: every access
    // of the second pass misses again.
    for (u32 pass = 0; pass < 2; pass++)
        for (u32 l = 0; l < lines; l++)
            cache.access(l * cfg().lineBytes, false);
    const u64 misses = cache.stats().get("read_misses");
    EXPECT_EQ(misses, 2ull * lines);
}

TEST_P(CacheSweep, ConflictSetBehaviour)
{
    L1Cache cache(cfg());
    const u32 numSets = cfg().sizeBytes / (cfg().lineBytes * cfg().assoc);
    const u32 setStride = numSets * cfg().lineBytes;
    // assoc lines mapping to set 0 fit; assoc+1 evict.
    for (u32 w = 0; w < cfg().assoc; w++)
        cache.access(w * setStride, false);
    for (u32 w = 0; w < cfg().assoc; w++)
        EXPECT_EQ(cache.access(w * setStride, false), cfg().hitLatency);
    cache.access(cfg().assoc * setStride, false);
    EXPECT_EQ(cache.stats().get("evictions"), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheParam{16 * 1024, 2, 32},
                      CacheParam{16 * 1024, 4, 64},
                      CacheParam{8 * 1024, 1, 32},
                      CacheParam{32 * 1024, 8, 32},
                      CacheParam{4 * 1024, 2, 16},
                      CacheParam{64 * 1024, 4, 128}),
    [](const ::testing::TestParamInfo<CacheParam> &info) {
        return "s" + std::to_string(info.param.sizeBytes / 1024) + "k_a" +
               std::to_string(info.param.assoc) + "_l" +
               std::to_string(info.param.lineBytes);
    });

} // namespace
} // namespace xloops
