// Accounting invariants: the Figure 6 breakdown is trustworthy only
// if every lane-cycle is attributed to exactly one category, so for
// every kernel the category counters must sum to lanes x LPSU cycles.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "energy/energy.h"
#include "kernels/kernel.h"

namespace xloops {
namespace {

class LaneAccounting : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LaneAccounting, EveryLaneCycleAttributedOnce)
{
    const Kernel &k = kernelByName(GetParam());
    const SysConfig cfg = configs::ioX();
    const Program prog = assemble(k.source);
    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    if (k.setup)
        k.setup(sys.memory(), prog);
    sys.run(prog, ExecMode::Specialized);

    const StatGroup &s = sys.lpsuModel().stats();
    const u64 attributed =
        s.get("lane_exec_cycles") + s.get("lane_raw_stall_cycles") +
        s.get("lane_cir_stall_cycles") + s.get("lane_cib_stall_cycles") +
        s.get("lane_memport_stall_cycles") +
        s.get("lane_llfu_stall_cycles") + s.get("lane_lsq_stall_cycles") +
        s.get("lane_commit_stall_cycles") +
        s.get("lane_amo_stall_cycles") + s.get("lane_idle_cycles") +
        s.get("lane_other_stall_cycles");
    const u64 laneCycles = cfg.lpsu.lanes * s.get("lpsu_exec_cycles");
    EXPECT_EQ(attributed, laneCycles);

    // Iterations executed = committed iterations (plus any squashed
    // re-executions, which are counted separately).
    EXPECT_GE(s.get("idq_pops"), s.get("iterations"));
}

std::string
nameOf(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(TableII, LaneAccounting,
                         ::testing::ValuesIn(tableIIKernelNames()),
                         nameOf);

TEST(EnergyAccounting, LpsuEnergyScalesWithLaneWork)
{
    // Sanity: a kernel with 4x the lane instructions consumes about
    // 4x the LPSU energy under the same configuration.
    const EnergyModel model;
    StatGroup small;
    small.set("lane_insts", 1000);
    StatGroup big;
    big.set("lane_insts", 4000);
    const double e1 =
        model.dynamicEnergy(configs::ioX(), small).lpsuNj;
    const double e4 = model.dynamicEnergy(configs::ioX(), big).lpsuNj;
    EXPECT_NEAR(e4 / e1, 4.0, 0.01);
}

} // namespace
} // namespace xloops
