// Sampled-simulation statistics tests: window placement must be a
// pure function of the seed (byte-identical "xloops-sample-1"
// documents run to run), the sampled CPI estimate must cover the
// full-simulation CPI within its reported confidence interval, and the
// architectural state of a sampled run must be *exact* — bit-identical
// to a pure functional run — because sampling only estimates cycles.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "common/json.h"
#include "common/log.h"
#include "common/sim_error.h"
#include "cpu/functional.h"
#include "cpu/gpp.h"
#include "cpu/run.h"
#include "kernels/kernel.h"
#include "system/sampling.h"

namespace xloops {
namespace {

struct Geometry
{
    const char *kernel;
    u64 period;
    u64 window;
};

// Periods sized so each kernel yields several full windows.
const Geometry geometries[] = {
    {"rgb2cmyk-uc", 2000, 100},
    {"kmeans-or", 1000, 100},
    {"dynprog-om", 500, 50},
};

SampleResult
runSampled(const Geometry &g, u64 seed, SampledSimulation **out = nullptr)
{
    static thread_local std::unique_ptr<SampledSimulation> keep;
    const Kernel &k = kernelByName(g.kernel);
    const Program prog = assemble(k.source);
    SampleOptions opts;
    opts.period = g.period;
    opts.window = g.window;
    opts.seed = seed;
    keep = std::make_unique<SampledSimulation>(configs::io(), opts);
    keep->loadProgram(prog);
    if (k.setup)
        k.setup(keep->memory(), prog);
    if (out)
        *out = keep.get();
    return keep->run(prog);
}

std::string
sampleDoc(SampledSimulation &samp, const SampleResult &r)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    samp.writeJson(w, r);
    return os.str();
}

// Window placement is drawn once from the named stream
// "sample.select": the same seed must reproduce the identical phase,
// identical per-window observations, and a byte-identical
// "xloops-sample-1" document on every run.
TEST(Sampling, DeterministicForFixedSeed)
{
    for (const Geometry &g : geometries) {
        SCOPED_TRACE(g.kernel);
        SampledSimulation *a = nullptr;
        SampledSimulation *b = nullptr;
        const SampleResult ra = runSampled(g, 5, &a);
        const std::string docA = sampleDoc(*a, ra);
        const SampleResult rb = runSampled(g, 5, &b);
        const std::string docB = sampleDoc(*b, rb);

        EXPECT_EQ(ra.phase, rb.phase);
        EXPECT_EQ(ra.windows, rb.windows);
        EXPECT_EQ(ra.windowCpi, rb.windowCpi);
        EXPECT_EQ(docA, docB);
        EXPECT_GE(ra.windows, 2u);
    }
}

// Different seeds must be able to move the detailed region: sampling
// with a fixed phase regardless of seed would defeat the random-phase
// half of systematic sampling.
TEST(Sampling, SeedMovesTheWindowPhase)
{
    const Geometry &g = geometries[0];
    const u64 first = runSampled(g, 1).phase;
    bool moved = false;
    for (u64 seed = 2; seed <= 6 && !moved; seed++)
        moved = runSampled(g, seed).phase != first;
    EXPECT_TRUE(moved);
}

// A sampled run retires every instruction — fast-forwarded or
// detailed — so final registers, memory, and instruction counts are
// bit-identical to the pure functional executor's. Only cycles are
// estimated.
TEST(Sampling, ArchitecturalStateIsExact)
{
    for (const Geometry &g : geometries) {
        SCOPED_TRACE(g.kernel);
        const Kernel &k = kernelByName(g.kernel);
        const Program prog = assemble(k.source);

        SampledSimulation *samp = nullptr;
        const SampleResult r = runSampled(g, 9, &samp);
        ASSERT_TRUE(r.halted);

        MainMemory golden;
        prog.loadInto(golden);
        if (k.setup)
            k.setup(golden, prog);
        FunctionalExecutor fe(golden);
        const FuncResult ref = fe.run(prog);

        EXPECT_EQ(r.totalInsts, ref.dynInsts);
        EXPECT_EQ(samp->memory().digest(), golden.digest());
        for (unsigned reg = 0; reg < numArchRegs; reg++) {
            EXPECT_EQ(samp->executor().regFile().get(
                          static_cast<RegId>(reg)),
                      fe.regFile().get(static_cast<RegId>(reg)))
                << g.kernel << " r" << reg;
        }
    }
}

// The accuracy bound: the sampled CPI estimate must cover the
// full-simulation CPI of the same GPP timing model within its
// reported confidence interval, on every tested kernel.
TEST(Sampling, CpiWithinCiOfFullSimulation)
{
    for (const Geometry &g : geometries) {
        SCOPED_TRACE(g.kernel);
        const Kernel &k = kernelByName(g.kernel);
        const Program prog = assemble(k.source);

        // Full simulation: every instruction through the timing model.
        MainMemory full;
        prog.loadInto(full);
        if (k.setup)
            k.setup(full, prog);
        auto gpp = makeGppModel(configs::io().gpp);
        const GppRunResult fullRun = runTraditional(prog, full, *gpp);
        const double fullCpi = static_cast<double>(fullRun.cycles) /
                               static_cast<double>(fullRun.dynInsts);

        const SampleResult r = runSampled(g, 5);
        ASSERT_GE(r.windows, 2u) << "geometry yields too few windows";
        EXPECT_LE(std::abs(r.cpiEst - fullCpi), r.cpiHalfWidth)
            << g.kernel << ": est " << r.cpiEst << " +/- "
            << r.cpiHalfWidth << " vs full " << fullCpi;
        EXPECT_GT(r.cpiEst, 0.0);
    }
}

// The interval never claims more precision than the resolution floor
// allows, and a lone window degrades to the honest "whole estimate"
// interval.
TEST(Sampling, CiRespectsResolutionFloor)
{
    const Geometry &g = geometries[0];
    SampledSimulation *samp = nullptr;
    const SampleResult r = runSampled(g, 5, &samp);
    ASSERT_GT(r.windows, 0u);
    EXPECT_GE(r.cpiHalfWidth, 0.02 * r.cpiEst - 1e-12);
}

// Geometry misuse fails fast instead of producing meaningless
// statistics.
TEST(Sampling, RejectsDegenerateGeometry)
{
    SampleOptions zeroWindow;
    zeroWindow.window = 0;
    EXPECT_THROW(SampledSimulation(configs::io(), zeroWindow),
                 FatalError);

    SampleOptions tooTight;
    tooTight.period = 100;
    tooTight.window = 80;
    tooTight.warmup = 80;
    EXPECT_THROW(SampledSimulation(configs::io(), tooTight), FatalError);
}

// The instruction-limit valve surfaces as a diagnosable SimError (the
// same contract as the full system loop), not an unbounded spin.
TEST(Sampling, InstLimitValveIsDiagnosable)
{
    const Program spin = assemble("loop:\n  beq r0, r0, loop\n");
    SampleOptions opts;
    opts.period = 100;
    opts.window = 10;
    opts.maxInsts = 5000;
    SampledSimulation samp(configs::io(), opts);
    samp.loadProgram(spin);
    try {
        samp.run(spin);
        FAIL() << "valve did not fire";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::InstLimit);
        EXPECT_NE(std::string(e.what()).find("sampled"),
                  std::string::npos);
    }
}

} // namespace
} // namespace xloops
