// Deterministic checkpoint/restore tests: the "xloops-ckpt-1" schema,
// the in-memory checkpoint sink, restore-and-run-to-completion
// equivalence with the uninterrupted run, lockstep composition, and
// the restore-time validation errors (schema / config / mode /
// program-image mismatches).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.h"
#include "common/json.h"
#include "common/log.h"
#include "kernels/kernel.h"
#include "system/system.h"

namespace xloops {
namespace {

/** Assemble + load a kernel into @p sys exactly as runKernel does. */
Program
prepare(XloopsSystem &sys, const std::string &kernelName)
{
    const Kernel &k = kernelByName(kernelName);
    const Program prog = assemble(k.source);
    sys.loadProgram(prog);
    if (k.setup)
        k.setup(sys.memory(), prog);
    return prog;
}

/** Run @p kernelName start-to-finish collecting every checkpoint the
 *  sink sees; returns (result, final memory digest, checkpoints). */
struct SinkRun
{
    SysResult result;
    u64 memDigest = 0;
    std::vector<std::pair<u64, std::string>> ckpts;
};

SinkRun
runWithSink(const std::string &kernelName, u64 every, bool lockstep)
{
    SinkRun r;
    XloopsSystem sys(configs::ioX());
    const Program prog = prepare(sys, kernelName);
    RunOptions opts;
    opts.lockstep = lockstep;
    opts.checkpointEvery = every;
    opts.checkpointSink = [&](u64 inst, const std::string &json) {
        r.ckpts.emplace_back(inst, json);
    };
    r.result = sys.run(prog, ExecMode::Specialized, 500'000'000, opts);
    r.memDigest = sys.memory().digest();
    return r;
}

TEST(Checkpoint, SinkFiresAtTheConfiguredInterval)
{
    const SinkRun r = runWithSink("kmeans-or", 25, false);
    ASSERT_FALSE(r.ckpts.empty());
    u64 prev = 0;
    for (const auto &[inst, json] : r.ckpts) {
        EXPECT_GT(inst, prev);
        EXPECT_FALSE(json.empty());
        prev = inst;
    }
}

TEST(Checkpoint, SchemaIsVersionedAndSelfDescribing)
{
    const SinkRun r = runWithSink("kmeans-or", 50, false);
    ASSERT_FALSE(r.ckpts.empty());
    const JsonValue v = jsonParse(r.ckpts.front().second);
    EXPECT_EQ(v.at("schema").asString(), "xloops-ckpt-1");
    EXPECT_EQ(v.at("config").asString(), "io+x");
    EXPECT_EQ(v.at("mode").asString(), "S");
    EXPECT_EQ(v.at("inst_count").asU64(), r.ckpts.front().first);
    for (const char *key : {"program_hash", "pc", "regs", "result",
                            "mem", "gpp", "lpsu", "apt", "fallback_pcs",
                            "storm_cooldowns"})
        EXPECT_TRUE(v.has(key)) << "missing key " << key;
    // Exact-value fields travel as strings, never through a double.
    EXPECT_EQ(v.at("program_hash").asString().substr(0, 2), "0x");
}

TEST(Checkpoint, LastCheckpointIsExposedForCapsules)
{
    XloopsSystem sys(configs::ioX());
    const Program prog = prepare(sys, "kmeans-or");
    RunOptions opts;
    opts.checkpointEvery = 50;
    sys.run(prog, ExecMode::Specialized, 500'000'000, opts);
    EXPECT_FALSE(sys.lastCheckpoint().empty());
    EXPECT_GE(sys.lastCheckpointInst(), 50u);
}

// The core determinism contract: restoring a mid-run checkpoint and
// running to completion is indistinguishable from the uninterrupted
// run (counters and the complete memory image).
TEST(Checkpoint, RestoreRunsToIdenticalCompletion)
{
    const SinkRun full = runWithSink("kmeans-or", 50, false);
    ASSERT_FALSE(full.ckpts.empty());

    for (const auto &[inst, json] : full.ckpts) {
        XloopsSystem sys(configs::ioX());
        const Program prog = prepare(sys, "kmeans-or");
        RunOptions opts;
        opts.restoreText = json;
        const SysResult res =
            sys.run(prog, ExecMode::Specialized, 500'000'000, opts);
        EXPECT_EQ(res.cycles, full.result.cycles) << "from inst " << inst;
        EXPECT_EQ(res.gppInsts, full.result.gppInsts);
        EXPECT_EQ(res.laneInsts, full.result.laneInsts);
        EXPECT_EQ(res.xloopsSpecialized, full.result.xloopsSpecialized);
        EXPECT_EQ(sys.memory().digest(), full.memDigest);
    }
}

// Checkpoints taken with the lockstep shadow attached restore under
// lockstep and still complete cleanly (the shadow re-clones from the
// restored main state).
TEST(Checkpoint, ComposesWithLockstep)
{
    const SinkRun full = runWithSink("kmeans-or", 50, true);
    ASSERT_FALSE(full.ckpts.empty());
    const JsonValue v = jsonParse(full.ckpts.front().second);
    EXPECT_TRUE(v.has("lockstep"));

    XloopsSystem sys(configs::ioX());
    const Program prog = prepare(sys, "kmeans-or");
    RunOptions opts;
    opts.lockstep = true;
    opts.restoreText = full.ckpts.front().second;
    const SysResult res =
        sys.run(prog, ExecMode::Specialized, 500'000'000, opts);
    EXPECT_EQ(res.gppInsts, full.result.gppInsts);
    EXPECT_EQ(sys.memory().digest(), full.memDigest);
}

// A checkpoint taken *without* lockstep may still be restored *into* a
// lockstep run: the shadow resumes from the restored main state.
TEST(Checkpoint, LockstepAttachesOnRestore)
{
    const SinkRun full = runWithSink("kmeans-or", 50, false);
    ASSERT_FALSE(full.ckpts.empty());
    XloopsSystem sys(configs::ioX());
    const Program prog = prepare(sys, "kmeans-or");
    RunOptions opts;
    opts.lockstep = true;
    opts.restoreText = full.ckpts.back().second;
    const SysResult res =
        sys.run(prog, ExecMode::Specialized, 500'000'000, opts);
    EXPECT_EQ(res.gppInsts, full.result.gppInsts);
}

// ---- Restore-time validation ----------------------------------------

std::string
replaced(std::string text, const std::string &from, const std::string &to)
{
    const size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    return text;
}

struct RestoreFixture
{
    std::string ckpt;

    RestoreFixture()
    {
        ckpt = runWithSink("kmeans-or", 50, false).ckpts.front().second;
    }

    static void restoreInto(const SysConfig &cfg, ExecMode mode,
                            const std::string &kernelName,
                            const std::string &text)
    {
        XloopsSystem sys(cfg);
        const Program prog = prepare(sys, kernelName);
        RunOptions opts;
        opts.restoreText = text;
        sys.run(prog, mode, 500'000'000, opts);
    }
};

TEST(CheckpointValidation, RejectsUnknownSchema)
{
    const RestoreFixture f;
    EXPECT_THROW(RestoreFixture::restoreInto(
                     configs::ioX(), ExecMode::Specialized, "kmeans-or",
                     replaced(f.ckpt, "xloops-ckpt-1", "xloops-ckpt-9")),
                 FatalError);
}

TEST(CheckpointValidation, RejectsConfigMismatch)
{
    const RestoreFixture f;
    EXPECT_THROW(RestoreFixture::restoreInto(configs::ooo2X(),
                                             ExecMode::Specialized,
                                             "kmeans-or", f.ckpt),
                 FatalError);
}

TEST(CheckpointValidation, RejectsModeMismatch)
{
    const RestoreFixture f;
    EXPECT_THROW(RestoreFixture::restoreInto(configs::ioX(),
                                             ExecMode::Traditional,
                                             "kmeans-or", f.ckpt),
                 FatalError);
}

TEST(CheckpointValidation, RejectsDifferentProgramImage)
{
    const RestoreFixture f;
    EXPECT_THROW(RestoreFixture::restoreInto(configs::ioX(),
                                             ExecMode::Specialized,
                                             "adpcm-or", f.ckpt),
                 FatalError);
}

} // namespace
} // namespace xloops
