// Predecoded-fetch equivalence tests: DecodedProgram::fetch must be
// observationally identical to Program::fetch — same instruction for
// every text word of every registered kernel image (XLOOPS and
// serialized GP-ISA binaries alike), same FatalError on misaligned or
// out-of-text pcs — and full lockstep-verified runs through the
// predecoded hot path must still pass for one kernel per dependence
// pattern.

#include <gtest/gtest.h>

#include <string>

#include "asm/assembler.h"
#include "asm/program.h"
#include "common/log.h"
#include "kernels/kernel.h"
#include "system/system.h"

namespace xloops {
namespace {

void
expectDecodeEquivalent(const Program &prog, const std::string &label)
{
    const DecodedProgram &dec = prog.decoded();
    ASSERT_EQ(dec.numInsts(), prog.numInsts()) << label;
    ASSERT_EQ(dec.textBase(), prog.textBase) << label;
    for (size_t i = 0; i < prog.numInsts(); i++) {
        const Addr pc = prog.textBase + 4 * i;
        EXPECT_EQ(dec.fetch(pc), prog.fetch(pc))
            << label << " word " << i;
    }
}

TEST(Predecode, EveryKernelImageDecodesIdentically)
{
    for (const Kernel &k : kernelRegistry()) {
        SCOPED_TRACE(k.name);
        expectDecodeEquivalent(assemble(k.source), k.name);
    }
}

TEST(Predecode, EverySerializedGpBinaryDecodesIdentically)
{
    for (const Kernel &k : kernelRegistry()) {
        SCOPED_TRACE(k.name);
        expectDecodeEquivalent(assemble(serializeToGpIsa(k.source)),
                               k.name + " (gp)");
    }
}

TEST(Predecode, BadFetchesThrowLikeTheLazyPath)
{
    const Program prog = assemble("  add r1, r2, r3\n  halt\n");
    const DecodedProgram &dec = prog.decoded();

    // Misaligned, below text, and past the end all fault — and with
    // the same diagnostic text Program::fetch produces.
    for (const Addr pc : {prog.textBase + 2,           // misaligned
                          prog.textBase - 4,           // below text
                          prog.textBase + 4 * 2}) {    // one past end
        SCOPED_TRACE(pc);
        std::string lazyWhat, decodedWhat;
        try {
            prog.fetch(pc);
        } catch (const FatalError &err) {
            lazyWhat = err.what();
        }
        try {
            dec.fetch(pc);
        } catch (const FatalError &err) {
            decodedWhat = err.what();
        }
        EXPECT_FALSE(lazyWhat.empty());
        EXPECT_EQ(decodedWhat, lazyWhat);
    }
}

TEST(Predecode, CacheIsSharedByCopiesAndStable)
{
    const Program prog = assemble("  add r1, r2, r3\n  halt\n");
    const DecodedProgram &first = prog.decoded();
    EXPECT_EQ(&first, &prog.decoded());  // built once

    const Program copy = prog;           // copies share the cache
    EXPECT_EQ(&copy.decoded(), &first);
}

// Full-system runs through the predecoded hot path, with the lockstep
// shadow attached so any decode discrepancy surfaces as a divergence:
// one kernel per dependence pattern family (unordered-concurrent,
// ordered-register, ordered-memory, unordered-atomic, and the
// combined register+memory pattern).
TEST(Predecode, LockstepRunsPassPerPattern)
{
    RunOptions opts;
    opts.lockstep = true;
    RunHooks hooks;
    hooks.runOptions = &opts;
    for (const char *name :
         {"sgemm-uc", "kmeans-or", "dynprog-om", "hsort-ua", "mm-orm"}) {
        const KernelRun run = runKernel(kernelByName(name),
                                        configs::ioX(),
                                        ExecMode::Specialized, false,
                                        hooks);
        EXPECT_TRUE(run.passed) << name << ": " << run.error;
    }
}

} // namespace
} // namespace xloops
