// Predecoded-fetch equivalence tests: DecodedProgram::fetch must be
// observationally identical to Program::fetch — same instruction for
// every text word of every registered kernel image (XLOOPS and
// serialized GP-ISA binaries alike), same FatalError on misaligned or
// out-of-text pcs — and full lockstep-verified runs through the
// predecoded hot path must still pass for one kernel per dependence
// pattern.

#include <gtest/gtest.h>

#include <string>

#include "asm/assembler.h"
#include "asm/program.h"
#include "common/log.h"
#include "cpu/functional.h"
#include "cpu/threaded.h"
#include "kernels/kernel.h"
#include "system/sampling.h"
#include "system/system.h"

namespace xloops {
namespace {

void
expectDecodeEquivalent(const Program &prog, const std::string &label)
{
    const DecodedProgram &dec = prog.decoded();
    ASSERT_EQ(dec.numInsts(), prog.numInsts()) << label;
    ASSERT_EQ(dec.textBase(), prog.textBase) << label;
    for (size_t i = 0; i < prog.numInsts(); i++) {
        const Addr pc = prog.textBase + 4 * i;
        EXPECT_EQ(dec.fetch(pc), prog.fetch(pc))
            << label << " word " << i;
    }
}

TEST(Predecode, EveryKernelImageDecodesIdentically)
{
    for (const Kernel &k : kernelRegistry()) {
        SCOPED_TRACE(k.name);
        expectDecodeEquivalent(assemble(k.source), k.name);
    }
}

TEST(Predecode, EverySerializedGpBinaryDecodesIdentically)
{
    for (const Kernel &k : kernelRegistry()) {
        SCOPED_TRACE(k.name);
        expectDecodeEquivalent(assemble(serializeToGpIsa(k.source)),
                               k.name + " (gp)");
    }
}

TEST(Predecode, BadFetchesThrowLikeTheLazyPath)
{
    const Program prog = assemble("  add r1, r2, r3\n  halt\n");
    const DecodedProgram &dec = prog.decoded();

    // Misaligned, below text, and past the end all fault — and with
    // the same diagnostic text Program::fetch produces.
    for (const Addr pc : {prog.textBase + 2,           // misaligned
                          prog.textBase - 4,           // below text
                          prog.textBase + 4 * 2}) {    // one past end
        SCOPED_TRACE(pc);
        std::string lazyWhat, decodedWhat;
        try {
            prog.fetch(pc);
        } catch (const FatalError &err) {
            lazyWhat = err.what();
        }
        try {
            dec.fetch(pc);
        } catch (const FatalError &err) {
            decodedWhat = err.what();
        }
        EXPECT_FALSE(lazyWhat.empty());
        EXPECT_EQ(decodedWhat, lazyWhat);
    }
}

TEST(Predecode, CacheIsSharedByCopiesAndStable)
{
    const Program prog = assemble("  add r1, r2, r3\n  halt\n");
    const DecodedProgram &first = prog.decoded();
    EXPECT_EQ(&first, &prog.decoded());  // built once

    const Program copy = prog;           // copies share the cache
    EXPECT_EQ(&copy.decoded(), &first);
}

// Full-system runs through the predecoded hot path, with the lockstep
// shadow attached so any decode discrepancy surfaces as a divergence:
// one kernel per dependence pattern family (unordered-concurrent,
// ordered-register, ordered-memory, unordered-atomic, and the
// combined register+memory pattern).
TEST(Predecode, LockstepRunsPassPerPattern)
{
    RunOptions opts;
    opts.lockstep = true;
    RunHooks hooks;
    hooks.runOptions = &opts;
    for (const char *name :
         {"sgemm-uc", "kmeans-or", "dynprog-om", "hsort-ua", "mm-orm"}) {
        const KernelRun run = runKernel(kernelByName(name),
                                        configs::ioX(),
                                        ExecMode::Specialized, false,
                                        hooks);
        EXPECT_TRUE(run.passed) << name << ": " << run.error;
    }
}

// --------------------------------------------------------------------
// Superblock-cache staleness regressions (threaded executor)
// --------------------------------------------------------------------

// Swapping in a different program at the same text base must rebind
// the superblock cache: if a stale block from the first program ever
// executed, r1 would still read the first program's constant.
TEST(SuperblockCache, ProgramSwapAtSameBaseNeverRunsStaleBlocks)
{
    const Program a = assemble("  addi r1, r0, 1\n  halt\n");
    const Program b = assemble("  addi r1, r0, 2\n  halt\n");
    ASSERT_EQ(a.textBase, b.textBase);
    ASSERT_EQ(a.entry, b.entry);

    MainMemory mem;
    a.loadInto(mem);
    ThreadedExecutor exec(mem);
    exec.run(a);
    ASSERT_EQ(exec.regFile().get(1), 1u);
    ASSERT_GT(exec.cachedBlocks(), 0u);
    const u64 gen = exec.cacheGeneration();

    b.loadInto(mem);
    exec.regFile() = RegFile{};
    exec.run(b);
    EXPECT_EQ(exec.regFile().get(1), 2u);
    EXPECT_GT(exec.cacheGeneration(), gen);
}

// Reloading the program image (a self-referential program may have
// overwritten its own data section during the first run) plus an
// explicit invalidate() must replay the run exactly, rebuilding every
// block from scratch.
TEST(SuperblockCache, ReloadAndInvalidateReplaysExactly)
{
    const Kernel &k = kernelByName("rgb2cmyk-uc");
    const Program prog = assemble(k.source);

    MainMemory mem;
    prog.loadInto(mem);
    k.setup(mem, prog);
    ThreadedExecutor exec(mem);
    const FuncResult first = exec.run(prog);
    const u64 firstDigest = mem.digest();
    const u64 gen = exec.cacheGeneration();
    ASSERT_GT(exec.cachedBlocks(), 0u);

    prog.loadInto(mem);
    k.setup(mem, prog);
    exec.invalidate();
    EXPECT_EQ(exec.cachedBlocks(), 0u);
    EXPECT_GT(exec.cacheGeneration(), gen);
    exec.regFile() = RegFile{};
    const FuncResult second = exec.run(prog);

    EXPECT_EQ(second.dynInsts, first.dynInsts);
    EXPECT_EQ(mem.digest(), firstDigest);
    EXPECT_GT(exec.cachedBlocks(), 0u);
}

// Checkpoint restore must drop every cached superblock — the restored
// image may disagree with text the executor already decoded — and the
// resumed sampled run must land on exactly the architectural state of
// an uninterrupted serial run.
TEST(SuperblockCache, RestoreInvalidatesAndResumesExactly)
{
    const Kernel &k = kernelByName("rgb2cmyk-uc");
    const Program prog = assemble(k.source);

    // Full-system run that emits checkpoints; keep the first one.
    std::string ckpt;
    RunOptions opts;
    opts.checkpointEvery = 2000;
    opts.checkpointSink = [&](u64, const std::string &json) {
        if (ckpt.empty())
            ckpt = json;
    };
    XloopsSystem sys(configs::io());
    sys.loadProgram(prog);
    k.setup(sys.memory(), prog);
    sys.run(prog, ExecMode::Traditional, 500'000'000, opts);
    ASSERT_FALSE(ckpt.empty());

    // Make the sampled simulation's executor cache hot — and stale
    // with respect to the checkpoint — before restoring.
    SampleOptions sopts;
    sopts.period = 1000;
    sopts.window = 50;
    sopts.seed = 3;
    SampledSimulation samp(configs::io(), sopts);
    const Program decoy = assemble("  addi r1, r0, 7\n  halt\n");
    decoy.loadInto(samp.memory());
    ThreadedExecutor::Cursor cur;
    cur.pc = decoy.entry;
    samp.executor().execute(decoy, cur, 2);
    ASSERT_GT(samp.executor().cachedBlocks(), 0u);

    samp.restore(ckpt, prog);
    EXPECT_EQ(samp.executor().cachedBlocks(), 0u);

    const SampleResult r = samp.run(prog);
    EXPECT_TRUE(r.halted);

    // Uninterrupted serial reference.
    MainMemory golden;
    prog.loadInto(golden);
    k.setup(golden, prog);
    FunctionalExecutor fe(golden);
    const FuncResult ref = fe.run(prog);

    EXPECT_EQ(r.totalInsts, ref.dynInsts);
    EXPECT_EQ(samp.memory().digest(), golden.digest());
    for (unsigned reg = 0; reg < numArchRegs; reg++) {
        EXPECT_EQ(samp.executor().regFile().get(static_cast<RegId>(reg)),
                  fe.regFile().get(static_cast<RegId>(reg)))
            << "r" << reg;
    }
}

} // namespace
} // namespace xloops
