// Memory substrate tests: sparse paging, endianness, alignment, AMOs,
// and the L1 cache timing model.

#include <gtest/gtest.h>

#include "common/log.h"
#include "mem/cache.h"
#include "mem/memory.h"

namespace xloops {
namespace {

TEST(MainMemory, ZeroInitialized)
{
    MainMemory mem;
    EXPECT_EQ(mem.readWord(0x1000), 0u);
    EXPECT_EQ(mem.read(0xdeadbee0, 1), 0u);
}

TEST(MainMemory, LittleEndianBytes)
{
    MainMemory mem;
    mem.writeWord(0x100, 0x11223344);
    EXPECT_EQ(mem.read(0x100, 1), 0x44u);
    EXPECT_EQ(mem.read(0x101, 1), 0x33u);
    EXPECT_EQ(mem.read(0x102, 2), 0x1122u);
}

TEST(MainMemory, SubWordWrites)
{
    MainMemory mem;
    mem.write(0x200, 1, 0xaa);
    mem.write(0x201, 1, 0xbb);
    mem.write(0x202, 2, 0xccdd);
    EXPECT_EQ(mem.readWord(0x200), 0xccddbbaau);
}

TEST(MainMemory, CrossPageBlob)
{
    MainMemory mem;
    std::vector<u8> blob(100, 0x5a);
    const Addr base = (1u << 16) - 50;  // straddles a 64KB page boundary
    mem.loadBytes(base, blob);
    for (unsigned i = 0; i < 100; i++)
        EXPECT_EQ(mem.read(base + i, 1), 0x5au) << i;
}

TEST(MainMemory, MisalignedAccessThrows)
{
    MainMemory mem;
    EXPECT_THROW(mem.readWord(0x101), FatalError);
    EXPECT_THROW(mem.read(0x101, 2), FatalError);
    EXPECT_NO_THROW(mem.read(0x101, 1));
}

TEST(MainMemory, AmoSemantics)
{
    MainMemory mem;
    mem.writeWord(0x300, 10);
    EXPECT_EQ(mem.amo(Op::AMOADD, 0x300, 5), 10u);
    EXPECT_EQ(mem.readWord(0x300), 15u);
    EXPECT_EQ(mem.amo(Op::AMOSWAP, 0x300, 99), 15u);
    EXPECT_EQ(mem.readWord(0x300), 99u);
    EXPECT_EQ(mem.amo(Op::AMOAND, 0x300, 0x0f), 99u);
    EXPECT_EQ(mem.readWord(0x300), 99u & 0x0fu);
    mem.writeWord(0x304, static_cast<u32>(-5));
    EXPECT_EQ(mem.amo(Op::AMOMIN, 0x304, 3), static_cast<u32>(-5));
    EXPECT_EQ(static_cast<i32>(mem.readWord(0x304)), -5);
    EXPECT_EQ(mem.amo(Op::AMOMAX, 0x304, 3), static_cast<u32>(-5));
    EXPECT_EQ(mem.readWord(0x304), 3u);
}

TEST(MainMemory, AmoComputeXorOr)
{
    EXPECT_EQ(MainMemory::amoCompute(Op::AMOXOR, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(MainMemory::amoCompute(Op::AMOOR, 0b1100, 0b1010), 0b1110u);
}

TEST(L1Cache, HitAfterMiss)
{
    L1Cache cache;
    const Cycle miss = cache.access(0x1000, false);
    const Cycle hit = cache.access(0x1004, false);  // same 32B line
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, cache.config().hitLatency);
    EXPECT_EQ(cache.stats().get("read_misses"), 1u);
    EXPECT_EQ(cache.stats().get("read_hits"), 1u);
}

TEST(L1Cache, LruEviction)
{
    CacheConfig cfg;
    cfg.sizeBytes = 128;   // 2 sets x 2 ways x 32B lines
    cfg.assoc = 2;
    L1Cache cache(cfg);
    // Three lines mapping to the same set (set stride = 64B).
    cache.access(0x0, false);
    cache.access(0x40, false);
    cache.access(0x0, false);     // touch line 0 so line 0x40 is LRU
    cache.access(0x80, false);    // evicts 0x40
    EXPECT_EQ(cache.stats().get("evictions"), 1u);
    EXPECT_EQ(cache.access(0x0, false), cfg.hitLatency);
    EXPECT_GT(cache.access(0x40, false), cfg.hitLatency);  // was evicted
}

TEST(L1Cache, DirtyWritebackCostsExtra)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64;  // 1 set x 2 ways
    cfg.assoc = 2;
    L1Cache cache(cfg);
    cache.access(0x0, true);       // dirty
    cache.access(0x40, false);
    const Cycle evictClean = cache.access(0x80, false);   // evicts dirty 0x0
    EXPECT_EQ(evictClean, cfg.hitLatency + cfg.missPenalty + 2);
    EXPECT_EQ(cache.stats().get("writebacks"), 1u);
}

TEST(L1Cache, FlushDropsLines)
{
    L1Cache cache;
    cache.access(0x1000, false);
    cache.flush();
    EXPECT_GT(cache.access(0x1000, false), cache.config().hitLatency);
}

TEST(L1Cache, BadConfigRejected)
{
    CacheConfig cfg;
    cfg.lineBytes = 24;  // not a power of two
    EXPECT_THROW(L1Cache{cfg}, FatalError);
    CacheConfig cfg2;
    cfg2.sizeBytes = 100;
    EXPECT_THROW(L1Cache{cfg2}, FatalError);
}

TEST(L1Cache, DatasetFittingInCacheHasOnlyCompulsoryMisses)
{
    L1Cache cache;  // 16KB
    // Walk an 8KB array three times.
    for (int pass = 0; pass < 3; pass++)
        for (Addr a = 0; a < 8192; a += 4)
            cache.access(a, pass == 0);
    const u64 misses = cache.stats().get("read_misses") +
                       cache.stats().get("write_misses");
    EXPECT_EQ(misses, 8192u / cache.config().lineBytes);
}

} // namespace
} // namespace xloops
