// Dynamic-bound loops with ordered data-dependence patterns
// (xloop.or.db / xloop.om.db): the ISA allows any data pattern to
// combine with the dynamic-bound control pattern; the Table II
// kernels only exercise uc.db, so these tests cover the round-robin
// dispatch path interacting with a growing bound.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "cpu/functional.h"
#include "system/system.h"

namespace xloops {
namespace {

struct DualExec
{
    Program prog;
    MainMemory golden;
    XloopsSystem sys;

    DualExec(const std::string &src, const SysConfig &cfg, ExecMode mode)
        : prog(assemble(src)), sys(cfg)
    {
        prog.loadInto(golden);
        FunctionalExecutor exec(golden);
        exec.run(prog);
        sys.loadProgram(prog);
        sys.run(prog, mode);
    }

    void
    expectMatch(const std::string &symbol, unsigned words)
    {
        for (unsigned i = 0; i < words; i++) {
            EXPECT_EQ(sys.memory().readWord(prog.symbol(symbol) + 4 * i),
                      golden.readWord(prog.symbol(symbol) + 4 * i))
                << symbol << "[" << i << "]";
        }
    }
};

// Running sum over a worklist that doubles while being consumed: the
// sum is a CIR (or pattern) and the bound grows from inside
// iterations. Growth is derived from the iteration index (no AMO
// needed: extension is deterministic per index).
const char *orDbSrc = R"(
  li r1, 0
  li r2, 8               # initial bound
  li r3, 0               # running sum (CIR)
  la r5, work
  la r6, pfx
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, 0(r11)
  add r3, r3, r12        # CIR
  add r13, r6, r10
  sw r3, 0(r13)          # prefix output
  li r14, 24
  bge r1, r14, nogrow
  addi r2, r1, 9         # bound = i + 9 while i < 24 -> grows to 33
nogrow:
  xloop.or.db r1, r2, body
  la r15, total
  sw r3, 0(r15)
  halt
  .data
work:  .space 256
pfx:   .space 256
total: .word 0
)";

TEST(OrderedDb, OrDbPrefixSumMatchesSerial)
{
    for (const auto &cfg : {configs::ioX(), configs::ooo4X()}) {
        DualExec run(orDbSrc, cfg, ExecMode::Specialized);
        // Initialize is baked in: zero work array means zero sums;
        // instead patch inputs pre-run. Easier: re-run with inputs.
        (void)run;
    }
    // With real inputs:
    const Program prog = assemble(orDbSrc);
    auto fill = [&](MainMemory &mem) {
        for (unsigned i = 0; i < 64; i++)
            mem.writeWord(prog.symbol("work") + 4 * i, 3 * i + 1);
    };
    MainMemory golden;
    prog.loadInto(golden);
    fill(golden);
    FunctionalExecutor exec(golden);
    exec.run(prog);

    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    fill(sys.memory());
    sys.run(prog, ExecMode::Specialized);
    for (unsigned i = 0; i < 33; i++) {
        EXPECT_EQ(sys.memory().readWord(prog.symbol("pfx") + 4 * i),
                  golden.readWord(prog.symbol("pfx") + 4 * i)) << i;
    }
    EXPECT_EQ(sys.memory().readWord(prog.symbol("total")),
              golden.readWord(prog.symbol("total")));
    // The bound actually grew past its initial value of 8: the last
    // growth step (i = 23) raises it to 32, so pfx[31] is written.
    EXPECT_EQ(golden.readWord(prog.symbol("pfx") + 4 * 31), [&] {
        u32 s = 0;
        for (unsigned i = 0; i <= 31; i++)
            s += 3 * i + 1;
        return s;
    }());
    EXPECT_EQ(golden.readWord(prog.symbol("pfx") + 4 * 32), 0u);
}

// om.db: a DP-style chain where each iteration reads the previous
// element and the frontier extends while a condition holds.
const char *omDbSrc = R"(
  li r1, 1
  li r2, 4               # initial bound
  la r5, chain
body:
  slli r10, r1, 2
  add r11, r5, r10
  lw r12, -4(r11)        # chain[i-1]: carried memory dependence
  addi r12, r12, 5
  sw r12, 0(r11)
  li r13, 40
  bge r1, r13, nogrow
  addi r2, r1, 5         # extend the frontier
nogrow:
  xloop.om.db r1, r2, body
  halt
  .data
chain: .space 512
)";

TEST(OrderedDb, OmDbChainMatchesSerial)
{
    for (const auto &cfg :
         {configs::ioX(), configs::ooo2X(), configs::ooo4X8rm()}) {
        DualExec run(omDbSrc, cfg, ExecMode::Specialized);
        run.expectMatch("chain", 64);
    }
}

TEST(OrderedDb, AdaptiveModeAlsoCorrect)
{
    DualExec run(omDbSrc, configs::ooo2X(), ExecMode::Adaptive);
    run.expectMatch("chain", 64);
}

} // namespace
} // namespace xloops
