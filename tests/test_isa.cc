// Unit tests for the xrisc ISA: trait table sanity, encode/decode
// round-trips for every opcode and format, field limits, and the
// xloop helper predicates.

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/disasm.h"
#include "isa/instruction.h"

namespace xloops {
namespace {

TEST(OpTraits, EveryOpcodeHasMnemonicAndLatency)
{
    for (unsigned i = 0; i < numOpcodes; i++) {
        const auto op = static_cast<Op>(i);
        const OpTraits &tr = opTraits(op);
        EXPECT_NE(tr.mnemonic, nullptr);
        EXPECT_GT(std::string(tr.mnemonic).size(), 0u);
        EXPECT_GE(tr.latency, 1);
    }
}

TEST(OpTraits, MnemonicsAreUnique)
{
    std::set<std::string> seen;
    for (unsigned i = 0; i < numOpcodes; i++)
        EXPECT_TRUE(seen.insert(opTraits(static_cast<Op>(i)).mnemonic).second)
            << opTraits(static_cast<Op>(i)).mnemonic;
}

TEST(OpTraits, XloopPredicates)
{
    EXPECT_TRUE(isXloopOp(Op::XLOOP_UC));
    EXPECT_TRUE(isXloopOp(Op::XLOOP_UA_DB));
    EXPECT_FALSE(isXloopOp(Op::ADD));
    EXPECT_FALSE(isXloopOp(Op::ADDIU_XI));
    EXPECT_FALSE(isDynamicBoundOp(Op::XLOOP_UC));
    EXPECT_TRUE(isDynamicBoundOp(Op::XLOOP_UC_DB));
    EXPECT_TRUE(isDynamicBoundOp(Op::XLOOP_ORM_DB));
}

TEST(OpTraits, PatternsOfAllXloopVariants)
{
    EXPECT_EQ(xloopPattern(Op::XLOOP_UC), LoopPattern::UC);
    EXPECT_EQ(xloopPattern(Op::XLOOP_OR), LoopPattern::OR);
    EXPECT_EQ(xloopPattern(Op::XLOOP_OM), LoopPattern::OM);
    EXPECT_EQ(xloopPattern(Op::XLOOP_ORM), LoopPattern::ORM);
    EXPECT_EQ(xloopPattern(Op::XLOOP_UA), LoopPattern::UA);
    EXPECT_EQ(xloopPattern(Op::XLOOP_UC_DB), LoopPattern::UC);
    EXPECT_EQ(xloopPattern(Op::XLOOP_OR_DB), LoopPattern::OR);
    EXPECT_EQ(xloopPattern(Op::XLOOP_OM_DB), LoopPattern::OM);
    EXPECT_EQ(xloopPattern(Op::XLOOP_ORM_DB), LoopPattern::ORM);
    EXPECT_EQ(xloopPattern(Op::XLOOP_UA_DB), LoopPattern::UA);
    EXPECT_THROW(xloopPattern(Op::ADD), PanicError);
}

TEST(OpTraits, LlfuClassification)
{
    EXPECT_TRUE(Instruction{.op = Op::MUL}.isLlfu());
    EXPECT_TRUE(Instruction{.op = Op::DIV}.isLlfu());
    EXPECT_TRUE(Instruction{.op = Op::FADD}.isLlfu());
    EXPECT_FALSE(Instruction{.op = Op::ADD}.isLlfu());
    EXPECT_FALSE(Instruction{.op = Op::LW}.isLlfu());
}

Instruction
roundTrip(const Instruction &inst)
{
    return Instruction::decode(inst.encode());
}

TEST(Encoding, RTypeRoundTrip)
{
    const Instruction inst{.op = Op::ADD, .rd = 3, .rs1 = 17, .rs2 = 31};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, ITypeRoundTripNegativeImm)
{
    const Instruction inst{
        .op = Op::ADDI, .rd = 5, .rs1 = 6, .imm = -1234};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, ITypeImmBoundaries)
{
    for (const i32 imm : {-8192, -1, 0, 8191}) {
        const Instruction inst{.op = Op::LW, .rd = 1, .rs1 = 2, .imm = imm};
        EXPECT_EQ(roundTrip(inst), inst) << imm;
    }
    const Instruction over{.op = Op::LW, .rd = 1, .rs1 = 2, .imm = 8192};
    EXPECT_THROW(over.encode(), FatalError);
    const Instruction under{.op = Op::LW, .rd = 1, .rs1 = 2, .imm = -8193};
    EXPECT_THROW(under.encode(), FatalError);
}

TEST(Encoding, STypeRoundTrip)
{
    const Instruction inst{
        .op = Op::SW, .rs1 = 9, .rs2 = 20, .imm = 444};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, UTypeRoundTrip)
{
    const Instruction inst{.op = Op::LUI, .rd = 8, .imm = (1 << 19) - 1};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, BranchRoundTripBackwardOffset)
{
    const Instruction inst{
        .op = Op::BNE, .rs1 = 4, .rs2 = 5, .imm = -100};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, JalRoundTrip)
{
    const Instruction inst{.op = Op::JAL, .rd = 31, .imm = -200000};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, XloopRoundTripWithHint)
{
    for (const bool hint : {false, true}) {
        const Instruction inst{.op = Op::XLOOP_OM, .rd = 1, .rs1 = 2,
                               .imm = -37, .hint = hint};
        EXPECT_EQ(roundTrip(inst), inst) << "hint=" << hint;
    }
}

TEST(Encoding, XloopForwardLabelRejected)
{
    const Instruction inst{.op = Op::XLOOP_UC, .rd = 1, .rs1 = 2, .imm = 4};
    EXPECT_THROW(inst.encode(), FatalError);
}

TEST(Encoding, XiRoundTrip)
{
    const Instruction addi_xi{.op = Op::ADDIU_XI, .rd = 7, .imm = -64};
    EXPECT_EQ(roundTrip(addi_xi), addi_xi);
    const Instruction addu_xi{.op = Op::ADDU_XI, .rd = 7, .rs2 = 9};
    EXPECT_EQ(roundTrip(addu_xi), addu_xi);
}

TEST(Encoding, AmoRoundTrip)
{
    const Instruction inst{.op = Op::AMOADD, .rd = 3, .rs1 = 4, .rs2 = 5};
    EXPECT_EQ(roundTrip(inst), inst);
}

TEST(Encoding, EveryOpcodeRoundTripsWithTypicalFields)
{
    for (unsigned i = 0; i < numOpcodes; i++) {
        const auto op = static_cast<Op>(i);
        Instruction inst;
        inst.op = op;
        switch (opTraits(op).format) {
          case Format::R: case Format::A:
            inst.rd = 1; inst.rs1 = 2; inst.rs2 = 3;
            break;
          case Format::I: case Format::S:
            inst.rd = 1; inst.rs1 = 2; inst.rs2 = 1; inst.imm = -5;
            if (opTraits(op).format == Format::I) inst.rs2 = 0;
            if (opTraits(op).format == Format::S) inst.rd = 0;
            break;
          case Format::U: case Format::C:
            inst.rd = 1; inst.imm = 77;
            break;
          case Format::B:
            inst.rs1 = 1; inst.rs2 = 2; inst.imm = -3;
            break;
          case Format::J:
            inst.rd = 1; inst.imm = 1000;
            break;
          case Format::X:
            inst.rd = 1; inst.rs1 = 2; inst.imm = -8; inst.hint = true;
            break;
          case Format::XI:
            inst.rd = 4;
            if (op == Op::ADDIU_XI) inst.imm = 16; else inst.rs2 = 5;
            break;
          case Format::N:
            break;
        }
        EXPECT_EQ(roundTrip(inst), inst) << opTraits(op).mnemonic;
    }
}

TEST(Encoding, IllegalOpcodeThrows)
{
    const u32 bad = 0xffu << 24;
    EXPECT_THROW(Instruction::decode(bad), FatalError);
}

TEST(SrcDstRegs, Alu)
{
    const Instruction inst{.op = Op::ADD, .rd = 3, .rs1 = 4, .rs2 = 5};
    RegId srcs[2];
    EXPECT_EQ(inst.srcRegs(srcs), 2u);
    EXPECT_EQ(srcs[0], 4);
    EXPECT_EQ(srcs[1], 5);
    EXPECT_EQ(inst.destReg(), 3);
}

TEST(SrcDstRegs, StoreHasNoDest)
{
    const Instruction inst{.op = Op::SW, .rs1 = 4, .rs2 = 5};
    EXPECT_EQ(inst.destReg(), numArchRegs);
}

TEST(SrcDstRegs, R0DestIsDiscarded)
{
    const Instruction inst{.op = Op::ADD, .rd = 0, .rs1 = 1, .rs2 = 2};
    EXPECT_EQ(inst.destReg(), numArchRegs);
}

TEST(SrcDstRegs, XloopReadsIdxAndBound)
{
    const Instruction inst{.op = Op::XLOOP_UC, .rd = 6, .rs1 = 7,
                           .imm = -4};
    RegId srcs[2];
    EXPECT_EQ(inst.srcRegs(srcs), 2u);
    EXPECT_EQ(srcs[0], 6);
    EXPECT_EQ(srcs[1], 7);
    EXPECT_EQ(inst.destReg(), 6);
}

TEST(SrcDstRegs, XiReadsItsOwnDest)
{
    const Instruction inst{.op = Op::ADDIU_XI, .rd = 9, .imm = 4};
    RegId srcs[2];
    EXPECT_EQ(inst.srcRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], 9);
}

TEST(Disasm, RendersCommonForms)
{
    EXPECT_EQ(disassemble({.op = Op::ADD, .rd = 1, .rs1 = 2, .rs2 = 3}),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble({.op = Op::LW, .rd = 1, .rs1 = 2, .imm = 8}),
              "lw r1, 8(r2)");
    EXPECT_EQ(disassemble({.op = Op::SW, .rs1 = 2, .rs2 = 1, .imm = -4}),
              "sw r1, -4(r2)");
    EXPECT_EQ(disassemble({.op = Op::ADDIU_XI, .rd = 5, .imm = 4}),
              "addiu.xi r5, 4");
    EXPECT_EQ(disassemble({.op = Op::NOP}), "nop");
}

TEST(Disasm, XloopShowsTargetAndHint)
{
    const Instruction inst{.op = Op::XLOOP_UC, .rd = 1, .rs1 = 2,
                           .imm = -2, .hint = true};
    EXPECT_EQ(disassemble(inst, 0x1010), "xloop.uc r1, r2, 0x1008 [hint]");
}

} // namespace
} // namespace xloops
