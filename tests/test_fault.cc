// Robustness subsystem tests: deterministic fault injection, the
// no-commit watchdog, squash-storm serialization with traditional
// fallback, the instruction-limit valve diagnosis, and golden-checker
// equivalence of the Table II kernels under adversarial schedules.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/sim_error.h"
#include "cpu/functional.h"
#include "kernels/kernel.h"
#include "system/system.h"

namespace xloops {
namespace {

// --------------------------------------------------------------------
// FaultInjector unit behaviour
// --------------------------------------------------------------------

TEST(FaultInjector, DisabledInjectorNeverFires)
{
    FaultInjector inj{FaultConfig{}};  // seed 0: disabled
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 1000; i++) {
        EXPECT_EQ(inj.memJitter(), 0u);
        EXPECT_FALSE(inj.forceSquash());
        EXPECT_FALSE(inj.forceCibFull());
        EXPECT_FALSE(inj.forceLsqFull());
        EXPECT_EQ(inj.broadcastDelay(), 0u);
        EXPECT_FALSE(inj.triggerMigration());
    }
    EXPECT_EQ(inj.injectedSquashes(), 0u);
    EXPECT_EQ(inj.injectedJitters(), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    const FaultConfig cfg = FaultConfig::uniform(42, 0.1);
    FaultInjector a(cfg);
    FaultInjector b(cfg);
    for (int i = 0; i < 5000; i++) {
        EXPECT_EQ(a.memJitter(), b.memJitter());
        EXPECT_EQ(a.forceSquash(), b.forceSquash());
        EXPECT_EQ(a.forceCibFull(), b.forceCibFull());
        EXPECT_EQ(a.forceLsqFull(), b.forceLsqFull());
        EXPECT_EQ(a.broadcastDelay(), b.broadcastDelay());
        EXPECT_EQ(a.triggerMigration(), b.triggerMigration());
    }
    EXPECT_EQ(a.injectedSquashes(), b.injectedSquashes());
    EXPECT_EQ(a.injectedJitters(), b.injectedJitters());
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultInjector a(FaultConfig::uniform(1, 0.1));
    FaultInjector b(FaultConfig::uniform(2, 0.1));
    bool diverged = false;
    for (int i = 0; i < 5000 && !diverged; i++)
        diverged = a.forceSquash() != b.forceSquash() ||
                   a.memJitter() != b.memJitter();
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, RatesActuallyFire)
{
    FaultInjector inj(FaultConfig::uniform(7, 0.25));
    ASSERT_TRUE(inj.enabled());
    unsigned squashes = 0;
    u64 jitterEvents = 0;
    u64 jitterCycles = 0;
    for (int i = 0; i < 2000; i++) {
        if (inj.forceSquash())
            squashes++;
        if (const Cycle j = inj.memJitter()) {
            jitterEvents++;
            jitterCycles += j;
            EXPECT_LE(j, 8u);  // memJitterMax default
        }
    }
    EXPECT_GT(squashes, 0u);
    EXPECT_GT(jitterCycles, 0u);
    EXPECT_EQ(inj.injectedSquashes(), squashes);
    EXPECT_EQ(inj.injectedJitters(), jitterEvents);
}

// --------------------------------------------------------------------
// End-to-end helpers
// --------------------------------------------------------------------

/** Run src specialized under cfg and serially; keep both memories. */
struct DualRun
{
    Program prog;
    XloopsSystem sys;
    SysResult result;
    MainMemory golden;

    DualRun(const std::string &src, const SysConfig &cfg, ExecMode mode)
        : prog(assemble(src)), sys(cfg)
    {
        sys.loadProgram(prog);
        result = sys.run(prog, mode);
        prog.loadInto(golden);
        FunctionalExecutor exec(golden);
        exec.run(prog);
    }

    void
    expectRegionMatchesGolden(const std::string &symbol, unsigned words)
    {
        const Addr base = prog.symbol(symbol);
        for (unsigned i = 0; i < words; i++) {
            EXPECT_EQ(sys.memory().readWord(base + 4 * i),
                      golden.readWord(base + 4 * i))
                << symbol << "[" << i << "]";
        }
    }
};

/** om loop where every iteration read-modify-writes one shared word:
 *  each speculative iteration genuinely violates, so squashes arrive
 *  as fast as the lanes can speculate — a synthetic squash storm. */
const std::string stormSrc =
    "  li r1, 0\n"
    "  li r2, 160\n"
    "  la r7, acc\n"
    "  la r6, out\n"
    "body:\n"
    "  lw r8, 0(r7)\n"
    "  addi r9, r1, 1\n"
    "  add r8, r8, r9\n"
    "  sw r8, 0(r7)\n"
    "  slli r10, r1, 2\n"
    "  add r11, r6, r10\n"
    "  sw r8, 0(r11)\n"
    "  xloop.om r1, r2, body\n"
    "  halt\n"
    "  .data\n"
    "acc: .word 0\n"
    "out: .space 640\n";

// --------------------------------------------------------------------
// Squash-storm degradation
// --------------------------------------------------------------------

TEST(SquashStorm, SerializesThenFallsBackAndStaysCorrect)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.stormWindow = 200;
    cfg.lpsu.stormThreshold = 6;
    cfg.lpsu.stormBackoffCycles = 32;
    cfg.lpsu.maxStorms = 1;
    DualRun run(stormSrc, cfg, ExecMode::Specialized);

    const StatGroup &ls = run.sys.lpsuModel().stats();
    EXPECT_GE(ls.get("lpsu_storm_serializations"), 1u)
        << "the storm detector never fired";
    EXPECT_GE(ls.get("lpsu_fallbacks"), 1u)
        << "the LPSU never degraded to traditional execution";

    // Architectural state is exact despite serialize + mid-loop
    // abandonment: acc == sum(1..160) and every out[i] matches serial.
    run.expectRegionMatchesGolden("acc", 1);
    run.expectRegionMatchesGolden("out", 160);
    EXPECT_EQ(run.sys.memory().readWord(run.prog.symbol("acc")),
              160u * 161u / 2u);
}

TEST(SquashStorm, SerializationAloneRecoversWithoutFallback)
{
    // Generous maxStorms: storms serialize (making forward progress
    // one iteration at a time) but the loop finishes on the LPSU.
    SysConfig cfg = configs::ioX();
    cfg.lpsu.stormWindow = 200;
    cfg.lpsu.stormThreshold = 6;
    cfg.lpsu.stormBackoffCycles = 64;
    cfg.lpsu.maxStorms = 1000;
    DualRun run(stormSrc, cfg, ExecMode::Specialized);

    const StatGroup &ls = run.sys.lpsuModel().stats();
    EXPECT_GE(ls.get("lpsu_storm_serializations"), 1u);
    EXPECT_EQ(ls.get("lpsu_fallbacks"), 0u);
    run.expectRegionMatchesGolden("acc", 1);
    run.expectRegionMatchesGolden("out", 160);
}

TEST(SquashStorm, SystemCooldownRunsLoopTraditionally)
{
    // After a storm fallback the system demotes that PC for a
    // backed-off number of encounters; the re-encountered loop must
    // still produce the exact serial result.
    SysConfig cfg = configs::ioX();
    cfg.lpsu.stormWindow = 400;
    cfg.lpsu.stormThreshold = 4;
    cfg.lpsu.stormBackoffCycles = 16;
    cfg.lpsu.maxStorms = 0;  // first storm already abandons
    DualRun run(stormSrc, cfg, ExecMode::Specialized);
    run.expectRegionMatchesGolden("acc", 1);
    run.expectRegionMatchesGolden("out", 160);
    EXPECT_GE(run.sys.lpsuModel().stats().get("lpsu_fallbacks"), 1u);
}

// --------------------------------------------------------------------
// Watchdog and limit valves
// --------------------------------------------------------------------

TEST(Watchdog, TripsWithSnapshotWhenNoCommitProgress)
{
    // A healthy loop whose iterations need several cycles each: a
    // 1-cycle watchdog cannot see a commit in time and must trip with
    // a fully populated machine snapshot.
    SysConfig cfg = configs::ioX();
    cfg.lpsu.watchdogCycles = 1;
    Program prog = assemble(stormSrc);
    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    try {
        sys.run(prog, ExecMode::Specialized);
        FAIL() << "watchdog never fired";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), SimErrorKind::Watchdog);
        EXPECT_TRUE(error.recoverable());
        EXPECT_EQ(error.exitCode(), 3);
        const MachineSnapshot &snap = error.snapshot();
        EXPECT_EQ(snap.lanes.size(), cfg.lpsu.lanes);
        EXPECT_GT(snap.cycle, 0u);
        // The rendered report names the kind and the per-lane state.
        const std::string what = error.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos);
        EXPECT_NE(what.find("lane"), std::string::npos);
    }
}

TEST(Watchdog, GenerousBudgetNeverTrips)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.watchdogCycles = 100'000;
    DualRun run(stormSrc, cfg, ExecMode::Specialized);
    run.expectRegionMatchesGolden("out", 160);
}

TEST(InstLimitValve, DiagnosesRunawayProgramWithSnapshot)
{
    // A program that never halts: the valve must throw a recoverable
    // SimError carrying the GPP state instead of a bare fatal.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 10\n"
        "spin:\n"
        "  blt r1, r2, spin\n"
        "  halt\n";
    Program prog = assemble(src);
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    try {
        sys.run(prog, ExecMode::Specialized, 1000);
        FAIL() << "instruction-limit valve never fired";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), SimErrorKind::InstLimit);
        EXPECT_GE(error.snapshot().gppInsts, 1000u);
        EXPECT_EQ(error.exitCode(), 3);
    }
}

// --------------------------------------------------------------------
// Injection end-to-end: adversarial schedules stay architecturally
// exact, and the same seed reproduces the same run bit-for-bit.
// --------------------------------------------------------------------

TEST(Injection, AdversarialScheduleMatchesSerial)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(1234, 0.05);
    DualRun run(stormSrc, cfg, ExecMode::Specialized);
    run.expectRegionMatchesGolden("acc", 1);
    run.expectRegionMatchesGolden("out", 160);
}

TEST(Injection, SameSeedReproducesCyclesAndStats)
{
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(99, 0.08);
    DualRun a(stormSrc, cfg, ExecMode::Specialized);
    DualRun b(stormSrc, cfg, ExecMode::Specialized);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    for (const char *stat :
         {"squashes", "injected_squashes", "injected_jitter_cycles",
          "injected_broadcast_delays", "iterations", "lane_insts"}) {
        EXPECT_EQ(a.sys.lpsuModel().stats().get(stat),
                  b.sys.lpsuModel().stats().get(stat))
            << stat;
    }
}

TEST(Injection, InjectedSquashesAreCounted)
{
    // An om loop with no genuine conflicts: every squash observed is
    // an injected one, and the result must still be exact.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 128\n"
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  lw r10, 0(r9)\n"
        "  add r10, r10, r1\n"
        "  sw r10, 0(r9)\n"
        "  xloop.om r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "out: .space 512\n";
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(5, 0.04);
    DualRun run(src, cfg, ExecMode::Specialized);
    run.expectRegionMatchesGolden("out", 128);
    const StatGroup &ls = run.sys.lpsuModel().stats();
    EXPECT_GT(ls.get("injected_squashes"), 0u);
    EXPECT_GE(ls.get("squashes"), ls.get("injected_squashes"));
}

// --------------------------------------------------------------------
// Table II kernels under injection: every kernel, S and A modes,
// three adversarial seeds — the golden checker must always pass.
// --------------------------------------------------------------------

struct InjectedKernelCase
{
    std::string kernel;
    u64 seed;
    ExecMode mode;
};

std::string
injectedCaseName(const testing::TestParamInfo<InjectedKernelCase> &info)
{
    std::string name = info.param.kernel + "_s" +
                       std::to_string(info.param.seed) + "_" +
                       execModeName(info.param.mode);
    for (char &c : name)
        if (c == '-' || c == '.')
            c = '_';
    return name;
}

class InjectedKernels
    : public testing::TestWithParam<InjectedKernelCase>
{
};

TEST_P(InjectedKernels, GoldenCheckerPassesUnderInjection)
{
    const InjectedKernelCase &p = GetParam();
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(p.seed, 0.03);
    const KernelRun run =
        runKernel(kernelByName(p.kernel), cfg, p.mode);
    EXPECT_TRUE(run.passed) << run.error;
}

std::vector<InjectedKernelCase>
injectedGrid()
{
    std::vector<InjectedKernelCase> grid;
    for (const std::string &name : tableIIKernelNames()) {
        for (u64 seed : {u64{11}, u64{22}, u64{33}})
            grid.push_back({name, seed, ExecMode::Specialized});
        grid.push_back({name, 44, ExecMode::Adaptive});
    }
    return grid;
}

INSTANTIATE_TEST_SUITE_P(TableII, InjectedKernels,
                         testing::ValuesIn(injectedGrid()),
                         injectedCaseName);

} // namespace
} // namespace xloops
