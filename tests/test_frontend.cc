// Frontend tests: lexing, parsing (including source-located errors),
// structural render round-trips, the pattern-selection oracle over
// hand-written loop-nest sources, the speculative-DOACROSS and
// fission paths, and end-to-end compile-and-run equivalence between
// traditional and specialized execution.

#include <gtest/gtest.h>

#include "common/log.h"
#include "frontend/frontend.h"
#include "frontend/render.h"
#include "system/config.h"
#include "system/system.h"

namespace xloops {
namespace {

// --- lexer ---------------------------------------------------------------

TEST(Lexer, TokensAndComments)
{
    const auto toks = lex("for (i = 0; i < 10) // trailing\n  a[i]");
    ASSERT_GE(toks.size(), 12u);
    EXPECT_TRUE(toks[0].is(Token::Kind::Ident, "for"));
    EXPECT_TRUE(toks[1].is(Token::Kind::Punct, "("));
    EXPECT_EQ(toks[4].kind, Token::Kind::Number);
    EXPECT_EQ(toks[4].value, 0);
    EXPECT_TRUE(toks[7].is(Token::Kind::Punct, "<"));
    EXPECT_EQ(toks.back().kind, Token::Kind::End);
    // The comment is skipped: the token after ')' is 'a' on line 2.
    bool sawA = false;
    for (const Token &t : toks)
        if (t.is(Token::Kind::Ident, "a")) {
            sawA = true;
            EXPECT_EQ(t.line, 2);
        }
    EXPECT_TRUE(sawA);
}

TEST(Lexer, TwoCharPunctuators)
{
    const auto toks = lex("<= >= == != << >> && || ++");
    for (size_t i = 0; i + 1 < toks.size(); i++)
        EXPECT_EQ(toks[i].kind, Token::Kind::Punct);
    EXPECT_TRUE(toks[0].is(Token::Kind::Punct, "<="));
    EXPECT_TRUE(toks[5].is(Token::Kind::Punct, ">>"));
    EXPECT_TRUE(toks[8].is(Token::Kind::Punct, "++"));
}

TEST(Lexer, ErrorsCarryPosition)
{
    try {
        lex("x = 1;\n  y @ 2;");
        FAIL() << "expected FrontendError";
    } catch (const FrontendError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_EQ(e.col(), 5);
        EXPECT_NE(std::string(e.what()).find("xl:2:5:"),
                  std::string::npos);
    }
}

TEST(Lexer, LiteralRangeChecked)
{
    EXPECT_NO_THROW(lex("x = 2147483647;"));
    EXPECT_THROW(lex("x = 99999999999;"), FrontendError);
}

// --- parser --------------------------------------------------------------

TEST(Parser, ArraysStatementsAndSugar)
{
    const FrontendModule m = parseModule(
        "array A[4] = {1, -2, 3, 4};\n"
        "array B[4];\n"
        "let s = 0;\n"
        "#pragma xloops ordered\n"
        "for (i = 0; i < 4; i++) {\n"
        "    s = s + A[i];\n"
        "    B[i] = s;\n"
        "}\n");
    ASSERT_EQ(m.arrays.size(), 2u);
    EXPECT_EQ(m.arrays[0].name, "A");
    EXPECT_EQ(m.arrays[0].words, 4u);
    ASSERT_EQ(m.arrays[0].init.size(), 4u);
    EXPECT_EQ(m.arrays[0].init[1], -2);
    EXPECT_TRUE(m.arrays[1].init.empty());
    ASSERT_EQ(m.topLevel.size(), 2u);
    EXPECT_EQ(m.topLevel[0].kind, Stmt::Kind::AssignScalar);
    ASSERT_EQ(m.topLevel[1].kind, Stmt::Kind::Nested);
    const Loop &loop = m.topLevel[1].nested.front();
    EXPECT_EQ(loop.iv, "i");
    EXPECT_EQ(loop.pragma, Pragma::Ordered);
    EXPECT_TRUE(loop.hintSpecialize);
    EXPECT_EQ(loop.body.size(), 2u);
}

TEST(Parser, PragmasAndNohint)
{
    const FrontendModule m = parseModule(
        "array B[2];\n"
        "#pragma xloops unordered nohint\n"
        "for (i = 0; i < 2; i++) { B[i] = i; }\n"
        "#pragma xloops auto\n"
        "for (j = 0; j < 2; j++) { B[j] = j; }\n"
        "for (k = 0; k < 2; k++) { B[k] = k; }\n");
    ASSERT_EQ(m.topLevel.size(), 3u);
    EXPECT_EQ(m.topLevel[0].nested.front().pragma, Pragma::Unordered);
    EXPECT_FALSE(m.topLevel[0].nested.front().hintSpecialize);
    EXPECT_EQ(m.topLevel[1].nested.front().pragma, Pragma::Auto);
    EXPECT_EQ(m.topLevel[2].nested.front().pragma, Pragma::None);
}

TEST(Parser, PrecedenceAndUnary)
{
    // 1 + 2 * 3 parses as 1 + (2 * 3); -4 folds into a constant;
    // min/max are calls.
    const FrontendModule m = parseModule(
        "let x = 1 + 2 * 3;\n"
        "let y = -4;\n"
        "let z = max(x, min(y, 7));\n");
    const ExprPtr &sum = m.topLevel[0].value;
    ASSERT_EQ(sum->kind, Expr::Kind::Bin);
    EXPECT_EQ(sum->op, BinOp::Add);
    EXPECT_EQ(sum->rhs->op, BinOp::Mul);
    EXPECT_EQ(m.topLevel[1].value->kind, Expr::Kind::Const);
    EXPECT_EQ(m.topLevel[1].value->cval, -4);
    EXPECT_EQ(m.topLevel[2].value->op, BinOp::Max);
    EXPECT_EQ(m.topLevel[2].value->rhs->op, BinOp::Min);
}

TEST(Parser, RejectsBadInput)
{
    // Undeclared array.
    EXPECT_THROW(parseModule("B[0] = 1;\n"), FrontendError);
    // Induction-variable mismatch in the increment.
    EXPECT_THROW(parseModule("array B[2];\n"
                             "for (i = 0; i < 2; j++) { B[i] = 0; }\n"),
                 FrontendError);
    // Non-unit step.
    EXPECT_THROW(parseModule("array B[4];\n"
                             "for (i = 0; i < 4; i = i + 2) "
                             "{ B[i] = 0; }\n"),
                 FrontendError);
    // Missing semicolon.
    EXPECT_THROW(parseModule("let x = 1\nlet y = 2;\n"), FrontendError);
    // Duplicate array.
    EXPECT_THROW(parseModule("array A[2];\narray A[2];\n"),
                 FrontendError);
    // Initializer longer than the array.
    EXPECT_THROW(parseModule("array A[1] = {1, 2};\n"), FrontendError);
    // Unknown pragma.
    EXPECT_THROW(parseModule("array B[2];\n"
                             "#pragma xloops sideways\n"
                             "for (i = 0; i < 2; i++) { B[i] = 0; }\n"),
                 FrontendError);
}

TEST(Parser, BreakWhenAndDynamicBound)
{
    const FrontendModule m = parseModule(
        "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n"
        "array B[8];\n"
        "let s = 0;\n"
        "let n = 8;\n"
        "#pragma xloops ordered\n"
        "for (i = 0; i < n; i++) {\n"
        "    s = s + A[i];\n"
        "    B[i] = s;\n"
        "    break when (s > 10);\n"
        "}\n");
    const Loop &loop = m.topLevel.back().nested.front();
    EXPECT_EQ(loop.body.back().kind, Stmt::Kind::ExitWhen);
    EXPECT_EQ(loop.upper->kind, Expr::Kind::Var);
}

// --- render round-trip ---------------------------------------------------

TEST(Render, RoundTripIsFixpoint)
{
    const char *src =
        "array A[6] = {3, 1, 4, 1, 5, 9};\n"
        "array B[8];\n"
        "let p = 7;\n"
        "#pragma xloops auto\n"
        "for (i = 0; i < 6; i++) {\n"
        "    if ((A[i] & 1) == 1) {\n"
        "        B[i] = A[i] * p;\n"
        "    } else {\n"
        "        B[i] = 0 - A[i];\n"
        "    }\n"
        "}\n";
    const std::string once = renderModule(parseModule(src));
    const std::string twice = renderModule(parseModule(once));
    EXPECT_EQ(once, twice);
}

// --- pattern-selection oracle --------------------------------------------

struct OracleCase
{
    const char *label;
    const char *source;
    std::vector<std::string> expect;
};

TEST(Oracle, SelectionsMatchHandComputedTruth)
{
    const std::vector<OracleCase> cases = {
        {"uc: independent elementwise",
         "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\narray B[8];\n"
         "#pragma xloops unordered\n"
         "for (i = 0; i < 8; i++) { B[i] = A[i] * 2; }\n",
         {"uc"}},
        {"or: scalar accumulation only",
         "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\narray B[8];\n"
         "let s = 0;\n#pragma xloops ordered\n"
         "for (i = 0; i < 8; i++) { s = s + A[i]; B[i] = s; }\n",
         {"or"}},
        {"om: carried memory flow",
         "array B[12] = {5, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};\n"
         "#pragma xloops ordered\n"
         "for (i = 0; i < 10; i++) { B[i + 2] = B[i] + 1; }\n",
         {"om"}},
        {"orm: register and memory carried",
         "array B[12];\nlet s = 1;\n#pragma xloops ordered\n"
         "for (i = 0; i < 10; i++) { s = s + B[i]; "
         "B[i + 2] = s; }\n",
         {"orm"}},
        {"ua: atomic histogram",
         "array A[8] = {1, 2, 3, 1, 2, 3, 1, 2};\narray H[4];\n"
         "#pragma xloops atomic\n"
         "for (i = 0; i < 8; i++) { H[A[i] & 3] = H[A[i] & 3] + 1; "
         "}\n",
         {"ua"}},
        {"or.db: dynamic bound with accumulator",
         "array A[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, "
         "14, 15, 16};\narray B[16];\nlet s = 0;\nlet n = 8;\n"
         "#pragma xloops ordered\n"
         "for (i = 0; i < n; i++) { s = s + A[i]; B[i] = s; "
         "if ((A[i] & 1) == 1) { n = max(n, min(i + 2, 12)); } }\n",
         {"or.db"}},
        {"om.de: data-dependent exit, memory only",
         "array A[8] = {9, 9, 9, 42, 9, 9, 9, 9};\narray B[8];\n"
         "#pragma xloops ordered\n"
         "for (i = 0; i < 8; i++) { B[i] = A[i]; "
         "break when (A[i] == 42); }\n",
         {"om.de"}},
        {"orm.de: data-dependent exit with CIR",
         "array A[8] = {3, 3, 3, 3, 3, 3, 3, 3};\narray B[8];\n"
         "let s = 0;\n#pragma xloops ordered\n"
         "for (i = 0; i < 8; i++) { s = s + A[i]; B[i] = s; "
         "break when (s > 7); }\n",
         {"orm.de"}},
        {"serial: no pragma",
         "array B[4];\n"
         "for (i = 0; i < 4; i++) { B[i] = i; }\n",
         {"serial"}},
        {"om?: speculative DOACROSS on indirect update",
         "array C[8] = {0, 1, 2, 3, 0, 1, 2, 3};\narray B[4];\n"
         "#pragma xloops auto\n"
         "for (i = 0; i < 8; i++) { B[C[i]] = B[C[i]] + 1; }\n",
         {"om?"}},
        {"uc from auto: no dependences",
         "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\narray B[8];\n"
         "#pragma xloops auto\n"
         "for (i = 0; i < 8; i++) { B[i] = A[i] + 1; }\n",
         {"uc"}},
        {"om from auto: proven carried distance is not speculative",
         "array B[12] = {1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};\n"
         "#pragma xloops auto\n"
         "for (i = 0; i < 10; i++) { B[i + 2] = B[i] + 1; }\n",
         {"om"}},
        {"nested: specialized outer, serial inner",
         "array A[4] = {1, 2, 3, 4};\narray D[4];\n"
         "#pragma xloops ordered\n"
         "for (i = 0; i < 4; i++) {\n"
         "    let s = 0;\n"
         "    for (j = 0; j < 3; j++) { s = s + A[j]; }\n"
         "    D[i] = s + i;\n"
         "}\n",
         {"uc", "serial"}},
    };
    for (const OracleCase &c : cases) {
        const FrontendModule m = parseModule(c.source);
        const std::vector<LoopReport> reps = reportLoops(m.topLevel);
        ASSERT_EQ(reps.size(), c.expect.size()) << c.label;
        for (size_t i = 0; i < reps.size(); i++)
            EXPECT_EQ(reps[i].selection, c.expect[i])
                << c.label << " (loop " << i << ")";
    }
}

TEST(Oracle, SpeculativeFlagSurfacesInReport)
{
    const FrontendModule m = parseModule(
        "array C[8] = {0, 1, 2, 3, 0, 1, 2, 3};\narray B[4];\n"
        "#pragma xloops auto\n"
        "for (i = 0; i < 8; i++) { B[C[i]] = B[C[i]] + 1; }\n");
    const std::vector<LoopReport> reps = reportLoops(m.topLevel);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_TRUE(reps[0].speculative);
    EXPECT_TRUE(reps[0].inconclusive);
}

// --- fission -------------------------------------------------------------

const char *fissionSrc =
    "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n"
    "array B[8];\narray C[8];\n"
    "let s = 0;\n"
    "#pragma xloops ordered\n"
    "for (i = 0; i < 8; i++) {\n"
    "    B[i] = A[i] * 3;\n"
    "    s = s + A[i];\n"
    "    C[i] = s;\n"
    "}\n";

TEST(Fission, SplitsMixedBodyIntoUcAndOr)
{
    // Whole loop: the s-accumulation forces "or". Fissioned: the
    // independent B store becomes its own "uc" loop.
    FrontendOptions plain;
    const CompiledModule whole = compileSource(fissionSrc, plain);
    ASSERT_EQ(whole.loops.size(), 1u);
    EXPECT_EQ(whole.loops[0].selection, "or");
    EXPECT_FALSE(whole.fissionApplied);

    FrontendOptions fiss;
    fiss.fission = true;
    const CompiledModule split = compileSource(fissionSrc, fiss);
    EXPECT_TRUE(split.fissionApplied);
    ASSERT_EQ(split.loops.size(), 2u);
    EXPECT_EQ(split.loops[0].selection, "uc");
    EXPECT_EQ(split.loops[1].selection, "or");
}

// --- end-to-end execution ------------------------------------------------

/** Compile (optionally with fission), run in @p mode, return the
 *  final words of array @p name. */
std::vector<u32>
runArray(const char *src, bool fission, ExecMode mode,
         const std::string &name)
{
    FrontendOptions opts;
    opts.fission = fission;
    const CompiledModule cm = compileSource(src, opts);
    XloopsSystem sys(configs::byName("io+x"));
    sys.loadProgram(cm.program);
    RunOptions ro;
    ro.lockstep = true;
    sys.run(cm.program, mode, 2'000'000, ro);
    const ArrayDeclInfo *decl = cm.module.findArray(name);
    EXPECT_NE(decl, nullptr);
    std::vector<u32> words;
    const Addr base = cm.program.symbol(name);
    for (unsigned i = 0; i < decl->words; i++)
        words.push_back(sys.memory().readWord(base + 4 * i));
    return words;
}

TEST(EndToEnd, SpecializedMatchesTraditional)
{
    for (const char *name : {"B", "C"}) {
        EXPECT_EQ(runArray(fissionSrc, false, ExecMode::Traditional,
                           name),
                  runArray(fissionSrc, false, ExecMode::Specialized,
                           name))
            << name;
    }
}

TEST(EndToEnd, FissionPreservesSemantics)
{
    // Fissioned specialized output vs the unfissioned traditional
    // reference: the prepass must not change observable results.
    for (const char *name : {"B", "C"}) {
        EXPECT_EQ(runArray(fissionSrc, false, ExecMode::Traditional,
                           name),
                  runArray(fissionSrc, true, ExecMode::Specialized,
                           name))
            << name;
    }
}

TEST(EndToEnd, AtomicHistogramLowersToAmoAndMatches)
{
    // Regression for the xloop.ua lowering gap the fuzzer exposed:
    // a plain lw/add/sw read-modify-write inside an unordered-atomic
    // body loses updates; the backend must emit AMOs.
    const char *src =
        "array A[16] = {1, 2, 3, 1, 2, 3, 1, 2, 5, 6, 7, 5, 6, 7, 5, "
        "6};\narray H[8];\n"
        "#pragma xloops atomic\n"
        "for (i = 0; i < 16; i++) { H[A[i] & 7] = H[A[i] & 7] + 1; "
        "}\n";
    FrontendOptions opts;
    const CompiledModule cm = compileSource(src, opts);
    EXPECT_NE(cm.assembly.find("amoadd"), std::string::npos);
    EXPECT_EQ(runArray(src, false, ExecMode::Traditional, "H"),
              runArray(src, false, ExecMode::Specialized, "H"));
}

} // namespace
} // namespace xloops
