// ExecCore / FunctionalExecutor tests: per-instruction semantics and
// whole-program golden-model runs, including traditional execution of
// XLOOPS binaries (xloop as branch, xi as add).

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "cpu/exec_core.h"
#include "cpu/functional.h"
#include "mem/memory.h"

namespace xloops {
namespace {

struct Ctx
{
    MainMemory mem;
    RegFile regs;

    StepResult
    step(const Instruction &inst, Addr pc = 0x1000)
    {
        return ExecCore::step(inst, pc, regs, mem);
    }
};

TEST(ExecCore, R0AlwaysZero)
{
    Ctx c;
    c.step({.op = Op::ADDI, .rd = 0, .rs1 = 0, .imm = 55});
    EXPECT_EQ(c.regs.get(0), 0u);
}

TEST(ExecCore, IntegerAlu)
{
    Ctx c;
    c.regs.set(1, 7);
    c.regs.set(2, static_cast<u32>(-3));
    c.step({.op = Op::ADD, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(static_cast<i32>(c.regs.get(3)), 4);
    c.step({.op = Op::SUB, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), 10u);
    c.step({.op = Op::MUL, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(static_cast<i32>(c.regs.get(3)), -21);
    c.step({.op = Op::SLT, .rd = 3, .rs1 = 2, .rs2 = 1});
    EXPECT_EQ(c.regs.get(3), 1u);
    c.step({.op = Op::SLTU, .rd = 3, .rs1 = 2, .rs2 = 1});
    EXPECT_EQ(c.regs.get(3), 0u);  // 0xfffffffd unsigned-greater than 7
}

TEST(ExecCore, DivRemSignsAndDivByZero)
{
    Ctx c;
    c.regs.set(1, static_cast<u32>(-7));
    c.regs.set(2, 2);
    c.step({.op = Op::DIV, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(static_cast<i32>(c.regs.get(3)), -3);  // C truncation
    c.step({.op = Op::REM, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(static_cast<i32>(c.regs.get(3)), -1);
    c.regs.set(2, 0);
    c.step({.op = Op::DIV, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), ~0u);
    c.step({.op = Op::REM, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), static_cast<u32>(-7));
}

TEST(ExecCore, Shifts)
{
    Ctx c;
    c.regs.set(1, 0x80000001);
    c.step({.op = Op::SRLI, .rd = 2, .rs1 = 1, .imm = 1});
    EXPECT_EQ(c.regs.get(2), 0x40000000u);
    c.step({.op = Op::SRAI, .rd = 2, .rs1 = 1, .imm = 1});
    EXPECT_EQ(c.regs.get(2), 0xc0000000u);
    c.regs.set(3, 33);  // shift amounts wrap mod 32
    c.step({.op = Op::SLL, .rd = 2, .rs1 = 1, .rs2 = 3});
    EXPECT_EQ(c.regs.get(2), 0x00000002u);
}

TEST(ExecCore, MulhHighBits)
{
    Ctx c;
    c.regs.set(1, 0x40000000);
    c.regs.set(2, 8);
    c.step({.op = Op::MULH, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), 2u);
}

TEST(ExecCore, FloatArithmeticAndCompare)
{
    Ctx c;
    MainMemory scratch;
    scratch.writeFloat(0, 1.5f);
    c.regs.set(1, scratch.readWord(0));
    scratch.writeFloat(0, 2.25f);
    c.regs.set(2, scratch.readWord(0));
    c.step({.op = Op::FADD, .rd = 3, .rs1 = 1, .rs2 = 2});
    scratch.writeWord(0, c.regs.get(3));
    EXPECT_FLOAT_EQ(scratch.readFloat(0), 3.75f);
    c.step({.op = Op::FLT, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), 1u);
    c.step({.op = Op::FCVTWS, .rd = 3, .rs1 = 2});
    EXPECT_EQ(c.regs.get(3), 2u);  // truncation
    c.regs.set(4, static_cast<u32>(-7));
    c.step({.op = Op::FCVTSW, .rd = 3, .rs1 = 4});
    scratch.writeWord(0, c.regs.get(3));
    EXPECT_FLOAT_EQ(scratch.readFloat(0), -7.0f);
}

TEST(ExecCore, LoadsSignAndZeroExtend)
{
    Ctx c;
    c.mem.writeWord(0x100, 0xffffff80);
    c.regs.set(1, 0x100);
    c.step({.op = Op::LB, .rd = 2, .rs1 = 1, .imm = 0});
    EXPECT_EQ(static_cast<i32>(c.regs.get(2)), -128);
    c.step({.op = Op::LBU, .rd = 2, .rs1 = 1, .imm = 0});
    EXPECT_EQ(c.regs.get(2), 0x80u);
    c.step({.op = Op::LH, .rd = 2, .rs1 = 1, .imm = 2});
    EXPECT_EQ(static_cast<i32>(c.regs.get(2)), -1);
    c.step({.op = Op::LHU, .rd = 2, .rs1 = 1, .imm = 2});
    EXPECT_EQ(c.regs.get(2), 0xffffu);
}

TEST(ExecCore, StoreReportsMemAccess)
{
    Ctx c;
    c.regs.set(1, 0x200);
    c.regs.set(2, 42);
    const StepResult r =
        c.step({.op = Op::SW, .rs1 = 1, .rs2 = 2, .imm = 8});
    EXPECT_TRUE(r.memAccess);
    EXPECT_EQ(r.memAddr, 0x208u);
    EXPECT_EQ(r.memSize, 4u);
    EXPECT_EQ(c.mem.readWord(0x208), 42u);
}

TEST(ExecCore, BranchesAndJumps)
{
    Ctx c;
    c.regs.set(1, 5);
    c.regs.set(2, 5);
    StepResult r = c.step({.op = Op::BEQ, .rs1 = 1, .rs2 = 2, .imm = -4});
    EXPECT_TRUE(r.branchTaken);
    EXPECT_EQ(r.nextPc, 0x1000u - 16u);
    r = c.step({.op = Op::BNE, .rs1 = 1, .rs2 = 2, .imm = -4});
    EXPECT_FALSE(r.branchTaken);
    EXPECT_EQ(r.nextPc, 0x1004u);
    r = c.step({.op = Op::JAL, .rd = 31, .imm = 16});
    EXPECT_EQ(r.nextPc, 0x1000u + 64u);
    EXPECT_EQ(c.regs.get(31), 0x1004u);
    c.regs.set(5, 0x2000);
    r = c.step({.op = Op::JALR, .rd = 1, .rs1 = 5, .imm = 0});
    EXPECT_EQ(r.nextPc, 0x2000u);
}

TEST(ExecCore, XloopTraditionalSemantics)
{
    Ctx c;
    c.regs.set(1, 0);   // idx
    c.regs.set(2, 3);   // bound
    const Instruction xl{.op = Op::XLOOP_UC, .rd = 1, .rs1 = 2, .imm = -2};
    StepResult r = c.step(xl, 0x1010);
    EXPECT_TRUE(r.branchTaken);
    EXPECT_EQ(c.regs.get(1), 1u);
    EXPECT_EQ(r.nextPc, 0x1008u);
    c.step(xl, 0x1010);
    r = c.step(xl, 0x1010);      // idx: 2 -> 3, not < 3
    EXPECT_FALSE(r.branchTaken);
    EXPECT_EQ(r.nextPc, 0x1014u);
    EXPECT_EQ(c.regs.get(1), 3u);
}

TEST(ExecCore, XiTraditionalSemantics)
{
    Ctx c;
    c.regs.set(5, 100);
    c.step({.op = Op::ADDIU_XI, .rd = 5, .imm = 4});
    EXPECT_EQ(c.regs.get(5), 104u);
    c.regs.set(6, 12);
    c.step({.op = Op::ADDU_XI, .rd = 5, .rs2 = 6});
    EXPECT_EQ(c.regs.get(5), 116u);
}

TEST(ExecCore, AmoReturnsOldValue)
{
    Ctx c;
    c.mem.writeWord(0x400, 7);
    c.regs.set(1, 0x400);
    c.regs.set(2, 3);
    const StepResult r =
        c.step({.op = Op::AMOADD, .rd = 4, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(4), 7u);
    EXPECT_EQ(c.mem.readWord(0x400), 10u);
    EXPECT_TRUE(r.memAccess);
}

TEST(ExecCore, HaltStops)
{
    Ctx c;
    const StepResult r = c.step({.op = Op::HALT});
    EXPECT_TRUE(r.halted);
}


TEST(ExecCore, SubwordStores)
{
    Ctx c;
    c.mem.writeWord(0x100, 0xffffffff);
    c.regs.set(1, 0x100);
    c.regs.set(2, 0xab);
    c.step({.op = Op::SB, .rs1 = 1, .rs2 = 2, .imm = 1});
    EXPECT_EQ(c.mem.readWord(0x100), 0xffffabffu);
    c.regs.set(2, 0x1234);
    c.step({.op = Op::SH, .rs1 = 1, .rs2 = 2, .imm = 2});
    EXPECT_EQ(c.mem.readWord(0x100), 0x1234abffu);
}

TEST(ExecCore, FloatMinMaxSubDiv)
{
    Ctx c;
    MainMemory scratch;
    auto fbits = [&](float f) {
        scratch.writeFloat(0, f);
        return scratch.readWord(0);
    };
    auto asf = [&](u32 v) {
        scratch.writeWord(0, v);
        return scratch.readFloat(0);
    };
    c.regs.set(1, fbits(6.0f));
    c.regs.set(2, fbits(-1.5f));
    c.step({.op = Op::FSUB, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_FLOAT_EQ(asf(c.regs.get(3)), 7.5f);
    c.step({.op = Op::FDIV, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_FLOAT_EQ(asf(c.regs.get(3)), -4.0f);
    c.step({.op = Op::FMIN, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_FLOAT_EQ(asf(c.regs.get(3)), -1.5f);
    c.step({.op = Op::FMAX, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_FLOAT_EQ(asf(c.regs.get(3)), 6.0f);
    c.step({.op = Op::FLE, .rd = 3, .rs1 = 2, .rs2 = 1});
    EXPECT_EQ(c.regs.get(3), 1u);
    c.step({.op = Op::FEQ, .rd = 3, .rs1 = 1, .rs2 = 1});
    EXPECT_EQ(c.regs.get(3), 1u);
}

TEST(ExecCore, LogicalAndUnsignedBranches)
{
    Ctx c;
    c.regs.set(1, 0x0ff0);
    c.regs.set(2, 0x00ff);
    c.step({.op = Op::NOR, .rd = 3, .rs1 = 1, .rs2 = 2});
    EXPECT_EQ(c.regs.get(3), ~(0x0ff0u | 0x00ffu));
    c.regs.set(1, 1);
    c.regs.set(2, static_cast<u32>(-1));  // unsigned-huge
    StepResult r = c.step({.op = Op::BLTU, .rs1 = 1, .rs2 = 2,
                           .imm = -4});
    EXPECT_TRUE(r.branchTaken);
    r = c.step({.op = Op::BGEU, .rs1 = 1, .rs2 = 2, .imm = -4});
    EXPECT_FALSE(r.branchTaken);
}

TEST(ExecCore, FenceAndNopAreInert)
{
    Ctx c;
    const StepResult f = c.step({.op = Op::FENCE});
    EXPECT_FALSE(f.halted);
    EXPECT_FALSE(f.memAccess);
    EXPECT_EQ(f.nextPc, 0x1004u);
    const StepResult n = c.step({.op = Op::NOP});
    EXPECT_FALSE(n.regWritten);
}

// --- whole-program functional runs ---------------------------------------

TEST(Functional, SumLoopTraditional)
{
    // sum = 0; for (i = 0; i < 10; i++) sum += i;  via xloop.uc
    const Program prog = assemble(
        "  li r1, 0\n"       // i
        "  li r2, 10\n"      // n
        "  li r3, 0\n"       // sum
        "body:\n"
        "  add r3, r3, r1\n"
        "  xloop.uc r1, r2, body\n"
        "  la r4, out\n"
        "  sw r3, 0(r4)\n"
        "  halt\n"
        "  .data\n"
        "out: .word 0\n");
    MainMemory mem;
    prog.loadInto(mem);
    FunctionalExecutor exec(mem);
    const FuncResult result = exec.run(prog);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(mem.readWord(prog.symbol("out")), 45u);
    EXPECT_EQ(exec.stats().get("xloop_insts"), 10u);
}

TEST(Functional, VectorAddWithXi)
{
    const Program prog = assemble(
        "  li r1, 0\n"
        "  li r2, 8\n"
        "  la r5, a\n"
        "  la r6, b\n"
        "  la r7, c\n"
        "body:\n"
        "  lw r8, 0(r5)\n"
        "  lw r9, 0(r6)\n"
        "  add r10, r8, r9\n"
        "  sw r10, 0(r7)\n"
        "  addiu.xi r5, 4\n"
        "  addiu.xi r6, 4\n"
        "  addiu.xi r7, 4\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "a: .word 1, 2, 3, 4, 5, 6, 7, 8\n"
        "b: .word 10, 20, 30, 40, 50, 60, 70, 80\n"
        "c: .space 32\n");
    MainMemory mem;
    prog.loadInto(mem);
    FunctionalExecutor exec(mem);
    exec.run(prog);
    const Addr cAddr = prog.symbol("c");
    for (u32 i = 0; i < 8; i++)
        EXPECT_EQ(mem.readWord(cAddr + 4 * i), (i + 1) + 10 * (i + 1)) << i;
}

TEST(Functional, DynamicBoundWorklist)
{
    // Start with bound 1; first three iterations extend the bound,
    // writing each index into out[]. Models an xloop.uc.db worklist.
    const Program prog = assemble(
        "  li r1, 0\n"       // idx
        "  li r2, 1\n"       // bound (dynamic)
        "  la r7, out\n"
        "body:\n"
        "  slli r8, r1, 2\n"
        "  add r9, r7, r8\n"
        "  sw r1, 0(r9)\n"
        "  li r10, 4\n"
        "  bge r1, r10, done\n"   // first 4 iterations grow the bound
        "  addi r2, r2, 1\n"
        "done:\n"
        "  xloop.uc.db r1, r2, body\n"
        "  la r11, cnt\n"
        "  sw r1, 0(r11)\n"
        "  halt\n"
        "  .data\n"
        "out: .space 64\n"
        "cnt: .word 0\n");
    MainMemory mem;
    prog.loadInto(mem);
    FunctionalExecutor exec(mem);
    exec.run(prog);
    EXPECT_EQ(mem.readWord(prog.symbol("cnt")), 5u);
    for (u32 i = 0; i < 5; i++)
        EXPECT_EQ(mem.readWord(prog.symbol("out") + 4 * i), i) << i;
}

TEST(Functional, RunawayProgramHitsLimit)
{
    const Program prog = assemble("spin:\n  j spin\n  halt\n");
    MainMemory mem;
    prog.loadInto(mem);
    FunctionalExecutor exec(mem);
    EXPECT_THROW(exec.run(prog, 1000), FatalError);
}

TEST(Functional, CsrrReadsCycleCounter)
{
    const Program prog = assemble(
        "  csrr r1, 0\n"
        "  la r2, out\n"
        "  sw r1, 0(r2)\n"
        "  halt\n"
        "  .data\n"
        "out: .word 0\n");
    MainMemory mem;
    prog.loadInto(mem);
    FunctionalExecutor exec(mem);
    exec.run(prog);
    // The functional model reports dynamic instruction count as "cycle".
    EXPECT_EQ(mem.readWord(prog.symbol("out")), 0u);
}

} // namespace
} // namespace xloops
