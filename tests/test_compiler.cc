// xcc compiler tests: affine subscript analysis, register/memory
// dependence passes, pattern selection (including the paper's war and
// mm examples), and end-to-end compile-assemble-execute runs with and
// without the xi-generating loop strength reduction pass.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "compiler/codegen.h"
#include "compiler/fission.h"
#include "cpu/functional.h"
#include "system/system.h"

namespace xloops {
namespace {

// --- affine analysis -----------------------------------------------------

TEST(Affine, SimpleForms)
{
    const auto a = affineIn(var("i"), "i");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->coeff, 1);
    EXPECT_EQ(a->constValue, 0);

    const auto b = affineIn(add(mul(var("i"), cst(4)), cst(3)), "i");
    ASSERT_TRUE(b);
    EXPECT_EQ(b->coeff, 4);
    ASSERT_TRUE(b->constOffset);
    EXPECT_EQ(b->constValue, 3);

    const auto c = affineIn(sub(cst(10), var("i")), "i");
    ASSERT_TRUE(c);
    EXPECT_EQ(c->coeff, -1);
    EXPECT_EQ(c->constValue, 10);
}

TEST(Affine, SymbolicInvariant)
{
    // i*n + j : affine in i with coeff 0 unless n is const, but
    // affine in j with coeff 1 and invariant i*n.
    const ExprPtr e = add(mul(var("i"), var("n")), var("j"));
    const auto inJ = affineIn(e, "j");
    ASSERT_TRUE(inJ);
    EXPECT_EQ(inJ->coeff, 1);
    EXPECT_FALSE(inJ->constOffset);

    const auto inI = affineIn(e, "i");
    EXPECT_FALSE(inI.has_value());  // i*n: non-constant coefficient
}

TEST(Affine, NonAffineForms)
{
    EXPECT_FALSE(affineIn(mul(var("i"), var("i")), "i").has_value());
    EXPECT_FALSE(affineIn(ld("b", var("i")), "i").has_value());
    EXPECT_FALSE(
        affineIn(bin(BinOp::Rem, var("i"), cst(3)), "i").has_value());
}

TEST(Affine, ShiftAsMultiply)
{
    const auto s = affineIn(bin(BinOp::Shl, var("i"), cst(2)), "i");
    ASSERT_TRUE(s);
    EXPECT_EQ(s->coeff, 4);
}

TEST(Affine, IvFreeLoadIsInvariant)
{
    const auto f = affineIn(ld("b", var("j")), "i");
    ASSERT_TRUE(f);
    EXPECT_EQ(f->coeff, 0);
}

// --- scalar read/write sets ----------------------------------------------

TEST(ScalarRw, ReadFirstVsWrittenFirst)
{
    // t = a[i]; s = s + t;
    std::vector<Stmt> body;
    body.push_back(assign("t", ld("a", var("i"))));
    body.push_back(assign("s", add(var("s"), var("t"))));
    const RwSets rw = scalarRw(body);
    EXPECT_TRUE(rw.readFirst.count("s"));
    EXPECT_FALSE(rw.readFirst.count("t"));  // written before read
    EXPECT_TRUE(rw.written.count("t"));
    EXPECT_TRUE(rw.written.count("s"));
    EXPECT_TRUE(rw.readFirst.count("i"));
}

TEST(ScalarRw, IfBranchesMergeConservatively)
{
    std::vector<Stmt> body;
    body.push_back(ifThen(bin(BinOp::Lt, var("x"), cst(0)),
                          {assign("k", add(var("k"), cst(1)))}));
    const RwSets rw = scalarRw(body);
    EXPECT_TRUE(rw.readFirst.count("k"));
    EXPECT_TRUE(rw.written.count("k"));
    EXPECT_TRUE(rw.readFirst.count("x"));
}

// --- register dependence -------------------------------------------------

Loop
prefixSumLoop()
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body.push_back(assign("s", add(var("s"), ld("a", var("i")))));
    loop.body.push_back(store("out", var("i"), var("s")));
    return loop;
}

TEST(RegDep, PrefixSumHasOneCir)
{
    const RegDepResult r = regDepAnalysis(prefixSumLoop());
    ASSERT_EQ(r.cirs.size(), 1u);
    EXPECT_EQ(r.cirs[0], "s");
}

TEST(RegDep, IvAndBoundExcluded)
{
    Loop loop = prefixSumLoop();
    // Body that also references i and n: they are not CIRs.
    loop.body.push_back(assign("t", add(var("i"), var("n"))));
    const RegDepResult r = regDepAnalysis(loop);
    EXPECT_EQ(r.cirs.size(), 1u);
}

TEST(RegDep, WrittenFirstScalarIsNotCir)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body.push_back(assign("t", ld("a", var("i"))));
    loop.body.push_back(store("out", var("i"), mul(var("t"), var("t"))));
    EXPECT_TRUE(regDepAnalysis(loop).cirs.empty());
}

// --- memory dependence ---------------------------------------------------

Loop
mkLoop(std::vector<Stmt> body)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body = std::move(body);
    return loop;
}

TEST(MemDep, DisjointElementsIndependent)
{
    // out[i] = a[i] + 1: write out[i], read a[i]; no common array.
    const MemDepResult r = memDepAnalysis(
        mkLoop({store("out", var("i"), add(ld("a", var("i")), cst(1)))}));
    EXPECT_FALSE(r.hasCarriedDep);
}

TEST(MemDep, SameElementIsIntraIteration)
{
    // out[i] = out[i] + 1: strong SIV, distance 0.
    const MemDepResult r = memDepAnalysis(
        mkLoop({store("out", var("i"), add(ld("out", var("i")), cst(1)))}));
    EXPECT_FALSE(r.hasCarriedDep);
    bool sawIntra = false;
    for (const auto &p : r.pairs)
        if (p.verdict == MemDepVerdict::IntraIteration)
            sawIntra = true;
    EXPECT_TRUE(sawIntra);
}

TEST(MemDep, StrongSivCarriedDistance)
{
    // out[i] = out[i-2] + 1: carried, distance 2.
    const MemDepResult r = memDepAnalysis(mkLoop(
        {store("out", var("i"),
               add(ld("out", sub(var("i"), cst(2))), cst(1)))}));
    EXPECT_TRUE(r.hasCarriedDep);
    bool sawDist = false;
    for (const auto &p : r.pairs) {
        if (p.verdict == MemDepVerdict::CarriedDistance) {
            sawDist = true;
            EXPECT_EQ(p.distance, -2);
        }
    }
    EXPECT_TRUE(sawDist);
}

TEST(MemDep, CoprimeStridesIndependent)
{
    // write out[2i], read out[2i+1]: never alias.
    const MemDepResult r = memDepAnalysis(
        mkLoop({store("out", mul(var("i"), cst(2)),
                      ld("out", add(mul(var("i"), cst(2)), cst(1))))}));
    EXPECT_FALSE(r.hasCarriedDep);
}

TEST(MemDep, IndirectSubscriptAssumedCarried)
{
    // out[idx[i]] = i: the classic irregular update.
    const MemDepResult r = memDepAnalysis(
        mkLoop({store("out", ld("idx", var("i")), var("i"))}));
    EXPECT_TRUE(r.hasCarriedDep);
}

TEST(MemDep, ZivDifferentCellsIndependent)
{
    // write out[0], read out[1]: the ZIV test proves that flow pair
    // independent. The write itself still carries an output
    // dependence (every iteration writes cell 0), so the loop as a
    // whole is carried.
    const MemDepResult r = memDepAnalysis(
        mkLoop({store("out", cst(0), ld("out", cst(1)))}));
    bool sawIndependentFlowPair = false;
    bool sawCarriedSelfPair = false;
    for (const auto &p : r.pairs) {
        if (p.verdict == MemDepVerdict::Independent)
            sawIndependentFlowPair = true;
        if (p.verdict == MemDepVerdict::AssumedCarried)
            sawCarriedSelfPair = true;
    }
    EXPECT_TRUE(sawIndependentFlowPair);
    EXPECT_TRUE(sawCarriedSelfPair);
    EXPECT_TRUE(r.hasCarriedDep);
}

// --- bound update / db ---------------------------------------------------

TEST(BoundUpdate, DetectedOnlyWhenBodyWritesBound)
{
    Loop loop = prefixSumLoop();
    EXPECT_FALSE(boundUpdateAnalysis(loop));
    loop.body.push_back(assign("n", add(var("n"), cst(1))));
    EXPECT_TRUE(boundUpdateAnalysis(loop));
}

// --- pattern selection ---------------------------------------------------

TEST(PatternSelect, PragmaDriven)
{
    Loop loop = prefixSumLoop();
    loop.pragma = Pragma::Unordered;
    EXPECT_EQ(selectPattern(loop).pattern, LoopPattern::UC);
    loop.pragma = Pragma::Atomic;
    EXPECT_EQ(selectPattern(loop).pattern, LoopPattern::UA);
    loop.pragma = Pragma::None;
    EXPECT_TRUE(selectPattern(loop).serial);
}

TEST(PatternSelect, OrderedRefinesToOrOmOrm)
{
    // Register-only dependence -> or.
    EXPECT_EQ(selectPattern(prefixSumLoop()).pattern, LoopPattern::OR);

    // Memory-only dependence -> om.
    const Loop om = mkLoop(
        {store("out", var("i"),
               add(ld("out", sub(var("i"), cst(1))), cst(1)))});
    EXPECT_EQ(selectPattern(om).pattern, LoopPattern::OM);

    // Both -> orm.
    Loop orm = prefixSumLoop();
    orm.body.push_back(store("out", ld("idx", var("i")), var("s")));
    EXPECT_EQ(selectPattern(orm).pattern, LoopPattern::ORM);

    // Neither -> least restrictive (uc).
    const Loop none = mkLoop(
        {store("out", var("i"), add(ld("a", var("i")), cst(1)))});
    Loop noneOrdered = none;
    noneOrdered.pragma = Pragma::Ordered;
    EXPECT_EQ(selectPattern(noneOrdered).pattern, LoopPattern::UC);
}

TEST(PatternSelect, DynamicBoundVariants)
{
    Loop loop = mkLoop({store("out", var("i"), var("i")),
                        assign("n", add(var("n"), cst(1)))});
    loop.pragma = Pragma::Unordered;
    const LoopSelection sel = selectPattern(loop);
    EXPECT_TRUE(sel.dynamicBound);
    EXPECT_EQ(sel.opcode(), Op::XLOOP_UC_DB);
}

TEST(PatternSelect, WarOuterLoopIsOm)
{
    // Paper Figure 2: the middle (i) loop of Floyd-Warshall.
    //   path[i*n+j] = min(path[i*n+j], path[i*n+k] + path[k*n+j])
    // j is the inner iv; analyzed at the i level the subscripts are
    // symbolic, so dependence is conservatively carried -> om.
    Loop outer;
    outer.iv = "i";
    outer.lower = cst(0);
    outer.upper = var("n");
    outer.pragma = Pragma::Ordered;
    const ExprPtr ij = add(mul(var("i"), var("n")), var("j"));
    const ExprPtr ik = add(mul(var("i"), var("n")), var("k"));
    const ExprPtr kj = add(mul(var("k"), var("n")), var("j"));
    Loop inner;
    inner.iv = "j";
    inner.lower = cst(0);
    inner.upper = var("n");
    inner.pragma = Pragma::Unordered;
    inner.body.push_back(store(
        "path", ij,
        bin(BinOp::Min, ld("path", ij), add(ld("path", ik),
                                            ld("path", kj)))));
    outer.body.push_back(nested(inner));

    EXPECT_EQ(selectPattern(outer).pattern, LoopPattern::OM);
    EXPECT_EQ(selectPattern(inner).pattern, LoopPattern::UC);
}

TEST(PatternSelect, MmGreedyMatchingIsOrm)
{
    // Paper Figure 3: v/u are written before read (not CIRs), k is a
    // CIR, vertices[] updates are irregular -> orm.
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body.push_back(assign("v", ld("edgev", var("i"))));
    loop.body.push_back(assign("u", ld("edgeu", var("i"))));
    const ExprPtr cond =
        bin(BinOp::And,
            bin(BinOp::Lt, ld("vertices", var("v")), cst(0)),
            bin(BinOp::Lt, ld("vertices", var("u")), cst(0)));
    loop.body.push_back(ifThen(
        cond,
        {store("vertices", var("v"), var("u")),
         store("vertices", var("u"), var("v")),
         store("out", var("k"), var("i")),
         assign("k", add(var("k"), cst(1)))}));

    const LoopSelection sel = selectPattern(loop);
    EXPECT_EQ(sel.pattern, LoopPattern::ORM);
    ASSERT_EQ(sel.cirs.size(), 1u);
    EXPECT_EQ(sel.cirs[0], "k");
}

// --- end-to-end code generation ------------------------------------------

TEST(CodeGen, VectorAddCompilesAndRunsEverywhere)
{
    CodeGen cg;
    cg.declareArray("a", 64);
    cg.declareArray("b", 64);
    cg.declareArray("c", 64);

    std::vector<Stmt> prog;
    // Serial init loops (no pragma), then the unordered compute loop.
    Loop initA;
    initA.iv = "i";
    initA.lower = cst(0);
    initA.upper = cst(64);
    initA.body.push_back(store("a", var("i"), var("i")));
    initA.body.push_back(
        store("b", var("i"), mul(var("i"), cst(3))));
    prog.push_back(nested(initA));

    Loop compute;
    compute.iv = "i";
    compute.lower = cst(0);
    compute.upper = cst(64);
    compute.pragma = Pragma::Unordered;
    compute.body.push_back(store(
        "c", var("i"), add(ld("a", var("i")), ld("b", var("i")))));
    prog.push_back(nested(compute));

    const std::string text = cg.compile(prog);
    EXPECT_NE(text.find("xloop.uc"), std::string::npos);
    EXPECT_NE(text.find("addiu.xi"), std::string::npos);  // LSR ran

    const Program bin = assemble(text);
    for (const ExecMode mode :
         {ExecMode::Traditional, ExecMode::Specialized}) {
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(bin);
        sys.run(bin, mode);
        for (u32 i = 0; i < 64; i++)
            EXPECT_EQ(sys.memory().readWord(bin.symbol("c") + 4 * i),
                      4 * i) << i;
    }
}

TEST(CodeGen, LsrDisabledGeneratesNoXi)
{
    CodeGen cg;
    cg.lsrEnabled(false);
    cg.declareArray("a", 16);
    cg.declareArray("c", 16);
    Loop compute;
    compute.iv = "i";
    compute.lower = cst(0);
    compute.upper = cst(16);
    compute.pragma = Pragma::Unordered;
    compute.body.push_back(
        store("c", var("i"), add(ld("a", var("i")), cst(7))));
    const std::string text = cg.compile({nested(compute)});
    EXPECT_EQ(text.find("addiu.xi"), std::string::npos);
    EXPECT_NE(text.find("xloop.uc"), std::string::npos);

    // Still correct on the LPSU.
    const Program bin = assemble(text);
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(bin);
    sys.run(bin, ExecMode::Specialized);
    for (u32 i = 0; i < 16; i++)
        EXPECT_EQ(sys.memory().readWord(bin.symbol("c") + 4 * i), 7u);
}

TEST(CodeGen, PrefixSumCompilesToXloopOr)
{
    CodeGen cg;
    cg.declareArray("a", 32);
    cg.declareArray("out", 32);

    std::vector<Stmt> prog;
    Loop init;
    init.iv = "i";
    init.lower = cst(0);
    init.upper = cst(32);
    init.body.push_back(store("a", var("i"), var("i")));
    prog.push_back(nested(init));

    prog.push_back(assign("s", cst(0)));
    prog.push_back(assign("n", cst(32)));
    Loop loop = prefixSumLoop();
    prog.push_back(nested(loop));

    const std::string text = cg.compile(prog);
    EXPECT_NE(text.find("xloop.or"), std::string::npos);

    const Program bin = assemble(text);
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(bin);
    sys.run(bin, ExecMode::Specialized);
    u32 expect = 0;
    for (u32 i = 0; i < 32; i++) {
        expect += i;
        EXPECT_EQ(sys.memory().readWord(bin.symbol("out") + 4 * i),
                  expect) << i;
    }
}

TEST(CodeGen, WarNestedCompilesAndMatchesSerial)
{
    constexpr i32 n = 12;
    CodeGen cg;
    cg.declareArray("path", n * n);

    std::vector<Stmt> prog;
    // init: path[i*n+j] = (i*7 + j*13) % 64 + 1, diag 0.
    Loop ii;
    ii.iv = "i";
    ii.lower = cst(0);
    ii.upper = cst(n);
    Loop jj;
    jj.iv = "j";
    jj.lower = cst(0);
    jj.upper = cst(n);
    const ExprPtr idx = add(mul(var("i"), cst(n)), var("j"));
    jj.body.push_back(store(
        "path", idx,
        add(bin(BinOp::Rem,
                add(mul(var("i"), cst(7)), mul(var("j"), cst(13))),
                cst(64)),
            cst(1))));
    jj.body.push_back(ifThen(bin(BinOp::Eq, var("i"), var("j")),
                             {store("path", idx, cst(0))}));
    ii.body.push_back(nested(jj));
    prog.push_back(nested(ii));

    // Floyd-Warshall: k serial, i ordered (om), j unordered (uc).
    prog.push_back(assign("n", cst(n)));
    Loop kL;
    kL.iv = "k";
    kL.lower = cst(0);
    kL.upper = cst(n);
    Loop iL;
    iL.iv = "i";
    iL.lower = cst(0);
    iL.upper = var("n");
    iL.pragma = Pragma::Ordered;
    iL.hintSpecialize = true;
    Loop jL;
    jL.iv = "j";
    jL.lower = cst(0);
    jL.upper = var("n");
    jL.pragma = Pragma::Unordered;
    jL.hintSpecialize = false;
    const ExprPtr pij = add(mul(var("i"), var("n")), var("j"));
    const ExprPtr pik = add(mul(var("i"), var("n")), var("k"));
    const ExprPtr pkj = add(mul(var("k"), var("n")), var("j"));
    jL.body.push_back(store(
        "path", pij,
        bin(BinOp::Min, ld("path", pij),
            add(ld("path", pik), ld("path", pkj)))));
    iL.body.push_back(nested(jL));
    kL.body.push_back(nested(iL));
    prog.push_back(nested(kL));

    const std::string text = cg.compile(prog);
    EXPECT_NE(text.find("xloop.om"), std::string::npos);
    EXPECT_NE(text.find("xloop.uc"), std::string::npos);

    const Program bin = assemble(text);
    // Golden: functional serial execution.
    MainMemory golden;
    bin.loadInto(golden);
    FunctionalExecutor exec(golden);
    exec.run(bin);

    XloopsSystem sys(configs::ooo2X());
    sys.loadProgram(bin);
    sys.run(bin, ExecMode::Specialized);
    for (i32 i = 0; i < n * n; i++)
        EXPECT_EQ(sys.memory().readWord(bin.symbol("path") + 4 * i),
                  golden.readWord(bin.symbol("path") + 4 * i)) << i;
}

TEST(CodeGen, UndeclaredArrayRejected)
{
    CodeGen cg;
    EXPECT_THROW(cg.compile({store("nope", cst(0), cst(1))}), FatalError);
}

TEST(CodeGen, ArrayInitializers)
{
    CodeGen cg;
    cg.declareArray("a", 4, {5, -6, 7});
    const Program bin = cg.compileToProgram({});
    MainMemory mem;
    bin.loadInto(mem);
    EXPECT_EQ(mem.readWord(bin.symbol("a")), 5u);
    EXPECT_EQ(static_cast<i32>(mem.readWord(bin.symbol("a") + 4)), -6);
    EXPECT_EQ(mem.readWord(bin.symbol("a") + 12), 0u);
}


TEST(CodeGen, ExitWhenLowersToDataDependentExit)
{
    // while-style search: for (i = 0; i < 256; i++) { if (a[i] == 77)
    // { out[0] = i; break; } } with an ordered pragma.
    CodeGen cg;
    cg.declareArray("a", 256);
    cg.declareArray("out", 1, {-1});

    std::vector<Stmt> prog;
    Loop init;
    init.iv = "i";
    init.lower = cst(0);
    init.upper = cst(256);
    init.body.push_back(store("a", var("i"), mul(var("i"), cst(3))));
    prog.push_back(nested(init));
    // Plant the needle at index 123.
    prog.push_back(store("a", cst(123), cst(77)));

    Loop search;
    search.iv = "i";
    search.lower = cst(0);
    search.upper = cst(256);
    search.pragma = Pragma::Ordered;
    const ExprPtr found = bin(BinOp::Eq, ld("a", var("i")), cst(77));
    search.body.push_back(
        ifThen(found, {store("out", cst(0), var("i"))}));
    search.body.push_back(exitWhen(found));
    prog.push_back(nested(search));

    const LoopSelection sel = selectPattern(search);
    EXPECT_TRUE(sel.dataDepExit);
    EXPECT_EQ(sel.opcode(), Op::XLOOP_OM_DE);

    const std::string text = cg.compile(prog);
    EXPECT_NE(text.find("xloop.om.de"), std::string::npos);

    const Program bin2 = assemble(text);
    for (const ExecMode mode :
         {ExecMode::Traditional, ExecMode::Specialized}) {
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(bin2);
        sys.run(bin2, mode);
        EXPECT_EQ(sys.memory().readWord(bin2.symbol("out")), 123u)
            << execModeName(mode);
    }
}

TEST(CodeGen, ExitWhenWithCirLowersToOrmDe)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body.push_back(assign("s", add(var("s"), ld("a", var("i")))));
    loop.body.push_back(exitWhen(bin(BinOp::Gt, var("s"), cst(1000))));
    const LoopSelection sel = selectPattern(loop);
    EXPECT_TRUE(sel.dataDepExit);
    EXPECT_EQ(sel.pattern, LoopPattern::ORM);
    EXPECT_EQ(sel.opcode(), Op::XLOOP_ORM_DE);
}

TEST(CodeGen, ExitWhenInUnorderedLoopRejected)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = cst(8);
    loop.pragma = Pragma::Unordered;
    loop.body.push_back(exitWhen(cst(1)));
    EXPECT_THROW(selectPattern(loop), FatalError);
}

TEST(CodeGen, ExitWhenOutsideDeLoopRejected)
{
    CodeGen cg;
    EXPECT_THROW(cg.compile({exitWhen(cst(1))}), FatalError);
}

TEST(CodeGen, SerialLoopWithExitWhenRunsCorrectly)
{
    CodeGen cg;
    cg.declareArray("out", 1);
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = cst(100);
    loop.pragma = Pragma::None;  // plain serial loop with a break
    loop.body.push_back(store("out", cst(0), var("i")));
    loop.body.push_back(exitWhen(bin(BinOp::Ge, var("i"), cst(42))));
    const Program bin2 = cg.compileToProgram({nested(loop)});
    XloopsSystem sys(configs::io());
    sys.loadProgram(bin2);
    sys.run(bin2, ExecMode::Traditional);
    EXPECT_EQ(sys.memory().readWord(bin2.symbol("out")), 42u);
}

// --- auto pragma / speculative DOACROSS ----------------------------------

Loop
autoLoop(std::vector<Stmt> body)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Auto;
    loop.body = std::move(body);
    return loop;
}

TEST(AutoSelect, NoDependencesIsUc)
{
    const LoopSelection sel = selectPattern(autoLoop(
        {store("out", var("i"), add(ld("a", var("i")), cst(1)))}));
    EXPECT_EQ(sel.pattern, LoopPattern::UC);
    EXPECT_FALSE(sel.speculative);
    EXPECT_TRUE(sel.autoSelected);
    EXPECT_EQ(sel.describe(), "uc");
}

TEST(AutoSelect, InconclusiveMemDepIsSpeculativeOm)
{
    // out[idx[i]] += 1: the subscript is not affine in i, so every
    // test is inconclusive -> speculative DOACROSS ("om?"): the
    // LPSU's dynamic store ordering supplies the conflict detection
    // the static analysis could not.
    const LoopSelection sel = selectPattern(autoLoop(
        {store("out", ld("idx", var("i")),
               add(ld("out", ld("idx", var("i"))), cst(1)))}));
    EXPECT_EQ(sel.pattern, LoopPattern::OM);
    EXPECT_TRUE(sel.speculative);
    EXPECT_TRUE(sel.inconclusive);
    EXPECT_EQ(sel.describe(), "om?");
}

TEST(AutoSelect, ProvenDistanceIsNotSpeculative)
{
    // out[i+2] = out[i]: a *proven* carried distance needs no
    // speculation — the LMU enforces the distance directly.
    const LoopSelection sel = selectPattern(autoLoop(
        {store("out", add(var("i"), cst(2)),
               add(ld("out", var("i")), cst(1)))}));
    EXPECT_EQ(sel.pattern, LoopPattern::OM);
    EXPECT_FALSE(sel.speculative);
    EXPECT_EQ(sel.describe(), "om");
}

TEST(AutoSelect, OrderedPragmaNeverSpeculates)
{
    // The same inconclusive body under an explicit ordered pragma:
    // the programmer asked for ordered semantics, no "?" suffix.
    Loop loop = autoLoop(
        {store("out", ld("idx", var("i")),
               add(ld("out", ld("idx", var("i"))), cst(1)))});
    loop.pragma = Pragma::Ordered;
    const LoopSelection sel = selectPattern(loop);
    EXPECT_EQ(sel.pattern, LoopPattern::OM);
    EXPECT_FALSE(sel.speculative);
    EXPECT_EQ(sel.describe(), "om");
}

TEST(AutoSelect, DynamicBoundPromotesUcToOm)
{
    // A dependence-free auto body that raises its own bound: uc.db
    // would be worklist semantics, so auto promotes to om.db and the
    // LMU samples the bound at in-order commit.
    const LoopSelection sel = selectPattern(autoLoop(
        {store("out", var("i"), var("i")),
         assign("n", add(var("n"), cst(1)))}));
    EXPECT_TRUE(sel.dynamicBound);
    EXPECT_EQ(sel.pattern, LoopPattern::OM);
    EXPECT_EQ(sel.describe(), "om.db");
    EXPECT_EQ(sel.opcode(), Op::XLOOP_OM_DB);
}

// --- loop fission --------------------------------------------------------

TEST(Fission, SplitsIndependentStoreFromAccumulation)
{
    // { b[i] = a[i]*3; s += a[i]; c[i] = s } — the b-store shares no
    // written entity with the accumulation chain, so fission yields
    // a uc fragment and an or fragment, in original statement order.
    Loop loop = mkLoop(
        {store("b", var("i"), mul(ld("a", var("i")), cst(3))),
         assign("s", add(var("s"), ld("a", var("i")))),
         store("c", var("i"), var("s"))});
    const std::vector<Loop> pieces = fissionLoop(loop);
    ASSERT_EQ(pieces.size(), 2u);
    EXPECT_EQ(pieces[0].body.size(), 1u);
    EXPECT_EQ(selectPattern(pieces[0]).describe(), "uc");
    EXPECT_EQ(pieces[1].body.size(), 2u);
    EXPECT_EQ(selectPattern(pieces[1]).describe(), "or");
}

TEST(Fission, UnprofitableWhenAllFragmentsKeepThePattern)
{
    // Two independent elementwise stores: both fragments would be
    // "uc", same as the whole — fission must decline.
    Loop loop = mkLoop(
        {store("b", var("i"), ld("a", var("i"))),
         store("c", var("i"), ld("a", var("i")))});
    loop.pragma = Pragma::Unordered;
    EXPECT_TRUE(fissionLoop(loop).empty());
}

TEST(Fission, SharedWrittenScalarKeepsStatementsTogether)
{
    // Both stores read the written scalar s: one component, no split.
    Loop loop = mkLoop(
        {assign("s", add(var("s"), ld("a", var("i")))),
         store("b", var("i"), var("s")),
         store("c", var("i"), var("s"))});
    EXPECT_TRUE(fissionLoop(loop).empty());
}

TEST(Fission, BailsOnUnsafeShapes)
{
    // Serial loop: never fissioned.
    Loop serial = mkLoop(
        {store("b", var("i"), ld("a", var("i"))),
         assign("s", add(var("s"), cst(1)))});
    serial.pragma = Pragma::None;
    EXPECT_TRUE(fissionLoop(serial).empty());

    // Data-dependent exit: splitting would change which iterations
    // the later fragment runs.
    Loop dde = mkLoop(
        {store("b", var("i"), ld("a", var("i"))),
         assign("s", add(var("s"), cst(1)))});
    dde.body.push_back(exitWhen(bin(BinOp::Gt, var("s"), cst(9))));
    EXPECT_TRUE(fissionLoop(dde).empty());

    // Dynamic bound: fragment trip counts would diverge.
    Loop db = mkLoop(
        {store("b", var("i"), ld("a", var("i"))),
         assign("s", add(var("s"), cst(1))),
         assign("n", add(var("n"), cst(1)))});
    EXPECT_TRUE(fissionLoop(db).empty());

    // Single statement: nothing to split.
    Loop one = mkLoop({store("b", var("i"), ld("a", var("i")))});
    EXPECT_TRUE(fissionLoop(one).empty());
}

TEST(Fission, ApplyFissionRewritesTopLevelInPlace)
{
    std::vector<Stmt> top;
    top.push_back(assign("s", cst(0)));
    top.push_back(nested(mkLoop(
        {store("b", var("i"), mul(ld("a", var("i")), cst(3))),
         assign("s", add(var("s"), ld("a", var("i")))),
         store("c", var("i"), var("s"))})));
    applyFission(top);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[1].kind, Stmt::Kind::Nested);
    EXPECT_EQ(top[2].kind, Stmt::Kind::Nested);
    EXPECT_EQ(selectPattern(top[1].nested.front()).describe(), "uc");
    EXPECT_EQ(selectPattern(top[2].nested.front()).describe(), "or");
}

} // namespace
} // namespace xloops
