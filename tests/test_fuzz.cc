// Fuzzer infrastructure tests: generator determinism and soundness
// (every generated program re-parses, and the analyzer agrees with
// the by-construction ground truth), the differential harness on a
// sample of seeds, corpus-file directive parsing, and the shrinker's
// fixpoint contract.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "frontend/frontend.h"
#include "frontend/render.h"
#include "fuzz/harness.h"
#include "fuzz/shrink.h"

namespace xloops {
namespace {

TEST(Gen, Deterministic)
{
    for (const u64 seed : {1ull, 7ull, 1234ull, 0xdeadbeefull}) {
        const GenProgram a = generateProgram(seed);
        const GenProgram b = generateProgram(seed);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.recipe, b.recipe);
        EXPECT_EQ(a.source, b.source);
        EXPECT_EQ(a.truths, b.truths);
        EXPECT_EQ(a.fissionTruths, b.fissionTruths);
    }
}

TEST(Gen, EverySeedRendersReparsesAndRoundTrips)
{
    for (u64 seed = 1; seed <= 100; seed++) {
        const GenProgram p = generateProgram(seed);
        FrontendModule reparsed;
        ASSERT_NO_THROW(reparsed = parseModule(p.source))
            << p.name << "\n" << p.source;
        EXPECT_EQ(renderModule(reparsed), p.source) << p.name;
    }
}

TEST(Gen, AnalyzerAgreesWithGroundTruth)
{
    // The core soundness property, checked statically (no simulation)
    // over many seeds: the analyzer's pattern selections equal the
    // generator's by-construction truths, and for fission candidates
    // the post-fission selections equal the fission truths.
    std::set<std::string> recipesSeen;
    for (u64 seed = 1; seed <= 300; seed++) {
        const GenProgram p = generateProgram(seed);
        recipesSeen.insert(p.recipe);
        const FrontendModule mod = parseModule(p.source);
        const std::vector<LoopReport> reps = reportLoops(mod.topLevel);
        ASSERT_EQ(reps.size(), p.truths.size())
            << p.name << "\n" << p.source;
        for (size_t i = 0; i < reps.size(); i++)
            EXPECT_EQ(reps[i].selection, p.truths[i])
                << p.name << " loop " << i << "\n" << p.source;
        if (p.useFission) {
            FrontendOptions fo;
            fo.fission = true;
            const CompiledModule fm = compileModule(mod, fo);
            ASSERT_EQ(fm.loops.size(), p.fissionTruths.size())
                << p.name;
            for (size_t i = 0; i < fm.loops.size(); i++)
                EXPECT_EQ(fm.loops[i].selection, p.fissionTruths[i])
                    << p.name << " fission loop " << i;
        }
    }
    // 300 seeds must exercise every recipe.
    EXPECT_EQ(recipesSeen.size(), recipeNames().size());
}

TEST(Harness, DifferentialPropertyHoldsOnSample)
{
    // A small in-process sample of the fuzz_smoke ctest target (which
    // drives 200 seeds through the xfuzz binary): full differential
    // checks with fault injection on a handful of seeds.
    FuzzOptions opts;
    for (u64 seed = 31; seed <= 40; seed++) {
        const GenProgram p = generateProgram(seed);
        const FuzzVerdict v = checkProgram(p, opts);
        EXPECT_TRUE(v.ok())
            << p.name << " failed " << v.firstPhase() << ": "
            << (v.failures.empty() ? "" : v.failures[0].detail) << "\n"
            << p.source;
    }
}

TEST(Harness, CorpusDirectivesParse)
{
    const std::string path = "corpus_case_tmp.xl";
    {
        std::ofstream out(path);
        out << "//! expect: or, serial\n"
               "//! options: fission\n"
               "//! fission-expect: uc, or, serial\n"
               "//! seed: 42\n"
               "array B[4];\n"
               "#pragma xloops ordered\n"
               "for (i = 0; i < 4; i++) { B[i] = i; }\n";
    }
    const CorpusCase c = loadCorpusFile(path);
    EXPECT_EQ(c.expect, (std::vector<std::string>{"or", "serial"}));
    EXPECT_TRUE(c.fission);
    EXPECT_EQ(c.fissionExpect,
              (std::vector<std::string>{"uc", "or", "serial"}));
    EXPECT_EQ(c.seed, 42u);
    // Directive lines stay in the source as comments.
    EXPECT_NE(c.source.find("#pragma"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Harness, MissingExpectDirectiveRejected)
{
    const std::string path = "corpus_bad_tmp.xl";
    {
        std::ofstream out(path);
        out << "array B[2];\n"
               "for (i = 0; i < 2; i++) { B[i] = i; }\n";
    }
    EXPECT_THROW(loadCorpusFile(path), FatalError);
    std::remove(path.c_str());
}

TEST(Harness, WrongTruthIsCaught)
{
    GenProgram p = generateProgram(3);
    p.truths.push_back("uc");  // one loop too many
    FuzzOptions opts;
    const FuzzVerdict v = checkProgram(p, opts);
    EXPECT_FALSE(v.ok());
    EXPECT_EQ(v.firstPhase(), "truth");
}

TEST(Shrink, ReachesFixpointAndPreservesPredicate)
{
    // Minimize "the first loop's selection is 'or'" starting from a
    // regdep program with extra structure. The shrunk program must
    // still satisfy the predicate, and no single further edit may.
    GenProgram p;
    p.name = "shrinkme";
    p.source =
        "array A[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n"
        "array B[8];\narray D[6];\n"
        "let q = 5;\n"
        "let s = 0;\n"
        "#pragma xloops ordered\n"
        "for (i = 0; i < 8; i++) {\n"
        "    if (A[i] > 2) {\n"
        "        s = s + A[i] * q;\n"
        "    } else {\n"
        "        s = s + 1;\n"
        "    }\n"
        "    B[i] = s;\n"
        "}\n"
        "#pragma xloops unordered\n"
        "for (k = 0; k < 6; k++) {\n"
        "    D[k] = k * 2;\n"
        "}\n";
    p.module = parseModule(p.source);

    const FailPredicate firstIsOr = [](const GenProgram &g) {
        try {
            const auto reps =
                reportLoops(parseModule(g.source).topLevel);
            return !reps.empty() && reps[0].selection == "or";
        } catch (...) {
            return false;
        }
    };
    ASSERT_TRUE(firstIsOr(p));
    const GenProgram shrunk = shrinkProgram(p, firstIsOr);
    EXPECT_TRUE(firstIsOr(shrunk));
    EXPECT_LT(shrunk.source.size(), p.source.size());
    // The unrelated second loop and the if must both be gone.
    EXPECT_EQ(shrunk.source.find("unordered"), std::string::npos);
    EXPECT_EQ(shrunk.source.find("if"), std::string::npos);
    // Fixpoint: no single remaining edit still satisfies the
    // predicate.
    for (const FrontendModule &cand : shrinkCandidates(shrunk.module)) {
        GenProgram next = shrunk;
        next.module = cand;
        next.source = renderModule(next.module);
        EXPECT_FALSE(firstIsOr(next)) << next.source;
    }
}

} // namespace
} // namespace xloops
