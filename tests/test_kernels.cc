// Integration tests: every registered kernel must validate (against
// the serial golden model and/or its semantic checker) under
// traditional, specialized, and adaptive execution on multiple system
// configurations. Also covers the GP-ISA serialization transform and
// kernel-suite metadata invariants.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/log.h"
#include "cpu/functional.h"
#include "cpu/threaded.h"
#include "kernels/kernel.h"

namespace xloops {
namespace {

class KernelCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelCorrectness, TraditionalOnIo)
{
    const Kernel &k = kernelByName(GetParam());
    const KernelRun run = runKernel(k, configs::io(), ExecMode::Traditional);
    EXPECT_TRUE(run.passed) << run.error;
}

TEST_P(KernelCorrectness, TraditionalGpBinaryOnOoo2)
{
    const Kernel &k = kernelByName(GetParam());
    const KernelRun run =
        runKernel(k, configs::ooo2(), ExecMode::Traditional, true);
    EXPECT_TRUE(run.passed) << run.error;
}

TEST_P(KernelCorrectness, SpecializedOnIoX)
{
    const Kernel &k = kernelByName(GetParam());
    const KernelRun run =
        runKernel(k, configs::ioX(), ExecMode::Specialized);
    EXPECT_TRUE(run.passed) << run.error;
}

TEST_P(KernelCorrectness, SpecializedOnOoo4X)
{
    const Kernel &k = kernelByName(GetParam());
    const KernelRun run =
        runKernel(k, configs::ooo4X(), ExecMode::Specialized);
    EXPECT_TRUE(run.passed) << run.error;
}

TEST_P(KernelCorrectness, AdaptiveOnOoo2X)
{
    const Kernel &k = kernelByName(GetParam());
    const KernelRun run =
        runKernel(k, configs::ooo2X(), ExecMode::Adaptive);
    EXPECT_TRUE(run.passed) << run.error;
}

TEST_P(KernelCorrectness, SpecializedOnDseConfigs)
{
    const Kernel &k = kernelByName(GetParam());
    for (const auto &cfg : {configs::ooo4X8(), configs::ooo4X8rm(),
                            configs::ooo4X4t()}) {
        const KernelRun run = runKernel(k, cfg, ExecMode::Specialized);
        EXPECT_TRUE(run.passed) << cfg.name << ": " << run.error;
    }
}

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    for (const Kernel &k : kernelRegistry())
        names.push_back(k.name);
    return names;
}

std::string
sanitize(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (auto &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelCorrectness,
                         ::testing::ValuesIn(allKernelNames()), sanitize);

TEST(KernelRegistry, NamesAreUnique)
{
    std::set<std::string> seen;
    for (const Kernel &k : kernelRegistry())
        EXPECT_TRUE(seen.insert(k.name).second) << k.name;
}

TEST(KernelRegistry, TableIIKernelsAllRegistered)
{
    for (const auto &name : tableIIKernelNames())
        EXPECT_NO_THROW(kernelByName(name)) << name;
    EXPECT_EQ(tableIIKernelNames().size(), 25u);
}

TEST(KernelRegistry, UnknownNameThrows)
{
    EXPECT_THROW(kernelByName("nonesuch"), FatalError);
}

TEST(GpIsaTransform, RemovesAllXloopsAndXis)
{
    for (const Kernel &k : kernelRegistry()) {
        const std::string gp = serializeToGpIsa(k.source);
        EXPECT_EQ(gp.find("xloop."), std::string::npos) << k.name;
        EXPECT_EQ(gp.find(".xi"), std::string::npos) << k.name;
        EXPECT_NO_THROW(assemble(gp)) << k.name;
    }
}

TEST(GpIsaTransform, DynInstRatioNearOne)
{
    // Paper Table II: the XLOOPS binary executes about the same
    // number of dynamic instructions as the GP binary (X/G around
    // 0.9-1.1; xloop saves the addi of the increment-compare pair).
    for (const auto &name : tableIIKernelNames()) {
        const Kernel &k = kernelByName(name);
        const KernelRun xl =
            runKernel(k, configs::io(), ExecMode::Traditional, false);
        const KernelRun gp =
            runKernel(k, configs::io(), ExecMode::Traditional, true);
        ASSERT_TRUE(xl.passed) << name << ": " << xl.error;
        ASSERT_TRUE(gp.passed) << name << ": " << gp.error;
        const double ratio = static_cast<double>(xl.xlDynInsts) /
                             static_cast<double>(gp.xlDynInsts);
        EXPECT_GT(ratio, 0.70) << name;
        EXPECT_LT(ratio, 1.10) << name;
    }
}

// --------------------------------------------------------------------
// Threaded-executor whole-kernel equivalence sweep
// --------------------------------------------------------------------

// The exact serialization a functional StatGroup gets inside an
// "xloops-stats-1" document (StatGroup::writeJson wrapped in an
// object), so "byte-identical stats section" is literal.
std::string
statsSection(StatGroup &stats)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    stats.writeJson(w);
    w.endObject();
    return os.str();
}

class ThreadedEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

// Every Table II kernel, legacy switch vs. threaded dispatch, on
// identical memory images: final architectural state and the
// functional stats section must be byte-identical.
TEST_P(ThreadedEquivalence, MatchesLegacyExecutorBitForBit)
{
    const Kernel &k = kernelByName(GetParam());
    for (const bool gpBinary : {false, true}) {
        const Program prog = assemble(
            gpBinary ? serializeToGpIsa(k.source) : k.source);

        MainMemory legacyMem;
        MainMemory threadedMem;
        for (MainMemory *m : {&legacyMem, &threadedMem}) {
            prog.loadInto(*m);
            if (k.setup)
                k.setup(*m, prog);
        }

        FunctionalExecutor legacy(legacyMem);
        ThreadedExecutor threaded(threadedMem);
        const FuncResult lr = legacy.run(prog);
        const FuncResult tr = threaded.run(prog);

        EXPECT_EQ(lr.dynInsts, tr.dynInsts) << k.name;
        EXPECT_EQ(lr.halted, tr.halted) << k.name;
        for (unsigned r = 0; r < numArchRegs; r++) {
            EXPECT_EQ(legacy.regFile().get(static_cast<RegId>(r)),
                      threaded.regFile().get(static_cast<RegId>(r)))
                << k.name << " r" << r;
        }
        EXPECT_EQ(legacyMem.digest(), threadedMem.digest()) << k.name;
        EXPECT_EQ(statsSection(legacy.stats()),
                  statsSection(threaded.stats()))
            << k.name;
    }
}

// The timing-model paths (runKernel validates against the threaded
// golden model now): a lockstep pass under timing-fault injection must
// still validate every ordered kernel — the threaded golden image is
// what the end-of-run checkers compare against.
TEST(ThreadedGolden, LockstepUnderFaultInjectionStillValidates)
{
    RunOptions opts;
    opts.lockstep = true;
    RunHooks hooks;
    hooks.runOptions = &opts;
    SysConfig cfg = configs::ioX();
    cfg.lpsu.faults = FaultConfig::uniform(/*seed=*/7, /*rate=*/0.05);
    for (const char *name : {"adpcm-or", "dynprog-om", "mm-orm"}) {
        const KernelRun run = runKernel(kernelByName(name), cfg,
                                        ExecMode::Specialized, false,
                                        hooks);
        EXPECT_TRUE(run.passed) << name << ": " << run.error;
    }
}

INSTANTIATE_TEST_SUITE_P(TableII, ThreadedEquivalence,
                         ::testing::ValuesIn(tableIIKernelNames()),
                         sanitize);

TEST(KernelSpeedups, UcKernelsGainOnInOrderHost)
{
    // Paper: specialized execution always benefits the in-order
    // processor; uc-dominated kernels see the largest gains.
    for (const std::string name :
         {"rgb2cmyk-uc", "sgemm-uc", "ssearch-uc", "viterbi-uc"}) {
        const Kernel &k = kernelByName(name);
        const KernelRun gp =
            runKernel(k, configs::io(), ExecMode::Traditional, true);
        const KernelRun sp =
            runKernel(k, configs::ioX(), ExecMode::Specialized);
        ASSERT_TRUE(sp.passed) << name << ": " << sp.error;
        const double speedup = static_cast<double>(gp.result.cycles) /
                               static_cast<double>(sp.result.cycles);
        EXPECT_GT(speedup, 1.5) << name << " speedup " << speedup;
    }
}

TEST(KernelSpeedups, KsackSquashesAreDataDependent)
{
    // Paper Section IV-C: small weights conflict within the lane
    // window, large weights do not.
    auto squashesOf = [](const std::string &name) {
        const Kernel &k = kernelByName(name);
        const Program prog = assemble(k.source);
        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        k.setup(sys.memory(), prog);
        sys.run(prog, ExecMode::Specialized);
        return sys.lpsuModel().stats().get("squashes");
    };
    const u64 sm = squashesOf("ksack-sm-om");
    const u64 lg = squashesOf("ksack-lg-om");
    EXPECT_GT(sm, lg);
}

TEST(KernelSpeedups, HandScheduledOrVariantsAreFaster)
{
    for (const auto &[base, opt] :
         std::vector<std::pair<std::string, std::string>>{
             {"adpcm-or", "adpcm-or-opt"},
             {"dither-or", "dither-or-opt"},
             {"sha-or", "sha-or-opt"}}) {
        const KernelRun b = runKernel(kernelByName(base), configs::ioX(),
                                      ExecMode::Specialized);
        const KernelRun o = runKernel(kernelByName(opt), configs::ioX(),
                                      ExecMode::Specialized);
        ASSERT_TRUE(b.passed) << base << ": " << b.error;
        ASSERT_TRUE(o.passed) << opt << ": " << o.error;
        EXPECT_LT(o.result.cycles, b.result.cycles) << opt;
    }
}

} // namespace
} // namespace xloops
