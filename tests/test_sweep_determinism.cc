// Property tests for the parallel sweep harness: the merged
// "xloops-sweep-1" report must be byte-identical for --jobs 1, 4,
// and 8, across root seeds and under fault injection, and every
// cell's embedded stats must match what a serial single-System run
// of the same cell produces. This is the contract that lets every
// evaluation harness parallelize without changing a single reported
// number.

#include <gtest/gtest.h>

#include <sstream>

#include "common/fault.h"
#include "common/json.h"
#include "common/loop_profile.h"
#include "common/pool.h"
#include "kernels/kernel.h"
#include "system/report.h"
#include "system/sweep.h"

namespace xloops {
namespace {

std::vector<SweepCell>
smallMatrix()
{
    // A kernel per dependence pattern x {T, S} on io+x, plus one
    // adaptive cell: small enough to run repeatedly, wide enough to
    // exercise the GPP, LPSU, and adaptive controller.
    std::vector<SweepCell> cells =
        crossProduct({"rgb2cmyk-uc", "kmeans-or", "dynprog-om"},
                     {configs::ioX()},
                     {ExecMode::Traditional, ExecMode::Specialized});
    cells.push_back(
        {"rgb2cmyk-uc", configs::ioX(), ExecMode::Adaptive, false});
    return cells;
}

std::string
sweepText(const std::vector<SweepCell> &cells, unsigned jobs,
          u64 injectSeed, double injectRate)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.injectSeed = injectSeed;
    opts.injectRate = injectRate;
    return sweepJsonText(cells, runSweep(cells, opts), opts);
}

TEST(SweepDeterminism, ReportIsByteIdenticalAcrossJobCounts)
{
    const std::vector<SweepCell> cells = smallMatrix();
    const std::string serial = sweepText(cells, 1, 0, 0.0);
    EXPECT_TRUE(jsonValidate(serial));
    EXPECT_EQ(serial, sweepText(cells, 4, 0, 0.0));
    EXPECT_EQ(serial, sweepText(cells, 8, 0, 0.0));
}

TEST(SweepDeterminism, ByteIdenticalUnderFaultInjectionAcrossSeeds)
{
    const std::vector<SweepCell> cells = smallMatrix();
    for (const u64 seed : {u64{3}, u64{9}}) {
        SCOPED_TRACE(seed);
        const std::string serial = sweepText(cells, 1, seed, 0.05);
        EXPECT_TRUE(jsonValidate(serial));
        EXPECT_EQ(serial, sweepText(cells, 4, seed, 0.05));
        EXPECT_EQ(serial, sweepText(cells, 8, seed, 0.05));
    }
    // Different seeds produce different fault schedules (the reports
    // must differ, or injection silently did nothing).
    EXPECT_NE(sweepText(cells, 4, 3, 0.05), sweepText(cells, 4, 9, 0.05));
}

TEST(SweepDeterminism, CellStatsMatchASerialSystemRun)
{
    // Run one injected cell through the parallel harness, then redo
    // exactly that cell with a directly-constructed serial system:
    // the embedded "xloops-stats-1" documents must be byte-identical.
    const std::vector<SweepCell> cells = smallMatrix();
    SweepOptions opts;
    opts.jobs = 8;
    opts.injectSeed = 7;
    opts.injectRate = 0.05;
    const std::vector<SweepCellResult> results = runSweep(cells, opts);
    ASSERT_EQ(results.size(), cells.size());

    for (size_t i = 0; i < cells.size(); i++) {
        SCOPED_TRACE(cells[i].kernel + "/" +
                     execModeName(cells[i].mode));
        ASSERT_TRUE(results[i].passed) << results[i].error;

        SysConfig cfg = cells[i].config;
        cfg.lpsu.faults = FaultConfig::uniform(
            taskSeed(opts.injectSeed, i), opts.injectRate);
        LoopProfiler profiler;
        RunHooks hooks;
        hooks.profiler = &profiler;
        const KernelRun serial =
            runKernel(kernelByName(cells[i].kernel), cfg, cells[i].mode,
                      cells[i].gpBinary, hooks);
        ASSERT_TRUE(serial.passed) << serial.error;
        EXPECT_EQ(serial.result.cycles, results[i].cycles);

        std::ostringstream ss;
        writeStatsJson(ss, cfg.name, execModeName(cells[i].mode),
                       cells[i].kernel, serial.result, profiler,
                       nullptr);
        EXPECT_EQ(ss.str(), results[i].statsJson);
    }
}

TEST(SweepDeterminism, FailedCellsAreResultsNotAborts)
{
    // A cell diagnosed with a SimError (here: an absurdly small
    // instruction valve) must come back as a failed cell while the
    // other cells complete normally — and identically across job
    // counts.
    std::vector<SweepCell> cells = smallMatrix();
    SweepOptions opts;
    opts.maxInsts = 50;

    opts.jobs = 1;
    const std::vector<SweepCellResult> serial = runSweep(cells, opts);
    opts.jobs = 8;
    const std::vector<SweepCellResult> parallel = runSweep(cells, opts);

    ASSERT_EQ(serial.size(), parallel.size());
    size_t failed = 0;
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].passed, parallel[i].passed);
        EXPECT_EQ(serial[i].simError, parallel[i].simError);
        EXPECT_EQ(serial[i].error, parallel[i].error);
        failed += serial[i].passed ? 0 : 1;
    }
    EXPECT_GT(failed, 0u);  // the tiny valve must have tripped
    EXPECT_EQ(sweepJsonText(cells, serial, opts),
              sweepJsonText(cells, parallel, opts));
}

TEST(SweepDeterminism, CrossProductSkipsLpsulessSpecializedCells)
{
    const std::vector<SweepCell> cells = crossProduct(
        {"rgb2cmyk-uc"}, {configs::io(), configs::ioX()},
        {ExecMode::Traditional, ExecMode::Specialized});
    // io gets T only; io+x gets T and S.
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_FALSE(cells[0].config.hasLpsu);
    EXPECT_EQ(cells[0].mode, ExecMode::Traditional);
}

} // namespace
} // namespace xloops
