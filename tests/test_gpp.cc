// Timing-model tests for the in-order and out-of-order GPPs:
// pipeline behaviour (RAW stalls, branch penalties, cache effects) and
// relative-performance sanity (ooo/4 >= ooo/2 >= io on ILP-rich code,
// serial chains collapse the gap).

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/sim_error.h"
#include "cpu/inorder.h"
#include "cpu/ooo.h"
#include "cpu/run.h"

namespace xloops {
namespace {

GppConfig
ioCfg()
{
    return GppConfig{};
}

GppConfig
oooCfg(unsigned width)
{
    GppConfig cfg;
    cfg.kind = GppConfig::Kind::OutOfOrder;
    cfg.width = width;
    cfg.robSize = width == 2 ? 64 : 128;
    cfg.iqSize = width == 2 ? 32 : 64;
    cfg.lsqEntries = width == 2 ? 16 : 32;
    cfg.memPorts = width == 2 ? 1 : 2;
    cfg.branchPenalty = 10;
    return cfg;
}

Cycle
cyclesFor(const std::string &src, GppModel &model)
{
    const Program prog = assemble(src);
    MainMemory mem;
    prog.loadInto(mem);
    return runTraditional(prog, mem, model).cycles;
}

TEST(InOrder, IndependentAlusAreOnePerCycle)
{
    InOrderCpu cpu(ioCfg());
    // Warm loop of 10 independent adds: ~1 IPC plus the taken-branch
    // redirect per iteration.
    std::string src = "  li r20, 0\n  li r21, 100\nbody:\n";
    for (int i = 0; i < 10; i++)
        src += "  add r1, r2, r3\n";
    src += "  xloop.uc r20, r21, body\n  halt\n";
    const Cycle cycles = cyclesFor(src, cpu);
    // 10 adds + xloop + 2-cycle redirect = ~13 per iteration.
    EXPECT_GE(cycles, 100u * 13u - 20u);
    EXPECT_LE(cycles, 100u * 13u + 80u);  // compulsory icache misses
}

TEST(InOrder, LoadUseStalls)
{
    InOrderCpu dependent(ioCfg());
    const Cycle dep = cyclesFor(
        "  la r2, d\n"
        "  lw r1, 0(r2)\n"
        "  add r3, r1, r1\n"   // consumes the load immediately
        "  halt\n"
        "  .data\n"
        "d: .word 5\n",
        dependent);
    InOrderCpu independent(ioCfg());
    const Cycle indep = cyclesFor(
        "  la r2, d\n"
        "  lw r1, 0(r2)\n"
        "  add r3, r4, r4\n"
        "  halt\n"
        "  .data\n"
        "d: .word 5\n",
        independent);
    EXPECT_GT(dep, indep);
    EXPECT_GT(dependent.stats().get("raw_stall_cycles"), 0u);
}

TEST(InOrder, TakenBranchCostsRedirect)
{
    // Loop of N iterations: each taken xloop back-branch pays the
    // 2-cycle redirect, so >= 3 cycles per iteration of 1 add.
    InOrderCpu cpu(ioCfg());
    const Cycle cycles = cyclesFor(
        "  li r1, 0\n"
        "  li r2, 100\n"
        "body:\n"
        "  add r3, r3, r1\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n",
        cpu);
    EXPECT_GE(cycles, 100u * 4u - 20u);
    EXPECT_EQ(cpu.stats().get("branch_redirects"), 99u);
}

TEST(InOrder, DivIsUnpipelined)
{
    InOrderCpu cpu(ioCfg());
    std::string src = "  li r2, 100\n  li r3, 7\n";
    for (int i = 0; i < 10; i++)
        src += "  div r4, r2, r3\n";
    src += "  halt\n";
    const Cycle cycles = cyclesFor(src, cpu);
    EXPECT_GE(cycles, 10u * 12u);
    EXPECT_GT(cpu.stats().get("llfu_stall_cycles"), 0u);
}

TEST(InOrder, DcacheMissesAddLatency)
{
    // Stride through 64KB (4x the 16KB cache): every line misses.
    InOrderCpu cpu(ioCfg());
    const Cycle cold = cyclesFor(
        "  li r1, 0\n"
        "  li r2, 2048\n"
        "  la r5, buf\n"
        "body:\n"
        "  lw r6, 0(r5)\n"
        "  addiu.xi r5, 32\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "buf: .space 65536\n",
        cpu);
    EXPECT_GT(cold, 2048u * 20u);  // dominated by miss penalty
    EXPECT_GT(cpu.dcacheModel().stats().get("read_misses"), 2000u);
}

TEST(InOrder, AdvanceToAddsExternalStall)
{
    InOrderCpu cpu(ioCfg());
    cpu.advanceTo(1000);
    EXPECT_GE(cpu.now(), 1000u);
    EXPECT_EQ(cpu.stats().get("ext_stall_cycles"), 1000u);
}

TEST(Gshare, LearnsLoopBranch)
{
    GsharePredictor bp;
    // Alternating-free pattern: always taken. Must converge quickly.
    unsigned wrong = 0;
    for (int i = 0; i < 100; i++)
        if (!bp.predictAndTrain(0x1000, true))
            wrong++;
    // gshare warms one table entry per new history pattern: allow the
    // ~history-length training transient, then perfect prediction.
    EXPECT_LE(wrong, 15u);
    wrong = 0;
    for (int i = 0; i < 100; i++)
        if (!bp.predictAndTrain(0x1000, true))
            wrong++;
    EXPECT_EQ(wrong, 0u);
}

TEST(Gshare, RandomBranchMispredictsOften)
{
    GsharePredictor bp;
    // Pseudo-random outcomes: accuracy should be mediocre.
    unsigned wrong = 0;
    u32 lfsr = 0xace1;
    for (int i = 0; i < 1000; i++) {
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xb400u);
        if (!bp.predictAndTrain(0x1000, (lfsr & 1) != 0))
            wrong++;
    }
    EXPECT_GT(wrong, 200u);
}

TEST(Ooo, ExtractsIlpFromIndependentChains)
{
    // A warm loop with four independent dependence chains: the 4-way
    // OoO should be markedly faster than in-order.
    std::string src = "  li r20, 0\n  li r21, 200\nbody:\n";
    for (int i = 0; i < 2; i++) {
        src += "  add r1, r1, r10\n";
        src += "  add r2, r2, r10\n";
        src += "  add r3, r3, r10\n";
        src += "  add r4, r4, r10\n";
    }
    src += "  xloop.uc r20, r21, body\n  halt\n";

    InOrderCpu io(ioCfg());
    const Cycle ioCycles = cyclesFor(src, io);
    OooCpu ooo4(oooCfg(4));
    const Cycle oooCycles = cyclesFor(src, ooo4);
    EXPECT_LT(oooCycles * 5, ioCycles * 2);  // at least 2.5x faster
}

TEST(Ooo, SerialChainGivesNoAdvantage)
{
    // One long RAW chain in a warm loop: both machines are limited by
    // the chain, so OoO gains little.
    std::string src = "  li r20, 0\n  li r21, 100\nbody:\n";
    for (int i = 0; i < 8; i++)
        src += "  add r1, r1, r2\n";
    src += "  xloop.uc r20, r21, body\n  halt\n";
    InOrderCpu io(ioCfg());
    OooCpu ooo4(oooCfg(4));
    const Cycle ioCycles = cyclesFor(src, io);
    const Cycle oooCycles = cyclesFor(src, ooo4);
    // The chain costs 8 cycles/iter either way; in-order pays branch
    // redirects too. OoO must not be more than ~1.5x faster.
    EXPECT_GT(oooCycles * 3, ioCycles * 2);
}

TEST(Ooo, WiderIsNotSlower)
{
    std::string src;
    for (int i = 0; i < 50; i++) {
        src += "  add r1, r1, r9\n  add r2, r2, r9\n"
               "  add r3, r3, r9\n  add r4, r4, r9\n"
               "  add r5, r5, r9\n  add r6, r6, r9\n";
    }
    src += "  halt\n";
    OooCpu ooo2(oooCfg(2));
    OooCpu ooo4(oooCfg(4));
    const Cycle c2 = cyclesFor(src, ooo2);
    const Cycle c4 = cyclesFor(src, ooo4);
    EXPECT_LE(c4, c2);
}

TEST(Ooo, MispredictPenaltyHurtsDataDependentBranches)
{
    // Branch pattern depends on pseudo-random data: high mispredicts.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 512\n"
        "  li r7, 0xace1\n"
        "body:\n"
        "  srli r8, r7, 1\n"
        "  andi r9, r7, 1\n"
        "  beqz r9, skip\n"
        "  xori r8, r8, 0x2d\n"
        "skip:\n"
        "  mov r7, r8\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n";
    OooCpu ooo(oooCfg(4));
    const Cycle cycles = cyclesFor(src, ooo);
    EXPECT_GT(ooo.stats().get("mispredicts"), 50u);
    EXPECT_GT(cycles, 512u);  // mispredicts keep IPC below width
}

TEST(Ooo, StoreToLoadForwardingAvoidsCachePenalty)
{
    // Store then immediately load the same address repeatedly.
    const std::string src =
        "  li r1, 0\n"
        "  li r2, 64\n"
        "  la r5, d\n"
        "body:\n"
        "  sw r1, 0(r5)\n"
        "  lw r6, 0(r5)\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "d: .word 0\n";
    OooCpu ooo(oooCfg(2));
    cyclesFor(src, ooo);
    EXPECT_GT(ooo.stats().get("stl_forwards"), 50u);
}

TEST(Ooo, RobLimitsWindow)
{
    // Unpipelined divides at the head of each iteration hold retirement
    // back while fast adds pile into the ROB; eventually the window
    // fills and dispatch stalls. The IQ is sized up to the ROB so the
    // reorder buffer is the binding constraint here.
    std::string src = "  li r2, 100\n  li r3, 7\n  li r20, 0\n"
                      "  li r21, 50\nbody:\n"
                      "  div r4, r2, r3\n  div r5, r2, r3\n"
                      "  div r6, r2, r3\n  div r7, r2, r3\n";
    for (int i = 0; i < 24; i++)
        src += "  add r8, r9, r10\n";
    src += "  xloop.uc r20, r21, body\n  halt\n";
    GppConfig cfg = oooCfg(2);
    cfg.iqSize = cfg.robSize;
    OooCpu ooo(cfg);
    cyclesFor(src, ooo);
    EXPECT_GT(ooo.stats().get("rob_stall_cycles"), 0u);
}

TEST(Ooo, TraditionalXloopWithinFivePercentOfGpBinary)
{
    // The paper's traditional-execution goal: an XLOOPS binary on a
    // GPP performs within a few percent of the GP-ISA serial binary.
    const std::string xloopsSrc =
        "  li r1, 0\n"
        "  li r2, 1000\n"
        "  la r5, buf\n"
        "body:\n"
        "  lw r6, 0(r5)\n"
        "  add r6, r6, r2\n"
        "  sw r6, 0(r5)\n"
        "  addiu.xi r5, 4\n"
        "  xloop.uc r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "buf: .space 4000\n";
    const std::string gpSrc =
        "  li r1, 0\n"
        "  li r2, 1000\n"
        "  la r5, buf\n"
        "body:\n"
        "  lw r6, 0(r5)\n"
        "  add r6, r6, r2\n"
        "  sw r6, 0(r5)\n"
        "  addi r5, r5, 4\n"
        "  addi r1, r1, 1\n"
        "  blt r1, r2, body\n"
        "  halt\n"
        "  .data\n"
        "buf: .space 4000\n";
    for (const unsigned width : {2u, 4u}) {
        OooCpu a(oooCfg(width));
        OooCpu b(oooCfg(width));
        const Cycle xl = cyclesFor(xloopsSrc, a);
        const Cycle gp = cyclesFor(gpSrc, b);
        EXPECT_LT(xl, gp + gp / 20) << "width " << width;
    }
}


TEST(Traditional, InstLimitIsADiagnosableSimError)
{
    // A program that never halts must trip the instruction valve as a
    // SimError(InstLimit) carrying a machine snapshot — a diagnosable,
    // per-cell-recordable condition for the sweep harness — not an
    // undifferentiated FatalError.
    const Program prog = assemble(
        "  li r1, 0\n"
        "  li r2, 0\n"
        "spin:\n"
        "  add r3, r3, r1\n"
        "  beq r1, r2, spin\n"   // r1 == r2 forever
        "  halt\n");
    MainMemory mem;
    prog.loadInto(mem);
    InOrderCpu cpu(ioCfg());
    try {
        runTraditional(prog, mem, cpu, 1000);
        FAIL() << "expected a SimError";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), SimErrorKind::InstLimit);
        EXPECT_NE(std::string(err.what()).find("1000"),
                  std::string::npos);
        EXPECT_EQ(err.snapshot().gppInsts, 1000u);
        EXPECT_TRUE(prog.inText(err.snapshot().gppPc));
    }
}

TEST(Traditional, HaltingExactlyAtTheLimitDoesNotThrow)
{
    // The valve only fires on work *beyond* the limit: a program whose
    // final halt is exactly the Nth instruction completes normally.
    const Program prog = assemble(
        "  li r1, 1\n"
        "  li r2, 2\n"
        "  halt\n");
    MainMemory mem;
    prog.loadInto(mem);
    InOrderCpu cpu(ioCfg());
    const GppRunResult result = runTraditional(prog, mem, cpu, 3);
    EXPECT_EQ(result.dynInsts, 3u);
    EXPECT_GT(result.cycles, 0u);
}

TEST(Ooo, IqSizeLimitsInFlightUnissuedWork)
{
    // A long divide chain keeps dependents unissued; with a tiny IQ
    // the front end must stall on IQ entries well before the ROB
    // fills.
    GppConfig cfg = oooCfg(2);
    cfg.iqSize = 4;
    std::string src = "  li r2, 100\n  li r3, 7\n  li r20, 0\n"
                      "  li r21, 40\nbody:\n"
                      "  div r4, r2, r3\n";
    for (int i = 0; i < 12; i++)
        src += "  add r5, r4, r5\n";  // all depend on the slow div
    src += "  xloop.uc r20, r21, body\n  halt\n";
    OooCpu tiny(cfg);
    cyclesFor(src, tiny);
    EXPECT_GT(tiny.stats().get("iq_stall_cycles"), 0u);

    OooCpu roomy(oooCfg(2));  // 32-entry IQ: same code, fewer stalls
    cyclesFor(src, roomy);
    EXPECT_LT(roomy.stats().get("iq_stall_cycles"),
              tiny.stats().get("iq_stall_cycles"));
}

} // namespace
} // namespace xloops
