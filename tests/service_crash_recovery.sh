#!/bin/sh
# Crash-durability end-to-end test, registered with ctest as
# service_crash_recovery. Exercises the write-ahead journal and the
# cache-integrity machinery the unit tests cover only in-process:
#
#   1. the chaos harness (bench/chaos.cc) SIGKILLs a loaded daemon
#      repeatedly: every acknowledged job survives each crash (the
#      daemon's `recovered` counter must equal the journal's pending
#      set) and the resubmitted matrix is byte-identical to an
#      uninterrupted baseline
#   2. both resulting journals validate under check_journal.py
#      --strict --require-terminal (when python3 is available): well
#      framed, CRC-clean, lifecycle-ordered, zero jobs without a
#      terminal record
#   3. a bit-rotted cache index entry is quarantined on restart, the
#      resubmit transparently re-simulates to a byte-identical stats
#      doc, and xloops_cache_corrupt_total counts it
#   4. a torn journal tail (crash mid-append) does not prevent the
#      next generation from starting and recovering
#   5. a client started before the daemon rides through on connect
#      retry instead of failing fast
#
# usage: service_crash_recovery.sh <chaos> <xloopsd> <xloopsc> \
#            [check_journal.py|-] [cycles]
set -u

CHAOS=$1
XLOOPSD=$2
XLOOPSC=$3
CHECK_JOURNAL=${4:--}
CYCLES=${5:-3}

WORK=$(mktemp -d) || exit 1
DAEMON_PID=""

fail()
{
    echo "service_crash_recovery: FAIL: $1" >&2
    [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null
    rm -rf "$WORK"
    exit 1
}

wait_ping()
{
    tries=0
    until "$XLOOPSC" --socket "$1" --ping >/dev/null 2>&1; do
        tries=$((tries + 1))
        [ "$tries" -ge 50 ] && fail "daemon never answered ping"
        kill -0 "$DAEMON_PID" 2>/dev/null \
            || fail "daemon died on startup"
        sleep 0.1
    done
}

# ---- 1. kill -9 chaos: zero lost acknowledged jobs, byte-identity --
"$CHAOS" --xloopsd "$XLOOPSD" --workdir "$WORK/chaos" \
    --cycles "$CYCLES" --kill-after-ms 500 --seeds 2 --verbose \
    || fail "chaos harness exited $?"
echo "service_crash_recovery: chaos survived $CYCLES kill -9 cycles"

# ---- 2. the surviving journals validate strictly ------------------
if [ "$CHECK_JOURNAL" != "-" ]; then
    python3 "$CHECK_JOURNAL" --strict --require-terminal \
        "$WORK/chaos/chaos/journal.jnl" \
        || fail "chaos journal failed validation"
    python3 "$CHECK_JOURNAL" --strict --require-terminal \
        "$WORK/chaos/baseline/journal.jnl" \
        || fail "baseline journal failed validation"
    echo "service_crash_recovery: journals validate"
fi

# ---- 3. cache corruption: quarantined, recounted, re-simulated ----
CDIR="$WORK/corrupt"
mkdir -p "$CDIR"
SOCK="$CDIR/xloopsd.sock"
"$XLOOPSD" --socket "$SOCK" --workers 1 --artifact-dir "$CDIR" \
    --cache-index "$CDIR/cache.json" --journal "$CDIR/journal.jnl" &
DAEMON_PID=$!
wait_ping "$SOCK"
"$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$CDIR/before.json" >/dev/null \
    || fail "cold submit exited $?"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" \
    || fail "daemon did not drain cleanly"
DAEMON_PID=""
[ -s "$CDIR/cache.json" ] || fail "cache index not persisted"

# Rot one byte of the persisted result text (flip a digit inside the
# stored stats document, leaving the recorded CRC stale).
python3 - "$CDIR/cache.json" <<'EOF' || fail "could not rot the index"
import re, sys
path = sys.argv[1]
text = open(path).read()
rot = lambda m: m.group(1) + str((int(m.group(2)) + 1) % 10)
rotted, n = re.subn(r'(\\"gpp_insts\\": )(\d)', rot, text, count=1)
if n != 1:
    sys.exit(1)
open(path, "w").write(rotted)
EOF

"$XLOOPSD" --socket "$SOCK" --workers 1 --artifact-dir "$CDIR" \
    --cache-index "$CDIR/cache.json" --journal "$CDIR/journal.jnl" &
DAEMON_PID=$!
wait_ping "$SOCK"
"$XLOOPSC" --socket "$SOCK" -k rgb2cmyk-uc -c io+x -m S \
    --stats-out "$CDIR/after.json" >/dev/null \
    || fail "post-corruption submit exited $?"
cmp -s "$CDIR/before.json" "$CDIR/after.json" \
    || fail "re-simulated result is not byte-identical"
"$XLOOPSC" --socket "$SOCK" metrics --prom \
    | grep -q '^xloops_cache_corrupt_total [1-9]' \
    || fail "corruption not counted in xloops_cache_corrupt_total"
ls "$CDIR/quarantine/" 2>/dev/null | grep -q . \
    || fail "corrupt entry was not quarantined"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" \
    || fail "daemon did not drain after corruption recovery"
DAEMON_PID=""
echo "service_crash_recovery: corrupt cache entry quarantined," \
     "re-simulated byte-identical"

# ---- 4. a torn journal tail never blocks the next generation ------
printf 'xj1 deadbeef {"seq":999,"t_us":1,"ev":"acc' \
    >> "$CDIR/journal.jnl"
"$XLOOPSD" --socket "$SOCK" --workers 1 --artifact-dir "$CDIR" \
    --cache-index "$CDIR/cache.json" --journal "$CDIR/journal.jnl" &
DAEMON_PID=$!
wait_ping "$SOCK"
"$XLOOPSC" --socket "$SOCK" metrics --prom \
    | grep -q '^xloops_journal_torn_tail_total [1-9]' \
    || fail "torn tail not counted in xloops_journal_torn_tail_total"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" \
    || fail "daemon did not drain after torn-tail recovery"
DAEMON_PID=""
echo "service_crash_recovery: torn journal tail tolerated"

# ---- 5. a client launched before the daemon rides the retry -------
RDIR="$WORK/retry"
mkdir -p "$RDIR"
RSOCK="$RDIR/xloopsd.sock"
"$XLOOPSC" --socket "$RSOCK" --connect-retry-ms 5000 --ping \
    > "$RDIR/ping.out" 2>&1 &
CLIENT_PID=$!
sleep 0.3
"$XLOOPSD" --socket "$RSOCK" --workers 1 --artifact-dir "$RDIR" &
DAEMON_PID=$!
wait "$CLIENT_PID" || fail "early client did not ride the retry: \
$(cat "$RDIR/ping.out")"
grep -q ok "$RDIR/ping.out" || fail "early client ping not ok"
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID" \
    || fail "daemon did not drain after retry scenario"
DAEMON_PID=""
echo "service_crash_recovery: early client rode the connect retry"

rm -rf "$WORK"
echo "service_crash_recovery: PASS"
