// Cross-cutting coverage: execution tracing, statistic groups, the
// deterministic RNG, error-reporting helpers, and a full-opcode
// disassembly sweep.

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "cpu/functional.h"
#include "isa/disasm.h"
#include "system/system.h"

namespace xloops {
namespace {

TEST(Trace, GppAndLpsuEventsAppear)
{
    const Program prog = assemble(
        "  li r1, 0\n  li r2, 8\n  la r5, x\nbody:\n"
        "  sw r1, 0(r5)\n  addiu.xi r5, 4\n  xloop.uc r1, r2, body\n"
        "  halt\n  .data\nx: .space 32\n");
    XloopsSystem sys(configs::ioX());
    std::ostringstream trace;
    sys.setTrace(&trace);
    sys.loadProgram(prog);
    sys.run(prog, ExecMode::Specialized);
    const std::string out = trace.str();
    EXPECT_NE(out.find("[gpp"), std::string::npos);
    EXPECT_NE(out.find("xloop.uc"), std::string::npos);
    EXPECT_NE(out.find("[lpsu] scan xloop"), std::string::npos);
    EXPECT_NE(out.find("iteration 7 completed"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    // Disabling tracing stops output.
    sys.setTrace(nullptr);
    const size_t len = trace.str().size();
    sys.run(prog, ExecMode::Specialized);
    EXPECT_EQ(trace.str().size(), len);
}

TEST(Trace, SquashEventsAppearForOmLoops)
{
    const Program prog = assemble(
        "  li r1, 2\n  li r2, 40\n  la r5, d\nbody:\n"
        "  slli r10, r1, 2\n  add r10, r5, r10\n"
        "  lw r11, -8(r10)\n  addi r11, r11, 1\n  sw r11, 0(r10)\n"
        "  xloop.om r1, r2, body\n  halt\n  .data\nd: .space 256\n");
    XloopsSystem sys(configs::ioX());
    std::ostringstream trace;
    sys.setTrace(&trace);
    sys.loadProgram(prog);
    sys.run(prog, ExecMode::Specialized);
    EXPECT_NE(trace.str().find("squash iteration"), std::string::npos);
    EXPECT_NE(trace.str().find("committed"), std::string::npos);
}

TEST(Stats, AddSetMergeDump)
{
    StatGroup a;
    a.add("x");
    a.add("x", 4);
    a.set("y", 7);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("missing"), 0u);
    StatGroup b;
    b.add("x", 10);
    b.add("z", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 1u);
    const std::string dump = a.dump("p.");
    EXPECT_NE(dump.find("p.x = 15"), std::string::npos);
    EXPECT_NE(dump.find("p.y = 7"), std::string::npos);
    a.clear();
    EXPECT_EQ(a.get("x"), 0u);
}

TEST(Rng, DeterministicAndInRange)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next());
    Rng c(42);
    for (int i = 0; i < 1000; i++) {
        const u32 v = c.nextBelow(17);
        ASSERT_LT(v, 17u);
    }
    Rng d(7);
    for (int i = 0; i < 1000; i++) {
        const i32 v = d.nextRange(-5, 5);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 5);
        const float f = d.nextFloat();
        ASSERT_GE(f, 0.0f);
        ASSERT_LT(f, 1.0f);
    }
}

TEST(Rng, ZeroSeedIsNotDegenerate)
{
    Rng z(0);
    EXPECT_NE(z.next(), 0u);
    EXPECT_NE(z.next(), z.next());
}

TEST(Logging, StrfConcatenatesMixedTypes)
{
    EXPECT_EQ(strf("a=", 1, " b=", 2.5, " c=", "x"), "a=1 b=2.5 c=x");
}

TEST(Logging, PanicAndFatalCarryMessages)
{
    try {
        panic("broken invariant");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"),
                  std::string::npos);
    }
    try {
        fatal("user mistake");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("user mistake"),
                  std::string::npos);
    }
}

TEST(Disasm, EveryOpcodeRendersItsMnemonic)
{
    for (unsigned i = 0; i < numOpcodes; i++) {
        const auto op = static_cast<Op>(i);
        Instruction inst;
        inst.op = op;
        switch (opTraits(op).format) {
          case Format::X:
            inst.imm = -4;
            break;
          case Format::I:
          case Format::S:
          case Format::B:
            inst.imm = -1;
            break;
          default:
            break;
        }
        const std::string text = disassemble(inst, 0x2000);
        EXPECT_EQ(text.rfind(opTraits(op).mnemonic, 0), 0u)
            << "op " << i << ": " << text;
    }
}

TEST(Disasm, DataDependentExitVariant)
{
    const Instruction inst{.op = Op::XLOOP_ORM_DE, .rd = 1, .rs1 = 2,
                           .imm = -3, .hint = true};
    EXPECT_EQ(disassemble(inst, 0x100c),
              "xloop.orm.de r1, r2, 0x1000 [hint]");
}

TEST(Assembler, LiBoundaryValues)
{
    // 8191 fits addi; 8192 needs lui+ori; negative boundary too.
    const Program p1 = assemble("  li r4, 8191\n  halt\n");
    EXPECT_EQ(p1.text.size(), 2u);
    const Program p2 = assemble("  li r4, 8192\n  halt\n");
    EXPECT_EQ(p2.text.size(), 2u);  // lui alone: low 13 bits are zero
    const Program p2b = assemble("  li r4, 8193\n  halt\n");
    EXPECT_EQ(p2b.text.size(), 3u);  // lui + ori
    const Program p3 = assemble("  li r4, -8192\n  halt\n");
    EXPECT_EQ(p3.text.size(), 2u);
    // Round-trip the value through the executor.
    for (const i32 v : {8191, 8192, -8192, -8193, 0x7fffffff,
                        static_cast<i32>(0x80000000)}) {
        const Program p = assemble("  li r4, " + std::to_string(v) +
                                   "\n  la r5, o\n  sw r4, 0(r5)\n"
                                   "  halt\n  .data\no: .word 0\n");
        MainMemory mem;
        p.loadInto(mem);
        FunctionalExecutor exec(mem);
        exec.run(p);
        EXPECT_EQ(static_cast<i32>(mem.readWord(p.symbol("o"))), v) << v;
    }
}

TEST(Assembler, LaOfTextLabelAndJalr)
{
    // Computed jump through a register to a text label.
    const Program p = assemble(
        "  la r5, target\n"
        "  jalr r31, r5\n"
        "  halt\n"
        "target:\n"
        "  la r6, o\n"
        "  li r7, 99\n"
        "  sw r7, 0(r6)\n"
        "  halt\n"
        "  .data\no: .word 0\n");
    MainMemory mem;
    p.loadInto(mem);
    FunctionalExecutor exec(mem);
    exec.run(p);
    EXPECT_EQ(mem.readWord(p.symbol("o")), 99u);
}

} // namespace
} // namespace xloops
