/**
 * @file
 * Unit tests for the service telemetry plane: the metrics registry
 * (common/metrics) and the flight recorder (common/flight).
 *
 * The hot-path contract under test: counters shard per thread and
 * merge losslessly at scrape, histogram buckets are byte-compatible
 * with the loop_profile Histogram shape, the Prometheus text
 * exposition is deterministic down to the byte, and the runtime kill
 * switch really does turn every mutation into a no-op.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/flight.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/stats.h"

using namespace xloops;

namespace {

/** Restore the global kill switch no matter how the test exits. */
struct MetricsSwitchGuard
{
    ~MetricsSwitchGuard() { metricsEnable(true); }
};

TEST(Metrics, CounterConcurrentIncrements)
{
    Counter c;
    constexpr unsigned threads = 8;
    constexpr unsigned perThread = 10000;
    std::vector<std::thread> fleet;
    for (unsigned t = 0; t < threads; t++) {
        fleet.emplace_back([&c] {
            for (unsigned i = 0; i < perThread; i++)
                c.inc();
        });
    }
    for (std::thread &t : fleet)
        t.join();
    EXPECT_EQ(c.value(), u64{threads} * perThread);
}

TEST(Metrics, CounterShardMergeAndPublish)
{
    Counter c;
    c.inc(5);
    // Increments from other threads land in other shards; value()
    // must merge them all.
    std::thread t1([&c] { c.inc(7); });
    std::thread t2([&c] { c.inc(30); });
    t1.join();
    t2.join();
    EXPECT_EQ(c.value(), 42u);

    // publish() folds an externally consistent total over every
    // shard, so value() returns exactly that total afterwards.
    c.publish(1000);
    EXPECT_EQ(c.value(), 1000u);
    c.inc(1);
    EXPECT_EQ(c.value(), 1001u);
}

TEST(Metrics, GaugeOps)
{
    Gauge g;
    g.set(10);
    g.add(5);
    g.sub(3);
    EXPECT_EQ(g.value(), 12u);
}

TEST(Metrics, KillSwitchGatesMutationsButNotPublish)
{
    MetricsSwitchGuard guard;
    Counter c;
    Gauge g;
    HistogramMetric h;
    FlightRecorder flight(8);

    metricsEnable(false);
    c.inc(100);
    g.set(100);
    h.observe(100);
    flight.record(FlightKind::JobAdmitted, 1);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
    EXPECT_EQ(flight.totalRecorded(), 0u);

    // The ungated publish path keeps scrape-time consistency working
    // even in overhead-measurement runs with the switch off.
    c.publish(3);
    g.publish(4);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(g.value(), 4u);

    metricsEnable(true);
    c.inc();
    h.observe(7);
    EXPECT_EQ(c.value(), 4u);
    EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    // Bucket 0 holds only the value 0; bucket k holds [2^(k-1), 2^k).
    // These edges must agree with Histogram::bucketIndex so the
    // service metrics and the per-run loop profile report the same
    // shape for the same samples.
    HistogramMetric h;
    h.observe(0);                      // bucket 0
    h.observe(1);                      // bucket 1
    h.observe(2);                      // bucket 2 low edge
    h.observe(3);                      // bucket 2 high edge
    h.observe(4);                      // bucket 3 low edge
    h.observe(7);                      // bucket 3 high edge
    h.observe(8);                      // bucket 4

    const HistSnapshot s = h.snapshot();
    const std::vector<u64> want = {1, 1, 2, 2, 1};
    EXPECT_EQ(s.buckets, want);
    EXPECT_EQ(s.count, 7u);
    EXPECT_EQ(s.sum, 25u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 8u);
}

TEST(Metrics, HistogramAgreesWithStatsBucketIndex)
{
    const u64 samples[] = {0,  1,    2,        3,    4,          7, 8,
                           15, 1023, 1024,     4096, (u64{1} << 40),
                           (u64{1} << 40) + 1, ~u64{0}};
    for (const u64 v : samples) {
        HistogramMetric h;
        h.observe(v);
        const HistSnapshot s = h.snapshot();
        ASSERT_FALSE(s.buckets.empty()) << "value " << v;
        // The single observation must land exactly where the per-run
        // Histogram would put it.
        EXPECT_EQ(s.buckets.size(), Histogram::bucketIndex(v) + 1)
            << "value " << v;
        EXPECT_EQ(s.buckets.back(), 1u) << "value " << v;
    }
}

TEST(Metrics, HistogramEmptySnapshot)
{
    HistogramMetric h;
    const HistSnapshot s = h.snapshot();
    EXPECT_TRUE(s.buckets.empty());
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 0u);
}

TEST(Metrics, GoldenPromExposition)
{
    // Byte-identical golden: sorted families, one # TYPE line per
    // family shared by labelled variants, cumulative histogram
    // buckets at the log2 edges. Any byte of drift here breaks
    // downstream scrapers, so the comparison is exact.
    MetricsRegistry reg;
    reg.counter("xloops_test_jobs_total").inc(3);
    reg.counter("xloops_test_retries_total").inc(7);
    reg.counter("xloops_test_retries_total{kind=\"watchdog\"}").inc(5);
    reg.counter("xloops_test_retries_total{kind=\"deadline\"}").inc(2);
    reg.gauge("xloops_test_depth").set(4);
    HistogramMetric &h = reg.histogram("xloops_test_wait_us");
    h.observe(0);
    h.observe(1);
    h.observe(3);
    h.observe(8);

    const std::string want =
        "# TYPE xloops_test_jobs_total counter\n"
        "xloops_test_jobs_total 3\n"
        "# TYPE xloops_test_retries_total counter\n"
        "xloops_test_retries_total 7\n"
        "xloops_test_retries_total{kind=\"deadline\"} 2\n"
        "xloops_test_retries_total{kind=\"watchdog\"} 5\n"
        "# TYPE xloops_test_depth gauge\n"
        "xloops_test_depth 4\n"
        "# TYPE xloops_test_wait_us histogram\n"
        "xloops_test_wait_us_bucket{le=\"0\"} 1\n"
        "xloops_test_wait_us_bucket{le=\"1\"} 2\n"
        "xloops_test_wait_us_bucket{le=\"3\"} 3\n"
        "xloops_test_wait_us_bucket{le=\"7\"} 3\n"
        "xloops_test_wait_us_bucket{le=\"15\"} 4\n"
        "xloops_test_wait_us_bucket{le=\"+Inf\"} 4\n"
        "xloops_test_wait_us_sum 12\n"
        "xloops_test_wait_us_count 4\n";
    EXPECT_EQ(reg.promText(), want);

    // Scrapes are idempotent: a second exposition is the same bytes.
    EXPECT_EQ(reg.promText(), want);
}

TEST(Metrics, JsonSnapshotRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("xloops_test_a_total").inc(9);
    reg.gauge("xloops_test_b").set(2);
    reg.histogram("xloops_test_c_us").observe(5);

    const JsonValue v = jsonParse(reg.jsonText(/*pretty=*/true));
    EXPECT_EQ(v.at("schema").asString(), "xloops-metrics-1");
    EXPECT_TRUE(v.has("at_us"));
    EXPECT_EQ(v.at("counters").at("xloops_test_a_total").asU64(), 9u);
    EXPECT_EQ(v.at("gauges").at("xloops_test_b").asU64(), 2u);
    const JsonValue &h = v.at("histograms").at("xloops_test_c_us");
    EXPECT_EQ(h.at("count").asU64(), 1u);
    EXPECT_EQ(h.at("sum").asU64(), 5u);
    EXPECT_EQ(h.at("min").asU64(), 5u);
    EXPECT_EQ(h.at("max").asU64(), 5u);
    EXPECT_EQ(h.at("buckets").array().size(),
              Histogram::bucketIndex(5) + 1);

    // Compact mode emits the same document as a single line (the
    // daemon's --metrics-log appends one per interval).
    const std::string compact = reg.jsonText(/*pretty=*/false);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    EXPECT_TRUE(jsonValidate(compact));
}

TEST(Metrics, RegistryHandleStabilityAndReset)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("xloops_test_stable_total");
    Counter &c2 = reg.counter("xloops_test_stable_total");
    EXPECT_EQ(&c1, &c2);  // one handle per name, stable for reuse

    c1.inc(5);
    reg.histogram("xloops_test_h_us").observe(3);
    reg.gauge("xloops_test_g").set(1);
    reg.reset();
    EXPECT_EQ(c1.value(), 0u);
    EXPECT_EQ(reg.gauge("xloops_test_g").value(), 0u);
    const HistSnapshot s = reg.histogram("xloops_test_h_us").snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_TRUE(s.buckets.empty());

    // A reset histogram observes fresh (min/max re-seed correctly).
    reg.histogram("xloops_test_h_us").observe(9);
    const HistSnapshot s2 =
        reg.histogram("xloops_test_h_us").snapshot();
    EXPECT_EQ(s2.min, 9u);
    EXPECT_EQ(s2.max, 9u);
}

TEST(Flight, RingKeepsNewestAndCountsDrops)
{
    FlightRecorder rec(4);
    for (u64 id = 1; id <= 6; id++)
        rec.record(FlightKind::JobAdmitted, id);

    EXPECT_EQ(rec.capacity(), 4u);
    EXPECT_EQ(rec.totalRecorded(), 6u);
    EXPECT_EQ(rec.dropped(), 2u);

    const std::vector<FlightEvent> events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first, and the two oldest records (jobs 1 and 2) are the
    // ones the ring overwrote.
    EXPECT_EQ(events.front().jobId, 3u);
    EXPECT_EQ(events.back().jobId, 6u);
    for (size_t i = 1; i < events.size(); i++) {
        EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
        EXPECT_GE(events[i].atUs, events[i - 1].atUs);
    }
}

TEST(Flight, DumpMatchesSchema)
{
    FlightRecorder rec(8);
    rec.record(FlightKind::JobAdmitted, 1, "rgb2cmyk-uc/io+x/S");
    rec.record(FlightKind::JobStarted, 1);
    rec.record(FlightKind::JobRetried, 1, "watchdog attempt 1");
    rec.record(FlightKind::JobFinished, 1);
    rec.record(FlightKind::DrainBegin, 0);

    const JsonValue v = jsonParse(rec.dumpJson(/*pretty=*/true));
    EXPECT_EQ(v.at("schema").asString(), "xloops-flight-1");
    EXPECT_EQ(v.at("capacity").asU64(), 8u);
    EXPECT_EQ(v.at("recorded").asU64(), 5u);
    EXPECT_EQ(v.at("dropped").asU64(), 0u);
    const auto &events = v.at("events").array();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].at("kind").asString(), "job-admitted");
    EXPECT_EQ(events[0].at("job").asU64(), 1u);
    EXPECT_EQ(events[0].at("detail").asString(), "rgb2cmyk-uc/io+x/S");
    EXPECT_EQ(events[1].at("kind").asString(), "job-started");
    EXPECT_FALSE(events[1].has("detail"));  // empty detail is elided
    EXPECT_EQ(events[2].at("kind").asString(), "job-retried");
    EXPECT_EQ(events[3].at("kind").asString(), "job-finished");
    EXPECT_EQ(events[4].at("kind").asString(), "drain-begin");
    EXPECT_EQ(events[4].at("job").asU64(), 0u);
}

TEST(Flight, KindNamesAreKebabCase)
{
    EXPECT_STREQ(flightKindName(FlightKind::JobAdmitted),
                 "job-admitted");
    EXPECT_STREQ(flightKindName(FlightKind::JobShed), "job-shed");
    EXPECT_STREQ(flightKindName(FlightKind::JobInvalid),
                 "job-invalid");
    EXPECT_STREQ(flightKindName(FlightKind::JobCacheHit),
                 "job-cache-hit");
    EXPECT_STREQ(flightKindName(FlightKind::JobDeadline),
                 "job-deadline");
    EXPECT_STREQ(flightKindName(FlightKind::JobFailed), "job-failed");
    EXPECT_STREQ(flightKindName(FlightKind::JobCancelled),
                 "job-cancelled");
    EXPECT_STREQ(flightKindName(FlightKind::DrainEnd), "drain-end");
}

TEST(Flight, ConcurrentRecordsAllLand)
{
    FlightRecorder rec(1u << 12);
    constexpr unsigned threads = 4;
    constexpr unsigned perThread = 500;
    std::vector<std::thread> fleet;
    for (unsigned t = 0; t < threads; t++) {
        fleet.emplace_back([&rec, t] {
            for (unsigned i = 0; i < perThread; i++)
                rec.record(FlightKind::JobFinished,
                           u64{t} * perThread + i);
        });
    }
    for (std::thread &t : fleet)
        t.join();
    EXPECT_EQ(rec.totalRecorded(), u64{threads} * perThread);
    EXPECT_EQ(rec.dropped(), 0u);
    // seq values are unique and dense.
    std::vector<bool> seen(threads * perThread, false);
    for (const FlightEvent &e : rec.events()) {
        ASSERT_LT(e.seq, seen.size());
        EXPECT_FALSE(seen[e.seq]);
        seen[e.seq] = true;
    }
}

} // namespace
