// Tests for the data-dependent-exit extension (xloop.om.de /
// xloop.orm.de) — the control pattern the paper leaves to future
// work. The "bound" register acts as a per-iteration exit flag; the
// LMU samples it at commit, so iterations speculatively executed
// beyond the first exiting iteration are cancelled with their stores
// still buffered in the LSQs.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/log.h"
#include "compiler/codegen.h"
#include "cpu/functional.h"
#include "fuzz/harness.h"
#include "system/system.h"

namespace xloops {
namespace {

/** Linear search: exits at the first element equal to the needle.
 *  A second needle further on must never be observed. */
const char *searchSrc = R"(
  li r1, 0
  li r2, 0               # exit flag
  la r5, hay
  li r6, 4242            # needle
  la r7, foundidx
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)
  bne r11, r6, miss
  li r2, 1               # raise the exit flag
  sw r1, 0(r7)
miss:
  xloop.om.de r1, r2, body
  la r8, after
  sw r1, 0(r8)           # post-loop: idx of first iteration not run
  halt
  .data
hay:      .space 1024
foundidx: .word -1
after:    .word 0
)";

void
searchSetup(MainMemory &mem, const Program &prog, unsigned hit)
{
    for (unsigned i = 0; i < 256; i++)
        mem.writeWord(prog.symbol("hay") + 4 * i, i * 3 + 1);
    mem.writeWord(prog.symbol("hay") + 4 * hit, 4242);
    mem.writeWord(prog.symbol("hay") + 4 * (hit + 7), 4242);  // decoy
}

struct DdeRun
{
    MainMemory *mem;
    SysResult result;
};

TEST(DataDepExit, SerialSemantics)
{
    const Program prog = assemble(searchSrc);
    MainMemory mem;
    prog.loadInto(mem);
    searchSetup(mem, prog, 40);
    FunctionalExecutor exec(mem);
    exec.run(prog);
    EXPECT_EQ(mem.readWord(prog.symbol("foundidx")), 40u);
    EXPECT_EQ(mem.readWord(prog.symbol("after")), 41u);
}

TEST(DataDepExit, SpecializedMatchesSerialAndCancelsOverrun)
{
    const Program prog = assemble(searchSrc);
    for (const unsigned hit : {0u, 1u, 5u, 40u, 200u}) {
        MainMemory golden;
        prog.loadInto(golden);
        searchSetup(golden, prog, hit);
        FunctionalExecutor exec(golden);
        exec.run(prog);

        XloopsSystem sys(configs::ioX());
        sys.loadProgram(prog);
        searchSetup(sys.memory(), prog, hit);
        sys.run(prog, ExecMode::Specialized);

        EXPECT_EQ(sys.memory().readWord(prog.symbol("foundidx")),
                  golden.readWord(prog.symbol("foundidx")))
            << "hit " << hit;
        EXPECT_EQ(sys.memory().readWord(prog.symbol("foundidx")), hit);
        EXPECT_EQ(sys.memory().readWord(prog.symbol("after")), hit + 1);
        if (hit >= 5) {
            // Lanes ran past the exit; those iterations were
            // cancelled before committing anything.
            EXPECT_GT(sys.lpsuModel().stats().get("cancelled_iterations"),
                      0u);
        }
    }
}

TEST(DataDepExit, LongSearchSpeedsUp)
{
    const Program prog = assemble(searchSrc);
    auto cyclesOf = [&](const SysConfig &cfg, ExecMode mode) {
        XloopsSystem sys(cfg);
        sys.loadProgram(prog);
        searchSetup(sys.memory(), prog, 250);
        return sys.run(prog, mode).cycles;
    };
    const Cycle trad = cyclesOf(configs::io(), ExecMode::Traditional);
    const Cycle spec = cyclesOf(configs::ioX(), ExecMode::Specialized);
    EXPECT_LT(spec * 3, trad * 2);  // at least 1.5x on 4 lanes
}

TEST(DataDepExit, OrmVariantCarriesCirThroughExit)
{
    // Sum elements until the running sum crosses a threshold; the
    // sum is a CIR, the exit is data dependent, and the final CIR
    // value must be the serial one.
    const char *src = R"(
  li r1, 0
  li r2, 0
  li r3, 0               # running sum (CIR)
  la r5, vals
  li r6, 1000            # threshold
body:
  slli r10, r1, 2
  add r10, r5, r10
  lw r11, 0(r10)
  add r3, r3, r11
  blt r3, r6, keep
  li r2, 1
keep:
  slli r12, r1, 2
  add r12, r5, r12
  sw r3, 512(r12)        # prefix[i] = sum so far
  xloop.orm.de r1, r2, body
  la r13, sumout
  sw r3, 0(r13)
  halt
  .data
vals:   .space 512
prefix: .space 512
sumout: .word 0
)";
    const Program prog = assemble(src);
    auto setup = [&](MainMemory &mem) {
        for (unsigned i = 0; i < 128; i++)
            mem.writeWord(prog.symbol("vals") + 4 * i, 17 + (i % 5));
    };
    MainMemory golden;
    prog.loadInto(golden);
    setup(golden);
    FunctionalExecutor exec(golden);
    exec.run(prog);

    XloopsSystem sys(configs::ooo2X());
    sys.loadProgram(prog);
    setup(sys.memory());
    sys.run(prog, ExecMode::Specialized);
    EXPECT_EQ(sys.memory().readWord(prog.symbol("sumout")),
              golden.readWord(prog.symbol("sumout")));
    for (unsigned i = 0; i < 128; i++) {
        EXPECT_EQ(sys.memory().readWord(prog.symbol("prefix") + 4 * i),
                  golden.readWord(prog.symbol("prefix") + 4 * i)) << i;
    }
}

TEST(DataDepExit, ExitOnGppIterationRunsNothingOnLpsu)
{
    // The GPP's own first iteration raises the flag: the LPSU must
    // execute zero iterations.
    const Program prog = assemble(searchSrc);
    XloopsSystem sys(configs::ioX());
    sys.loadProgram(prog);
    searchSetup(sys.memory(), prog, 0);
    const SysResult res = sys.run(prog, ExecMode::Specialized);
    EXPECT_EQ(sys.memory().readWord(prog.symbol("foundidx")), 0u);
    EXPECT_EQ(res.laneInsts, 0u);
}

TEST(DataDepExit, AdaptiveModeIsCorrect)
{
    const Program prog = assemble(searchSrc);
    XloopsSystem sys(configs::ooo4X());
    sys.loadProgram(prog);
    searchSetup(sys.memory(), prog, 200);
    sys.run(prog, ExecMode::Adaptive);
    EXPECT_EQ(sys.memory().readWord(prog.symbol("foundidx")), 200u);
    EXPECT_EQ(sys.memory().readWord(prog.symbol("after")), 201u);
}

TEST(DataDepExit, IsaPredicates)
{
    EXPECT_TRUE(isDataDepExitOp(Op::XLOOP_OM_DE));
    EXPECT_TRUE(isDataDepExitOp(Op::XLOOP_ORM_DE));
    EXPECT_FALSE(isDataDepExitOp(Op::XLOOP_OM_DB));
    EXPECT_TRUE(isXloopOp(Op::XLOOP_ORM_DE));
    EXPECT_FALSE(isDynamicBoundOp(Op::XLOOP_OM_DE));
    EXPECT_EQ(xloopPattern(Op::XLOOP_OM_DE), LoopPattern::OM);
    EXPECT_EQ(xloopPattern(Op::XLOOP_ORM_DE), LoopPattern::ORM);
}

// --- dependence-analysis edge cases --------------------------------------
// Inputs at the boundary of the subscript tests: negative strides,
// coupled (different-coefficient) subscripts, zero- and single-trip
// loops, and constant offsets large enough that the strong-SIV
// distance arithmetic would wrap in 32 bits.

Loop
edgeLoop(std::vector<Stmt> body)
{
    Loop loop;
    loop.iv = "i";
    loop.lower = cst(0);
    loop.upper = var("n");
    loop.pragma = Pragma::Ordered;
    loop.body = std::move(body);
    return loop;
}

TEST(DataDepEdge, NegativeStrideCarriedDistance)
{
    // out[10-i] = out[12-i] + 1: both subscripts have coefficient -1;
    // read offset 12, write offset 10 -> distance (12-10)/-1 = -2.
    const MemDepResult r = memDepAnalysis(edgeLoop(
        {store("out", sub(cst(10), var("i")),
               add(ld("out", sub(cst(12), var("i"))), cst(1)))}));
    EXPECT_TRUE(r.hasCarriedDep);
    bool sawDist = false;
    for (const auto &p : r.pairs) {
        if (p.verdict == MemDepVerdict::CarriedDistance) {
            sawDist = true;
            EXPECT_EQ(p.distance, -2);
        }
    }
    EXPECT_TRUE(sawDist);
}

TEST(DataDepEdge, NegativeStrideSameCellIsIntraIteration)
{
    // out[10-i] = out[10-i] + 1: distance 0 under a reversed stride.
    const MemDepResult r = memDepAnalysis(edgeLoop(
        {store("out", sub(cst(10), var("i")),
               add(ld("out", sub(cst(10), var("i"))), cst(1)))}));
    EXPECT_FALSE(r.hasCarriedDep);
    bool sawIntra = false;
    for (const auto &p : r.pairs)
        if (p.verdict == MemDepVerdict::IntraIteration)
            sawIntra = true;
    EXPECT_TRUE(sawIntra);
}

TEST(DataDepEdge, CoupledSubscriptsAssumedCarried)
{
    // write out[i], read out[2i]: coefficients differ, so the strong
    // SIV test does not apply and the pair must stay AssumedCarried —
    // the subscripts do alias (i = 0), so Independent would be wrong.
    const MemDepResult r = memDepAnalysis(edgeLoop(
        {store("out", var("i"),
               ld("out", mul(var("i"), cst(2))))}));
    EXPECT_TRUE(r.hasCarriedDep);
    bool sawAssumed = false;
    for (const auto &p : r.pairs)
        if (p.verdict == MemDepVerdict::AssumedCarried)
            sawAssumed = true;
    EXPECT_TRUE(sawAssumed);
}

TEST(DataDepEdge, OverflowAdjacentCarriedDistance)
{
    // write out[3i - 1073741825], read out[3i + 1073741824]: the true
    // offset difference 2147483649 = 3 * 715827883 is divisible by 3;
    // computed in 32 bits it wraps to -2147483647, which is NOT, and
    // the pair would be misclassified as Independent. The i64
    // arithmetic in the strong-SIV test must call it carried.
    const MemDepResult r = memDepAnalysis(edgeLoop(
        {store("out",
               add(mul(var("i"), cst(3)), cst(-1073741825)),
               ld("out",
                  add(mul(var("i"), cst(3)), cst(1073741824))))}));
    bool sawCarried = false;
    for (const auto &p : r.pairs)
        if (p.verdict == MemDepVerdict::CarriedDistance)
            sawCarried = true;
    EXPECT_TRUE(sawCarried);
    EXPECT_TRUE(r.hasCarriedDep);
}

TEST(DataDepEdge, OverflowAdjacentIndependent)
{
    // write out[3i - 1073741825], read out[3i + 1073741825]: the true
    // difference 2147483650 has residue 1 mod 3 -> Independent; the
    // 32-bit wrap -2147483646 IS divisible by 3 and would fabricate a
    // bogus carried distance.
    const MemDepResult r = memDepAnalysis(edgeLoop(
        {store("out",
               add(mul(var("i"), cst(3)), cst(-1073741825)),
               ld("out",
                  add(mul(var("i"), cst(3)), cst(1073741825))))}));
    for (const auto &p : r.pairs)
        EXPECT_NE(p.verdict, MemDepVerdict::CarriedDistance);
}

TEST(DataDepEdge, ZeroAndSingleTripLoopsExecuteIdentically)
{
    // Trip counts 0 and 1 are the degenerate ends of every xloop
    // encoding: the specialized run must still match the traditional
    // one byte-identically (and trip 0 must not run the body at all).
    for (const char *header : {"i = 0; i < 0", "i = 0; i < 1",
                               "i = 3; i < 3"}) {
        const std::string src =
            "array B[4] = {9, 9, 9, 9};\n"
            "let s = 1;\n"
            "#pragma xloops ordered\n"
            "for (" + std::string(header) + "; i++) {\n"
            "    s = s + B[i];\n"
            "    B[i] = s;\n"
            "}\n";
        GenProgram p;
        p.name = "trip-edge";
        p.source = src;
        FuzzOptions opts;
        opts.checkTruth = false;
        const FuzzVerdict v = checkProgram(p, opts);
        EXPECT_TRUE(v.ok())
            << header << ": " << v.firstPhase() << " "
            << (v.failures.empty() ? "" : v.failures[0].detail);
    }
}

} // namespace
} // namespace xloops
