#!/usr/bin/env python3
"""Validate an xloopsd write-ahead job journal.

Checks that a journal written by the daemon (xloops-journal-1, see
docs/SERVICE.md section 7) is internally consistent:

  * framing: every line is `xj1 <crc32-hex8> <compact-json>` and the
    CRC-32 (IEEE, i.e. zlib.crc32) of the JSON payload matches
  * the first record is an `open` header carrying the schema name
  * sequence numbers are strictly increasing
  * per-job lifecycle order: `accepted` precedes everything else for
    that job, `started` at most once, `attempt` numbers strictly
    increase, and a terminal event (`completed`/`failed`/`shed`/
    `cancelled`) happens at most once with nothing after it

A torn trailing line — the expected residue of a crash mid-append —
is tolerated (and reported) by default; --strict turns it into a
failure, which is right for journals written by a graceful drain.
--require-terminal additionally fails if any accepted job never
reached a terminal record, which is what the crash-recovery soak
asserts after its final uninterrupted drain: zero lost acknowledged
jobs. Used by CI and the service_crash_recovery ctest; exits non-zero
with a message on the first violation.
"""

import argparse
import json
import re
import sys
import zlib

FRAME_RE = re.compile(r"^xj1 ([0-9a-f]{8}) (\{.*\})$")

SCHEMA = "xloops-journal-1"
TERMINAL = {"completed", "failed", "shed", "cancelled"}
EVENTS = TERMINAL | {"open", "accepted", "started", "attempt",
                     "backoff", "recovered"}


def fail(msg):
    print(f"check_journal: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class JobState:
    __slots__ = ("started", "attempt", "terminal")

    def __init__(self):
        self.started = False
        self.attempt = 0
        self.terminal = None


def parse_record(line, ctx):
    m = FRAME_RE.match(line)
    if not m:
        return None, f"{ctx}: bad frame (want 'xj1 <hex8> {{json}}')"
    want = int(m.group(1), 16)
    payload = m.group(2)
    got = zlib.crc32(payload.encode())
    if got != want:
        return None, (f"{ctx}: CRC mismatch (recorded {want:08x}, "
                      f"computed {got:08x})")
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as err:
        return None, f"{ctx}: CRC ok but payload is not JSON: {err}"
    return doc, None


def check_journal(path, text, strict, require_terminal):
    lines = text.split("\n")
    torn = None
    if lines and lines[-1] == "":
        lines.pop()  # properly terminated final record
    elif lines:
        torn = f"unterminated final line ({len(lines[-1])} bytes)"
        lines.pop()

    if not lines and torn is None:
        fail(f"{path}: empty journal")

    last_seq = 0
    jobs = {}
    records = 0
    for i, line in enumerate(lines):
        ctx = f"{path}:{i + 1}"
        doc, err = parse_record(line, ctx)
        if doc is None:
            # A bad record mid-file is rot the daemon would silently
            # truncate at; flag it even without --strict unless it is
            # the final complete line (a torn write can lose the
            # newline of the record *before* the one it tore).
            if i == len(lines) - 1:
                torn = err
                break
            fail(err)

        seq = doc.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            fail(f"{ctx}: seq {seq!r} not greater than {last_seq}")
        last_seq = seq

        ev = doc.get("ev")
        if ev not in EVENTS:
            fail(f"{ctx}: unknown event {ev!r}")
        if not isinstance(doc.get("t_us"), int) or doc["t_us"] < 0:
            fail(f"{ctx}: t_us is {doc.get('t_us')!r}")

        if records == 0:
            if ev != "open":
                fail(f"{ctx}: first record is '{ev}', want the "
                     f"'open' header")
            if doc.get("schema") != SCHEMA:
                fail(f"{ctx}: open header schema is "
                     f"{doc.get('schema')!r}, want {SCHEMA!r}")
            records += 1
            continue
        if ev == "open":
            fail(f"{ctx}: second 'open' header (journals are "
                 f"rotated whole, never concatenated)")
        records += 1

        job_id = doc.get("job")
        if not isinstance(job_id, int) or job_id <= 0:
            fail(f"{ctx}: job id is {job_id!r}")

        st = jobs.get(job_id)
        if ev == "accepted":
            if st is not None:
                fail(f"{ctx}: job {job_id} accepted twice")
            if "spec" not in doc:
                fail(f"{ctx}: accepted record for job {job_id} "
                     f"carries no spec (unrecoverable)")
            jobs[job_id] = JobState()
            continue
        if st is None:
            fail(f"{ctx}: '{ev}' for job {job_id} before its "
                 f"'accepted'")
        if st.terminal is not None:
            fail(f"{ctx}: '{ev}' for job {job_id} after its "
                 f"terminal '{st.terminal}'")

        if ev == "started":
            if st.started:
                fail(f"{ctx}: job {job_id} started twice")
            st.started = True
        elif ev == "attempt":
            attempt = doc.get("attempt")
            if not isinstance(attempt, int) or attempt <= st.attempt:
                fail(f"{ctx}: job {job_id} attempt {attempt!r} not "
                     f"greater than {st.attempt}")
            st.attempt = attempt
        elif ev in TERMINAL:
            st.terminal = ev

    if torn is not None and strict:
        fail(f"{path}: torn tail under --strict: {torn}")

    unfinished = sorted(j for j, st in jobs.items()
                        if st.terminal is None)
    if require_terminal and unfinished:
        fail(f"{path}: {len(unfinished)} accepted job(s) never "
             f"reached a terminal record: {unfinished[:10]} — "
             f"acknowledged work was lost")

    outcomes = {}
    for st in jobs.values():
        if st.terminal is not None:
            outcomes[st.terminal] = outcomes.get(st.terminal, 0) + 1
    summary = ", ".join(f"{n} {ev}" for ev, n in sorted(outcomes.items()))
    print(f"check_journal: {path}: OK ({records} records, "
          f"{len(jobs)} jobs{': ' + summary if summary else ''}"
          f"{', ' + str(len(unfinished)) + ' pending' if unfinished else ''}"
          f"{', torn tail' if torn else ''})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("journal",
                    help="xloops-journal-1 file; '-' reads stdin")
    ap.add_argument("--strict", action="store_true",
                    help="fail on a torn trailing record (right for "
                         "journals closed by a graceful drain)")
    ap.add_argument("--require-terminal", action="store_true",
                    help="fail if any accepted job has no terminal "
                         "record (zero lost acknowledged jobs)")
    args = ap.parse_args()

    if args.journal == "-":
        text = sys.stdin.read()
    else:
        with open(args.journal, encoding="utf-8",
                  errors="surrogateescape") as f:
            text = f.read()

    check_journal(args.journal, text, args.strict,
                  args.require_terminal)


if __name__ == "__main__":
    main()
