/**
 * @file
 * xloopsc — command-line client for the xloopsd daemon.
 *
 * Submits one job (synchronously: the response is the terminal
 * outcome) or sends a control request. The job knobs mirror `xsim`
 * so anything reproducible from the CLI is submittable as a job.
 *
 * Exit codes: 0 job done (or control ok / healthy), 1 user/connection
 * error (daemon unreachable), 2 job failed (capsule downloadable with
 * --capsule-out), 3 job cancelled, 4 job shed by admission control
 * ("overloaded"), 5 daemon degraded (`xloopsc health`: shedding or
 * draining).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/json.h"
#include "common/log.h"
#include "service/client.h"
#include "service/protocol.h"

using namespace xloops;

namespace {

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: xloopsc [metrics|health] [options]\n"
        "  --socket <path>        daemon socket (default "
        "xloopsd.sock)\n"
        "  --connect-retry-ms <n> retry a refused/missing socket for "
        "up to n ms\n"
        "                         (default 2000; rides through daemon "
        "restarts; 0 = fail fast)\n"
        "control requests:\n"
        "  --ping                 liveness probe\n"
        "  --stats                print server counters\n"
        "  metrics | --metrics    scrape the telemetry registry "
        "(xloops-metrics-1)\n"
        "  --prom                 with metrics: print the Prometheus "
        "text exposition\n"
        "  --metrics-out <file>   with metrics: write the JSON "
        "snapshot\n"
        "  health | --health      one-shot health probe (exit 0 "
        "healthy, 5 degraded,\n"
        "                         1 unreachable)\n"
        "  --drain                ask the daemon to shut down "
        "gracefully\n"
        "  --status <id>          outcome snapshot of a job\n"
        "  --capsule <id>         download a failed job's capsule\n"
        "job submission (synchronous):\n"
        "  -k <kernel>            kernel to simulate\n"
        "  -c <config>            system configuration (default "
        "io+x)\n"
        "  -m <T|S|A>             execution mode (default S)\n"
        "  --gp                   run the serialized GP-ISA binary "
        "(mode T)\n"
        "  --max-insts <n>        per-job instruction valve\n"
        "  --deadline-ms <n>      per-job wall-clock deadline\n"
        "  --inject-seed <n>      fault-injection RNG seed\n"
        "  --inject-rate <p>      per-opportunity fault probability\n"
        "  --inject-arch-rate <p> architectural corruption "
        "probability\n"
        "  --watchdog-cycles <n>  LPSU no-commit watchdog\n"
        "  --lockstep             differential lockstep "
        "verification\n"
        "  --max-retries <n>      per-job retry budget (caps the "
        "server's)\n"
        "outputs:\n"
        "  --stats-out <file>     write the job's stats document\n"
        "  --capsule-out <file>   write the capsule of a failed "
        "job\n"
        "  --help                 print this usage and exit\n"
        "\n"
        "Exit codes: 0 done/ok/healthy, 1 user or connection error,\n"
        "2 job failed, 3 job cancelled, 4 overloaded (job shed),\n"
        "5 degraded (health: shedding or draining).\n");
}

int
exitCodeFor(const std::string &status)
{
    if (status == "done" || status == "ok")
        return 0;
    if (status == "cancelled")
        return 3;
    if (status == "overloaded")
        return 4;
    if (status == "invalid")
        return 1;
    return 2;  // failed (or an unexpected non-terminal state)
}

void
writeFileOrDie(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    out << text;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = "xloopsd.sock";
    unsigned connectRetryMs = 2000;
    std::string statsOut;
    std::string capsuleOut;
    std::string metricsOut;
    bool promText = false;
    Request req;
    req.op = "";
    bool haveJob = false;

    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "--socket")
                socketPath = next();
            else if (arg == "--connect-retry-ms")
                connectRetryMs = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--ping")
                req.op = "ping";
            else if (arg == "--stats")
                req.op = "stats";
            else if (arg == "metrics" || arg == "--metrics")
                req.op = "metrics";
            else if (arg == "health" || arg == "--health")
                req.op = "health";
            else if (arg == "--prom")
                promText = true;
            else if (arg == "--metrics-out")
                metricsOut = next();
            else if (arg == "--drain")
                req.op = "drain";
            else if (arg == "--status") {
                req.op = "status";
                req.jobId = std::strtoull(next().c_str(), nullptr, 0);
            } else if (arg == "--capsule") {
                req.op = "capsule";
                req.jobId = std::strtoull(next().c_str(), nullptr, 0);
            } else if (arg == "-k") {
                req.job.kernel = next();
                haveJob = true;
            } else if (arg == "-c")
                req.job.config = next();
            else if (arg == "-m")
                req.job.mode = next();
            else if (arg == "--gp")
                req.job.gpBinary = true;
            else if (arg == "--max-insts")
                req.job.maxInsts =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--deadline-ms")
                req.job.deadlineMs =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-seed")
                req.job.injectSeed =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                req.job.injectRate =
                    std::strtod(next().c_str(), nullptr);
            else if (arg == "--inject-arch-rate")
                req.job.injectArchRate =
                    std::strtod(next().c_str(), nullptr);
            else if (arg == "--watchdog-cycles") {
                req.job.watchdogCycles =
                    std::strtoull(next().c_str(), nullptr, 0);
                req.job.haveWatchdog = true;
            } else if (arg == "--lockstep")
                req.job.lockstep = true;
            else if (arg == "--max-retries")
                req.job.maxRetries = static_cast<int>(
                    std::strtol(next().c_str(), nullptr, 10));
            else if (arg == "--stats-out")
                statsOut = next();
            else if (arg == "--capsule-out")
                capsuleOut = next();
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            }
        }

        if (req.op.empty()) {
            if (!haveJob) {
                printUsage(stderr);
                fatal("nothing to do: give -k or a control request");
            }
            req.op = "submit";
        }

        ServiceClient client(socketPath, connectRetryMs);
        const std::string responseLine =
            client.request(encodeRequest(req));
        const JsonValue v = jsonParse(responseLine);
        const std::string status = v.at("status").asString();

        if (req.op == "ping" || req.op == "drain") {
            std::printf("%s\n", status.c_str());
            return exitCodeFor(status);
        }
        if (req.op == "stats") {
            std::printf("%s\n", responseLine.c_str());
            return exitCodeFor(status);
        }
        if (req.op == "metrics") {
            if (status != "ok") {
                std::fprintf(stderr, "%s\n",
                             v.has("error")
                                 ? v.at("error").asString().c_str()
                                 : status.c_str());
                return 1;
            }
            const std::string json = v.at("metrics").asString();
            if (!metricsOut.empty()) {
                writeFileOrDie(metricsOut, json);
                std::printf("metrics: %s\n", metricsOut.c_str());
            }
            if (promText)
                std::printf("%s", v.at("prom").asString().c_str());
            else if (metricsOut.empty())
                std::printf("%s\n", json.c_str());
            return 0;
        }
        if (req.op == "health") {
            if (status != "ok") {
                std::fprintf(stderr, "%s\n",
                             v.has("error")
                                 ? v.at("error").asString().c_str()
                                 : status.c_str());
                return 1;
            }
            const bool degraded = v.at("degraded").asBool();
            std::printf("%s uptime_us=%llu queued=%llu running=%llu "
                        "in_flight=%llu cache_entries=%llu%s\n",
                        degraded ? "degraded" : "healthy",
                        static_cast<unsigned long long>(
                            v.at("uptime_us").asU64()),
                        static_cast<unsigned long long>(
                            v.at("queued").asU64()),
                        static_cast<unsigned long long>(
                            v.at("running").asU64()),
                        static_cast<unsigned long long>(
                            v.at("in_flight").asU64()),
                        static_cast<unsigned long long>(
                            v.at("cache_entries").asU64()),
                        v.at("draining").asBool() ? " (draining)"
                                                  : "");
            return degraded ? 5 : 0;
        }
        if (req.op == "capsule") {
            if (status != "ok") {
                std::fprintf(stderr, "%s\n",
                             v.at("error").asString().c_str());
                return 1;
            }
            const std::string text = v.at("capsule").asString();
            if (capsuleOut.empty())
                std::printf("%s", text.c_str());
            else {
                writeFileOrDie(capsuleOut, text);
                std::printf("capsule: %s\n", capsuleOut.c_str());
            }
            return 0;
        }

        // submit / status: a job outcome line.
        std::printf("job %llu: %s",
                    static_cast<unsigned long long>(
                        v.has("id") ? v.at("id").asU64() : 0),
                    status.c_str());
        if (v.has("cached") && v.at("cached").asBool())
            std::printf(" (cached)");
        if (v.has("attempts"))
            std::printf(" (attempts %llu)",
                        static_cast<unsigned long long>(
                            v.at("attempts").asU64()));
        std::printf("\n");
        if (v.has("error"))
            std::fprintf(stderr, "%s\n",
                         v.at("error").asString().c_str());
        if (v.has("capsule_path"))
            std::fprintf(stderr, "capsule: %s\n",
                         v.at("capsule_path").asString().c_str());
        if (!statsOut.empty() && v.has("stats")) {
            writeFileOrDie(statsOut, v.at("stats").asString());
            std::printf("stats: %s\n", statsOut.c_str());
        }
        if (!capsuleOut.empty() && v.has("id") &&
            (status == "failed" || status == "cancelled")) {
            // Fetch the capsule over the same connection.
            Request creq;
            creq.op = "capsule";
            creq.jobId = v.at("id").asU64();
            const JsonValue cv =
                jsonParse(client.request(encodeRequest(creq)));
            if (cv.at("status").asString() == "ok") {
                writeFileOrDie(capsuleOut,
                               cv.at("capsule").asString());
                std::printf("capsule: %s\n", capsuleOut.c_str());
            }
        }
        return exitCodeFor(status);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "xloopsc: %s\n", err.what());
        return 1;
    } catch (const PanicError &err) {
        std::fprintf(stderr, "xloopsc: %s\n", err.what());
        return 4;
    }
}
