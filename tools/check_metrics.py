#!/usr/bin/env python3
"""Validate xloopsd telemetry snapshots.

Checks that a snapshot scraped via `xloopsc metrics --metrics-out`
(or one line of the daemon's `--metrics-log`) matches the
xloops-metrics-1 schema: well-formed metric names, non-negative
integer samples, internally consistent histograms (bucket counts sum
to the observation count, min <= max), and — when the job-accounting
family is present — the service conservation invariant

    jobs_admitted == completed + failed + shed + cancelled + in_flight

which the supervisor publishes from one consistent instant, so any
violation means lost or double-counted jobs, not scrape skew. A file
holding several newline-delimited snapshots (the daemon's metrics
log) is validated line by line. Used by CI and the service_smoke
ctest; exits non-zero with a message on the first violation.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="
    r"\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?$")

# The job-accounting family (see Supervisor::publishMetrics). The
# invariant includes the cancelled leg: a drain cancels the backlog,
# and those jobs are neither completed nor failed nor still in flight.
ADMITTED = "xloops_jobs_admitted_total"
COMPLETED = "xloops_jobs_completed_total"
FAILED = "xloops_jobs_failed_total"
SHED = "xloops_jobs_shed_total"
CANCELLED = "xloops_jobs_cancelled_total"
IN_FLIGHT = "xloops_jobs_in_flight"


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_samples(table, ctx):
    if not isinstance(table, dict):
        fail(f"{ctx} is not an object")
    for name, value in table.items():
        if not NAME_RE.match(name):
            fail(f"{ctx}: bad metric name {name!r}")
        if not isinstance(value, int) or value < 0:
            fail(f"{ctx}.{name}: expected a non-negative integer, "
                 f"got {value!r}")


def check_histogram(name, h):
    ctx = f"histograms.{name}"
    if not isinstance(h, dict):
        fail(f"{ctx} is not an object")
    for key in ("count", "sum", "min", "max", "buckets"):
        if key not in h:
            fail(f"{ctx}: missing key '{key}'")
    for key in ("count", "sum", "min", "max"):
        if not isinstance(h[key], int) or h[key] < 0:
            fail(f"{ctx}.{key}: expected a non-negative integer, "
                 f"got {h[key]!r}")
    buckets = h["buckets"]
    if not isinstance(buckets, list) or not all(
            isinstance(b, int) and b >= 0 for b in buckets):
        fail(f"{ctx}.buckets is not a list of non-negative integers")
    if sum(buckets) != h["count"]:
        fail(f"{ctx}: buckets sum to {sum(buckets)}, count is "
             f"{h['count']}")
    if h["count"] > 0:
        if h["min"] > h["max"]:
            fail(f"{ctx}: min {h['min']} > max {h['max']}")
        if not h["min"] <= h["sum"] / h["count"] <= h["max"]:
            fail(f"{ctx}: mean outside [min, max]")
    elif buckets:
        fail(f"{ctx}: empty histogram with non-empty buckets")


def check_snapshot(doc, ctx, require_jobs):
    if doc.get("schema") != "xloops-metrics-1":
        fail(f"{ctx}: schema is {doc.get('schema')!r}")
    for key in ("at_us", "counters", "gauges", "histograms"):
        if key not in doc:
            fail(f"{ctx}: missing key '{key}'")
    if not isinstance(doc["at_us"], int) or doc["at_us"] < 0:
        fail(f"{ctx}: at_us is {doc['at_us']!r}")
    counters = doc["counters"]
    gauges = doc["gauges"]
    check_samples(counters, f"{ctx}: counters")
    check_samples(gauges, f"{ctx}: gauges")
    if not isinstance(doc["histograms"], dict):
        fail(f"{ctx}: histograms is not an object")
    for name, h in doc["histograms"].items():
        if not NAME_RE.match(name):
            fail(f"{ctx}: bad histogram name {name!r}")
        check_histogram(name, h)

    if require_jobs and ADMITTED not in counters:
        fail(f"{ctx}: job-accounting family absent "
             f"(no {ADMITTED}; was the supervisor scraped?)")
    if ADMITTED not in counters:
        return None

    for name in (COMPLETED, FAILED, SHED, CANCELLED):
        if name not in counters:
            fail(f"{ctx}: {ADMITTED} present but {name} missing")
    if IN_FLIGHT not in gauges:
        fail(f"{ctx}: {ADMITTED} present but {IN_FLIGHT} missing")
    admitted = counters[ADMITTED]
    accounted = (counters[COMPLETED] + counters[FAILED] +
                 counters[SHED] + counters[CANCELLED] +
                 gauges[IN_FLIGHT])
    if admitted != accounted:
        fail(f"{ctx}: conservation violated: admitted {admitted} != "
             f"completed {counters[COMPLETED]} + failed "
             f"{counters[FAILED]} + shed {counters[SHED]} + cancelled "
             f"{counters[CANCELLED]} + in_flight {gauges[IN_FLIGHT]} "
             f"= {accounted}")
    return admitted


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("snapshot",
                    help="xloops-metrics-1 JSON (one document, or one "
                         "per line as the daemon's --metrics-log "
                         "writes); '-' reads stdin")
    ap.add_argument("--require-jobs", action="store_true",
                    help="fail if the job-accounting family is absent "
                         "(CI scrapes a supervisor, so it must be "
                         "there)")
    args = ap.parse_args()

    if args.snapshot == "-":
        text = sys.stdin.read()
    else:
        with open(args.snapshot) as f:
            text = f.read()

    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        fail(f"{args.snapshot}: empty input")
    try:
        docs = [json.loads(ln) for ln in lines]
    except json.JSONDecodeError:
        # Not one-snapshot-per-line: a single pretty-printed document.
        try:
            docs = [json.loads(text)]
        except json.JSONDecodeError as err:
            fail(f"{args.snapshot}: not JSON: {err}")

    admitted = None
    for i, doc in enumerate(docs):
        ctx = args.snapshot if len(docs) == 1 \
            else f"{args.snapshot}:{i + 1}"
        admitted = check_snapshot(doc, ctx, args.require_jobs)
    plural = "" if len(docs) == 1 else f" x{len(docs)}"
    conservation = "no job-accounting family" if admitted is None \
        else f"{admitted} jobs admitted, conservation holds"
    print(f"check_metrics: {args.snapshot}: OK{plural} "
          f"({conservation})")


if __name__ == "__main__":
    main()
