/**
 * @file
 * xfc — loop-nest language compiler driver.
 *
 * Compiles an .xl source file through the frontend (parse → optional
 * fission prepass → dependence analysis → pattern selection → XLOOPS
 * assembly) and can run the result both ways:
 *
 *   xfc prog.xl -o prog.s          emit assembly
 *   xfc prog.xl --report           per-loop pattern-selection report
 *   xfc prog.xl --run              traditional vs specialized run,
 *                                  every declared array compared
 *   xfc prog.xl --fission --run    same, with the fission prepass
 *
 * Exit codes: 0 clean, 1 user/compile error, 2 array mismatch between
 * the traditional and specialized runs.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/log.h"
#include "common/sim_error.h"
#include "frontend/frontend.h"
#include "system/config.h"
#include "system/system.h"

using namespace xloops;

namespace {

void
printUsage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: xfc [options] program.xl\n"
                 "  -o <file>    write the generated assembly\n"
                 "  -c <config>  system configuration for --run "
                 "(default io+x)\n"
                 "  --report     print the per-loop pattern-selection "
                 "report\n"
                 "  --run        run traditional and specialized, "
                 "compare all arrays\n"
                 "  --fission    apply the loop-fission prepass\n"
                 "  --no-lsr     disable loop strength reduction\n"
                 "  --help       print this usage and exit\n");
}

[[noreturn]] void
usageError(const std::string &msg)
{
    printUsage(stderr);
    fatal(msg);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Run @p prog in @p mode under the lockstep checker and return the
 *  final contents of every declared array. */
std::vector<std::vector<u32>>
runMode(const CompiledModule &cm, const SysConfig &cfg, ExecMode mode)
{
    XloopsSystem sys(cfg);
    sys.loadProgram(cm.program);
    RunOptions ro;
    ro.lockstep = true;
    sys.run(cm.program, mode, 500'000'000, ro);
    std::vector<std::vector<u32>> out;
    for (const ArrayDeclInfo &a : cm.module.arrays) {
        std::vector<u32> words;
        const Addr base = cm.program.symbol(a.name);
        for (unsigned i = 0; i < a.words; i++)
            words.push_back(sys.memory().readWord(base + 4 * i));
        out.push_back(std::move(words));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string outPath;
    std::string cfgName = "io+x";
    bool report = false;
    bool run = false;
    FrontendOptions fopts;

    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usageError(arg + " needs an argument");
                return argv[++i];
            };
            if (arg == "-o")
                outPath = next();
            else if (arg == "-c")
                cfgName = next();
            else if (arg == "--report")
                report = true;
            else if (arg == "--run")
                run = true;
            else if (arg == "--fission")
                fopts.fission = true;
            else if (arg == "--no-lsr")
                fopts.lsr = false;
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                usageError("unknown option '" + arg + "'");
            } else if (!path.empty()) {
                usageError("more than one input file");
            } else {
                path = arg;
            }
        }
        if (path.empty())
            usageError("no input file given");

        const CompiledModule cm = compileSource(readFile(path), fopts);

        if (report) {
            if (cm.fissionApplied)
                std::printf("fission: applied\n");
            for (const LoopReport &r : cm.loops) {
                std::printf("loop %*s%s: %s", r.depth * 2, "",
                            r.iv.c_str(), r.selection.c_str());
                if (r.speculative)
                    std::printf(" (speculative)");
                if (r.inconclusive)
                    std::printf(" (analysis inconclusive)");
                if (!r.cirs.empty()) {
                    std::printf(" cirs:");
                    for (const std::string &cir : r.cirs)
                        std::printf(" %s", cir.c_str());
                }
                std::printf("\n");
            }
        }

        if (!outPath.empty()) {
            std::ofstream out(outPath);
            if (!out)
                fatal("cannot write " + outPath);
            out << cm.assembly;
            std::printf("assembly: %s\n", outPath.c_str());
        }

        if (run) {
            const SysConfig cfg = configs::byName(cfgName);
            const auto trad = runMode(cm, cfg, ExecMode::Traditional);
            const auto spec = runMode(cm, cfg, ExecMode::Specialized);
            unsigned mismatches = 0;
            for (size_t a = 0; a < cm.module.arrays.size(); a++) {
                for (size_t i = 0; i < trad[a].size(); i++) {
                    if (trad[a][i] != spec[a][i] && mismatches++ < 8) {
                        std::printf(
                            "MISMATCH %s[%zu]: traditional=%d "
                            "specialized=%d\n",
                            cm.module.arrays[a].name.c_str(), i,
                            static_cast<i32>(trad[a][i]),
                            static_cast<i32>(spec[a][i]));
                    }
                }
            }
            if (mismatches) {
                std::printf("xfc: %u words differ\n", mismatches);
                return 2;
            }
            std::printf("xfc: traditional and specialized runs "
                        "match\n");
        }
        return 0;
    } catch (const SimError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return error.exitCode();
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 4;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
