/**
 * @file
 * xfuzz — generative differential fuzz farm.
 *
 * Generates random loop-nest programs with known-by-construction
 * dependence structure, then checks each one end to end (see
 * src/fuzz/harness.h): the analyzer's pattern selections must equal
 * the generator's ground truth, and a traditional run must match a
 * fault-injected specialized run byte-identically under the lockstep
 * checker. Failures are shrunk to a minimal repro (src/fuzz/shrink.h)
 * and written to the output directory as a replayable .xl corpus file
 * plus, for execution failures, a divergence capsule.
 *
 *   xfuzz --seed 1 --count 200            fixed-seed deterministic run
 *   xfuzz --minutes 5 --jobs 8            time-boxed soak
 *   xfuzz --replay repro.xl               replay one corpus file
 *   xfuzz --replay-dir tests/corpus       replay a corpus directory
 *
 * Exit codes: 0 all programs passed, 2 failures found (repros
 * written), 1 user error, 4 simulator panic outside a fuzz case.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/log.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/sim_error.h"
#include "frontend/frontend.h"
#include "fuzz/harness.h"
#include "fuzz/shrink.h"

using namespace xloops;

namespace {

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: xfuzz [options]\n"
        "  --seed <n>         root seed (default 1); program i uses "
        "seed+i\n"
        "  --count <n>        programs to check (default 100)\n"
        "  --minutes <m>      run time-boxed batches instead of "
        "--count\n"
        "  --jobs <n>         worker threads (default: XLOOPS_JOBS or "
        "hw)\n"
        "  --out <dir>        repro/capsule directory (default "
        "xfuzz-out)\n"
        "  --config <name>    system configuration (default io+x)\n"
        "  --inject-rate <p>  specialized-run fault rate (default "
        "0.05)\n"
        "  --inject-seed <n>  fixed fault seed (default: derived per "
        "program)\n"
        "  --max-insts <n>    per-run instruction budget\n"
        "  --replay <file>    replay one corpus file and exit\n"
        "  --replay-dir <dir> replay every .xl file in a directory\n"
        "  --help             print this usage and exit\n");
}

[[noreturn]] void
usageError(const std::string &msg)
{
    printUsage(stderr);
    fatal(msg);
}

/** Everything a worker reports for one generated program. */
struct CaseResult
{
    u64 seed = 0;
    std::string name;
    std::string recipe;
    std::vector<FuzzFailure> failures;
};

/** The analyzer's selections for @p source (nullopt: does not even
 *  parse/compile). With @p fission, the post-fission selections. */
std::optional<std::vector<std::string>>
observedSelections(const std::string &source, bool fission)
{
    try {
        FrontendModule mod = parseModule(source);
        std::vector<LoopReport> reps;
        if (fission) {
            FrontendOptions o;
            o.fission = true;
            reps = compileModule(mod, o).loops;
        } else {
            reps = reportLoops(mod.topLevel);
        }
        std::vector<std::string> out;
        out.reserve(reps.size());
        for (const LoopReport &r : reps)
            out.push_back(r.selection);
        return out;
    } catch (...) {
        return std::nullopt;
    }
}

/** Still-fails predicate for one failure class (see shrink.h). */
FailPredicate
predicateFor(const std::string &phase, const GenProgram &original,
             const FuzzOptions &opts)
{
    if (phase == "truth" || phase == "fission-truth") {
        // An analyzer-vs-ground-truth mismatch: pin the analyzer's
        // (wrong) observations so every accepted edit preserves the
        // exact disagreement with the original ground truth.
        const auto obs = observedSelections(original.source, false);
        const auto fobs =
            original.useFission
                ? observedSelections(original.source, true)
                : std::nullopt;
        return [obs, fobs](const GenProgram &g) {
            if (observedSelections(g.source, false) != obs)
                return false;
            return !fobs ||
                   observedSelections(g.source, true) == fobs;
        };
    }
    if (phase == "panic") {
        FuzzOptions so = opts;
        so.checkTruth = false;
        so.capsuleDir.clear();
        return [so](const GenProgram &g) {
            try {
                checkProgram(g, so);
                return false;
            } catch (...) {
                return true;
            }
        };
    }
    // Execution/compile failures: the shrunk program must fail in the
    // same first phase; its (possibly different) analyzer verdicts
    // are recomputed for the repro's expect directives afterwards.
    FuzzOptions so = opts;
    so.checkTruth = false;
    so.capsuleDir.clear();
    return [so, phase](const GenProgram &g) {
        try {
            return checkProgram(g, so).firstPhase() == phase;
        } catch (...) {
            return false;
        }
    };
}

/** Shrink a failing program and write its repro corpus file (and, for
 *  execution failures, a divergence capsule). Returns the path. */
std::string
writeRepro(const GenProgram &original, const std::string &phase,
           const FuzzOptions &opts, const std::string &outDir)
{
    GenProgram shrunk =
        shrinkProgram(original, predicateFor(phase, original, opts));

    // Directives the repro replays with. For truth failures the
    // expectation stays the original ground truth (that is the bug);
    // for everything else it is whatever the analyzer says about the
    // shrunk program, so corpus replay exercises only the pinned
    // execution failure.
    std::vector<std::string> expect = shrunk.truths;
    std::vector<std::string> fissionExpect = shrunk.fissionTruths;
    if (phase != "truth" && phase != "fission-truth") {
        if (const auto obs = observedSelections(shrunk.source, false))
            expect = *obs;
        if (shrunk.useFission) {
            if (const auto fobs =
                    observedSelections(shrunk.source, true))
                fissionExpect = *fobs;
        }
    }

    const u64 faultSeed =
        opts.injectSeed ? opts.injectSeed
                        : mix64(shrunk.seed ? shrunk.seed : 0x5eed);
    const std::string path = outDir + "/" + shrunk.name + ".xl";
    {
        std::ofstream out(path);
        if (!out)
            fatal("cannot write " + path);
        out << "//! expect:";
        for (size_t i = 0; i < expect.size(); i++)
            out << (i ? ", " : " ") << expect[i];
        out << "\n";
        if (shrunk.useFission) {
            out << "//! options: fission\n";
            out << "//! fission-expect:";
            for (size_t i = 0; i < fissionExpect.size(); i++)
                out << (i ? ", " : " ") << fissionExpect[i];
            out << "\n";
        }
        out << "//! seed: " << faultSeed << "\n";
        out << "// shrunk from generator seed " << shrunk.seed
            << " (recipe " << shrunk.recipe << "), failing phase: "
            << phase << "\n";
        out << shrunk.source;
    }

    // Confirmation pass over the shrunk program with capsules on —
    // an execution failure leaves a replayable capsule next to the
    // repro.
    if (phase != "truth" && phase != "fission-truth" &&
        phase != "panic") {
        FuzzOptions co = opts;
        co.checkTruth = false;
        co.capsuleDir = outDir;
        try {
            checkProgram(shrunk, co);
        } catch (...) {
        }
    }
    return path;
}

int
replayFiles(const std::vector<std::string> &paths,
            const FuzzOptions &opts)
{
    unsigned failed = 0;
    for (const std::string &path : paths) {
        const CorpusCase c = loadCorpusFile(path);
        const FuzzVerdict v = checkCorpusCase(c, opts);
        if (v.ok()) {
            std::printf("replay %s: ok\n", path.c_str());
        } else {
            failed++;
            for (const FuzzFailure &f : v.failures)
                std::printf("replay %s: %s: %s\n", path.c_str(),
                            f.phase.c_str(), f.detail.c_str());
        }
    }
    if (failed) {
        std::printf("xfuzz: %u of %zu replays FAILED\n", failed,
                    paths.size());
        return 2;
    }
    std::printf("xfuzz: all %zu replays passed\n", paths.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 rootSeed = 1;
    unsigned count = 100;
    unsigned minutes = 0;
    unsigned jobs = 0;
    std::string outDir = "xfuzz-out";
    std::string replayPath;
    std::string replayDir;
    FuzzOptions opts;

    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usageError(arg + " needs an argument");
                return argv[++i];
            };
            if (arg == "--seed")
                rootSeed = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--count")
                count = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--minutes")
                minutes = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--jobs")
                jobs = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--out")
                outDir = next();
            else if (arg == "--config")
                opts.configName = next();
            else if (arg == "--inject-rate")
                opts.injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--inject-seed")
                opts.injectSeed =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--max-insts")
                opts.maxInsts =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--replay")
                replayPath = next();
            else if (arg == "--replay-dir")
                replayDir = next();
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                usageError("unknown option '" + arg + "'");
            }
        }
        if (!replayPath.empty() && !replayDir.empty())
            usageError("--replay and --replay-dir are exclusive");
        if (count == 0 && minutes == 0)
            usageError("--count must be at least 1");

        if (!replayPath.empty())
            return replayFiles({replayPath}, opts);
        if (!replayDir.empty()) {
            std::vector<std::string> paths;
            for (const auto &entry :
                 std::filesystem::directory_iterator(replayDir)) {
                if (entry.path().extension() == ".xl")
                    paths.push_back(entry.path().string());
            }
            std::sort(paths.begin(), paths.end());
            if (paths.empty())
                fatal("no .xl files in " + replayDir);
            return replayFiles(paths, opts);
        }

        const WorkerPool pool(jobs);
        const auto start = std::chrono::steady_clock::now();
        const auto deadline =
            start + std::chrono::minutes(minutes);

        unsigned total = 0;
        std::vector<CaseResult> failures;
        u64 nextSeed = rootSeed;
        bool more = true;
        while (more) {
            const unsigned batch =
                minutes ? std::max(32u, pool.jobs() * 8) : count;
            const std::vector<CaseResult> results =
                pool.map<CaseResult>(batch, [&](size_t i) {
                    CaseResult r;
                    r.seed = nextSeed + i;
                    try {
                        const GenProgram p = generateProgram(r.seed);
                        r.name = p.name;
                        r.recipe = p.recipe;
                        r.failures = checkProgram(p, opts).failures;
                    } catch (const std::exception &e) {
                        r.failures.push_back({"panic", e.what()});
                    }
                    return r;
                });
            for (const CaseResult &r : results)
                if (!r.failures.empty())
                    failures.push_back(r);
            total += batch;
            nextSeed += batch;
            more = minutes != 0 &&
                   std::chrono::steady_clock::now() < deadline;
        }

        // Shrink and persist every failure serially (shrinking
        // re-runs the simulator many times; determinism over speed).
        for (const CaseResult &r : failures) {
            std::filesystem::create_directories(outDir);
            const GenProgram p = generateProgram(r.seed);
            const std::string phase = r.failures.front().phase;
            for (const FuzzFailure &f : r.failures)
                std::printf("FAIL %s (recipe %s, seed %llu) %s: %s\n",
                            r.name.c_str(), r.recipe.c_str(),
                            static_cast<unsigned long long>(r.seed),
                            f.phase.c_str(), f.detail.c_str());
            const std::string repro =
                writeRepro(p, phase, opts, outDir);
            std::printf("  repro: %s\n", repro.c_str());
        }

        if (!failures.empty()) {
            std::printf("xfuzz: %zu of %u FAILED (repros in %s)\n",
                        failures.size(), total, outDir.c_str());
            return 2;
        }
        std::printf("xfuzz: all %u passed\n", total);
        return 0;
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 4;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
