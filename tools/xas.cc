/**
 * @file
 * xas — assembler / disassembler driver.
 *
 *   xas program.s              assemble, print a listing
 *   xas -d program.s           assemble, print disassembly only
 *   xas -s program.s           print the symbol table
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "common/log.h"
#include "isa/disasm.h"

using namespace xloops;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool disasmOnly = false;
    bool symbolsOnly = false;
    std::string path;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "-d")
            disasmOnly = true;
        else if (arg == "-s")
            symbolsOnly = true;
        else
            path = arg;
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: xas [-d|-s] program.s\n");
        return 2;
    }

    try {
        const Program prog = assemble(readFile(path));
        if (symbolsOnly) {
            for (const auto &[name, addr] : prog.symbols)
                std::printf("%08x %s\n", addr, name.c_str());
            return 0;
        }
        std::printf("text: %zu instructions at 0x%x\n", prog.text.size(),
                    prog.textBase);
        for (size_t i = 0; i < prog.text.size(); i++) {
            const Addr pc = prog.textBase + static_cast<Addr>(4 * i);
            const Instruction inst = Instruction::decode(prog.text[i]);
            if (disasmOnly)
                std::printf("%08x: %s\n", pc,
                            disassemble(inst, pc).c_str());
            else
                std::printf("%08x: %08x  %s\n", pc, prog.text[i],
                            disassemble(inst, pc).c_str());
        }
        if (!disasmOnly) {
            for (const auto &chunk : prog.data)
                std::printf("data: %zu bytes at 0x%x\n",
                            chunk.bytes.size(), chunk.base);
        }
        return 0;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
