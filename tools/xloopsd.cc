/**
 * @file
 * xloopsd — the simulation-as-a-service daemon.
 *
 * Serves "xloops-job-1" requests over a Unix-domain socket (see
 * docs/SERVICE.md): jobs are validated, admission-controlled against
 * a bounded queue (overload = explicit "overloaded" response, never
 * unbounded buffering), supervised with per-job instruction valves
 * and wall-clock deadlines, retried with exponential backoff when
 * the failure is a wedged schedule, capsuled when it is not, and
 * served from a content-addressed result cache when the identical
 * cell was already simulated (hits are byte-identical to cold runs).
 *
 * SIGINT/SIGTERM drain gracefully: stop accepting, cancel the
 * backlog, finish running jobs, persist the cache index, exit 0.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.h"
#include "common/types.h"
#include "service/server.h"

using namespace xloops;

namespace {

std::atomic<u32> shutdownFlag{0};

void
onSignal(int)
{
    shutdownFlag.store(1);
}

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: xloopsd [options]\n"
        "  --socket <path>       Unix socket path (default "
        "xloopsd.sock)\n"
        "  --workers <n>         worker threads (default: hardware "
        "concurrency)\n"
        "  --queue-depth <n>     admission bound; beyond it jobs are "
        "shed (default 64)\n"
        "  --artifact-dir <dir>  where job capsules are written "
        "(default .)\n"
        "  --cache-index <file>  persist/restore the result cache "
        "index\n"
        "  --cache-entries <n>   result cache capacity (default "
        "4096)\n"
        "  --journal <file>      write-ahead job journal; acknowledged "
        "jobs survive kill -9\n"
        "  --no-recover          do not replay the journal at startup "
        "(forensics)\n"
        "  --ckpt-every-insts <n>  checkpoint attempt-0 runs every n "
        "committed GPP insts\n"
        "                        so recovery resumes long jobs "
        "mid-flight (default off)\n"
        "  --max-retries <n>     retry budget for retryable failures "
        "(default 3)\n"
        "  --deadline-ms <n>     default per-job wall-clock deadline "
        "(default 30000)\n"
        "  --metrics-log <file>  append one xloops-metrics-1 snapshot "
        "line per interval\n"
        "  --metrics-interval-ms <n>  metrics log cadence (default "
        "1000)\n"
        "  --flight-dump <file>  write the flight-recorder dump on "
        "drain/SIGTERM\n"
        "  --trace <file>        write per-job spans as Chrome trace "
        "JSON on drain\n"
        "  --help                print this usage and exit\n"
        "\n"
        "SIGINT/SIGTERM drain gracefully (finish running jobs,\n"
        "persist the cache index, exit 0). Protocol reference:\n"
        "docs/SERVICE.md.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "--socket")
                cfg.socketPath = next();
            else if (arg == "--workers")
                cfg.supervisor.workers = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--queue-depth")
                cfg.supervisor.queueDepth =
                    std::strtoull(next().c_str(), nullptr, 10);
            else if (arg == "--artifact-dir")
                cfg.supervisor.artifactDir = next();
            else if (arg == "--cache-index")
                cfg.cacheIndexPath = next();
            else if (arg == "--cache-entries")
                cfg.supervisor.cacheEntries =
                    std::strtoull(next().c_str(), nullptr, 10);
            else if (arg == "--journal")
                cfg.supervisor.journalPath = next();
            else if (arg == "--no-recover")
                cfg.supervisor.recover = false;
            else if (arg == "--ckpt-every-insts")
                cfg.supervisor.checkpointEveryInsts =
                    std::strtoull(next().c_str(), nullptr, 10);
            else if (arg == "--max-retries")
                cfg.supervisor.retry.maxRetries =
                    static_cast<unsigned>(
                        std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--deadline-ms")
                cfg.supervisor.defaultDeadlineMs =
                    std::strtoull(next().c_str(), nullptr, 10);
            else if (arg == "--metrics-log")
                cfg.metricsLogPath = next();
            else if (arg == "--metrics-interval-ms")
                cfg.metricsIntervalMs =
                    std::strtoull(next().c_str(), nullptr, 10);
            else if (arg == "--flight-dump")
                cfg.flightDumpPath = next();
            else if (arg == "--trace")
                cfg.tracePath = next();
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            }
        }

        struct sigaction sa{};
        sa.sa_handler = onSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);
        // A client vanishing mid-response must not kill the daemon.
        signal(SIGPIPE, SIG_IGN);

        return runServer(cfg, shutdownFlag);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "xloopsd: %s\n", err.what());
        return 1;
    } catch (const PanicError &err) {
        std::fprintf(stderr, "xloopsd: %s\n", err.what());
        return 4;
    }
}
