/**
 * @file
 * xsweep — parallel experiment-matrix driver.
 *
 * Runs the cross product (kernels × configs × modes) across a worker
 * pool, each cell in a fully isolated system, and writes the merged
 * "xloops-sweep-1" report (one embedded "xloops-stats-1" document per
 * cell). The report is byte-identical for every --jobs value; see
 * docs/OBSERVABILITY.md §5 and tests/test_sweep_determinism.cc.
 *
 * Exit codes: 0 all cells validated, 1 user/config error, 6 one or
 * more cells failed validation (or died with a diagnosed SimError —
 * per-cell errors are in the report, the sweep itself never wedges).
 * The failed-cell code is distinct from every xsim code (2 = checker,
 * 3 = diagnosis, 5 = divergence) so a harness can tell "the sweep ran
 * to completion but cells failed" apart from a driver-level death; a
 * "failed cells: N/M" summary on stderr lists the count explicitly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/pool.h"
#include "common/sim_error.h"
#include "kernels/kernel.h"
#include "system/sweep.h"

using namespace xloops;

namespace {

struct Flag
{
    const char *name;
    const char *arg;
    const char *help;
};

const Flag flagTable[] = {
    {"--kernels", "<k1,k2|all>",
     "comma-separated kernel names, or 'all' (default) for Table II"},
    {"--configs", "<c1,c2>",
     "comma-separated configurations (default io+x); see xsim -l"},
    {"--modes", "<T,S,A>", "execution modes to cross (default S)"},
    {"--jobs", "<n>",
     "worker threads (default: XLOOPS_JOBS or hardware concurrency)"},
    {"--inject-seed", "<n>",
     "root fault seed; each cell derives its own seed from it"},
    {"--inject-rate", "<p>",
     "per-opportunity fault probability (default 0.02 with a seed)"},
    {"--max-insts", "<n>", "per-cell instruction valve"},
    {"--deadline-ms", "<n>",
     "wall-clock budget for the whole sweep (0 = none); on expiry "
     "remaining cells are skipped and the sweep exits 6"},
    {"--out", "<file>", "write the xloops-sweep-1 report here"},
    {"--help", nullptr,
     "print this usage and exit (exit codes: 0 all validated, 1 user "
     "error, 6 failed/skipped cells)"},
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: xsweep [options]\n");
    for (const Flag &f : flagTable) {
        std::string head = f.name;
        if (f.arg) {
            head += ' ';
            head += f.arg;
        }
        std::fprintf(out, "  %-22s %s\n", head.c_str(), f.help);
    }
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const std::string item =
            s.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

ExecMode
parseMode(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "S")
        return ExecMode::Specialized;
    if (mode == "A")
        return ExecMode::Adaptive;
    fatal("mode must be T, S, or A");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernelList = "all";
    std::string configList = "io+x";
    std::string modeList = "S";
    std::string outPath;
    SweepOptions opts;
    double injectRate = 0.02;
    bool haveRate = false;

    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "--kernels")
                kernelList = next();
            else if (arg == "--configs")
                configList = next();
            else if (arg == "--modes")
                modeList = next();
            else if (arg == "--jobs")
                opts.jobs = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--inject-seed")
                opts.injectSeed =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate") {
                injectRate = std::strtod(next().c_str(), nullptr);
                haveRate = true;
            } else if (arg == "--max-insts")
                opts.maxInsts = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--deadline-ms")
                opts.deadlineMs =
                    std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--out")
                outPath = next();
            else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else {
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            }
        }
        if (opts.injectSeed != 0 || haveRate)
            opts.injectRate = injectRate;

        std::vector<std::string> kernels;
        if (kernelList == "all") {
            kernels = tableIIKernelNames();
        } else {
            kernels = splitList(kernelList);
            for (const std::string &k : kernels)
                kernelByName(k);  // fail fast on typos
        }
        std::vector<SysConfig> cfgs;
        for (const std::string &c : splitList(configList))
            cfgs.push_back(configs::byName(c));
        std::vector<ExecMode> modes;
        for (const std::string &m : splitList(modeList))
            modes.push_back(parseMode(m));
        if (kernels.empty() || cfgs.empty() || modes.empty())
            fatal("empty kernel, config, or mode list");

        const std::vector<SweepCell> cells =
            crossProduct(kernels, cfgs, modes);
        if (cells.empty())
            fatal("cross product is empty (S/A modes need +x configs)");

        const unsigned jobs = opts.jobs ? opts.jobs : defaultJobs();
        std::printf("sweep: %zu cells (%zu kernels x %zu configs x %zu "
                    "modes), %u jobs\n",
                    cells.size(), kernels.size(), cfgs.size(),
                    modes.size(), jobs);

        const std::vector<SweepCellResult> results =
            runSweep(cells, opts);

        size_t passed = 0;
        for (size_t i = 0; i < results.size(); i++) {
            if (results[i].passed) {
                passed++;
            } else {
                std::fprintf(stderr, "FAILED %s %s %s: %s\n",
                             cells[i].kernel.c_str(),
                             cells[i].config.name.c_str(),
                             execModeName(cells[i].mode),
                             results[i].error.c_str());
            }
        }
        std::printf("passed: %zu/%zu\n", passed, results.size());
        if (passed != results.size())
            std::fprintf(stderr, "failed cells: %zu/%zu\n",
                         results.size() - passed, results.size());

        if (!outPath.empty()) {
            std::ofstream out(outPath);
            if (!out)
                fatal("cannot write " + outPath);
            writeSweepJson(out, cells, results, opts);
            std::printf("report: %s\n", outPath.c_str());
        }
        // Failed cells get their own exit code, distinct from every
        // xsim code: harnesses must be able to tell "the sweep
        // completed and some cells failed" from a driver death.
        return passed == results.size() ? 0 : 6;
    } catch (const SimError &error) {
        // The sweep-level deadline tripped: the batch stopped early
        // and the skipped cells count as failures.
        std::fprintf(stderr, "%s\n", error.what());
        return 6;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
