/**
 * @file
 * xsim — whole-system simulator driver.
 *
 *   xsim [options] program.s
 *     -c <config>   system configuration (default io+x); see -l
 *     -m <T|S|A>    execution mode (default S)
 *     -k <kernel>   run a registered kernel instead of a file
 *     -e            print the dynamic energy estimate
 *     -v            dump all statistics
 *     -t            trace execution (GPP commits + LPSU events)
 *     -l            list configurations and kernels
 *     --inject-seed <n>      enable fault injection with RNG seed n
 *     --inject-rate <p>      per-opportunity fault probability
 *                            (default 0.02 when a seed is given)
 *     --watchdog-cycles <n>  LPSU no-commit watchdog (0 disables)
 *
 * Exit codes: 0 clean, 1 user/config error, 2 golden-checker failure,
 * 3 watchdog / simulation-limit diagnosis (machine snapshot printed),
 * 4 simulator panic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/sim_error.h"
#include "energy/energy.h"
#include "kernels/kernel.h"

using namespace xloops;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ExecMode
parseMode(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "S")
        return ExecMode::Specialized;
    if (mode == "A")
        return ExecMode::Adaptive;
    fatal("mode must be T, S, or A");
}

void
listEverything()
{
    std::printf("configurations:\n");
    for (const auto &cfg : configs::mainGrid())
        std::printf("  %s\n", cfg.name.c_str());
    for (const char *name : {"ooo/4+x4+t", "ooo/4+x8", "ooo/4+x8+r",
                             "ooo/4+x8+r+m", "io+xf", "ooo/4+xf"})
        std::printf("  %s\n", name);
    std::printf("kernels:\n");
    for (const Kernel &k : kernelRegistry())
        std::printf("  %-16s (%s, suite %s)\n", k.name.c_str(),
                    k.patterns.c_str(), k.suite.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cfgName = "io+x";
    std::string modeName = "S";
    std::string kernelName;
    std::string path;
    bool energy = false;
    bool verbose = false;
    bool trace = false;
    u64 injectSeed = 0;
    double injectRate = 0.02;
    u64 watchdogCycles = 0;
    bool haveWatchdog = false;

    int checkerExit = 0;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal(arg + " needs an argument");
                return argv[++i];
            };
            if (arg == "-c")
                cfgName = next();
            else if (arg == "-m")
                modeName = next();
            else if (arg == "-k")
                kernelName = next();
            else if (arg == "-e")
                energy = true;
            else if (arg == "-v")
                verbose = true;
            else if (arg == "-t")
                trace = true;
            else if (arg == "--inject-seed")
                injectSeed = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--watchdog-cycles") {
                watchdogCycles = std::strtoull(next().c_str(), nullptr, 0);
                haveWatchdog = true;
            } else if (arg == "-l") {
                listEverything();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                // A typo'd option must not silently become a program
                // path (an --inject-seed typo would run un-injected).
                fatal("unknown option '" + arg + "'");
            } else {
                path = arg;
            }
        }

        SysConfig cfg = configs::byName(cfgName);
        const ExecMode mode = parseMode(modeName);
        if (mode != ExecMode::Traditional && !cfg.hasLpsu)
            fatal("mode " + modeName + " needs an LPSU (+x config)");
        if (injectSeed != 0)
            cfg.lpsu.faults = FaultConfig::uniform(injectSeed, injectRate);
        if (haveWatchdog)
            cfg.lpsu.watchdogCycles = watchdogCycles;

        SysResult result;
        if (!kernelName.empty()) {
            const KernelRun run =
                runKernel(kernelByName(kernelName), cfg, mode);
            result = run.result;
            std::printf("kernel %s on %s mode %s: %s\n",
                        kernelName.c_str(), cfg.name.c_str(),
                        modeName.c_str(),
                        run.passed ? "VALIDATED" : run.error.c_str());
            if (!run.passed)
                checkerExit = 2;
        } else {
            if (path.empty())
                fatal("usage: xsim [-c cfg] [-m T|S|A] "
                      "(program.s | -k kernel)");
            const Program prog = assemble(readFile(path));
            XloopsSystem sys(cfg);
            if (trace)
                sys.setTrace(&std::cout);
            sys.loadProgram(prog);
            result = sys.run(prog, mode);
        }

        std::printf("cycles            %llu\n",
                    static_cast<unsigned long long>(result.cycles));
        std::printf("gpp instructions  %llu\n",
                    static_cast<unsigned long long>(result.gppInsts));
        std::printf("lane instructions %llu\n",
                    static_cast<unsigned long long>(result.laneInsts));
        std::printf("xloops specialized %llu\n",
                    static_cast<unsigned long long>(
                        result.xloopsSpecialized));
        if (energy) {
            const EnergyModel model;
            const EnergyBreakdown e =
                model.dynamicEnergy(cfg, result.stats);
            std::printf("dynamic energy    %.1f nJ (gpp %.1f + lpsu "
                        "%.1f)\n",
                        e.totalNj(), e.gppNj, e.lpsuNj);
        }
        if (verbose)
            std::printf("%s", result.stats.dump("  ").c_str());
        return checkerExit;
    } catch (const SimError &error) {
        // Recoverable diagnosis (watchdog, cycle/inst limits): the
        // machine snapshot is part of the message.
        std::fprintf(stderr, "%s\n", error.what());
        return error.exitCode();
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 4;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
