/**
 * @file
 * xsim — whole-system simulator driver.
 *
 * Run `xsim --help` for usage; the help text is generated from the
 * same flag table the parser uses, so the two cannot drift apart.
 *
 * Observability outputs:
 *  - `--trace out.json` writes a Chrome trace_event JSON timeline
 *    (one track per LPSU lane plus GPP/LMU/CIB/MEM/SYS) viewable in
 *    Perfetto or chrome://tracing.
 *  - `--stats-json out.json` writes every counter, histogram, and
 *    per-loop profile as stable sorted JSON for downstream tooling.
 *
 * Robustness outputs:
 *  - `--lockstep` shadow-executes the golden functional model and
 *    aborts with the first architectural mismatch (exit 5).
 *  - `--checkpoint-every N` / `--restore f.json` deterministically
 *    checkpoint and resume a run ("xloops-ckpt-1").
 *  - `--capsule f.json` writes a self-contained replay capsule when
 *    the run dies; `--replay f.json` re-executes it, verifies the
 *    identical failure, and bisects to the first divergent iteration.
 *
 * Exit codes: 0 clean, 1 user/config error, 2 golden-checker failure,
 * 3 watchdog / simulation-limit diagnosis (machine snapshot printed),
 * 4 simulator panic, 5 lockstep divergence, 6 interrupted.
 *
 * SIGINT/SIGTERM request a cooperative stop: the run halts at the
 * next committed instruction, takes a final checkpoint when
 * --checkpoint-prefix is set (so the run is resumable with
 * --restore), writes a replay capsule (to --capsule, or
 * xsim-interrupt.capsule.json by default), and exits 6.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/log.h"
#include "common/loop_profile.h"
#include "common/sim_error.h"
#include "common/trace.h"
#include "energy/energy.h"
#include "kernels/kernel.h"
#include "cpu/threaded.h"
#include "system/capsule.h"
#include "system/report.h"
#include "system/sampling.h"
#include "system/sweep.h"

using namespace xloops;

namespace {

/** Set by the SIGINT/SIGTERM handlers; the run polls it at every
 *  committed instruction (see RunOptions::stopFlag). */
std::atomic<u32> interruptFlag{0};

void
onInterrupt(int)
{
    interruptFlag.store(static_cast<u32>(StopCause::Interrupted));
}

/** One command-line option: the usage text is rendered from this
 *  table, so `--help` always matches what the parser accepts. */
struct Flag
{
    const char *name;
    const char *arg;   ///< metavariable, or nullptr for boolean flags
    const char *help;
};

const Flag flagTable[] = {
    {"-c", "<config>", "system configuration (default io+x); see -l"},
    {"-m", "<T|S|A>", "execution mode (default S)"},
    {"-k", "<kernel>",
     "run a registered kernel instead of a file; a comma-separated "
     "list (or 'all') sweeps them across --jobs workers"},
    {"--jobs", "<n>",
     "worker threads for a -k kernel sweep (default: XLOOPS_JOBS or "
     "the hardware concurrency)"},
    {"-e", nullptr, "print the dynamic energy estimate"},
    {"-v", nullptr, "dump all statistics"},
    {"-t", nullptr, "stream a text trace (GPP commits + LPSU events)"},
    {"-l", nullptr, "list configurations and kernels"},
    {"--trace", "<file>",
     "write a Chrome trace_event JSON timeline (Perfetto-viewable)"},
    {"--stats-json", "<file>",
     "write counters, histograms, and per-loop profiles as JSON"},
    {"--profile", nullptr, "print the per-loop profile after the run"},
    {"--inject-seed", "<n>", "enable fault injection with RNG seed n"},
    {"--inject-rate", "<p>",
     "per-opportunity fault probability (default 0.02 with a seed)"},
    {"--inject-arch-rate", "<p>",
     "architectural hand-back corruption probability (needs a seed; "
     "exercises the lockstep checker)"},
    {"--watchdog-cycles", "<n>", "LPSU no-commit watchdog (0 disables)"},
    {"--lockstep", nullptr,
     "differential lockstep verification against the golden functional "
     "model (divergence = exit 5)"},
    {"--checkpoint-every", "<n>",
     "write a checkpoint every n committed GPP instructions"},
    {"--checkpoint-prefix", "<pfx>",
     "checkpoint file prefix (default ckpt => ckpt-<inst>.json)"},
    {"--restore", "<file>", "resume from a checkpoint file"},
    {"--sample-period", "<n>",
     "SMARTS sampled cycle simulation: instructions per sampling unit "
     "(0 = full simulation; requires -m T)"},
    {"--sample-window", "<n>",
     "measured instructions per detailed window (default 500)"},
    {"--sample-warmup", "<n>",
     "detailed warmup before each window (default: the window size)"},
    {"--sample-seed", "<n>", "seed for sampled window placement"},
    {"--capsule", "<file>",
     "write a self-contained replay capsule when the run dies"},
    {"--replay", "<file>",
     "re-execute a capsule, verify the identical failure, and bisect "
     "to the first divergent iteration"},
    {"--help", nullptr, "print this usage and exit"},
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: xsim [options] (program.s | -k kernel)\n");
    for (const Flag &f : flagTable) {
        std::string head = f.name;
        if (f.arg) {
            head += ' ';
            head += f.arg;
        }
        std::fprintf(out, "  %-22s %s\n", head.c_str(), f.help);
    }
    std::fprintf(out,
                 "exit codes: 0 clean, 1 user error, 2 checker "
                 "failure, 3 diagnosis,\n"
                 "            4 panic, 5 divergence, 6 interrupted "
                 "(SIGINT/SIGTERM: final\n"
                 "            checkpoint with --checkpoint-prefix, "
                 "capsule written)\n");
}

/** A contradictory or malformed command line: show what would have
 *  been legal, then fail (FatalError => exit 1). */
[[noreturn]] void
usageError(const std::string &msg)
{
    printUsage(stderr);
    fatal(msg);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ExecMode
parseMode(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "S")
        return ExecMode::Specialized;
    if (mode == "A")
        return ExecMode::Adaptive;
    fatal("mode must be T, S, or A");
}

void
listEverything()
{
    std::printf("configurations:\n");
    for (const auto &cfg : configs::mainGrid())
        std::printf("  %s\n", cfg.name.c_str());
    for (const char *name : {"ooo/4+x4+t", "ooo/4+x8", "ooo/4+x8+r",
                             "ooo/4+x8+r+m", "io+xf", "ooo/4+xf"})
        std::printf("  %s\n", name);
    std::printf("kernels:\n");
    for (const Kernel &k : kernelRegistry())
        std::printf("  %-16s (%s, suite %s)\n", k.name.c_str(),
                    k.patterns.c_str(), k.suite.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cfgName = "io+x";
    std::string modeName = "S";
    std::string kernelName;
    std::string path;
    std::string tracePath;
    std::string statsJsonPath;
    bool energy = false;
    bool verbose = false;
    bool trace = false;
    bool profile = false;
    unsigned jobsFlag = 0;
    u64 injectSeed = 0;
    double injectRate = 0.02;
    double archCorruptRate = 0.0;
    u64 watchdogCycles = 0;
    bool haveWatchdog = false;
    bool lockstep = false;
    u64 checkpointEvery = 0;
    std::string checkpointPrefix;
    std::string restorePath;
    std::string capsulePath;
    std::string replayPath;
    u64 samplePeriod = 0;
    bool haveSamplePeriod = false;
    u64 sampleWindow = 0;
    bool haveSampleWindow = false;
    u64 sampleWarmup = 0;
    bool haveSampleWarmup = false;
    u64 sampleSeed = 0;
    bool haveSampleSeed = false;

    // Live outside the try so the SimError catch can write a capsule.
    CapsuleContext capCtx;
    CapsuleRunSpec capSpec;

    int checkerExit = 0;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    // A flag with its argument missing is the same
                    // class of user error as an unknown flag: show
                    // what would have been legal, then fail.
                    printUsage(stderr);
                    fatal(arg + " needs an argument");
                }
                return argv[++i];
            };
            if (arg == "-c")
                cfgName = next();
            else if (arg == "-m")
                modeName = next();
            else if (arg == "-k")
                kernelName = next();
            else if (arg == "-e")
                energy = true;
            else if (arg == "-v")
                verbose = true;
            else if (arg == "-t")
                trace = true;
            else if (arg == "--trace")
                tracePath = next();
            else if (arg == "--stats-json")
                statsJsonPath = next();
            else if (arg == "--profile")
                profile = true;
            else if (arg == "--jobs")
                jobsFlag = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            else if (arg == "--inject-seed")
                injectSeed = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--inject-arch-rate")
                archCorruptRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--lockstep")
                lockstep = true;
            else if (arg == "--checkpoint-every")
                checkpointEvery = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--checkpoint-prefix")
                checkpointPrefix = next();
            else if (arg == "--restore")
                restorePath = next();
            else if (arg == "--sample-period") {
                samplePeriod = std::strtoull(next().c_str(), nullptr, 0);
                haveSamplePeriod = true;
            } else if (arg == "--sample-window") {
                sampleWindow = std::strtoull(next().c_str(), nullptr, 0);
                haveSampleWindow = true;
            } else if (arg == "--sample-warmup") {
                sampleWarmup = std::strtoull(next().c_str(), nullptr, 0);
                haveSampleWarmup = true;
            } else if (arg == "--sample-seed") {
                sampleSeed = std::strtoull(next().c_str(), nullptr, 0);
                haveSampleSeed = true;
            }
            else if (arg == "--capsule")
                capsulePath = next();
            else if (arg == "--replay")
                replayPath = next();
            else if (arg == "--watchdog-cycles") {
                watchdogCycles = std::strtoull(next().c_str(), nullptr, 0);
                haveWatchdog = true;
            } else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else if (arg == "-l") {
                listEverything();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                // A typo'd option must not silently become a program
                // path (an --inject-seed typo would run un-injected).
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            } else {
                path = arg;
            }
        }

        // --replay rebuilds the entire run from the capsule; any
        // other flag on the same command line would be silently
        // ignored, which reads like it took effect. Refuse instead.
        if (!replayPath.empty() && argc != 3)
            usageError("--replay takes only the capsule file; drop "
                       "the other options");
        if (!replayPath.empty())
            return replayCapsule(replayPath);

        // Orphan sampling knobs: without --sample-period they would
        // silently do nothing.
        if (!haveSamplePeriod &&
            (haveSampleWindow || haveSampleWarmup || haveSampleSeed)) {
            usageError("--sample-window/--sample-warmup/--sample-seed "
                       "need --sample-period");
        }

        // Sampled cycle simulation: threaded functional fast-forward
        // with periodic cycle-accurate windows; --stats-json then
        // writes the "xloops-sample-1" report. Architectural state is
        // exact (every instruction retires), so kernel validation
        // still applies; only cycle counts are estimated.
        if (samplePeriod != 0) {
            if (modeName != "T") {
                usageError("sampled simulation models traditional "
                           "execution; use -m T");
            }
            if (lockstep || checkpointEvery != 0 || trace ||
                !tracePath.empty() || !capsulePath.empty() ||
                injectSeed != 0 || haveWatchdog) {
                usageError("sampled runs support only -c, -m T, "
                           "-k/<program>, --sample-*, --restore, "
                           "--jobs, and --stats-json");
            }
            if (kernelName == "all" ||
                kernelName.find(',') != std::string::npos)
                usageError("sampled runs take a single kernel");

            SampleOptions sopts;
            sopts.period = samplePeriod;
            if (sampleWindow != 0)
                sopts.window = sampleWindow;
            if (haveSampleWarmup)
                sopts.warmup = sampleWarmup;
            sopts.seed = sampleSeed;

            const SysConfig sampleCfg = configs::byName(cfgName);
            const Kernel *kernel =
                kernelName.empty() ? nullptr : &kernelByName(kernelName);
            if (kernel == nullptr && path.empty()) {
                printUsage(stderr);
                fatal("no program given");
            }
            const Program prog =
                assemble(kernel ? kernel->source : readFile(path));

            SampledSimulation samp(sampleCfg, sopts);
            samp.loadProgram(prog);
            if (kernel && kernel->setup)
                kernel->setup(samp.memory(), prog);
            if (!restorePath.empty())
                samp.restore(readFile(restorePath), prog);
            const SampleResult r = samp.run(prog);

            if (kernel) {
                // Validate against the serial golden model exactly as
                // a full run would.
                MainMemory golden;
                prog.loadInto(golden);
                if (kernel->setup)
                    kernel->setup(golden, prog);
                ThreadedExecutor goldenExec(golden);
                goldenExec.run(prog);
                bool passed = true;
                std::string why;
                if (kernel->deterministic) {
                    for (const auto &[symbol, words] : kernel->outputs) {
                        const Addr base = prog.symbol(symbol);
                        for (unsigned i = 0; i < words && passed; i++) {
                            if (samp.memory().readWord(base + 4 * i) !=
                                golden.readWord(base + 4 * i)) {
                                passed = false;
                                why = strf(symbol, "[", i,
                                           "] diverged from the serial "
                                           "golden run");
                            }
                        }
                    }
                }
                if (passed && kernel->check &&
                    !kernel->check(samp.memory(), prog, why))
                    passed = false;
                std::printf("sampled kernel %s on %s mode T: %s\n",
                            kernelName.c_str(), sampleCfg.name.c_str(),
                            passed ? "VALIDATED" : why.c_str());
                if (!passed)
                    checkerExit = 2;
            }

            std::printf("total insts       %llu (ff %llu, warmup %llu, "
                        "measured %llu)\n",
                        static_cast<unsigned long long>(r.totalInsts),
                        static_cast<unsigned long long>(r.ffInsts),
                        static_cast<unsigned long long>(r.warmupInsts),
                        static_cast<unsigned long long>(r.measuredInsts));
            std::printf("windows           %llu (phase %llu)\n",
                        static_cast<unsigned long long>(r.windows),
                        static_cast<unsigned long long>(r.phase));
            std::printf("cpi estimate      %.6f +/- %.6f\n", r.cpiEst,
                        r.cpiHalfWidth);
            std::printf("est cycles        %llu\n",
                        static_cast<unsigned long long>(r.estCycles));

            if (!statsJsonPath.empty()) {
                std::ofstream out(statsJsonPath);
                if (!out)
                    fatal("cannot write " + statsJsonPath);
                JsonWriter w(out, /*pretty=*/true);
                samp.writeJson(w, r);
                out << "\n";
                std::printf("stats: %s\n", statsJsonPath.c_str());
            }
            return checkerExit;
        }

        // Multi-kernel sweep mode: "-k k1,k2,..." or "-k all" runs
        // every named kernel on (config, mode) across --jobs workers
        // through the sweep harness; --stats-json then writes the
        // merged "xloops-sweep-1" report instead of a single-run
        // stats document.
        if (kernelName == "all" ||
            kernelName.find(',') != std::string::npos) {
            if (lockstep || checkpointEvery || !restorePath.empty() ||
                !capsulePath.empty() || !tracePath.empty() || trace) {
                fatal("kernel sweeps support only -c, -m, --jobs, "
                      "--inject-seed/--inject-rate, and --stats-json");
            }
            const SysConfig sweepCfg = configs::byName(cfgName);
            const ExecMode sweepMode = parseMode(modeName);
            std::vector<std::string> kernels;
            if (kernelName == "all") {
                kernels = tableIIKernelNames();
            } else {
                std::istringstream list(kernelName);
                std::string item;
                while (std::getline(list, item, ','))
                    if (!item.empty())
                        kernels.push_back(item);
                for (const std::string &k : kernels)
                    kernelByName(k);  // fail fast on typos
            }
            SweepOptions sopts;
            sopts.jobs = jobsFlag;
            sopts.injectSeed = injectSeed;
            sopts.injectRate = injectSeed ? injectRate : 0.0;
            const std::vector<SweepCell> cells =
                crossProduct(kernels, {sweepCfg}, {sweepMode});
            if (cells.empty())
                fatal("mode " + modeName + " needs an LPSU (+x config)");
            const std::vector<SweepCellResult> results =
                runSweep(cells, sopts);
            size_t passed = 0;
            for (size_t i = 0; i < results.size(); i++) {
                std::printf("kernel %s on %s mode %s: %s\n",
                            cells[i].kernel.c_str(),
                            sweepCfg.name.c_str(), modeName.c_str(),
                            results[i].passed
                                ? "VALIDATED"
                                : results[i].error.c_str());
                passed += results[i].passed ? 1 : 0;
            }
            std::printf("sweep: %zu/%zu cells validated\n", passed,
                        results.size());
            if (!statsJsonPath.empty()) {
                std::ofstream out(statsJsonPath);
                if (!out)
                    fatal("cannot write " + statsJsonPath);
                writeSweepJson(out, cells, results, sopts);
                std::printf("sweep report: %s\n", statsJsonPath.c_str());
            }
            return passed == results.size() ? 0 : 2;
        }

        SysConfig cfg = configs::byName(cfgName);
        const ExecMode mode = parseMode(modeName);
        if (mode != ExecMode::Traditional && !cfg.hasLpsu)
            fatal("mode " + modeName + " needs an LPSU (+x config)");
        if (archCorruptRate > 0.0 && injectSeed == 0)
            fatal("--inject-arch-rate needs --inject-seed");
        if (injectSeed != 0) {
            cfg.lpsu.faults = FaultConfig::uniform(injectSeed, injectRate);
            cfg.lpsu.faults.archCorruptRate = archCorruptRate;
        }
        if (haveWatchdog)
            cfg.lpsu.watchdogCycles = watchdogCycles;

        // From here on a SIGINT/SIGTERM stops the run cooperatively
        // instead of killing the process: a final checkpoint (when a
        // prefix is configured) plus an interrupt capsule beat a
        // half-written stats file.
        struct sigaction sa{};
        sa.sa_handler = onInterrupt;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);

        RunOptions ropts;
        ropts.stopFlag = &interruptFlag;
        ropts.lockstep = lockstep;
        ropts.checkpointEvery = checkpointEvery;
        ropts.checkpointPrefix = checkpointEvery
                                     ? (checkpointPrefix.empty()
                                            ? std::string("ckpt")
                                            : checkpointPrefix)
                                     : checkpointPrefix;
        ropts.restorePath = restorePath;

        capSpec.configName = cfgName;
        capSpec.modeName = modeName;
        capSpec.workload = kernelName.empty() ? path : kernelName;
        capSpec.lockstep = lockstep;
        capSpec.injectSeed = injectSeed;
        capSpec.injectRate = injectSeed ? injectRate : 0.0;
        capSpec.archCorruptRate = injectSeed ? archCorruptRate : 0.0;
        capSpec.haveWatchdog = haveWatchdog;
        capSpec.watchdogCycles = watchdogCycles;

        Tracer tracer;
        tracer.enable(!tracePath.empty());
        LoopProfiler profiler;
        Tracer *tr = tracePath.empty() ? nullptr : &tracer;
        LoopProfiler *prof =
            (!statsJsonPath.empty() || profile) ? &profiler : nullptr;

        SysResult result;
        if (!kernelName.empty()) {
            RunHooks hooks;
            hooks.tracer = tr;
            hooks.profiler = prof;
            hooks.traceText = trace ? &std::cout : nullptr;
            hooks.runOptions = &ropts;
            // Context is captured even without --capsule so an
            // interrupt can still produce its default capsule.
            hooks.capsule = &capCtx;
            const KernelRun run = runKernel(kernelByName(kernelName), cfg,
                                            mode, false, hooks);
            result = run.result;
            std::printf("kernel %s on %s mode %s: %s\n",
                        kernelName.c_str(), cfg.name.c_str(),
                        modeName.c_str(),
                        run.passed ? "VALIDATED" : run.error.c_str());
            if (!run.passed)
                checkerExit = 2;
        } else {
            if (path.empty()) {
                printUsage(stderr);
                fatal("no program given");
            }
            const Program prog = assemble(readFile(path));
            XloopsSystem sys(cfg);
            if (trace)
                sys.setTrace(&std::cout);
            sys.setObserver(tr, prof);
            sys.loadProgram(prog);
            capCtx.valid = true;
            capCtx.program = prog;
            capCtx.initialMem.copyFrom(sys.memory());
            try {
                result = sys.run(prog, mode, 500'000'000, ropts);
            } catch (...) {
                capCtx.lastCheckpoint = sys.lastCheckpoint();
                capCtx.lastCheckpointInst = sys.lastCheckpointInst();
                throw;
            }
            capCtx.lastCheckpoint = sys.lastCheckpoint();
            capCtx.lastCheckpointInst = sys.lastCheckpointInst();
        }

        std::printf("cycles            %llu\n",
                    static_cast<unsigned long long>(result.cycles));
        std::printf("gpp instructions  %llu\n",
                    static_cast<unsigned long long>(result.gppInsts));
        std::printf("lane instructions %llu\n",
                    static_cast<unsigned long long>(result.laneInsts));
        std::printf("xloops specialized %llu\n",
                    static_cast<unsigned long long>(
                        result.xloopsSpecialized));
        if (energy) {
            const EnergyModel model;
            const EnergyBreakdown e =
                model.dynamicEnergy(cfg, result.stats);
            std::printf("dynamic energy    %.1f nJ (gpp %.1f + lpsu "
                        "%.1f)\n",
                        e.totalNj(), e.gppNj, e.lpsuNj);
        }
        if (verbose)
            std::printf("%s", result.stats.dump("  ").c_str());
        if (profile)
            std::printf("%s", profiler.dump().c_str());

        if (!tracePath.empty()) {
            std::ofstream out(tracePath);
            if (!out)
                fatal("cannot write " + tracePath);
            tracer.writeChromeJson(out);
            std::printf("trace: %llu events -> %s\n",
                        static_cast<unsigned long long>(
                            tracer.totalEmitted()),
                        tracePath.c_str());
        }
        if (!statsJsonPath.empty()) {
            writeStatsJsonFile(statsJsonPath, cfgName, modeName,
                               kernelName.empty() ? path : kernelName,
                               result, profiler, tr);
            std::printf("stats: %s\n", statsJsonPath.c_str());
        }
        return checkerExit;
    } catch (const SimError &error) {
        // Recoverable diagnosis (watchdog, cycle/inst limits,
        // lockstep divergence): the machine snapshot is part of the
        // message, and the full run context becomes a replay capsule
        // when one was requested.
        std::fprintf(stderr, "%s\n", error.what());
        if (capsulePath.empty() &&
            error.kind() == SimErrorKind::Interrupted)
            capsulePath = "xsim-interrupt.capsule.json";
        if (!capsulePath.empty() && capCtx.valid) {
            try {
                writeCapsule(capsulePath, capSpec, capCtx, error);
                std::fprintf(stderr, "capsule: %s\n",
                             capsulePath.c_str());
            } catch (const FatalError &werr) {
                std::fprintf(stderr, "capsule write failed: %s\n",
                             werr.what());
            }
        }
        return error.exitCode();
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 4;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
