/**
 * @file
 * xsim — whole-system simulator driver.
 *
 * Run `xsim --help` for usage; the help text is generated from the
 * same flag table the parser uses, so the two cannot drift apart.
 *
 * Observability outputs:
 *  - `--trace out.json` writes a Chrome trace_event JSON timeline
 *    (one track per LPSU lane plus GPP/LMU/CIB/MEM/SYS) viewable in
 *    Perfetto or chrome://tracing.
 *  - `--stats-json out.json` writes every counter, histogram, and
 *    per-loop profile as stable sorted JSON for downstream tooling.
 *
 * Exit codes: 0 clean, 1 user/config error, 2 golden-checker failure,
 * 3 watchdog / simulation-limit diagnosis (machine snapshot printed),
 * 4 simulator panic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/log.h"
#include "common/loop_profile.h"
#include "common/sim_error.h"
#include "common/trace.h"
#include "energy/energy.h"
#include "kernels/kernel.h"

using namespace xloops;

namespace {

/** One command-line option: the usage text is rendered from this
 *  table, so `--help` always matches what the parser accepts. */
struct Flag
{
    const char *name;
    const char *arg;   ///< metavariable, or nullptr for boolean flags
    const char *help;
};

const Flag flagTable[] = {
    {"-c", "<config>", "system configuration (default io+x); see -l"},
    {"-m", "<T|S|A>", "execution mode (default S)"},
    {"-k", "<kernel>", "run a registered kernel instead of a file"},
    {"-e", nullptr, "print the dynamic energy estimate"},
    {"-v", nullptr, "dump all statistics"},
    {"-t", nullptr, "stream a text trace (GPP commits + LPSU events)"},
    {"-l", nullptr, "list configurations and kernels"},
    {"--trace", "<file>",
     "write a Chrome trace_event JSON timeline (Perfetto-viewable)"},
    {"--stats-json", "<file>",
     "write counters, histograms, and per-loop profiles as JSON"},
    {"--profile", nullptr, "print the per-loop profile after the run"},
    {"--inject-seed", "<n>", "enable fault injection with RNG seed n"},
    {"--inject-rate", "<p>",
     "per-opportunity fault probability (default 0.02 with a seed)"},
    {"--watchdog-cycles", "<n>", "LPSU no-commit watchdog (0 disables)"},
    {"--help", nullptr, "print this usage and exit"},
};

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "usage: xsim [options] (program.s | -k kernel)\n");
    for (const Flag &f : flagTable) {
        std::string head = f.name;
        if (f.arg) {
            head += ' ';
            head += f.arg;
        }
        std::fprintf(out, "  %-22s %s\n", head.c_str(), f.help);
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ExecMode
parseMode(const std::string &mode)
{
    if (mode == "T")
        return ExecMode::Traditional;
    if (mode == "S")
        return ExecMode::Specialized;
    if (mode == "A")
        return ExecMode::Adaptive;
    fatal("mode must be T, S, or A");
}

void
listEverything()
{
    std::printf("configurations:\n");
    for (const auto &cfg : configs::mainGrid())
        std::printf("  %s\n", cfg.name.c_str());
    for (const char *name : {"ooo/4+x4+t", "ooo/4+x8", "ooo/4+x8+r",
                             "ooo/4+x8+r+m", "io+xf", "ooo/4+xf"})
        std::printf("  %s\n", name);
    std::printf("kernels:\n");
    for (const Kernel &k : kernelRegistry())
        std::printf("  %-16s (%s, suite %s)\n", k.name.c_str(),
                    k.patterns.c_str(), k.suite.c_str());
}

void
writeStatsJson(const std::string &path, const std::string &cfgName,
               const std::string &modeName, const std::string &workload,
               const SysResult &result, const LoopProfiler &profiler,
               const Tracer *tracer)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("schema", "xloops-stats-1");
    w.field("config", cfgName);
    w.field("mode", modeName);
    w.field("workload", workload);
    w.key("result").beginObject();
    w.field("cycles", result.cycles);
    w.field("gpp_insts", result.gppInsts);
    w.field("lane_insts", result.laneInsts);
    w.field("xloops_specialized", result.xloopsSpecialized);
    w.endObject();
    result.stats.writeJson(w);
    profiler.writeJson(w);
    if (tracer) {
        w.key("trace").beginObject();
        w.field("total_emitted", tracer->totalEmitted());
        w.field("dropped", tracer->dropped());
        w.endObject();
    }
    w.endObject();
    out << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cfgName = "io+x";
    std::string modeName = "S";
    std::string kernelName;
    std::string path;
    std::string tracePath;
    std::string statsJsonPath;
    bool energy = false;
    bool verbose = false;
    bool trace = false;
    bool profile = false;
    u64 injectSeed = 0;
    double injectRate = 0.02;
    u64 watchdogCycles = 0;
    bool haveWatchdog = false;

    int checkerExit = 0;
    try {
        for (int i = 1; i < argc; i++) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal(arg + " needs an argument");
                return argv[++i];
            };
            if (arg == "-c")
                cfgName = next();
            else if (arg == "-m")
                modeName = next();
            else if (arg == "-k")
                kernelName = next();
            else if (arg == "-e")
                energy = true;
            else if (arg == "-v")
                verbose = true;
            else if (arg == "-t")
                trace = true;
            else if (arg == "--trace")
                tracePath = next();
            else if (arg == "--stats-json")
                statsJsonPath = next();
            else if (arg == "--profile")
                profile = true;
            else if (arg == "--inject-seed")
                injectSeed = std::strtoull(next().c_str(), nullptr, 0);
            else if (arg == "--inject-rate")
                injectRate = std::strtod(next().c_str(), nullptr);
            else if (arg == "--watchdog-cycles") {
                watchdogCycles = std::strtoull(next().c_str(), nullptr, 0);
                haveWatchdog = true;
            } else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else if (arg == "-l") {
                listEverything();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                // A typo'd option must not silently become a program
                // path (an --inject-seed typo would run un-injected).
                printUsage(stderr);
                fatal("unknown option '" + arg + "'");
            } else {
                path = arg;
            }
        }

        SysConfig cfg = configs::byName(cfgName);
        const ExecMode mode = parseMode(modeName);
        if (mode != ExecMode::Traditional && !cfg.hasLpsu)
            fatal("mode " + modeName + " needs an LPSU (+x config)");
        if (injectSeed != 0)
            cfg.lpsu.faults = FaultConfig::uniform(injectSeed, injectRate);
        if (haveWatchdog)
            cfg.lpsu.watchdogCycles = watchdogCycles;

        Tracer tracer;
        tracer.enable(!tracePath.empty());
        LoopProfiler profiler;
        Tracer *tr = tracePath.empty() ? nullptr : &tracer;
        LoopProfiler *prof =
            (!statsJsonPath.empty() || profile) ? &profiler : nullptr;

        SysResult result;
        if (!kernelName.empty()) {
            RunHooks hooks;
            hooks.tracer = tr;
            hooks.profiler = prof;
            hooks.traceText = trace ? &std::cout : nullptr;
            const KernelRun run = runKernel(kernelByName(kernelName), cfg,
                                            mode, false, hooks);
            result = run.result;
            std::printf("kernel %s on %s mode %s: %s\n",
                        kernelName.c_str(), cfg.name.c_str(),
                        modeName.c_str(),
                        run.passed ? "VALIDATED" : run.error.c_str());
            if (!run.passed)
                checkerExit = 2;
        } else {
            if (path.empty()) {
                printUsage(stderr);
                fatal("no program given");
            }
            const Program prog = assemble(readFile(path));
            XloopsSystem sys(cfg);
            if (trace)
                sys.setTrace(&std::cout);
            sys.setObserver(tr, prof);
            sys.loadProgram(prog);
            result = sys.run(prog, mode);
        }

        std::printf("cycles            %llu\n",
                    static_cast<unsigned long long>(result.cycles));
        std::printf("gpp instructions  %llu\n",
                    static_cast<unsigned long long>(result.gppInsts));
        std::printf("lane instructions %llu\n",
                    static_cast<unsigned long long>(result.laneInsts));
        std::printf("xloops specialized %llu\n",
                    static_cast<unsigned long long>(
                        result.xloopsSpecialized));
        if (energy) {
            const EnergyModel model;
            const EnergyBreakdown e =
                model.dynamicEnergy(cfg, result.stats);
            std::printf("dynamic energy    %.1f nJ (gpp %.1f + lpsu "
                        "%.1f)\n",
                        e.totalNj(), e.gppNj, e.lpsuNj);
        }
        if (verbose)
            std::printf("%s", result.stats.dump("  ").c_str());
        if (profile)
            std::printf("%s", profiler.dump().c_str());

        if (!tracePath.empty()) {
            std::ofstream out(tracePath);
            if (!out)
                fatal("cannot write " + tracePath);
            tracer.writeChromeJson(out);
            std::printf("trace: %llu events -> %s\n",
                        static_cast<unsigned long long>(
                            tracer.totalEmitted()),
                        tracePath.c_str());
        }
        if (!statsJsonPath.empty()) {
            writeStatsJson(statsJsonPath, cfgName, modeName,
                           kernelName.empty() ? path : kernelName, result,
                           profiler, tr);
            std::printf("stats: %s\n", statsJsonPath.c_str());
        }
        return checkerExit;
    } catch (const SimError &error) {
        // Recoverable diagnosis (watchdog, cycle/inst limits): the
        // machine snapshot is part of the message.
        std::fprintf(stderr, "%s\n", error.what());
        return error.exitCode();
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 4;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
