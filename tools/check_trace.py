#!/usr/bin/env python3
"""Validate xsim observability artifacts.

Checks that `xsim --trace` output is well-formed Chrome trace_event
JSON (loadable by Perfetto / chrome://tracing) and that `xsim
--stats-json` output matches the xloops-stats-1 schema, including the
per-loop stall-breakdown invariant. Used by CI and the cli_check_trace
ctest; exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    thread_names = {}
    for ev in events:
        for key in ("ph", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event missing '{key}': {ev}")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") != "thread_name":
                fail(f"{path}: unexpected metadata event: {ev}")
            thread_names[ev["tid"]] = ev["args"]["name"]
            continue
        if "ts" not in ev or "name" not in ev:
            fail(f"{path}: event missing ts/name: {ev}")
        if ph == "X":
            if "dur" not in ev or ev["dur"] <= 0:
                fail(f"{path}: complete event without positive dur: {ev}")
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(f"{path}: instant event without scope: {ev}")
        else:
            fail(f"{path}: unexpected phase '{ph}'")
        if ev["tid"] not in thread_names:
            fail(f"{path}: event on unnamed track tid={ev['tid']}")

    named = set(thread_names.values())
    for required in ("GPP", "LMU", "CIB", "lane 0"):
        if required not in named:
            fail(f"{path}: missing '{required}' track (have {sorted(named)})")

    other = doc.get("otherData", {})
    if "total_events" not in other or "dropped_events" not in other:
        fail(f"{path}: otherData missing event accounting")

    n = sum(1 for ev in events if ev["ph"] != "M")
    print(f"check_trace: {path}: {n} events on {len(named)} tracks OK")


def check_stats(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "xloops-stats-1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    for key in ("config", "mode", "workload", "result", "counters",
                "histograms", "loops"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    result = doc["result"]
    for key in ("cycles", "gpp_insts", "lane_insts", "xloops_specialized"):
        if not isinstance(result.get(key), int):
            fail(f"{path}: result.{key} missing or not an integer")

    for name, hist in doc["histograms"].items():
        for key in ("count", "min", "max", "mean", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if sum(hist["buckets"]) != hist["count"]:
            fail(f"{path}: histogram '{name}' buckets do not sum to count")

    for pc, loop in doc["loops"].items():
        stalls = loop.get("stall_cycles")
        if not isinstance(stalls, dict):
            fail(f"{path}: loop {pc} missing stall_cycles")
        if loop["engine_cycles"] > 0:
            # Every lane-cycle is attributed exactly once; the lane
            # count is engine-config dependent, so check divisibility
            # and exact per-lane balance.
            attributed = loop["busy_cycles"] + sum(stalls.values())
            if attributed % loop["engine_cycles"] != 0:
                fail(f"{path}: loop {pc}: busy+stall ({attributed}) is "
                     f"not a lane-multiple of engine cycles "
                     f"({loop['engine_cycles']})")

    print(f"check_trace: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['loops'])} loops OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace_event JSON from --trace")
    ap.add_argument("--stats", help="stats JSON from --stats-json")
    args = ap.parse_args()
    if not args.trace and not args.stats:
        ap.error("give --trace and/or --stats")
    if args.trace:
        check_trace(args.trace)
    if args.stats:
        check_stats(args.stats)


if __name__ == "__main__":
    main()
