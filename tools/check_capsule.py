#!/usr/bin/env python3
"""Validate xsim divergence/replay capsules.

Checks that a capsule written by `xsim --capsule` (or the capsule
tests) matches the xloops-capsule-1 schema: run identity, fault spec,
error payload (with the divergence first-mismatch record when the
error is a lockstep divergence), the embedded program image and
initial memory, and the embedded xloops-ckpt-1 checkpoint's
consistency with the capsule's own program hash. Used by CI and the
cli_check_capsule ctest; exits non-zero with a message on the first
violation.
"""

import argparse
import json
import sys

DIVERGENCE_SITES = ("xloop-entry", "xloop-exit", "control",
                    "post-inst", "halt")

# SimError exit-code taxonomy (see src/common/sim_error.h): capsules
# are only written for SimErrors, so 3 (recoverable diagnosis),
# 5 (lockstep divergence), or 6 (interrupted by SIGINT/SIGTERM or a
# service-level cancel).
CAPSULE_EXIT_CODES = (3, 5, 6)


def fail(msg):
    print(f"check_capsule: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(doc, keys, ctx):
    for key in keys:
        if key not in doc:
            fail(f"{ctx}: missing key '{key}'")


def check_hex(value, ctx):
    if not isinstance(value, str) or not value.startswith("0x"):
        fail(f"{ctx}: expected a '0x...' string, got {value!r}")
    try:
        int(value, 16)
    except ValueError:
        fail(f"{ctx}: not a hex literal: {value!r}")


def check_divergence(div, ctx):
    require(div, ("site", "pc", "inst_index", "iteration",
                  "reg_mismatch", "reg", "main_value", "shadow_value",
                  "mem_mismatch", "mem_addr", "main_byte",
                  "shadow_byte"), ctx)
    if div["site"] not in DIVERGENCE_SITES:
        fail(f"{ctx}: unknown site {div['site']!r}")
    check_hex(div["pc"], f"{ctx}.pc")
    check_hex(div["mem_addr"], f"{ctx}.mem_addr")
    if not (div["reg_mismatch"] or div["mem_mismatch"]):
        fail(f"{ctx}: records neither a register nor a memory mismatch")
    if div["reg_mismatch"]:
        if not 1 <= div["reg"] <= 31:
            fail(f"{ctx}: r{div['reg']} is not a divergeable register")
        if div["main_value"] == div["shadow_value"]:
            fail(f"{ctx}: register mismatch with equal values")


def check_error(err):
    require(err, ("kind", "exit_code", "message", "inst_count"), "error")
    if err["exit_code"] not in CAPSULE_EXIT_CODES:
        fail(f"error.exit_code {err['exit_code']} is not a SimError code")
    if (err["kind"] == "divergence") != ("divergence" in err):
        fail("error.kind and the divergence payload disagree")
    if err["exit_code"] == 5 and err["kind"] != "divergence":
        fail(f"exit code 5 with kind {err['kind']!r}")
    if "divergence" in err:
        check_divergence(err["divergence"], "error.divergence")


def check_capsule(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "xloops-capsule-1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    require(doc, ("config", "mode", "workload", "max_insts", "lockstep",
                  "faults", "error", "program_hash", "program",
                  "initial_mem", "checkpoint_inst"), path)
    if doc["mode"] not in ("T", "S", "A"):
        fail(f"{path}: unknown execution mode {doc['mode']!r}")

    require(doc["faults"], ("seed", "rate_bits", "arch_rate_bits",
                            "have_watchdog", "watchdog_cycles"), "faults")
    check_hex(doc["faults"]["rate_bits"], "faults.rate_bits")
    check_hex(doc["faults"]["arch_rate_bits"], "faults.arch_rate_bits")

    check_error(doc["error"])

    check_hex(doc["program_hash"], "program_hash")
    prog = doc["program"]
    require(prog, ("text_base", "entry", "text", "data", "symbols"),
            "program")
    text = prog["text"]
    if not isinstance(text, str) or not text:
        fail("program.text is empty")
    if len(text) % 8 != 0:
        fail("program.text is not whole 32-bit words")
    try:
        int(text, 16)
    except ValueError:
        fail("program.text is not a hex string")

    mem = doc["initial_mem"]
    require(mem, ("digest", "pages"), "initial_mem")
    check_hex(mem["digest"], "initial_mem.digest")
    if not mem["pages"]:
        fail("initial_mem has no pages (no program image?)")
    for addr in mem["pages"]:
        check_hex(addr, "initial_mem.pages key")

    if "checkpoint" in doc:
        ckpt = doc["checkpoint"]
        if ckpt.get("schema") != "xloops-ckpt-1":
            fail(f"embedded checkpoint schema is {ckpt.get('schema')!r}")
        require(ckpt, ("config", "mode", "program_hash", "inst_count",
                       "pc", "regs", "mem"), "checkpoint")
        for key in ("config", "mode", "program_hash"):
            if ckpt[key] != doc[key]:
                fail(f"checkpoint.{key} ({ckpt[key]!r}) does not match "
                     f"the capsule's ({doc[key]!r})")
        if ckpt["inst_count"] != doc["checkpoint_inst"]:
            fail("checkpoint.inst_count does not match checkpoint_inst")
        # A diagnosis/divergence capsule embeds the nearest checkpoint
        # *strictly prior* to the failure so replay can run into it. A
        # cooperative stop (interrupted/deadline/cancelled) instead
        # embeds the final checkpoint taken at the exact stop
        # instruction — the resume point — so equality is correct.
        if doc["error"]["kind"] in ("interrupted", "deadline",
                                    "cancelled"):
            if ckpt["inst_count"] > doc["error"]["inst_count"]:
                fail("embedded checkpoint is past the stop point")
        elif ckpt["inst_count"] >= doc["error"]["inst_count"]:
            fail("embedded checkpoint is not prior to the failure")
    elif doc["checkpoint_inst"] != 0:
        fail("checkpoint_inst set but no checkpoint embedded")

    div = " (divergence)" if "divergence" in doc["error"] else ""
    print(f"check_capsule: {path}: {doc['workload']} on {doc['config']}"
          f" mode {doc['mode']}, {doc['error']['kind']} after "
          f"{doc['error']['inst_count']} insts{div} OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("capsule", help="capsule JSON from xsim --capsule")
    args = ap.parse_args()
    check_capsule(args.capsule)


if __name__ == "__main__":
    main()
