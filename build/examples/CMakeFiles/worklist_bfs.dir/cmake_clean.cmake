file(REMOVE_RECURSE
  "CMakeFiles/worklist_bfs.dir/worklist_bfs.cpp.o"
  "CMakeFiles/worklist_bfs.dir/worklist_bfs.cpp.o.d"
  "worklist_bfs"
  "worklist_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worklist_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
