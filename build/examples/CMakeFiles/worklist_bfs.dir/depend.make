# Empty dependencies file for worklist_bfs.
# This may be replaced when dependencies are built.
