# Empty dependencies file for adaptive_migration.
# This may be replaced when dependencies are built.
