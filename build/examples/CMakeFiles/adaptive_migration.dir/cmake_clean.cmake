file(REMOVE_RECURSE
  "CMakeFiles/adaptive_migration.dir/adaptive_migration.cpp.o"
  "CMakeFiles/adaptive_migration.dir/adaptive_migration.cpp.o.d"
  "adaptive_migration"
  "adaptive_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
