# Empty dependencies file for xloops.
# This may be replaced when dependencies are built.
