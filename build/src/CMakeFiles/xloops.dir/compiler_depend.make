# Empty compiler generated dependencies file for xloops.
# This may be replaced when dependencies are built.
