
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/assembler.cc" "src/CMakeFiles/xloops.dir/asm/assembler.cc.o" "gcc" "src/CMakeFiles/xloops.dir/asm/assembler.cc.o.d"
  "/root/repo/src/asm/program.cc" "src/CMakeFiles/xloops.dir/asm/program.cc.o" "gcc" "src/CMakeFiles/xloops.dir/asm/program.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/xloops.dir/common/log.cc.o" "gcc" "src/CMakeFiles/xloops.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/xloops.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/xloops.dir/common/stats.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/CMakeFiles/xloops.dir/compiler/codegen.cc.o" "gcc" "src/CMakeFiles/xloops.dir/compiler/codegen.cc.o.d"
  "/root/repo/src/compiler/dep_analysis.cc" "src/CMakeFiles/xloops.dir/compiler/dep_analysis.cc.o" "gcc" "src/CMakeFiles/xloops.dir/compiler/dep_analysis.cc.o.d"
  "/root/repo/src/compiler/expr.cc" "src/CMakeFiles/xloops.dir/compiler/expr.cc.o" "gcc" "src/CMakeFiles/xloops.dir/compiler/expr.cc.o.d"
  "/root/repo/src/compiler/ir.cc" "src/CMakeFiles/xloops.dir/compiler/ir.cc.o" "gcc" "src/CMakeFiles/xloops.dir/compiler/ir.cc.o.d"
  "/root/repo/src/compiler/pattern_select.cc" "src/CMakeFiles/xloops.dir/compiler/pattern_select.cc.o" "gcc" "src/CMakeFiles/xloops.dir/compiler/pattern_select.cc.o.d"
  "/root/repo/src/cpu/exec_core.cc" "src/CMakeFiles/xloops.dir/cpu/exec_core.cc.o" "gcc" "src/CMakeFiles/xloops.dir/cpu/exec_core.cc.o.d"
  "/root/repo/src/cpu/functional.cc" "src/CMakeFiles/xloops.dir/cpu/functional.cc.o" "gcc" "src/CMakeFiles/xloops.dir/cpu/functional.cc.o.d"
  "/root/repo/src/cpu/gpp.cc" "src/CMakeFiles/xloops.dir/cpu/gpp.cc.o" "gcc" "src/CMakeFiles/xloops.dir/cpu/gpp.cc.o.d"
  "/root/repo/src/cpu/inorder.cc" "src/CMakeFiles/xloops.dir/cpu/inorder.cc.o" "gcc" "src/CMakeFiles/xloops.dir/cpu/inorder.cc.o.d"
  "/root/repo/src/cpu/ooo.cc" "src/CMakeFiles/xloops.dir/cpu/ooo.cc.o" "gcc" "src/CMakeFiles/xloops.dir/cpu/ooo.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/xloops.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/xloops.dir/energy/energy.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/xloops.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/xloops.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/xloops.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/xloops.dir/isa/instruction.cc.o.d"
  "/root/repo/src/kernels/kernel.cc" "src/CMakeFiles/xloops.dir/kernels/kernel.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernel.cc.o.d"
  "/root/repo/src/kernels/kernels_db.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_db.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_db.cc.o.d"
  "/root/repo/src/kernels/kernels_om.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_om.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_om.cc.o.d"
  "/root/repo/src/kernels/kernels_opt.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_opt.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_opt.cc.o.d"
  "/root/repo/src/kernels/kernels_or.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_or.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_or.cc.o.d"
  "/root/repo/src/kernels/kernels_ua.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_ua.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_ua.cc.o.d"
  "/root/repo/src/kernels/kernels_uc.cc" "src/CMakeFiles/xloops.dir/kernels/kernels_uc.cc.o" "gcc" "src/CMakeFiles/xloops.dir/kernels/kernels_uc.cc.o.d"
  "/root/repo/src/lpsu/lpsu.cc" "src/CMakeFiles/xloops.dir/lpsu/lpsu.cc.o" "gcc" "src/CMakeFiles/xloops.dir/lpsu/lpsu.cc.o.d"
  "/root/repo/src/lpsu/lsq.cc" "src/CMakeFiles/xloops.dir/lpsu/lsq.cc.o" "gcc" "src/CMakeFiles/xloops.dir/lpsu/lsq.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/xloops.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/xloops.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/xloops.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/xloops.dir/mem/memory.cc.o.d"
  "/root/repo/src/system/adaptive.cc" "src/CMakeFiles/xloops.dir/system/adaptive.cc.o" "gcc" "src/CMakeFiles/xloops.dir/system/adaptive.cc.o.d"
  "/root/repo/src/system/config.cc" "src/CMakeFiles/xloops.dir/system/config.cc.o" "gcc" "src/CMakeFiles/xloops.dir/system/config.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/xloops.dir/system/system.cc.o" "gcc" "src/CMakeFiles/xloops.dir/system/system.cc.o.d"
  "/root/repo/src/vlsi/vlsi_model.cc" "src/CMakeFiles/xloops.dir/vlsi/vlsi_model.cc.o" "gcc" "src/CMakeFiles/xloops.dir/vlsi/vlsi_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
