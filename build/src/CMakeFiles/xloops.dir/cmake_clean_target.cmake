file(REMOVE_RECURSE
  "libxloops.a"
)
