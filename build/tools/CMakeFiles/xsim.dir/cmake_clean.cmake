file(REMOVE_RECURSE
  "CMakeFiles/xsim.dir/xsim.cc.o"
  "CMakeFiles/xsim.dir/xsim.cc.o.d"
  "xsim"
  "xsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
