file(REMOVE_RECURSE
  "CMakeFiles/xas.dir/xas.cc.o"
  "CMakeFiles/xas.dir/xas.cc.o.d"
  "xas"
  "xas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
