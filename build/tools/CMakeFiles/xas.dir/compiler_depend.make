# Empty compiler generated dependencies file for xas.
# This may be replaced when dependencies are built.
