file(REMOVE_RECURSE
  "CMakeFiles/ext_superscalar.dir/ext_superscalar.cc.o"
  "CMakeFiles/ext_superscalar.dir/ext_superscalar.cc.o.d"
  "ext_superscalar"
  "ext_superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
