# Empty dependencies file for ext_superscalar.
# This may be replaced when dependencies are built.
