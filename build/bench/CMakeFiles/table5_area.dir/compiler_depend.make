# Empty compiler generated dependencies file for table5_area.
# This may be replaced when dependencies are built.
