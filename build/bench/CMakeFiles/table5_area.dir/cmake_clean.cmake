file(REMOVE_RECURSE
  "CMakeFiles/table5_area.dir/table5_area.cc.o"
  "CMakeFiles/table5_area.dir/table5_area.cc.o.d"
  "table5_area"
  "table5_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
