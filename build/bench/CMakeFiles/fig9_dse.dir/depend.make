# Empty dependencies file for fig9_dse.
# This may be replaced when dependencies are built.
