file(REMOVE_RECURSE
  "CMakeFiles/fig9_dse.dir/fig9_dse.cc.o"
  "CMakeFiles/fig9_dse.dir/fig9_dse.cc.o.d"
  "fig9_dse"
  "fig9_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
