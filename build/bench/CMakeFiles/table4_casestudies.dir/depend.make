# Empty dependencies file for table4_casestudies.
# This may be replaced when dependencies are built.
