file(REMOVE_RECURSE
  "CMakeFiles/table4_casestudies.dir/table4_casestudies.cc.o"
  "CMakeFiles/table4_casestudies.dir/table4_casestudies.cc.o.d"
  "table4_casestudies"
  "table4_casestudies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
