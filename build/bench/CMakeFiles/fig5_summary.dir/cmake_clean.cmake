file(REMOVE_RECURSE
  "CMakeFiles/fig5_summary.dir/fig5_summary.cc.o"
  "CMakeFiles/fig5_summary.dir/fig5_summary.cc.o.d"
  "fig5_summary"
  "fig5_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
