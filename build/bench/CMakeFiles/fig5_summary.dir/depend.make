# Empty dependencies file for fig5_summary.
# This may be replaced when dependencies are built.
