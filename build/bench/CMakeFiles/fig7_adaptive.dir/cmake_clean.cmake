file(REMOVE_RECURSE
  "CMakeFiles/fig7_adaptive.dir/fig7_adaptive.cc.o"
  "CMakeFiles/fig7_adaptive.dir/fig7_adaptive.cc.o.d"
  "fig7_adaptive"
  "fig7_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
