file(REMOVE_RECURSE
  "CMakeFiles/fig10_vlsi.dir/fig10_vlsi.cc.o"
  "CMakeFiles/fig10_vlsi.dir/fig10_vlsi.cc.o.d"
  "fig10_vlsi"
  "fig10_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
