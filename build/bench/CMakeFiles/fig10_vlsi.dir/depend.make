# Empty dependencies file for fig10_vlsi.
# This may be replaced when dependencies are built.
