file(REMOVE_RECURSE
  "CMakeFiles/ablation_lpsu.dir/ablation_lpsu.cc.o"
  "CMakeFiles/ablation_lpsu.dir/ablation_lpsu.cc.o.d"
  "ablation_lpsu"
  "ablation_lpsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lpsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
