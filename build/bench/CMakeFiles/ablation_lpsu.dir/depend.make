# Empty dependencies file for ablation_lpsu.
# This may be replaced when dependencies are built.
