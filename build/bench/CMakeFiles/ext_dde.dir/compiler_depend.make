# Empty compiler generated dependencies file for ext_dde.
# This may be replaced when dependencies are built.
