file(REMOVE_RECURSE
  "CMakeFiles/ext_dde.dir/ext_dde.cc.o"
  "CMakeFiles/ext_dde.dir/ext_dde.cc.o.d"
  "ext_dde"
  "ext_dde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
