file(REMOVE_RECURSE
  "CMakeFiles/test_energy_vlsi.dir/test_energy_vlsi.cc.o"
  "CMakeFiles/test_energy_vlsi.dir/test_energy_vlsi.cc.o.d"
  "test_energy_vlsi"
  "test_energy_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
