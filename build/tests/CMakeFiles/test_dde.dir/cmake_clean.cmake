file(REMOVE_RECURSE
  "CMakeFiles/test_dde.dir/test_dde.cc.o"
  "CMakeFiles/test_dde.dir/test_dde.cc.o.d"
  "test_dde"
  "test_dde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
