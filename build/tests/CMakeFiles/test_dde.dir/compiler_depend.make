# Empty compiler generated dependencies file for test_dde.
# This may be replaced when dependencies are built.
