# Empty dependencies file for test_cache_sweep.
# This may be replaced when dependencies are built.
