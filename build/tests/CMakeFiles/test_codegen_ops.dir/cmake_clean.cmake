file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_ops.dir/test_codegen_ops.cc.o"
  "CMakeFiles/test_codegen_ops.dir/test_codegen_ops.cc.o.d"
  "test_codegen_ops"
  "test_codegen_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
