# Empty compiler generated dependencies file for test_codegen_ops.
# This may be replaced when dependencies are built.
