file(REMOVE_RECURSE
  "CMakeFiles/test_lpsu.dir/test_lpsu.cc.o"
  "CMakeFiles/test_lpsu.dir/test_lpsu.cc.o.d"
  "test_lpsu"
  "test_lpsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
