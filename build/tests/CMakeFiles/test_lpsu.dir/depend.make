# Empty dependencies file for test_lpsu.
# This may be replaced when dependencies are built.
