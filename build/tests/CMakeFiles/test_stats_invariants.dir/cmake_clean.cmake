file(REMOVE_RECURSE
  "CMakeFiles/test_stats_invariants.dir/test_stats_invariants.cc.o"
  "CMakeFiles/test_stats_invariants.dir/test_stats_invariants.cc.o.d"
  "test_stats_invariants"
  "test_stats_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
