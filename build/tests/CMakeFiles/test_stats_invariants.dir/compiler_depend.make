# Empty compiler generated dependencies file for test_stats_invariants.
# This may be replaced when dependencies are built.
