file(REMOVE_RECURSE
  "CMakeFiles/test_gpp.dir/test_gpp.cc.o"
  "CMakeFiles/test_gpp.dir/test_gpp.cc.o.d"
  "test_gpp"
  "test_gpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
