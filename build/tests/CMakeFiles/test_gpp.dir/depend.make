# Empty dependencies file for test_gpp.
# This may be replaced when dependencies are built.
