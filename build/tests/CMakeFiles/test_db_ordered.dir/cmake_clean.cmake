file(REMOVE_RECURSE
  "CMakeFiles/test_db_ordered.dir/test_db_ordered.cc.o"
  "CMakeFiles/test_db_ordered.dir/test_db_ordered.cc.o.d"
  "test_db_ordered"
  "test_db_ordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_ordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
