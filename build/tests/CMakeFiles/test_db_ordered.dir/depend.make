# Empty dependencies file for test_db_ordered.
# This may be replaced when dependencies are built.
