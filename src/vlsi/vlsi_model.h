/**
 * @file
 * Analytical VLSI area / cycle-time model of the RTL LPSU (paper
 * Section V, Table V). The paper used a Synopsys flow on TSMC 40 nm
 * with CACTI SRAM models; we reproduce the component composition:
 * total area = scalar GPP + LMU + lanes x (datapath + regfile) +
 * lanes x instruction-buffer SRAM, with cycle time growing with lane
 * count (arbitration fan-in). Coefficients are calibrated against
 * Table V's published points.
 */

#ifndef XLOOPS_VLSI_VLSI_MODEL_H
#define XLOOPS_VLSI_VLSI_MODEL_H

#include <string>
#include <vector>

#include "common/types.h"

namespace xloops {

/** Area and timing estimate for one LPSU configuration. */
struct VlsiEstimate
{
    std::string name;
    unsigned lanes = 0;
    unsigned ibEntries = 0;
    double gppAreaMm2 = 0;     ///< baseline scalar GPP
    double lpsuAreaMm2 = 0;    ///< LMU + lanes + IB SRAM
    double totalAreaMm2 = 0;
    double areaOverhead = 0;   ///< (total - gpp) / gpp
    double cycleTimeNs = 0;
};

/** Calibrated component areas (mm^2, 40 nm). */
struct VlsiCoefficients
{
    double gppArea = 0.25;          ///< paper: scalar GPP total
    double lmuArea = 0.010;         ///< LMU + IDQs + arbiters
    double lanePerArea = 0.0205;    ///< lane datapath + 2r2w regfile
    double ibPerEntryPerLane = 3.5e-5;  ///< CACTI-class SRAM slope
    double ctBase = 1.82;           ///< ns
    double ctPerLane = 0.08;        ///< arbitration fan-in slope
};

/** Estimate one configuration. */
VlsiEstimate vlsiEstimate(unsigned lanes, unsigned ib_entries,
                          const VlsiCoefficients &coeff = {});

/** The Table V sweep: IB 96..192 at 4 lanes; lanes 2..8 at IB 128. */
std::vector<VlsiEstimate> tableVSweep();

} // namespace xloops

#endif // XLOOPS_VLSI_VLSI_MODEL_H
