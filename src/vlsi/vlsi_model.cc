#include "vlsi/vlsi_model.h"

#include <sstream>

namespace xloops {

VlsiEstimate
vlsiEstimate(unsigned lanes, unsigned ib_entries,
             const VlsiCoefficients &coeff)
{
    VlsiEstimate est;
    std::ostringstream name;
    name << "lpsu+i" << ib_entries << "+ln" << lanes;
    est.name = name.str();
    est.lanes = lanes;
    est.ibEntries = ib_entries;
    est.gppAreaMm2 = coeff.gppArea;
    est.lpsuAreaMm2 = coeff.lmuArea + lanes * coeff.lanePerArea +
                      static_cast<double>(lanes) * ib_entries *
                          coeff.ibPerEntryPerLane;
    est.totalAreaMm2 = est.gppAreaMm2 + est.lpsuAreaMm2;
    est.areaOverhead = est.lpsuAreaMm2 / est.gppAreaMm2;
    est.cycleTimeNs = coeff.ctBase + coeff.ctPerLane * lanes;
    return est;
}

std::vector<VlsiEstimate>
tableVSweep()
{
    std::vector<VlsiEstimate> rows;
    for (const unsigned ib : {96u, 128u, 160u, 192u})
        rows.push_back(vlsiEstimate(4, ib));
    for (const unsigned lanes : {2u, 6u, 8u})
        rows.push_back(vlsiEstimate(lanes, 128));
    return rows;
}

} // namespace xloops
