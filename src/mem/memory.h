/**
 * @file
 * Functional memory: a sparse paged byte-addressable 32-bit space,
 * plus the abstract port through which all simulated engines access
 * memory (so the LPSU can interpose per-lane load-store queues).
 */

#ifndef XLOOPS_MEM_MEMORY_H
#define XLOOPS_MEM_MEMORY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/opcodes.h"

namespace xloops {

/**
 * Abstract functional memory interface. Sizes are 1, 2, or 4 bytes;
 * values are zero-extended on read (sign extension is the executor's
 * job). AMOs are read-modify-write and return the old value.
 */
class MemIface
{
  public:
    virtual ~MemIface() = default;
    virtual u32 read(Addr addr, unsigned size) = 0;
    virtual void write(Addr addr, unsigned size, u32 value) = 0;
    virtual u32 amo(Op op, Addr addr, u32 operand) = 0;
};

/** Sparse paged main memory. */
class MainMemory : public MemIface
{
  public:
    u32 read(Addr addr, unsigned size) override;
    void write(Addr addr, unsigned size, u32 value) override;
    u32 amo(Op op, Addr addr, u32 operand) override;

    /** Word helpers used by loaders, kernels, and tests. */
    u32 readWord(Addr addr) { return read(addr, 4); }
    void writeWord(Addr addr, u32 value) { write(addr, 4, value); }
    float readFloat(Addr addr);
    void writeFloat(Addr addr, float value);

    /** Copy a byte blob into memory at @p base. */
    void loadBytes(Addr base, const std::vector<u8> &bytes);

    /** Apply the AMO combine function (shared with LSQ drains). */
    static u32 amoCompute(Op op, u32 old, u32 operand);

  private:
    static constexpr unsigned pageBits = 16;
    static constexpr Addr pageSize = 1u << pageBits;
    static constexpr Addr pageMask = pageSize - 1;

    u8 *pageFor(Addr addr);

    std::unordered_map<u32, std::unique_ptr<u8[]>> pages;
};

} // namespace xloops

#endif // XLOOPS_MEM_MEMORY_H
