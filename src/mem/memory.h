/**
 * @file
 * Functional memory: a sparse paged byte-addressable 32-bit space,
 * plus the abstract port through which all simulated engines access
 * memory (so the LPSU can interpose per-lane load-store queues).
 *
 * The memory maintains an *incremental content digest*: an XOR over a
 * per-byte hash of (address, value), updated on every write, where a
 * zero byte contributes nothing (so untouched and zero-filled pages
 * are indistinguishable, as they are architecturally). Two memories
 * hold identical content iff their digests match, which lets the
 * differential lockstep checker compare full images in O(1) at every
 * sync point and fall back to a byte walk only to name the first
 * mismatching address after a divergence fires.
 */

#ifndef XLOOPS_MEM_MEMORY_H
#define XLOOPS_MEM_MEMORY_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/types.h"
#include "isa/opcodes.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/**
 * Abstract functional memory interface. Sizes are 1, 2, or 4 bytes;
 * values are zero-extended on read (sign extension is the executor's
 * job). AMOs are read-modify-write and return the old value.
 */
class MemIface
{
  public:
    virtual ~MemIface() = default;
    virtual u32 read(Addr addr, unsigned size) = 0;
    virtual void write(Addr addr, unsigned size, u32 value) = 0;
    virtual u32 amo(Op op, Addr addr, u32 operand) = 0;
};

/** Sparse paged main memory. */
class MainMemory : public MemIface
{
  public:
    // read/write are defined inline (with a one-entry page-translation
    // cache in front of the sparse page map) so callers holding a
    // concrete MainMemory — the threaded interpreter's hot loop —
    // devirtualize and inline the whole access. Callers going through
    // MemIface still dispatch virtually to the same code.
    u32
    read(Addr addr, unsigned size) override
    {
        checkAccess(addr, size);
        const u8 *page = lookupPage(addr);
        const Addr off = addr & pageMask;
        u32 value = 0;
        for (unsigned i = 0; i < size; i++)
            value |= static_cast<u32>(page[off + i]) << (8 * i);
        return value;
    }

    void
    write(Addr addr, unsigned size, u32 value) override
    {
        checkAccess(addr, size);
        u8 *page = lookupPage(addr);
        const Addr off = addr & pageMask;
        for (unsigned i = 0; i < size; i++) {
            const u8 nb = static_cast<u8>(value >> (8 * i));
            u8 &ob = page[off + i];
            if (ob != nb) {
                dig ^= byteContrib(addr + i, ob) ^
                       byteContrib(addr + i, nb);
                ob = nb;
            }
        }
    }

    u32 amo(Op op, Addr addr, u32 operand) override;

    /** Word helpers used by loaders, kernels, and tests. */
    u32 readWord(Addr addr) { return read(addr, 4); }
    void writeWord(Addr addr, u32 value) { write(addr, 4, value); }
    float readFloat(Addr addr);
    void writeFloat(Addr addr, float value);

    /** Copy a byte blob into memory at @p base. */
    void loadBytes(Addr base, const std::vector<u8> &bytes);

    /** Apply the AMO combine function (shared with LSQ drains). */
    static u32 amoCompute(Op op, u32 old, u32 operand);

    /**
     * Incremental content digest: equal iff the byte images are equal
     * (up to hash collision; 64-bit, adversary-free). O(1) to read.
     */
    u64 digest() const { return dig; }

    /** Deep-copy @p other's pages and digest (lockstep shadow init). */
    void copyFrom(const MainMemory &other);

    /**
     * First byte address at which @p a and @p b differ (missing pages
     * compare as zero), or ~Addr{0} when the images are identical.
     * O(touched memory); used only to report a divergence.
     */
    static Addr firstDifference(const MainMemory &a, const MainMemory &b);

    /** Emit {"digest": "0x..", "pages": {"0x..": "hex..", ..}}. */
    void saveState(JsonWriter &w) const;

    /** Restore pages and recompute the digest from scratch. */
    void loadState(const JsonValue &v);

  private:
    static constexpr unsigned pageBits = 16;
    static constexpr Addr pageSize = 1u << pageBits;
    static constexpr Addr pageMask = pageSize - 1;

    /** Digest contribution of byte @p b at @p addr (zero bytes: 0). */
    static u64
    byteContrib(Addr addr, u8 b)
    {
        return b == 0 ? 0
                      : mix64((static_cast<u64>(addr) << 8) | b);
    }

    static void
    checkAccess(Addr addr, unsigned size)
    {
        if (size != 1 && size != 2 && size != 4)
            panic(strf("bad access size ", size));
        if (addr % size != 0)
            fatal(strf("misaligned ", size, "-byte access at 0x",
                       std::hex, addr));
    }

    /** One-entry page-translation cache over the sparse map. Page
     *  arrays are pointer-stable across map growth; the cache is
     *  dropped whenever the map itself is rebuilt (copyFrom /
     *  loadState). */
    u8 *
    lookupPage(Addr addr)
    {
        const u32 pageNum = addr >> pageBits;
        if (pageNum == cachedPageNum)
            return cachedPage;
        u8 *page = pageFor(addr);
        cachedPageNum = pageNum;
        cachedPage = page;
        return page;
    }

    u8 *pageFor(Addr addr);

    std::unordered_map<u32, std::unique_ptr<u8[]>> pages;
    u64 dig = 0;
    u32 cachedPageNum = ~u32{0};
    u8 *cachedPage = nullptr;
};

} // namespace xloops

#endif // XLOOPS_MEM_MEMORY_H
