/**
 * @file
 * Cycle-level L1 cache timing model (set-associative, LRU, write-back,
 * write-allocate). Purely a latency model: data always comes from the
 * functional memory; this class only answers "how long did that take".
 */

#ifndef XLOOPS_MEM_CACHE_H
#define XLOOPS_MEM_CACHE_H

#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"

namespace xloops {

class JsonValue;

struct CacheConfig
{
    u32 sizeBytes = 16 * 1024;
    u32 assoc = 2;
    u32 lineBytes = 32;
    Cycle hitLatency = 1;
    Cycle missPenalty = 20;
};

/** Timing-only set-associative cache. */
class L1Cache
{
  public:
    explicit L1Cache(const CacheConfig &config = {});

    /** Model one access; returns its latency in cycles. */
    Cycle access(Addr addr, bool is_write);

    /** Like access(), but also emits a CacheMiss trace event stamped
     *  at @p now when the access missed and a tracer is attached. */
    Cycle access(Addr addr, bool is_write, Cycle now);

    /** Stream miss events to @p t (nullptr disables; see trace.h). */
    void setTracer(Tracer *t) { tracer = t; }

    /** Drop all lines (e.g., between benchmark phases). */
    void flush();

    const CacheConfig &config() const { return cfg; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    /** Checkpoint capture of lines, LRU stamps, and statistics. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u32 tag = 0;
        u64 lruStamp = 0;
    };

    CacheConfig cfg;
    u32 numSets;
    std::vector<Line> lines;  // numSets * assoc
    u64 stamp = 0;
    StatGroup statGroup;
    Tracer *tracer = nullptr;
};

} // namespace xloops

#endif // XLOOPS_MEM_CACHE_H
