#include "mem/cache.h"

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"

namespace xloops {

L1Cache::L1Cache(const CacheConfig &config) : cfg(config)
{
    if (cfg.lineBytes == 0 || (cfg.lineBytes & (cfg.lineBytes - 1)))
        fatal("cache line size must be a power of two");
    if (cfg.assoc == 0 || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) != 0)
        fatal("cache size must be a multiple of lineBytes * assoc");
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    lines.resize(static_cast<size_t>(numSets) * cfg.assoc);
}

Cycle
L1Cache::access(Addr addr, bool is_write)
{
    const u32 lineAddr = addr / cfg.lineBytes;
    const u32 set = lineAddr % numSets;
    const u32 tag = lineAddr / numSets;
    Line *base = &lines[static_cast<size_t>(set) * cfg.assoc];
    stamp++;

    for (u32 w = 0; w < cfg.assoc; w++) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp;
            line.dirty |= is_write;
            statGroup.add(is_write ? "write_hits" : "read_hits");
            return cfg.hitLatency;
        }
    }

    // Miss: fill into the LRU way.
    Line *victim = base;
    for (u32 w = 1; w < cfg.assoc; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    Cycle latency = cfg.hitLatency + cfg.missPenalty;
    if (victim->valid) {
        statGroup.add("evictions");
        if (victim->dirty) {
            statGroup.add("writebacks");
            latency += 2;  // occupy the fill port briefly for writeback
        }
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = stamp;
    statGroup.add(is_write ? "write_misses" : "read_misses");
    return latency;
}

Cycle
L1Cache::access(Addr addr, bool is_write, Cycle now)
{
    const Cycle latency = access(addr, is_write);
    if (latency > cfg.hitLatency) {
        XTRACE(tracer, now, TraceComp::Mem, 0, TraceKind::CacheMiss,
               static_cast<i64>(addr), static_cast<i64>(latency));
    }
    return latency;
}

void
L1Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

void
L1Cache::saveState(JsonWriter &w) const
{
    w.field("stamp", stamp);
    // Lines as four parallel arrays: flags packed (valid | dirty<<1),
    // then tags and LRU stamps. Compact and order-exact.
    std::vector<u64> flags, tags, lru;
    flags.reserve(lines.size());
    tags.reserve(lines.size());
    lru.reserve(lines.size());
    for (const Line &line : lines) {
        flags.push_back(static_cast<u64>(line.valid) |
                        (static_cast<u64>(line.dirty) << 1));
        tags.push_back(line.tag);
        lru.push_back(line.lruStamp);
    }
    w.key("flags");
    writeU64Array(w, flags);
    w.key("tags");
    writeU64Array(w, tags);
    w.key("lru");
    writeU64Array(w, lru);
    w.key("stats").beginObject();
    statGroup.saveState(w);
    w.endObject();
}

void
L1Cache::loadState(const JsonValue &v)
{
    stamp = v.at("stamp").asU64();
    const std::vector<u64> flags = readU64Array(v.at("flags"));
    const std::vector<u64> tags = readU64Array(v.at("tags"));
    const std::vector<u64> lru = readU64Array(v.at("lru"));
    if (flags.size() != lines.size() || tags.size() != lines.size() ||
        lru.size() != lines.size())
        fatal("checkpoint cache geometry does not match configuration");
    for (size_t i = 0; i < lines.size(); i++) {
        lines[i].valid = (flags[i] & 1) != 0;
        lines[i].dirty = (flags[i] & 2) != 0;
        lines[i].tag = static_cast<u32>(tags[i]);
        lines[i].lruStamp = lru[i];
    }
    statGroup.loadState(v.at("stats"));
}

} // namespace xloops
