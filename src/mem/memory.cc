#include "mem/memory.h"

#include <cstring>

#include "common/log.h"

namespace xloops {

u8 *
MainMemory::pageFor(Addr addr)
{
    const u32 pageNum = addr >> pageBits;
    auto &page = pages[pageNum];
    if (!page) {
        page = std::make_unique<u8[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
    }
    return page.get();
}

namespace {

void
checkAccess(Addr addr, unsigned size)
{
    if (size != 1 && size != 2 && size != 4)
        panic(strf("bad access size ", size));
    if (addr % size != 0)
        fatal(strf("misaligned ", size, "-byte access at 0x", std::hex,
                   addr));
}

} // namespace

u32
MainMemory::read(Addr addr, unsigned size)
{
    checkAccess(addr, size);
    const u8 *page = pageFor(addr);
    const Addr off = addr & pageMask;
    u32 value = 0;
    for (unsigned i = 0; i < size; i++)
        value |= static_cast<u32>(page[off + i]) << (8 * i);
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, u32 value)
{
    checkAccess(addr, size);
    u8 *page = pageFor(addr);
    const Addr off = addr & pageMask;
    for (unsigned i = 0; i < size; i++)
        page[off + i] = static_cast<u8>(value >> (8 * i));
}

u32
MainMemory::amoCompute(Op op, u32 old, u32 operand)
{
    switch (op) {
      case Op::AMOADD: return old + operand;
      case Op::AMOAND: return old & operand;
      case Op::AMOOR: return old | operand;
      case Op::AMOXOR: return old ^ operand;
      case Op::AMOSWAP: return operand;
      case Op::AMOMIN:
        return static_cast<i32>(old) < static_cast<i32>(operand) ? old
                                                                 : operand;
      case Op::AMOMAX:
        return static_cast<i32>(old) > static_cast<i32>(operand) ? old
                                                                 : operand;
      default:
        panic("amoCompute on non-amo opcode");
    }
}

u32
MainMemory::amo(Op op, Addr addr, u32 operand)
{
    const u32 old = read(addr, 4);
    write(addr, 4, amoCompute(op, old, operand));
    return old;
}

float
MainMemory::readFloat(Addr addr)
{
    const u32 v = read(addr, 4);
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

void
MainMemory::writeFloat(Addr addr, float value)
{
    u32 v;
    std::memcpy(&v, &value, 4);
    write(addr, 4, v);
}

void
MainMemory::loadBytes(Addr base, const std::vector<u8> &bytes)
{
    for (size_t i = 0; i < bytes.size(); i++) {
        u8 *page = pageFor(base + static_cast<Addr>(i));
        page[(base + i) & pageMask] = bytes[i];
    }
}

} // namespace xloops
