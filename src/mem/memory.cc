#include "mem/memory.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"

namespace xloops {

u8 *
MainMemory::pageFor(Addr addr)
{
    const u32 pageNum = addr >> pageBits;
    auto &page = pages[pageNum];
    if (!page) {
        page = std::make_unique<u8[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
    }
    return page.get();
}

u32
MainMemory::amoCompute(Op op, u32 old, u32 operand)
{
    switch (op) {
      case Op::AMOADD: return old + operand;
      case Op::AMOAND: return old & operand;
      case Op::AMOOR: return old | operand;
      case Op::AMOXOR: return old ^ operand;
      case Op::AMOSWAP: return operand;
      case Op::AMOMIN:
        return static_cast<i32>(old) < static_cast<i32>(operand) ? old
                                                                 : operand;
      case Op::AMOMAX:
        return static_cast<i32>(old) > static_cast<i32>(operand) ? old
                                                                 : operand;
      default:
        panic("amoCompute on non-amo opcode");
    }
}

u32
MainMemory::amo(Op op, Addr addr, u32 operand)
{
    const u32 old = read(addr, 4);
    write(addr, 4, amoCompute(op, old, operand));
    return old;
}

float
MainMemory::readFloat(Addr addr)
{
    const u32 v = read(addr, 4);
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

void
MainMemory::writeFloat(Addr addr, float value)
{
    u32 v;
    std::memcpy(&v, &value, 4);
    write(addr, 4, v);
}

void
MainMemory::loadBytes(Addr base, const std::vector<u8> &bytes)
{
    for (size_t i = 0; i < bytes.size(); i++) {
        const Addr addr = base + static_cast<Addr>(i);
        u8 *page = pageFor(addr);
        u8 &ob = page[addr & pageMask];
        if (ob != bytes[i]) {
            dig ^= byteContrib(addr, ob) ^ byteContrib(addr, bytes[i]);
            ob = bytes[i];
        }
    }
}

void
MainMemory::copyFrom(const MainMemory &other)
{
    pages.clear();
    cachedPageNum = ~u32{0};
    cachedPage = nullptr;
    for (const auto &[pageNum, page] : other.pages) {
        auto copy = std::make_unique<u8[]>(pageSize);
        std::memcpy(copy.get(), page.get(), pageSize);
        pages.emplace(pageNum, std::move(copy));
    }
    dig = other.dig;
}

Addr
MainMemory::firstDifference(const MainMemory &a, const MainMemory &b)
{
    std::vector<u32> pageNums;
    for (const auto &[pageNum, page] : a.pages)
        pageNums.push_back(pageNum);
    for (const auto &[pageNum, page] : b.pages)
        if (!a.pages.count(pageNum))
            pageNums.push_back(pageNum);
    std::sort(pageNums.begin(), pageNums.end());

    static const u8 zeros[pageSize] = {};
    for (const u32 pageNum : pageNums) {
        const auto ita = a.pages.find(pageNum);
        const auto itb = b.pages.find(pageNum);
        const u8 *pa = ita == a.pages.end() ? zeros : ita->second.get();
        const u8 *pb = itb == b.pages.end() ? zeros : itb->second.get();
        if (std::memcmp(pa, pb, pageSize) == 0)
            continue;
        for (Addr off = 0; off < pageSize; off++)
            if (pa[off] != pb[off])
                return (static_cast<Addr>(pageNum) << pageBits) | off;
    }
    return ~Addr{0};
}

void
MainMemory::saveState(JsonWriter &w) const
{
    char digBuf[24];
    std::snprintf(digBuf, sizeof digBuf, "0x%016llx",
                  static_cast<unsigned long long>(dig));
    w.field("digest", std::string(digBuf));

    std::vector<u32> pageNums;
    for (const auto &[pageNum, page] : pages)
        pageNums.push_back(pageNum);
    std::sort(pageNums.begin(), pageNums.end());

    w.key("pages").beginObject();
    for (const u32 pageNum : pageNums) {
        const u8 *page = pages.at(pageNum).get();
        // Trim at the last nonzero byte; all-zero pages are omitted
        // (indistinguishable from untouched ones).
        size_t len = pageSize;
        while (len > 0 && page[len - 1] == 0)
            len--;
        if (len == 0)
            continue;
        char key[16];
        std::snprintf(key, sizeof key, "0x%x", pageNum);
        w.field(key, hexEncode(page, len));
    }
    w.endObject();
}

void
MainMemory::loadState(const JsonValue &v)
{
    pages.clear();
    cachedPageNum = ~u32{0};
    cachedPage = nullptr;
    dig = 0;
    for (const auto &[key, blob] : v.at("pages").members()) {
        const u32 pageNum = static_cast<u32>(parseU64(key));
        const std::vector<u8> bytes = hexDecode(blob.asString());
        if (bytes.size() > pageSize)
            fatal(strf("checkpoint page ", key, " exceeds page size"));
        auto page = std::make_unique<u8[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
        std::memcpy(page.get(), bytes.data(), bytes.size());
        const Addr base = static_cast<Addr>(pageNum) << pageBits;
        for (size_t i = 0; i < bytes.size(); i++)
            dig ^= byteContrib(base + static_cast<Addr>(i), bytes[i]);
        pages.emplace(pageNum, std::move(page));
    }
    const u64 expect = parseU64(v.at("digest").asString());
    if (dig != expect)
        fatal(strf("checkpoint memory digest mismatch: stored ",
                   v.at("digest").asString(), ", recomputed 0x", std::hex,
                   dig));
}

} // namespace xloops
