/**
 * @file
 * Generative loop-nest fuzzing: produce random xl programs whose
 * dependence structure is known *by construction* — each recipe
 * builds a loop whose correct pattern-selection verdict is determined
 * by how the recipe wired its reads and writes, never by running the
 * analyzer. The harness (fuzz/harness.h) then checks two properties:
 *
 *   1. analyzer ground truth: selectPattern on every generated loop
 *      reproduces the recipe's expected verdict exactly;
 *   2. differential execution: the compiled program produces
 *      byte-identical array state in traditional and specialized
 *      mode, with the lockstep checker armed and timing faults
 *      injected.
 *
 * Generated programs are in-bounds by construction (subscripts are
 * offset-bounded, indirect index arrays are initialized in range) so
 * array aliasing can never silently invalidate a recipe's truth, and
 * atomic (ua) bodies only use commutative updates so unordered
 * execution stays byte-identical to serial.
 */

#ifndef XLOOPS_FUZZ_GEN_H
#define XLOOPS_FUZZ_GEN_H

#include "frontend/parser.h"

namespace xloops {

/** One generated program plus its by-construction ground truth. */
struct GenProgram
{
    u64 seed = 0;
    std::string name;     ///< "gen-<recipe>-<seed>"
    std::string recipe;
    FrontendModule module;
    std::string source;   ///< renderModule(module)

    /** Expected LoopSelection::describe() for every loop, pre-order
     *  (matches reportLoops on the unfissioned module). */
    std::vector<std::string> truths;

    /** This program is a fission candidate: compiling with the
     *  fission prepass must yield exactly fissionTruths. */
    bool useFission = false;
    std::vector<std::string> fissionTruths;
};

/** Deterministically generate the program for @p seed (same seed,
 *  same program, on every platform). */
GenProgram generateProgram(u64 seed);

/** All recipe names (for reporting / coverage accounting). */
const std::vector<std::string> &recipeNames();

} // namespace xloops

#endif // XLOOPS_FUZZ_GEN_H
