#include "fuzz/shrink.h"

#include <set>

#include "frontend/render.h"

namespace xloops {

namespace {

/**
 * Pre-order enumeration of every statement list in a module: the top
 * level, then (recursively, in statement order) each If branch and
 * each loop body. The order is purely structural, so the n-th list of
 * a copied module is the same list as the n-th of the original.
 */
void
collectLists(std::vector<Stmt> &body, std::vector<std::vector<Stmt> *> &out)
{
    out.push_back(&body);
    for (Stmt &s : body) {
        switch (s.kind) {
          case Stmt::Kind::If:
            collectLists(s.thenBody, out);
            collectLists(s.elseBody, out);
            break;
          case Stmt::Kind::Nested:
            collectLists(s.nested.front().body, out);
            break;
          default:
            break;
        }
    }
}

std::vector<std::vector<Stmt> *>
allLists(FrontendModule &mod)
{
    std::vector<std::vector<Stmt> *> out;
    collectLists(mod.topLevel, out);
    return out;
}

/** Single-step simplifications of one expression. */
void
exprVariants(const ExprPtr &e, std::vector<ExprPtr> &out)
{
    if (!e)
        return;
    if (e->kind == Expr::Kind::Bin) {
        out.push_back(e->lhs);
        out.push_back(e->rhs);
    }
    if (e->kind == Expr::Kind::Load)
        out.push_back(e->index);
    if (e->kind != Expr::Kind::Const) {
        out.push_back(cst(0));
        out.push_back(cst(1));
    }
}

/** Array names referenced anywhere (loads, stores, loop bounds). */
void
referencedArrays(const std::vector<Stmt> &body, std::set<std::string> &out)
{
    auto fromExpr = [&out](const ExprPtr &e) {
        if (!e)
            return;
        std::vector<std::pair<std::string, ExprPtr>> loads;
        e->collectLoads(loads);
        for (const auto &[array, index] : loads)
            out.insert(array);
    };
    for (const Stmt &s : body) {
        fromExpr(s.index);
        fromExpr(s.value);
        fromExpr(s.cond);
        if (s.kind == Stmt::Kind::StoreArray)
            out.insert(s.array);
        referencedArrays(s.thenBody, out);
        referencedArrays(s.elseBody, out);
        if (s.kind == Stmt::Kind::Nested) {
            const Loop &loop = s.nested.front();
            fromExpr(loop.lower);
            fromExpr(loop.upper);
            referencedArrays(loop.body, out);
        }
    }
}

/** Push a copy of @p mod with list @p li / stmt @p si rewritten by
 *  @p mutate (which may signal "no candidate" by returning false). */
template <typename Fn>
void
withStmt(const FrontendModule &mod, size_t li, size_t si, Fn &&mutate,
         std::vector<FrontendModule> &out)
{
    FrontendModule copy = mod;
    auto lists = allLists(copy);
    if (mutate((*lists[li])[si], *lists[li], si))
        out.push_back(std::move(copy));
}

} // namespace

std::vector<FrontendModule>
shrinkCandidates(const FrontendModule &mod)
{
    std::vector<FrontendModule> out;

    // Structural counts come from a throwaway copy (allLists needs a
    // mutable module); indices are stable across copies.
    FrontendModule probe = mod;
    const auto probeLists = allLists(probe);

    for (size_t li = 0; li < probeLists.size(); li++) {
        for (size_t si = 0; si < probeLists[li]->size(); si++) {
            const Stmt &orig = (*probeLists[li])[si];

            // 1. Delete the statement outright (biggest cut first).
            withStmt(mod, li, si,
                     [](Stmt &, std::vector<Stmt> &list, size_t i) {
                         list.erase(list.begin() +
                                    static_cast<long>(i));
                         return true;
                     },
                     out);

            // 2. Inline an if's branches in its place.
            if (orig.kind == Stmt::Kind::If) {
                for (const bool takeThen : {true, false}) {
                    withStmt(mod, li, si,
                             [takeThen](Stmt &s, std::vector<Stmt> &list,
                                        size_t i) {
                                 std::vector<Stmt> branch = takeThen
                                                                ? s.thenBody
                                                                : s.elseBody;
                                 list.erase(list.begin() +
                                            static_cast<long>(i));
                                 list.insert(list.begin() +
                                                 static_cast<long>(i),
                                             branch.begin(), branch.end());
                                 return true;
                             },
                             out);
                }
            }

            // 3. Shrink a constant trip count.
            if (orig.kind == Stmt::Kind::Nested) {
                const Loop &loop = orig.nested.front();
                if (loop.upper->kind == Expr::Kind::Const &&
                    loop.upper->cval > 1) {
                    for (const i32 next : {loop.upper->cval / 2, 1}) {
                        if (next == loop.upper->cval)
                            continue;
                        withStmt(mod, li, si,
                                 [next](Stmt &s, std::vector<Stmt> &,
                                        size_t) {
                                     s.nested.front().upper = cst(next);
                                     return true;
                                 },
                                 out);
                    }
                }
            }

            // 4. Prune expressions in place.
            auto pruneField = [&](ExprPtr Stmt::*field) {
                std::vector<ExprPtr> variants;
                exprVariants(orig.*field, variants);
                for (const ExprPtr &v : variants) {
                    withStmt(mod, li, si,
                             [&v, field](Stmt &s, std::vector<Stmt> &,
                                         size_t) {
                                 s.*field = v;
                                 return true;
                             },
                             out);
                }
            };
            pruneField(&Stmt::value);
            pruneField(&Stmt::index);
            pruneField(&Stmt::cond);
        }
    }

    // 5. Drop array initializers (arrays become zero-filled).
    for (size_t ai = 0; ai < mod.arrays.size(); ai++) {
        if (!mod.arrays[ai].init.empty()) {
            FrontendModule copy = mod;
            copy.arrays[ai].init.clear();
            out.push_back(std::move(copy));
        }
    }

    // 6. Remove arrays nothing references.
    std::set<std::string> used;
    referencedArrays(mod.topLevel, used);
    for (size_t ai = 0; ai < mod.arrays.size(); ai++) {
        if (!used.count(mod.arrays[ai].name)) {
            FrontendModule copy = mod;
            copy.arrays.erase(copy.arrays.begin() +
                              static_cast<long>(ai));
            out.push_back(std::move(copy));
        }
    }

    return out;
}

GenProgram
shrinkProgram(const GenProgram &program, const FailPredicate &stillFails,
              unsigned maxSteps)
{
    GenProgram cur = program;
    for (unsigned step = 0; step < maxSteps; step++) {
        bool improved = false;
        for (FrontendModule &cand : shrinkCandidates(cur.module)) {
            GenProgram next = cur;
            next.module = std::move(cand);
            next.source = renderModule(next.module);
            if (stillFails(next)) {
                cur = std::move(next);
                improved = true;
                break;
            }
        }
        if (!improved)
            break;
    }
    return cur;
}

} // namespace xloops
