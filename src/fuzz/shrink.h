/**
 * @file
 * Greedy structural shrinking of failing fuzz programs. Given a
 * failure predicate, repeatedly tries single simplifying edits —
 * delete a statement, inline an if branch, halve a trip count, prune
 * an expression, drop an initializer or an unreferenced array — and
 * keeps any edit under which the program still fails, iterating to a
 * fixpoint. The result is a local minimum: no single remaining edit
 * preserves the failure.
 *
 * The predicate sees a fully re-rendered GenProgram (module + source)
 * and decides "still the same failure"; the caller encodes what
 * "same" means (same divergence phase, same wrong analyzer verdict).
 */

#ifndef XLOOPS_FUZZ_SHRINK_H
#define XLOOPS_FUZZ_SHRINK_H

#include <functional>

#include "fuzz/gen.h"

namespace xloops {

/** Returns true when the candidate still exhibits the failure being
 *  minimized. Must be deterministic. */
using FailPredicate = std::function<bool(const GenProgram &)>;

/** All single-edit simplifications of @p mod (each one module copy). */
std::vector<FrontendModule> shrinkCandidates(const FrontendModule &mod);

/**
 * Shrink @p program to a fixpoint under @p stillFails. @p maxSteps
 * bounds accepted edits (each round scans all candidates and keeps
 * the first that still fails). The input program must itself satisfy
 * the predicate; the returned program always does.
 */
GenProgram shrinkProgram(const GenProgram &program,
                         const FailPredicate &stillFails,
                         unsigned maxSteps = 300);

} // namespace xloops

#endif // XLOOPS_FUZZ_SHRINK_H
