#include "fuzz/harness.h"

#include <fstream>
#include <map>

#include "common/sim_error.h"
#include "frontend/frontend.h"
#include "system/capsule.h"
#include "system/config.h"
#include "system/system.h"

namespace xloops {

namespace {

/** Final contents of every declared array after one run (absent when
 *  the run failed). */
struct RunOutcome
{
    bool ok = false;
    FuzzFailure fail;
    std::map<std::string, std::vector<u32>> arrays;
};

RunOutcome
runOne(const Program &prog, const std::vector<ArrayDeclInfo> &arrays,
       ExecMode mode, const FuzzOptions &opts, u64 faultSeed,
       const std::string &phase, const std::string &label)
{
    RunOutcome out;
    SysConfig cfg = configs::byName(opts.configName);
    if (mode == ExecMode::Specialized && opts.injectRate > 0.0)
        cfg.lpsu.faults = FaultConfig::uniform(faultSeed, opts.injectRate);

    XloopsSystem sys(cfg);
    sys.loadProgram(prog);

    CapsuleContext ctx;
    if (!opts.capsuleDir.empty()) {
        ctx.valid = true;
        ctx.program = prog;
        ctx.initialMem.copyFrom(sys.memory());
    }

    RunOptions ro;
    ro.lockstep = opts.lockstep;
    try {
        sys.run(prog, mode, opts.maxInsts, ro);
    } catch (const SimError &e) {
        if (!opts.capsuleDir.empty()) {
            CapsuleRunSpec spec;
            spec.configName = cfg.name;
            spec.modeName = execModeName(mode);
            spec.workload = label;
            spec.maxInsts = opts.maxInsts;
            spec.lockstep = opts.lockstep;
            if (mode == ExecMode::Specialized) {
                spec.injectSeed = faultSeed;
                spec.injectRate = opts.injectRate;
            }
            ctx.lastCheckpoint = sys.lastCheckpoint();
            ctx.lastCheckpointInst = sys.lastCheckpointInst();
            writeCapsule(opts.capsuleDir + "/" + label + "-" + phase +
                             ".capsule.json",
                         spec, ctx, e);
        }
        out.fail = {phase, e.what()};
        return out;
    } catch (const FatalError &e) {
        out.fail = {phase, e.what()};
        return out;
    }

    for (const ArrayDeclInfo &a : arrays) {
        std::vector<u32> words;
        words.reserve(a.words);
        const Addr base = prog.symbol(a.name);
        for (unsigned i = 0; i < a.words; i++)
            words.push_back(sys.memory().readWord(base + 4 * i));
        out.arrays.emplace(a.name, std::move(words));
    }
    out.ok = true;
    return out;
}

void
compareArrays(const RunOutcome &ref, const RunOutcome &got,
              const std::string &phase, FuzzVerdict &v)
{
    for (const auto &[name, refWords] : ref.arrays) {
        const auto it = got.arrays.find(name);
        if (it == got.arrays.end())
            continue;  // fission build dropped nothing; belt only
        for (size_t i = 0;
             i < refWords.size() && i < it->second.size(); i++) {
            if (refWords[i] != it->second[i]) {
                v.failures.push_back(
                    {phase, strf(name, "[", i, "]: reference=",
                                 static_cast<i32>(refWords[i]),
                                 " got=",
                                 static_cast<i32>(it->second[i]))});
                return;  // first mismatch is enough
            }
        }
    }
}

/** Compare analyzer verdicts against an expected vector. */
void
checkTruths(const std::vector<LoopReport> &reports,
            const std::vector<std::string> &expected,
            const std::string &phase, FuzzVerdict &v)
{
    if (reports.size() != expected.size()) {
        v.failures.push_back(
            {phase, strf("expected ", expected.size(), " loops, found ",
                         reports.size())});
        return;
    }
    for (size_t i = 0; i < reports.size(); i++) {
        if (reports[i].selection != expected[i]) {
            v.failures.push_back(
                {phase, strf("loop ", i, " (iv ", reports[i].iv,
                             "): expected ", expected[i], ", got ",
                             reports[i].selection)});
        }
    }
}

} // namespace

FuzzVerdict
checkProgram(const GenProgram &program, const FuzzOptions &opts)
{
    FuzzVerdict v;
    const u64 faultSeed =
        opts.injectSeed ? opts.injectSeed
                        : mix64(program.seed ? program.seed : 0x5eed);

    FrontendModule parsed;
    try {
        parsed = parseModule(program.source);
    } catch (const FrontendError &e) {
        v.failures.push_back({"parse", e.what()});
        return v;
    }

    if (opts.checkTruth) {
        checkTruths(reportLoops(parsed.topLevel), program.truths,
                    "truth", v);
        if (!v.ok())
            return v;
    }

    FrontendOptions plain;
    plain.fission = false;
    CompiledModule cm;
    try {
        cm = compileModule(parsed, plain);
    } catch (const FatalError &e) {
        v.failures.push_back({"compile", e.what()});
        return v;
    }

    const RunOutcome trad =
        runOne(cm.program, cm.module.arrays, ExecMode::Traditional,
               opts, faultSeed, "trad", program.name);
    if (!trad.ok)
        v.failures.push_back(trad.fail);
    const RunOutcome spec =
        runOne(cm.program, cm.module.arrays, ExecMode::Specialized,
               opts, faultSeed, "spec", program.name);
    if (!spec.ok)
        v.failures.push_back(spec.fail);
    if (trad.ok && spec.ok)
        compareArrays(trad, spec, "compare", v);

    if (program.useFission && opts.checkFission) {
        FrontendOptions fopt;
        fopt.fission = true;
        CompiledModule fm;
        try {
            fm = compileModule(parsed, fopt);
        } catch (const FatalError &e) {
            v.failures.push_back({"fission-compile", e.what()});
            return v;
        }
        if (opts.checkTruth)
            checkTruths(fm.loops, program.fissionTruths,
                        "fission-truth", v);
        const RunOutcome ftrad =
            runOne(fm.program, fm.module.arrays, ExecMode::Traditional,
                   opts, faultSeed, "fission-trad", program.name);
        if (!ftrad.ok)
            v.failures.push_back(ftrad.fail);
        const RunOutcome fspec =
            runOne(fm.program, fm.module.arrays, ExecMode::Specialized,
                   opts, faultSeed, "fission-spec", program.name);
        if (!fspec.ok)
            v.failures.push_back(fspec.fail);
        // Fission must preserve serial semantics (fissioned
        // traditional vs the unfissioned reference) and specialized
        // execution of the fissioned binary must match in turn.
        if (trad.ok && ftrad.ok)
            compareArrays(trad, ftrad, "fission-semantics", v);
        if (ftrad.ok && fspec.ok)
            compareArrays(ftrad, fspec, "fission-compare", v);
    }
    return v;
}

CorpusCase
loadCorpusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read corpus file: " + path);
    CorpusCase c;
    c.path = path;
    std::string line;
    std::ostringstream all;
    auto splitList = [](std::string rest) {
        std::vector<std::string> items;
        std::string item;
        std::istringstream ss(rest);
        while (std::getline(ss, item, ',')) {
            const size_t b = item.find_first_not_of(" \t");
            const size_t e = item.find_last_not_of(" \t");
            if (b != std::string::npos)
                items.push_back(item.substr(b, e - b + 1));
        }
        return items;
    };
    while (std::getline(in, line)) {
        all << line << "\n";
        if (line.rfind("//!", 0) != 0)
            continue;
        const std::string body = line.substr(3);
        const size_t colon = body.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = body.substr(0, colon);
        const size_t kb = key.find_first_not_of(" \t");
        const size_t ke = key.find_last_not_of(" \t");
        key = kb == std::string::npos ? "" : key.substr(kb, ke - kb + 1);
        const std::string rest = body.substr(colon + 1);
        if (key == "expect")
            c.expect = splitList(rest);
        else if (key == "fission-expect")
            c.fissionExpect = splitList(rest);
        else if (key == "options") {
            for (const std::string &opt : splitList(rest)) {
                if (opt == "fission")
                    c.fission = true;
                else
                    fatal(path + ": unknown //! option: " + opt);
            }
        } else if (key == "seed") {
            c.seed = std::stoull(rest);
        }
        // unknown keys are ignored (forward compatibility)
    }
    c.source = all.str();
    if (c.expect.empty())
        fatal(path + ": missing //! expect: directive");
    if (c.fission && c.fissionExpect.empty())
        fatal(path + ": fission option without //! fission-expect:");
    return c;
}

FuzzVerdict
checkCorpusCase(const CorpusCase &c, const FuzzOptions &opts)
{
    GenProgram p;
    const size_t slash = c.path.find_last_of('/');
    p.name = slash == std::string::npos ? c.path
                                        : c.path.substr(slash + 1);
    p.source = c.source;
    p.truths = c.expect;
    p.useFission = c.fission;
    p.fissionTruths = c.fissionExpect;
    FuzzOptions o = opts;
    o.injectSeed = c.seed;
    return checkProgram(p, o);
}

} // namespace xloops
