#include "fuzz/gen.h"

#include "common/rng.h"
#include "frontend/render.h"

namespace xloops {

namespace {

const std::vector<std::string> kRecipes = {
    "indep",     "regdep",  "memdep",   "mixed",
    "gather",    "indirect", "histogram", "dynbound",
    "dde",       "fission", "tripcount", "nested",
};

/**
 * One generation run. Every random draw comes from a single
 * xorshift64* stream seeded by mix64(seed), so the same seed yields
 * the same program everywhere.
 */
class Gen
{
  public:
    explicit Gen(u64 seed) : rng(mix64(seed ? seed : 0x5eed))
    {
        out.seed = seed;
    }

    GenProgram
    run()
    {
        trip = rng.nextRange(2, 12);
        out.recipe = kRecipes[rng.nextBelow(
            static_cast<u32>(kRecipes.size()))];
        out.name = "gen-" + out.recipe + "-" + std::to_string(out.seed);

        // Shared input array, sized for every offset any recipe uses.
        declArray("A", static_cast<unsigned>(trip) + 12, -8, 31);
        paramName = "p0";
        let(paramName, cst(rng.nextRange(-16, 31)));

        if (out.recipe == "indep")          buildIndep();
        else if (out.recipe == "regdep")    buildRegdep();
        else if (out.recipe == "memdep")    buildMemdep();
        else if (out.recipe == "mixed")     buildMixed();
        else if (out.recipe == "gather")    buildGather();
        else if (out.recipe == "indirect")  buildIndirect();
        else if (out.recipe == "histogram") buildHistogram();
        else if (out.recipe == "dynbound")  buildDynbound();
        else if (out.recipe == "dde")       buildDde();
        else if (out.recipe == "fission")   buildFission();
        else if (out.recipe == "tripcount") buildTripcount();
        else                                buildNested();

        // Occasionally append an unrelated independent loop; skipped
        // for the register-hungry recipes (fission splits into extra
        // loops; nested already runs three).
        if (out.recipe != "fission" && out.recipe != "nested" &&
            rng.nextBelow(4) == 0)
            extraLoop();

        out.source = renderModule(out.module);
        return std::move(out);
    }

  private:
    // --- building blocks ------------------------------------------

    void
    declArray(const std::string &name, unsigned words, i32 lo, i32 hi)
    {
        ArrayDeclInfo decl;
        decl.name = name;
        decl.words = words;
        for (unsigned i = 0; i < words; i++)
            decl.init.push_back(rng.nextRange(lo, hi));
        out.module.arrays.push_back(std::move(decl));
    }

    void
    declZeroArray(const std::string &name, unsigned words)
    {
        ArrayDeclInfo decl;
        decl.name = name;
        decl.words = words;
        out.module.arrays.push_back(std::move(decl));
    }

    void
    let(const std::string &name, ExprPtr value)
    {
        out.module.topLevel.push_back(assign(name, std::move(value)));
    }

    Loop
    newLoop(const std::string &iv, ExprPtr upper, Pragma pragma)
    {
        Loop loop;
        loop.iv = iv;
        loop.lower = cst(0);
        loop.upper = std::move(upper);
        loop.pragma = pragma;
        loop.hintSpecialize = rng.nextBelow(8) != 0;  // rare nohint
        return loop;
    }

    void
    pushLoop(Loop loop, const std::string &truth)
    {
        out.module.topLevel.push_back(nested(std::move(loop)));
        out.truths.push_back(truth);
    }

    Pragma
    orderedOrAuto()
    {
        return rng.nextBelow(2) ? Pragma::Auto : Pragma::Ordered;
    }

    /** Read-only filler expression: constants, the iv, the parameter,
     *  and bounded-offset loads of the read-only input array — never
     *  anything a recipe writes, so filler cannot perturb truth. */
    ExprPtr
    value(const std::string &iv, unsigned depth)
    {
        if (depth > 0 && rng.nextBelow(2) == 0) {
            static const BinOp ops[] = {
                BinOp::Add, BinOp::Add, BinOp::Sub, BinOp::Xor,
                BinOp::And, BinOp::Or,  BinOp::Min, BinOp::Max,
            };
            const BinOp op = ops[rng.nextBelow(8)];
            return bin(op, value(iv, depth - 1), value(iv, depth - 1));
        }
        switch (rng.nextBelow(5)) {
          case 0: return cst(rng.nextRange(-32, 63));
          case 1: return var(iv);
          case 2: return var(paramName);
          case 3: return mul(var(iv), cst(rng.nextRange(1, 4)));
          default:
            return ld("A", rng.nextBelow(2)
                               ? var(iv)
                               : add(var(iv), cst(1)));
        }
    }

    // --- recipes --------------------------------------------------

    void
    buildIndep()
    {
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        const Pragma pr =
            rng.nextBelow(2) ? Pragma::Auto : Pragma::Unordered;
        Loop loop = newLoop("i", cst(trip), pr);
        if (rng.nextBelow(2)) {
            loop.body.push_back(
                ifThen(bin(BinOp::Gt, ld("A", var("i")), cst(0)),
                       {store("B", var("i"), value("i", 2))},
                       {store("B", var("i"), value("i", 1))}));
        } else {
            loop.body.push_back(store("B", var("i"), value("i", 2)));
        }
        pushLoop(std::move(loop), "uc");
    }

    void
    buildRegdep()
    {
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        let("s", cst(rng.nextRange(0, 8)));
        static const BinOp accOps[] = {BinOp::Add, BinOp::Add,
                                       BinOp::Xor, BinOp::Min,
                                       BinOp::Max};
        Loop loop = newLoop("i", cst(trip), orderedOrAuto());
        loop.body.push_back(assign(
            "s", bin(accOps[rng.nextBelow(5)], var("s"),
                     value("i", 1))));
        if (rng.nextBelow(2))
            loop.body.push_back(store("B", var("i"), var("s")));
        pushLoop(std::move(loop), "or");
    }

    void
    buildMemdep()
    {
        const i32 d = rng.nextRange(1, 3);
        const Pragma pr = orderedOrAuto();
        if (rng.nextBelow(2)) {
            // Forward: B[i + d] = B[i] + v, carried flow distance d.
            declArray("B", static_cast<unsigned>(trip + d) + 4, -8, 15);
            Loop loop = newLoop("i", cst(trip), pr);
            loop.body.push_back(
                store("B", add(var("i"), cst(d)),
                      add(ld("B", var("i")), value("i", 1))));
            pushLoop(std::move(loop), "om");
        } else {
            // Reversed stride: write B[M - i], read B[M + d - i]
            // (coefficient -1, still a proven constant distance).
            const i32 m = trip + d;
            declArray("B", static_cast<unsigned>(m + d) + 4, -8, 15);
            Loop loop = newLoop("i", cst(trip), pr);
            loop.body.push_back(
                store("B", sub(cst(m), var("i")),
                      add(ld("B", sub(cst(m + d), var("i"))),
                          value("i", 1))));
            pushLoop(std::move(loop), "om");
        }
    }

    void
    buildMixed()
    {
        const i32 d = rng.nextRange(1, 3);
        declArray("B", static_cast<unsigned>(trip + d) + 4, -8, 15);
        let("s", cst(0));
        Loop loop = newLoop("i", cst(trip), orderedOrAuto());
        loop.body.push_back(
            assign("s", add(var("s"), ld("B", var("i")))));
        loop.body.push_back(store("B", add(var("i"), cst(d)),
                                  add(var("s"), value("i", 1))));
        pushLoop(std::move(loop), "orm");
    }

    void
    buildGather()
    {
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        ArrayDeclInfo idx;
        idx.name = "C";
        idx.words = static_cast<unsigned>(trip) + 2;
        for (unsigned i = 0; i < idx.words; i++)
            idx.init.push_back(rng.nextRange(0, trip + 11));  // into A
        out.module.arrays.push_back(std::move(idx));
        const Pragma pr =
            rng.nextBelow(2) ? Pragma::Auto : Pragma::Unordered;
        Loop loop = newLoop("i", cst(trip), pr);
        loop.body.push_back(
            store("B", var("i"),
                  add(ld("A", ld("C", var("i"))), value("i", 1))));
        pushLoop(std::move(loop), "uc");
    }

    void
    buildIndirect()
    {
        const unsigned bWords = static_cast<unsigned>(trip) + 4;
        declArray("B", bWords, -8, 15);
        ArrayDeclInfo idx;
        idx.name = "C";
        idx.words = static_cast<unsigned>(trip) + 2;
        for (unsigned i = 0; i < idx.words; i++)
            idx.init.push_back(
                rng.nextRange(0, static_cast<i32>(bWords) - 1));
        out.module.arrays.push_back(std::move(idx));
        const Pragma pr = orderedOrAuto();
        Loop loop = newLoop("i", cst(trip), pr);
        // Scatter read-modify-write through C: the subscript is a
        // load, so the SIV tests are inconclusive — an `auto` loop
        // here is the canonical speculative DOACROSS.
        loop.body.push_back(
            store("B", ld("C", var("i")),
                  add(ld("B", ld("C", var("i"))), value("i", 1))));
        pushLoop(std::move(loop), pr == Pragma::Auto ? "om?" : "om");
    }

    void
    buildHistogram()
    {
        declZeroArray("H", 8);
        Loop loop = newLoop("i", cst(trip), Pragma::Atomic);
        const ExprPtr slot = bin(BinOp::And, ld("A", var("i")), cst(7));
        // Commutative update only (+ constant or + A[i]): unordered
        // atomic execution must stay byte-identical to serial.
        const ExprPtr weight =
            rng.nextBelow(2) ? cst(1) : ld("A", var("i"));
        loop.body.push_back(
            store("H", slot, add(ld("H", slot), weight)));
        pushLoop(std::move(loop), "ua");
    }

    void
    buildDynbound()
    {
        // The LMU merges .db bound writes with a max (the worklist
        // idiom of Figure 1(e)), so a body may only *raise* the
        // bound: a decrement is honored by serial execution but
        // ignored by the max-merge, which is exactly the divergence
        // the fuzzer's first run caught. The monotone race-free form
        // n = max(n, min(i + 2, cap)) reaches the same executed-set
        // fixpoint in any iteration order, so every array stays
        // serial-equivalent and the loop terminates at cap.
        const i32 cap = trip + 3;
        declZeroArray("B", static_cast<unsigned>(cap) + 2);
        let("n", cst(trip));
        const Pragma pr = orderedOrAuto();
        Loop loop = newLoop("i", var("n"), pr);
        std::string truth;
        if (pr == Pragma::Auto && rng.nextBelow(2)) {
            // No carried deps at all: auto must still promote the
            // dynamic bound to an ordered commit (uc.db would be
            // worklist semantics, not serial-equivalent).
            loop.body.push_back(store("B", var("i"), value("i", 1)));
            truth = "om.db";
        } else {
            let("s", cst(0));
            loop.body.push_back(
                assign("s", add(var("s"), ld("A", var("i")))));
            loop.body.push_back(store("B", var("i"), var("s")));
            truth = "or.db";
        }
        loop.body.push_back(ifThen(
            bin(BinOp::Eq,
                bin(BinOp::And, ld("A", var("i")), cst(1)), cst(1)),
            {assign("n",
                    bin(BinOp::Max, var("n"),
                        bin(BinOp::Min, add(var("i"), cst(2)),
                            cst(cap))))},
            {}));
        pushLoop(std::move(loop), truth);
    }

    void
    buildDde()
    {
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        const Pragma pr = orderedOrAuto();
        const i32 threshold = rng.nextRange(3, 40);
        Loop loop = newLoop("i", cst(trip), pr);
        if (rng.nextBelow(2)) {
            // Accumulating search: CIR + exit -> orm.de.
            let("s", cst(0));
            loop.body.push_back(assign(
                "s", add(var("s"),
                         add(bin(BinOp::And, ld("A", var("i")), cst(7)),
                             cst(1)))));
            loop.body.push_back(store("B", var("i"), var("s")));
            loop.body.push_back(
                exitWhen(bin(BinOp::Gt, var("s"), cst(threshold))));
            pushLoop(std::move(loop), "orm.de");
        } else {
            // Pure scan: no carried deps, exit forces om.de.
            loop.body.push_back(store("B", var("i"), value("i", 1)));
            loop.body.push_back(exitWhen(
                bin(BinOp::Gt, ld("A", var("i")), cst(threshold))));
            pushLoop(std::move(loop), "om.de");
        }
    }

    void
    buildFission()
    {
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        declZeroArray("C", static_cast<unsigned>(trip) + 4);
        let("s", cst(0));
        Loop loop = newLoop("i", cst(trip), orderedOrAuto());
        loop.body.push_back(store("B", var("i"), value("i", 1)));
        loop.body.push_back(
            assign("s", add(var("s"), ld("A", var("i")))));
        loop.body.push_back(store("C", var("i"), var("s")));
        pushLoop(std::move(loop), "or");
        out.useFission = true;
        out.fissionTruths = {"uc", "or"};
    }

    void
    buildTripcount()
    {
        // Zero- and single-trip loops over a normal body.
        trip = static_cast<i32>(rng.nextBelow(2));
        if (rng.nextBelow(2))
            buildIndep();
        else
            buildRegdep();
    }

    void
    buildNested()
    {
        const i32 inner = rng.nextRange(2, 6);
        declZeroArray("B", static_cast<unsigned>(trip) + 4);
        let("s", cst(0));
        const Pragma pr = orderedOrAuto();
        Loop outer = newLoop("i", cst(trip), pr);
        Loop innerLoop = newLoop("j", cst(inner), Pragma::None);
        innerLoop.hintSpecialize = true;
        std::string truth;
        if (rng.nextBelow(2)) {
            // Inner serial loop stores through its own iv: opaque to
            // the outer SIV tests -> assumed carried (speculative
            // under auto).
            declZeroArray("D", static_cast<unsigned>(inner) + 2);
            innerLoop.body.push_back(
                assign("s", add(var("s"), ld("A", var("j")))));
            innerLoop.body.push_back(store("D", var("j"), var("s")));
            truth = pr == Pragma::Auto ? "orm?" : "orm";
        } else {
            innerLoop.body.push_back(
                assign("s", add(var("s"), ld("A", var("j")))));
            truth = "or";
        }
        outer.body.push_back(nested(std::move(innerLoop)));
        outer.body.push_back(store("B", var("i"), var("s")));
        pushLoop(std::move(outer), truth);
        out.truths.push_back("serial");  // the inner loop, pre-order
    }

    void
    extraLoop()
    {
        declZeroArray("D", 12);
        Loop loop = newLoop("k", cst(6), Pragma::Unordered);
        loop.body.push_back(store("D", var("k"), value("k", 1)));
        pushLoop(std::move(loop), "uc");
    }

    Rng rng;
    GenProgram out;
    std::string paramName;
    i32 trip = 4;
};

} // namespace

GenProgram
generateProgram(u64 seed)
{
    return Gen(seed).run();
}

const std::vector<std::string> &
recipeNames()
{
    return kRecipes;
}

} // namespace xloops
