/**
 * @file
 * The differential fuzz property. One generated (or corpus) program
 * is checked in phases:
 *
 *   parse          the rendered source re-parses
 *   truth          analyzer verdicts == by-construction ground truth
 *   compile        the backend lowers and assembles the module
 *   trad / spec    traditional and specialized runs complete, each
 *                  under the lockstep checker; the specialized run
 *                  also takes seeded timing-fault injection
 *   compare        every declared array is byte-identical between
 *                  the two runs
 *   fission-*      the same, for the fission-prepass build of
 *                  fission-candidate programs (specialized fissioned
 *                  output is compared against the unfissioned
 *                  traditional reference)
 *
 * Failures carry the phase name so the shrinker can pin "the same
 * failure" while minimizing, and a SimError during a run can be
 * written out as a replayable divergence capsule.
 */

#ifndef XLOOPS_FUZZ_HARNESS_H
#define XLOOPS_FUZZ_HARNESS_H

#include "fuzz/gen.h"

namespace xloops {

/** Knobs for one property check. */
struct FuzzOptions
{
    std::string configName = "io+x";
    double injectRate = 0.05;  ///< uniform timing-fault rate
    u64 injectSeed = 0;        ///< 0: derive from the program seed
    bool lockstep = true;
    bool checkTruth = true;    ///< phase `truth` (off while shrinking
                               ///< execution failures)
    bool checkFission = true;  ///< fission phases for candidates
    u64 maxInsts = 2'000'000;
    std::string capsuleDir;    ///< non-empty: write capsules on
                               ///< SimError during a run
};

/** One phase failure. */
struct FuzzFailure
{
    std::string phase;
    std::string detail;
};

/** All failures of one program (empty == property held). */
struct FuzzVerdict
{
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
    std::string firstPhase() const
    {
        return failures.empty() ? "" : failures.front().phase;
    }
};

/** Run every phase against @p program. Never throws: all expected
 *  error classes (FrontendError, FatalError, SimError) become
 *  failures; only simulator-bug PanicErrors propagate. */
FuzzVerdict checkProgram(const GenProgram &program,
                         const FuzzOptions &opts);

/**
 * A corpus file: xl source annotated with `//!` directives —
 *   //! expect: <describe list>           analyzer oracle (required)
 *   //! options: fission                  also check the fission build
 *   //! fission-expect: <describe list>   post-fission oracle
 *   //! seed: <n>                         fault-injection seed
 */
struct CorpusCase
{
    std::string path;
    std::string source;
    std::vector<std::string> expect;
    bool fission = false;
    std::vector<std::string> fissionExpect;
    u64 seed = 1;
};

/** Load a corpus file; throws FatalError on unreadable files or
 *  missing/garbled directives. */
CorpusCase loadCorpusFile(const std::string &path);

/** Replay one corpus case byte-identically: truth phase against its
 *  `expect` directives, then the differential run. */
FuzzVerdict checkCorpusCase(const CorpusCase &c, const FuzzOptions &opts);

} // namespace xloops

#endif // XLOOPS_FUZZ_HARNESS_H
