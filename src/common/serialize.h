/**
 * @file
 * Shared helpers for the checkpoint/capsule serialization layer: hex
 * blob codecs for memory pages and predictor tables, and bit-exact
 * double round-tripping (doubles are stored as their IEEE-754 bit
 * pattern so a restored run reproduces byte-identical statistics).
 *
 * Components participate in checkpointing by implementing the pair
 *   void saveState(JsonWriter &w) const;  // fields of current object
 *   void loadState(const JsonValue &v);   // inverse
 * and the system-level writer (system/checkpoint.cc) composes them.
 */

#ifndef XLOOPS_COMMON_SERIALIZE_H
#define XLOOPS_COMMON_SERIALIZE_H

#include <string>
#include <vector>

#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/** Lowercase hex encoding of @p n bytes. */
std::string hexEncode(const u8 *bytes, size_t n);

/** Inverse of hexEncode; throws FatalError on odd length / bad digit. */
std::vector<u8> hexDecode(const std::string &hex);

/** IEEE-754 bit pattern of @p v as "0x..." (exact round trip). */
std::string doubleBits(double v);

/** Inverse of doubleBits. */
double doubleFromBits(const std::string &s);

/** Parse a "0x..." or decimal u64 string; throws on malformed input. */
u64 parseU64(const std::string &s);

/** Emit @p values as a JSON array of u64. */
void writeU64Array(JsonWriter &w, const std::vector<u64> &values);

/** Read a JSON array of u64. */
std::vector<u64> readU64Array(const JsonValue &v);

/** CRC-32 (IEEE 802.3, the zlib polynomial) of @p n bytes, chainable
 *  via @p seed. The framing checksum of the job journal and the
 *  per-entry content checksum of the result cache — zlib.crc32 in
 *  tools/check_journal.py verifies the same values from Python. */
u32 crc32(const void *data, size_t n, u32 seed = 0);
u32 crc32(const std::string &text, u32 seed = 0);

/**
 * Crash-consistent file replacement: write @p text to a temporary
 * sibling, fsync it, rename() it over @p path, then fsync the
 * containing directory. A reader (or a daemon restarting after
 * `kill -9`) sees either the old complete file or the new complete
 * file, never a torn mix. Throws FatalError on any I/O failure (the
 * temporary is cleaned up).
 */
void atomicWriteFile(const std::string &path, const std::string &text);

} // namespace xloops

#endif // XLOOPS_COMMON_SERIALIZE_H
