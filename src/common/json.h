/**
 * @file
 * Minimal JSON emission shared by every machine-readable output path
 * (`xsim --stats-json`, `xsim --trace`, the bench reporters). One
 * escaping/formatting implementation so all producers agree, plus a
 * small validating parser for tests and tools.
 */

#ifndef XLOOPS_COMMON_JSON_H
#define XLOOPS_COMMON_JSON_H

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace xloops {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Inverse of jsonEscape (resolves \uXXXX to UTF-8). */
std::string jsonUnescape(const std::string &s);

/** True when @p text is one complete, well-formed JSON value. */
bool jsonValidate(const std::string &text);

/**
 * Streaming JSON writer with explicit structure calls. Callers are
 * responsible for key order; producers in this codebase iterate
 * std::map so output is deterministically sorted.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, bool pretty = true);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(unsigned v) { return value(static_cast<u64>(v)); }
    JsonWriter &value(int v) { return value(static_cast<i64>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void separate();
    void newline();

    std::ostream &os;
    bool pretty;
    bool pendingKey = false;

    struct Level
    {
        bool isObject;
        size_t count;
    };
    std::vector<Level> stack;
};

} // namespace xloops

#endif // XLOOPS_COMMON_JSON_H
