/**
 * @file
 * Minimal JSON emission shared by every machine-readable output path
 * (`xsim --stats-json`, `xsim --trace`, the bench reporters). One
 * escaping/formatting implementation so all producers agree, plus a
 * small validating parser for tests and tools.
 */

#ifndef XLOOPS_COMMON_JSON_H
#define XLOOPS_COMMON_JSON_H

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace xloops {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Inverse of jsonEscape (resolves \uXXXX to UTF-8). */
std::string jsonUnescape(const std::string &s);

/** True when @p text is one complete, well-formed JSON value. */
bool jsonValidate(const std::string &text);

class JsonWriter;

/**
 * A parsed JSON value (checkpoints, capsules, tooling round trips).
 *
 * Numbers keep their source lexeme so 64-bit integers (RNG states,
 * cycle counts) never pass through a double: asU64()/asI64() parse the
 * lexeme exactly and throw FatalError on range or syntax violations.
 */
class JsonValue
{
  public:
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }

    bool asBool() const;
    u64 asU64() const;
    i64 asI64() const;
    double asDouble() const;
    const std::string &asString() const;

    const std::vector<JsonValue> &array() const;

    /** Object members in source order (producers emit sorted keys). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    bool has(const std::string &name) const;

    /** Member @p name; throws FatalError when absent. */
    const JsonValue &at(const std::string &name) const;

    /** Member @p name, or @p fallback when absent. */
    u64 getU64(const std::string &name, u64 fallback) const;

  private:
    friend JsonValue jsonParse(const std::string &text);
    friend struct ValueParser;
    friend class JsonWriter;
    friend void writeJsonValue(JsonWriter &w, const JsonValue &v);

    Kind k = Kind::Null;
    bool boolean = false;
    std::string text;  ///< string payload, or the number lexeme
    std::vector<JsonValue> elems;
    std::vector<std::pair<std::string, JsonValue>> fields;
};

/** Parse one complete JSON value; throws FatalError on malformed input. */
JsonValue jsonParse(const std::string &text);

/** Re-emit a parsed tree as the writer's next value, preserving number
 *  lexemes exactly (capsules embed whole checkpoint documents). */
void writeJsonValue(JsonWriter &w, const JsonValue &v);

/**
 * Streaming JSON writer with explicit structure calls. Callers are
 * responsible for key order; producers in this codebase iterate
 * std::map so output is deterministically sorted.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, bool pretty = true);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(unsigned v) { return value(static_cast<u64>(v)); }
    JsonWriter &value(int v) { return value(static_cast<i64>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** Emit a number lexeme verbatim (exact JsonValue round trips). */
    JsonWriter &rawNumber(const std::string &lexeme);

    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void separate();
    void newline();

    std::ostream &os;
    bool pretty;
    bool pendingKey = false;

    struct Level
    {
        bool isObject;
        size_t count;
    };
    std::vector<Level> stack;
};

} // namespace xloops

#endif // XLOOPS_COMMON_JSON_H
