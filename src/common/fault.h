/**
 * @file
 * Deterministic, seed-driven fault injection for adversarial-schedule
 * testing of specialized execution.
 *
 * The paper's contract is that the same binary is *architecturally*
 * correct under every interleaving: specialized execution must match
 * serial semantics even under squash storms, structural-hazard
 * pressure, and adaptive migration. The FaultInjector perturbs the
 * cycle-level model along exactly those axes — memory-latency jitter,
 * forced lane squashes, forced CIB/LSQ structural pressure, delayed
 * store-address broadcasts, and mid-loop migration triggers — without
 * ever being allowed to change architectural state directly. Every
 * injected schedule must therefore still pass the kernel golden
 * checkers; the injector only shakes the timing tree.
 *
 * Injection is off by default (seed == 0) and the hot-path guard is a
 * single branch on a bool, so disabled overhead is ~0 (see
 * bench/ablation_faults).
 */

#ifndef XLOOPS_COMMON_FAULT_H
#define XLOOPS_COMMON_FAULT_H

#include "common/rng.h"
#include "common/types.h"

namespace xloops {

/** Per-fault-class rates; all probabilities are per opportunity. */
struct FaultConfig
{
    u64 seed = 0;                   ///< 0 disables injection entirely

    double memJitterRate = 0.0;     ///< extra d-cache latency, per access
    unsigned memJitterMax = 8;      ///< jitter in [1, memJitterMax] cycles

    double squashRate = 0.0;        ///< forced squash, per spec ctx-cycle

    double cibPressureRate = 0.0;   ///< forced CIB-full, per check
    double lsqPressureRate = 0.0;   ///< forced LSQ-full, per check

    double broadcastDelayRate = 0.0;  ///< delay a store broadcast
    unsigned broadcastDelayMax = 6;   ///< delay in [1, broadcastDelayMax]

    double migrationRate = 0.0;     ///< mid-loop migration, per commit

    bool enabled() const { return seed != 0; }

    /** All fault classes at the same @p rate (the CLI's --inject-rate). */
    static FaultConfig uniform(u64 seed, double rate);
};

/**
 * Deterministic fault source. One instance per LPSU; its RNG stream
 * depends only on (seed, sequence of queries), so a given (program,
 * config, seed) triple replays the exact same adversarial schedule.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), rng(config.seed), on(config.enabled())
    {}

    /** Fast-path guard: callers must skip all hooks when false. */
    bool enabled() const { return on; }

    /** Extra memory latency in cycles (0 = no fault). */
    Cycle
    memJitter()
    {
        if (!roll(cfg.memJitterRate))
            return 0;
        jitters++;
        return 1 + rng.nextBelow(cfg.memJitterMax);
    }

    /** Force a speculative context to squash and restart. */
    bool
    forceSquash()
    {
        if (!roll(cfg.squashRate))
            return false;
        squashes++;
        return true;
    }

    /** Pretend a CIB slot check saw a full buffer. */
    bool
    forceCibFull()
    {
        if (!roll(cfg.cibPressureRate))
            return false;
        cibPressures++;
        return true;
    }

    /** Pretend an LSQ capacity check saw a full queue. */
    bool
    forceLsqFull()
    {
        if (!roll(cfg.lsqPressureRate))
            return false;
        lsqPressures++;
        return true;
    }

    /** Delay for a store-address broadcast in cycles (0 = immediate). */
    Cycle
    broadcastDelay()
    {
        if (!roll(cfg.broadcastDelayRate))
            return 0;
        broadcastDelays++;
        return 1 + rng.nextBelow(cfg.broadcastDelayMax);
    }

    /** Trigger a mid-loop migration back to the GPP. */
    bool
    triggerMigration()
    {
        if (!roll(cfg.migrationRate))
            return false;
        migrations++;
        return true;
    }

    u64 injectedJitters() const { return jitters; }
    u64 injectedSquashes() const { return squashes; }
    u64 injectedCibPressures() const { return cibPressures; }
    u64 injectedLsqPressures() const { return lsqPressures; }
    u64 injectedBroadcastDelays() const { return broadcastDelays; }
    u64 injectedMigrations() const { return migrations; }

  private:
    bool
    roll(double rate)
    {
        if (!on || rate <= 0.0)
            return false;
        return rng.nextFloat() < rate;
    }

    FaultConfig cfg;
    Rng rng;
    bool on = false;

    u64 jitters = 0;
    u64 squashes = 0;
    u64 cibPressures = 0;
    u64 lsqPressures = 0;
    u64 broadcastDelays = 0;
    u64 migrations = 0;
};

} // namespace xloops

#endif // XLOOPS_COMMON_FAULT_H
