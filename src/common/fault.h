/**
 * @file
 * Deterministic, seed-driven fault injection for adversarial-schedule
 * testing of specialized execution.
 *
 * The paper's contract is that the same binary is *architecturally*
 * correct under every interleaving: specialized execution must match
 * serial semantics even under squash storms, structural-hazard
 * pressure, and adaptive migration. The FaultInjector perturbs the
 * cycle-level model along exactly those axes — memory-latency jitter,
 * forced lane squashes, forced CIB/LSQ structural pressure, delayed
 * store-address broadcasts, and mid-loop migration triggers — without
 * ever being allowed to change architectural state directly. Every
 * injected schedule must therefore still pass the kernel golden
 * checkers; the injector only shakes the timing tree.
 *
 * One deliberate exception exists for exercising the differential
 * lockstep checker: the *architectural corruption* class (off unless
 * archCorruptRate is set explicitly; never part of uniform()) flips a
 * bit in a register handed back by the LPSU. It models the failure the
 * lockstep checker is built to catch, so a seeded corruption becomes a
 * reproducible Divergence capsule instead of a silent wrong answer.
 *
 * Every stochastic choice draws from a *named* RNG stream (one per
 * fault class) of an RngPool: one class's consumption never perturbs
 * another's schedule, and the pool state is captured/restored by
 * checkpoints, so replay is deterministic even mid-fault-storm.
 *
 * Injection is off by default (seed == 0) and the hot-path guard is a
 * single branch on a bool, so disabled overhead is ~0 (see
 * bench/ablation_faults).
 */

#ifndef XLOOPS_COMMON_FAULT_H
#define XLOOPS_COMMON_FAULT_H

#include "common/rng.h"
#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/** Per-fault-class rates; all probabilities are per opportunity. */
struct FaultConfig
{
    u64 seed = 0;                   ///< 0 disables injection entirely

    double memJitterRate = 0.0;     ///< extra d-cache latency, per access
    unsigned memJitterMax = 8;      ///< jitter in [1, memJitterMax] cycles

    double squashRate = 0.0;        ///< forced squash, per spec ctx-cycle

    double cibPressureRate = 0.0;   ///< forced CIB-full, per check
    double lsqPressureRate = 0.0;   ///< forced LSQ-full, per check

    double broadcastDelayRate = 0.0;  ///< delay a store broadcast
    unsigned broadcastDelayMax = 6;   ///< delay in [1, broadcastDelayMax]

    double migrationRate = 0.0;     ///< mid-loop migration, per commit

    /** Architectural register corruption, per LPSU hand-back. NOT a
     *  timing fault: it breaks the architectural contract on purpose
     *  so the lockstep checker has a real divergence to catch. Never
     *  enabled by uniform(); only by an explicit CLI/test request. */
    double archCorruptRate = 0.0;

    bool enabled() const { return seed != 0; }

    /** All timing-fault classes at the same @p rate (the CLI's
     *  --inject-rate); archCorruptRate stays 0. */
    static FaultConfig uniform(u64 seed, double rate);
};

/**
 * Deterministic fault source. One instance per LPSU; each fault class
 * draws from its own named stream, so a given (program, config, seed)
 * triple replays the exact same adversarial schedule, and restoring a
 * checkpoint mid-run resumes the same schedule.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), pool(config.seed), on(config.enabled())
    {
        bindStreams();
    }

    FaultInjector(const FaultInjector &other) { *this = other; }

    FaultInjector &
    operator=(const FaultInjector &other)
    {
        cfg = other.cfg;
        pool = other.pool;
        on = other.on;
        jitters = other.jitters;
        squashes = other.squashes;
        cibPressures = other.cibPressures;
        lsqPressures = other.lsqPressures;
        broadcastDelays = other.broadcastDelays;
        migrations = other.migrations;
        archCorruptions = other.archCorruptions;
        bindStreams();
        return *this;
    }

    /** Fast-path guard: callers must skip all hooks when false. */
    bool enabled() const { return on; }

    /** Extra memory latency in cycles (0 = no fault). */
    Cycle
    memJitter()
    {
        if (!roll(jitterRng, cfg.memJitterRate))
            return 0;
        jitters++;
        return 1 + jitterRng->nextBelow(cfg.memJitterMax);
    }

    /** Force a speculative context to squash and restart. */
    bool
    forceSquash()
    {
        if (!roll(squashRng, cfg.squashRate))
            return false;
        squashes++;
        return true;
    }

    /** Pretend a CIB slot check saw a full buffer. */
    bool
    forceCibFull()
    {
        if (!roll(cibRng, cfg.cibPressureRate))
            return false;
        cibPressures++;
        return true;
    }

    /** Pretend an LSQ capacity check saw a full queue. */
    bool
    forceLsqFull()
    {
        if (!roll(lsqRng, cfg.lsqPressureRate))
            return false;
        lsqPressures++;
        return true;
    }

    /** Delay for a store-address broadcast in cycles (0 = immediate). */
    Cycle
    broadcastDelay()
    {
        if (!roll(broadcastRng, cfg.broadcastDelayRate))
            return 0;
        broadcastDelays++;
        return 1 + broadcastRng->nextBelow(cfg.broadcastDelayMax);
    }

    /** Trigger a mid-loop migration back to the GPP. */
    bool
    triggerMigration()
    {
        if (!roll(migrationRng, cfg.migrationRate))
            return false;
        migrations++;
        return true;
    }

    /**
     * Architectural corruption opportunity (one per LPSU hand-back):
     * returns the bit to flip (register index in [1,31] in the high
     * byte, bit position in the low byte), or 0 for no corruption.
     */
    u32
    corruptHandBack()
    {
        if (!roll(archRng, cfg.archCorruptRate))
            return 0;
        archCorruptions++;
        const u32 reg = 1 + archRng->nextBelow(31);  // r1..r31
        const u32 bit = archRng->nextBelow(32);
        return (reg << 8) | bit;
    }

    u64 injectedJitters() const { return jitters; }
    u64 injectedSquashes() const { return squashes; }
    u64 injectedCibPressures() const { return cibPressures; }
    u64 injectedLsqPressures() const { return lsqPressures; }
    u64 injectedBroadcastDelays() const { return broadcastDelays; }
    u64 injectedMigrations() const { return migrations; }
    u64 injectedArchCorruptions() const { return archCorruptions; }

    /** Checkpoint capture: RNG stream states plus event counters. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    void
    bindStreams()
    {
        jitterRng = &pool.stream("fault.memjitter");
        squashRng = &pool.stream("fault.squash");
        cibRng = &pool.stream("fault.cib");
        lsqRng = &pool.stream("fault.lsq");
        broadcastRng = &pool.stream("fault.broadcast");
        migrationRng = &pool.stream("fault.migration");
        archRng = &pool.stream("fault.arch");
    }

    bool
    roll(Rng *rng, double rate)
    {
        if (!on || rate <= 0.0)
            return false;
        return rng->nextFloat() < rate;
    }

    FaultConfig cfg;
    RngPool pool;
    bool on = false;

    // Bound once (map nodes are pointer-stable); rebound on copy/load.
    Rng *jitterRng = nullptr;
    Rng *squashRng = nullptr;
    Rng *cibRng = nullptr;
    Rng *lsqRng = nullptr;
    Rng *broadcastRng = nullptr;
    Rng *migrationRng = nullptr;
    Rng *archRng = nullptr;

    u64 jitters = 0;
    u64 squashes = 0;
    u64 cibPressures = 0;
    u64 lsqPressures = 0;
    u64 broadcastDelays = 0;
    u64 migrations = 0;
    u64 archCorruptions = 0;
};

} // namespace xloops

#endif // XLOOPS_COMMON_FAULT_H
