/**
 * @file
 * Deterministic xorshift RNG so kernels and property tests are
 * reproducible across platforms (no std::mt19937 distribution skew).
 */

#ifndef XLOOPS_COMMON_RNG_H
#define XLOOPS_COMMON_RNG_H

#include "common/types.h"

namespace xloops {

/** xorshift64* generator; deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state(seed ? seed : 1) {}

    u64
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    u32 nextBelow(u32 bound) { return static_cast<u32>(next() % bound); }

    /** Uniform value in [lo, hi] inclusive. */
    i32
    nextRange(i32 lo, i32 hi)
    {
        return lo + static_cast<i32>(next() % (static_cast<u32>(hi - lo) + 1));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) / static_cast<float>(1 << 24);
    }

  private:
    u64 state;
};

} // namespace xloops

#endif // XLOOPS_COMMON_RNG_H
