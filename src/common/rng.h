/**
 * @file
 * Deterministic xorshift RNG so kernels and property tests are
 * reproducible across platforms (no std::mt19937 distribution skew).
 *
 * Every stochastic choice the simulator makes (fault injection today,
 * any future randomness) must draw from a *named* stream of an RngPool
 * rather than a shared generator: streams are seeded independently
 * from (rootSeed, name), so consumption on one stream never perturbs
 * another, and the pool's state can be captured and restored by
 * checkpoints — replay stays deterministic even mid-fault-storm.
 */

#ifndef XLOOPS_COMMON_RNG_H
#define XLOOPS_COMMON_RNG_H

#include <map>
#include <string>

#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/** splitmix64 finalizer: cheap, well-mixed 64-bit hash step. */
inline u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** xorshift64* generator; deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state(seed ? seed : 1) {}

    u64
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Raw generator state (checkpoint capture / restore). */
    u64 rawState() const { return state; }
    void setRawState(u64 s) { state = s ? s : 1; }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    u32 nextBelow(u32 bound) { return static_cast<u32>(next() % bound); }

    /** Uniform value in [lo, hi] inclusive. */
    i32
    nextRange(i32 lo, i32 hi)
    {
        return lo + static_cast<i32>(next() % (static_cast<u32>(hi - lo) + 1));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) / static_cast<float>(1 << 24);
    }

  private:
    u64 state;
};

/**
 * A set of independently seeded, named RNG streams. Stream "x" of a
 * pool rooted at seed S always starts in the same state regardless of
 * which other streams exist or how much they have been consumed.
 */
class RngPool
{
  public:
    RngPool() = default;
    explicit RngPool(u64 root_seed) : rootSeed(root_seed) {}

    u64 rootSeedValue() const { return rootSeed; }

    /** The stream named @p name (created deterministically on first use). */
    Rng &
    stream(const std::string &name)
    {
        auto it = streams.find(name);
        if (it == streams.end()) {
            u64 h = rootSeed;
            for (const char c : name)
                h = mix64(h ^ static_cast<u8>(c));
            it = streams.emplace(name, Rng(h)).first;
        }
        return it->second;
    }

    /** Emit {"root": .., "streams": {name: state, ..}} fields. */
    void saveState(JsonWriter &w) const;

    /** Restore from the object saveState produced. */
    void loadState(const JsonValue &v);

  private:
    u64 rootSeed = 0;
    std::map<std::string, Rng> streams;
};

} // namespace xloops

#endif // XLOOPS_COMMON_RNG_H
