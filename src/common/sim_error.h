/**
 * @file
 * Structured simulation errors with machine-state snapshots.
 *
 * A hung or wedged simulation used to die with a bare FatalError (or
 * worse, spin until an instruction valve fired) carrying no machine
 * state. SimError instead captures a full MachineSnapshot — lane PCs
 * and iterations, IDQ/CIB/LSQ occupancy, arbiter state, commit
 * pointers — so a livelock is debuggable from the failure message
 * alone, and carries an explicit recoverable-vs-panic taxonomy that
 * tools map onto distinct exit codes:
 *
 *   clean run          exit 0
 *   user/config error  exit 1   (FatalError)
 *   checker failure    exit 2   (golden output mismatch)
 *   watchdog / limits  exit 3   (SimError, recoverable diagnosis;
 *                                also service deadline/cancellation)
 *   simulator panic    exit 4   (PanicError / non-recoverable)
 *   lockstep diverged  exit 5   (DivergenceError: timing model's
 *                                architectural state left the golden
 *                                model's; carries the first mismatch)
 *   interrupted        exit 6   (SIGINT/SIGTERM: the run stopped
 *                                cooperatively after emitting a final
 *                                checkpoint and capsule)
 *
 * SimError derives from FatalError so existing catch sites keep
 * working; tools that care about the taxonomy catch SimError first.
 */

#ifndef XLOOPS_COMMON_SIM_ERROR_H
#define XLOOPS_COMMON_SIM_ERROR_H

#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/trace.h"
#include "common/types.h"

namespace xloops {

/** What went wrong (drives the exit code and recoverability). */
enum class SimErrorKind
{
    Watchdog,       ///< no commit progress for watchdogCycles
    CycleLimit,     ///< LPSU engine exceeded its cycle valve
    InstLimit,      ///< system run exceeded its instruction valve
    StructuralHang, ///< deadlocked structural resources (no retry left)
    Divergence,     ///< lockstep shadow disagreed with the timing model
    Interrupted,    ///< cooperative stop on SIGINT/SIGTERM
    Deadline,       ///< wall-clock watchdog deadline (service quota)
    Cancelled,      ///< batch/job cancelled before completion
};

const char *simErrorKindName(SimErrorKind kind);

/** Per-lane state at the moment of failure. */
struct LaneSnapshot
{
    unsigned lane = 0;
    unsigned ctx = 0;
    bool active = false;
    i64 iter = 0;
    Addr pc = 0;
    bool bodyDone = false;
    Cycle busyUntil = 0;
    size_t lsqLoads = 0;
    size_t lsqStores = 0;
    const char *lastStall = "";
};

/**
 * A structured dump of the machine at the moment a SimError fired.
 * Everything is plain data so tests can assert on individual fields;
 * render() produces the human-readable block tools print.
 */
struct MachineSnapshot
{
    std::string context;        ///< which loop / valve produced this
    Cycle cycle = 0;
    u64 committedIters = 0;
    i64 nextToCommit = 0;
    i64 nextDispatch = 0;
    i64 effectiveBound = 0;
    unsigned memPortsLeft = 0;
    Addr gppPc = 0;
    u64 gppInsts = 0;
    std::vector<LaneSnapshot> lanes;
    /** CIB occupancy per register with queued values ("cib[r3]", n). */
    std::vector<std::pair<std::string, u64>> occupancy;
    /** The last trace events before the failure (when a Tracer was
     *  attached): post-mortem context for *how* the machine wedged. */
    std::vector<TraceEvent> recentEvents;

    std::string render() const;
};

/** A simulation abort that carries its own diagnosis. */
class SimError : public FatalError
{
  public:
    SimError(SimErrorKind error_kind, const std::string &msg,
             MachineSnapshot snap);

    SimErrorKind kind() const { return errorKind; }
    const MachineSnapshot &snapshot() const { return snap; }

    /** Recoverable errors describe a wedged *simulated* machine (the
     *  simulator itself is healthy); panics are simulator bugs. */
    bool recoverable() const { return true; }

    /** Process exit code for tools (see file comment taxonomy). */
    virtual int
    exitCode() const
    {
        return errorKind == SimErrorKind::Interrupted ? 6 : 3;
    }

  private:
    SimErrorKind errorKind;
    MachineSnapshot snap;
};

/**
 * The first point where the differential lockstep checker saw the
 * timing model's architectural state disagree with the shadow golden
 * model. Plain data so replay can verify a reproduced divergence is
 * *identical* (same site, pc, iteration, register/address) and tests
 * can assert on individual fields.
 */
struct DivergenceInfo
{
    std::string site;      ///< "xloop-entry", "xloop-exit", "control",
                           ///< "post-inst", or "halt"
    Addr pc = 0;           ///< xloop pc (loop sites) or faulting pc
    u64 instIndex = 0;     ///< committed GPP instructions at detection
    i64 iteration = -1;    ///< loop index register value, when known

    bool regMismatch = false;
    RegId reg = 0;
    u32 mainValue = 0;     ///< timing model's register value
    u32 shadowValue = 0;   ///< golden model's register value

    bool memMismatch = false;
    Addr memAddr = 0;      ///< first differing byte address
    u8 mainByte = 0;
    u8 shadowByte = 0;

    std::string render() const;

    /** Identity for replay verification (site+pc+iter+reg/addr). */
    bool sameAs(const DivergenceInfo &other) const;
};

/** Lockstep divergence: distinct exit code, first-mismatch payload. */
class DivergenceError : public SimError
{
  public:
    DivergenceError(const std::string &msg, DivergenceInfo info,
                    MachineSnapshot snap);

    const DivergenceInfo &divergence() const { return info; }

    int exitCode() const override { return 5; }

  private:
    DivergenceInfo info;
};

} // namespace xloops

#endif // XLOOPS_COMMON_SIM_ERROR_H
