#include "common/loop_profile.h"

#include <sstream>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"

namespace xloops {

Cycle
LoopProfile::totalStallCycles() const
{
    Cycle sum = 0;
    for (const Cycle c : stallCycles)
        sum += c;
    return sum;
}

LoopProfile &
LoopProfiler::loop(Addr pc)
{
    LoopProfile &p = table[pc];
    p.pc = pc;
    return p;
}

std::string
LoopProfiler::dump() const
{
    std::ostringstream os;
    for (const auto &[pc, p] : table) {
        os << "xloop @ 0x" << std::hex << pc << std::dec;
        if (!p.pattern.empty())
            os << " (" << p.pattern << ")";
        os << ": " << p.specIters << " specialized + " << p.tradIters
           << " traditional iterations, " << p.invocations
           << " LPSU runs, " << p.squashes << " squashes\n";
        if (p.engineCycles > 0) {
            os << "  cycles: scan " << p.scanCycles << ", exec "
               << p.engineCycles << " (lane busy " << p.busyCycles
               << ", stalled " << p.totalStallCycles() << ")\n";
            os << "  stalls:";
            for (unsigned k = 1; k < numStallKinds; k++) {
                if (p.stallCycles[k] > 0)
                    os << " " << stallKindName(static_cast<StallKind>(k))
                       << "=" << p.stallCycles[k];
            }
            os << "\n";
        }
        if (p.iterCycles.count() > 0)
            os << "  iter cycles: " << p.iterCycles.dump() << "\n";
        for (const MigrationRecord &m : p.migrations) {
            os << "  adaptive @ cycle " << m.atCycle << ": gpp "
               << m.gppCyclesPerIter << " vs lpsu " << m.lpsuCyclesPerIter
               << " cycles/iter -> "
               << (m.choseLpsu ? "specialized" : "traditional") << "\n";
        }
    }
    return os.str();
}

void
LoopProfiler::writeJson(JsonWriter &w) const
{
    w.key("loops").beginObject();
    for (const auto &[pc, p] : table) {
        w.key(strf("0x", std::hex, pc)).beginObject();
        w.field("pattern", p.pattern);
        w.field("invocations", p.invocations);
        w.field("spec_iters", p.specIters);
        w.field("trad_iters", p.tradIters);
        w.field("squashes", p.squashes);
        w.field("fallbacks", p.fallbacks);
        w.field("scan_cycles", p.scanCycles);
        w.field("engine_cycles", p.engineCycles);
        w.field("busy_cycles", p.busyCycles);
        w.key("stall_cycles").beginObject();
        for (unsigned k = 1; k < numStallKinds; k++) {
            w.field(stallKindName(static_cast<StallKind>(k)),
                    p.stallCycles[k]);
        }
        w.endObject();
        w.key("iter_cycles");
        p.iterCycles.writeJson(w);
        w.key("cib_occupancy");
        p.cibOccupancy.writeJson(w);
        w.key("lsq_occupancy");
        p.lsqOccupancy.writeJson(w);
        w.key("migrations").beginArray();
        for (const MigrationRecord &m : p.migrations) {
            w.beginObject();
            w.field("at_cycle", m.atCycle);
            w.field("gpp_cycles_per_iter", m.gppCyclesPerIter);
            w.field("lpsu_cycles_per_iter", m.lpsuCyclesPerIter);
            w.field("chose_lpsu", m.choseLpsu);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

void
LoopProfiler::saveState(JsonWriter &w) const
{
    w.key("loops").beginObject();
    for (const auto &[pc, p] : table) {
        w.key(strf("0x", std::hex, pc)).beginObject();
        w.field("pattern", p.pattern);
        w.field("invocations", p.invocations);
        w.field("spec_iters", p.specIters);
        w.field("trad_iters", p.tradIters);
        w.field("squashes", p.squashes);
        w.field("fallbacks", p.fallbacks);
        w.field("scan_cycles", p.scanCycles);
        w.field("engine_cycles", p.engineCycles);
        w.field("busy_cycles", p.busyCycles);
        w.key("stall_cycles");
        writeU64Array(w, {p.stallCycles.begin(), p.stallCycles.end()});
        w.key("iter_cycles").beginObject();
        p.iterCycles.saveState(w);
        w.endObject();
        w.key("cib_occupancy").beginObject();
        p.cibOccupancy.saveState(w);
        w.endObject();
        w.key("lsq_occupancy").beginObject();
        p.lsqOccupancy.saveState(w);
        w.endObject();
        w.key("migrations").beginArray();
        for (const MigrationRecord &m : p.migrations) {
            w.beginObject();
            w.field("at_cycle", m.atCycle);
            w.field("gpp_cpi_bits", doubleBits(m.gppCyclesPerIter));
            w.field("lpsu_cpi_bits", doubleBits(m.lpsuCyclesPerIter));
            w.field("chose_lpsu", m.choseLpsu);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

void
LoopProfiler::loadState(const JsonValue &v)
{
    table.clear();
    for (const auto &[key, lv] : v.at("loops").members()) {
        LoopProfile &p = loop(static_cast<Addr>(parseU64(key)));
        p.pattern = lv.at("pattern").asString();
        p.invocations = lv.at("invocations").asU64();
        p.specIters = lv.at("spec_iters").asU64();
        p.tradIters = lv.at("trad_iters").asU64();
        p.squashes = lv.at("squashes").asU64();
        p.fallbacks = lv.at("fallbacks").asU64();
        p.scanCycles = lv.at("scan_cycles").asU64();
        p.engineCycles = lv.at("engine_cycles").asU64();
        p.busyCycles = lv.at("busy_cycles").asU64();
        const std::vector<u64> stalls = readU64Array(lv.at("stall_cycles"));
        if (stalls.size() != p.stallCycles.size())
            fatal("checkpoint stall_cycles size mismatch");
        std::copy(stalls.begin(), stalls.end(), p.stallCycles.begin());
        p.iterCycles.loadState(lv.at("iter_cycles"));
        p.cibOccupancy.loadState(lv.at("cib_occupancy"));
        p.lsqOccupancy.loadState(lv.at("lsq_occupancy"));
        p.migrations.clear();
        for (const JsonValue &mv : lv.at("migrations").array()) {
            MigrationRecord m;
            m.atCycle = mv.at("at_cycle").asU64();
            m.gppCyclesPerIter =
                doubleFromBits(mv.at("gpp_cpi_bits").asString());
            m.lpsuCyclesPerIter =
                doubleFromBits(mv.at("lpsu_cpi_bits").asString());
            m.choseLpsu = mv.at("chose_lpsu").asBool();
            p.migrations.push_back(m);
        }
    }
}

} // namespace xloops
