#include "common/loop_profile.h"

#include <sstream>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

Cycle
LoopProfile::totalStallCycles() const
{
    Cycle sum = 0;
    for (const Cycle c : stallCycles)
        sum += c;
    return sum;
}

LoopProfile &
LoopProfiler::loop(Addr pc)
{
    LoopProfile &p = table[pc];
    p.pc = pc;
    return p;
}

std::string
LoopProfiler::dump() const
{
    std::ostringstream os;
    for (const auto &[pc, p] : table) {
        os << "xloop @ 0x" << std::hex << pc << std::dec;
        if (!p.pattern.empty())
            os << " (" << p.pattern << ")";
        os << ": " << p.specIters << " specialized + " << p.tradIters
           << " traditional iterations, " << p.invocations
           << " LPSU runs, " << p.squashes << " squashes\n";
        if (p.engineCycles > 0) {
            os << "  cycles: scan " << p.scanCycles << ", exec "
               << p.engineCycles << " (lane busy " << p.busyCycles
               << ", stalled " << p.totalStallCycles() << ")\n";
            os << "  stalls:";
            for (unsigned k = 1; k < numStallKinds; k++) {
                if (p.stallCycles[k] > 0)
                    os << " " << stallKindName(static_cast<StallKind>(k))
                       << "=" << p.stallCycles[k];
            }
            os << "\n";
        }
        if (p.iterCycles.count() > 0)
            os << "  iter cycles: " << p.iterCycles.dump() << "\n";
        for (const MigrationRecord &m : p.migrations) {
            os << "  adaptive @ cycle " << m.atCycle << ": gpp "
               << m.gppCyclesPerIter << " vs lpsu " << m.lpsuCyclesPerIter
               << " cycles/iter -> "
               << (m.choseLpsu ? "specialized" : "traditional") << "\n";
        }
    }
    return os.str();
}

void
LoopProfiler::writeJson(JsonWriter &w) const
{
    w.key("loops").beginObject();
    for (const auto &[pc, p] : table) {
        w.key(strf("0x", std::hex, pc)).beginObject();
        w.field("pattern", p.pattern);
        w.field("invocations", p.invocations);
        w.field("spec_iters", p.specIters);
        w.field("trad_iters", p.tradIters);
        w.field("squashes", p.squashes);
        w.field("fallbacks", p.fallbacks);
        w.field("scan_cycles", p.scanCycles);
        w.field("engine_cycles", p.engineCycles);
        w.field("busy_cycles", p.busyCycles);
        w.key("stall_cycles").beginObject();
        for (unsigned k = 1; k < numStallKinds; k++) {
            w.field(stallKindName(static_cast<StallKind>(k)),
                    p.stallCycles[k]);
        }
        w.endObject();
        w.key("iter_cycles");
        p.iterCycles.writeJson(w);
        w.key("cib_occupancy");
        p.cibOccupancy.writeJson(w);
        w.key("lsq_occupancy");
        p.lsqOccupancy.writeJson(w);
        w.key("migrations").beginArray();
        for (const MigrationRecord &m : p.migrations) {
            w.beginObject();
            w.field("at_cycle", m.atCycle);
            w.field("gpp_cycles_per_iter", m.gppCyclesPerIter);
            w.field("lpsu_cycles_per_iter", m.lpsuCyclesPerIter);
            w.field("chose_lpsu", m.choseLpsu);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

} // namespace xloops
