#include "common/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

std::string
hexEncode(const u8 *bytes, size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * n);
    for (size_t i = 0; i < n; i++) {
        out += digits[bytes[i] >> 4];
        out += digits[bytes[i] & 0xf];
    }
    return out;
}

namespace {

unsigned
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f')
        return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F')
        return static_cast<unsigned>(c - 'A' + 10);
    fatal(strf("bad hex digit '", c, "'"));
}

} // namespace

std::vector<u8>
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("hex blob has odd length");
    std::vector<u8> out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); i++)
        out[i] = static_cast<u8>((hexDigit(hex[2 * i]) << 4) |
                                 hexDigit(hex[2 * i + 1]));
    return out;
}

std::string
doubleBits(double v)
{
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

double
doubleFromBits(const std::string &s)
{
    const u64 bits = parseU64(s);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

u64
parseU64(const std::string &s)
{
    errno = 0;
    char *end = nullptr;
    const u64 v = std::strtoull(s.c_str(), &end, 0);
    if (s.empty() || errno != 0 || end != s.c_str() + s.size())
        fatal(strf("malformed u64 '", s, "'"));
    return v;
}

void
writeU64Array(JsonWriter &w, const std::vector<u64> &values)
{
    w.beginArray();
    for (const u64 v : values)
        w.value(v);
    w.endArray();
}

std::vector<u64>
readU64Array(const JsonValue &v)
{
    std::vector<u64> out;
    out.reserve(v.array().size());
    for (const JsonValue &e : v.array())
        out.push_back(e.asU64());
    return out;
}

} // namespace xloops
