#include "common/serialize.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

std::string
hexEncode(const u8 *bytes, size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * n);
    for (size_t i = 0; i < n; i++) {
        out += digits[bytes[i] >> 4];
        out += digits[bytes[i] & 0xf];
    }
    return out;
}

namespace {

unsigned
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f')
        return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F')
        return static_cast<unsigned>(c - 'A' + 10);
    fatal(strf("bad hex digit '", c, "'"));
}

} // namespace

std::vector<u8>
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("hex blob has odd length");
    std::vector<u8> out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); i++)
        out[i] = static_cast<u8>((hexDigit(hex[2 * i]) << 4) |
                                 hexDigit(hex[2 * i + 1]));
    return out;
}

std::string
doubleBits(double v)
{
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

double
doubleFromBits(const std::string &s)
{
    const u64 bits = parseU64(s);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

u64
parseU64(const std::string &s)
{
    errno = 0;
    char *end = nullptr;
    const u64 v = std::strtoull(s.c_str(), &end, 0);
    if (s.empty() || errno != 0 || end != s.c_str() + s.size())
        fatal(strf("malformed u64 '", s, "'"));
    return v;
}

void
writeU64Array(JsonWriter &w, const std::vector<u64> &values)
{
    w.beginArray();
    for (const u64 v : values)
        w.value(v);
    w.endArray();
}

std::vector<u64>
readU64Array(const JsonValue &v)
{
    std::vector<u64> out;
    out.reserve(v.array().size());
    for (const JsonValue &e : v.array())
        out.push_back(e.asU64());
    return out;
}

namespace {

/** The reflected CRC-32 table for polynomial 0xEDB88320, built once. */
const u32 *
crcTable()
{
    static const auto table = [] {
        std::array<u32, 256> t{};
        for (u32 i = 0; i < 256; i++) {
            u32 c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

} // namespace

u32
crc32(const void *data, size_t n, u32 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    const u32 *table = crcTable();
    u32 c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; i++)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

u32
crc32(const std::string &text, u32 seed)
{
    return crc32(text.data(), text.size(), seed);
}

void
atomicWriteFile(const std::string &path, const std::string &text)
{
    const std::string tmp = strf(path, ".tmp.", ::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fatal(strf("cannot create ", tmp, ": ", std::strerror(errno)));

    size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string why = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            fatal(strf("write ", tmp, ": ", why));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        fatal(strf("fsync ", tmp, ": ", why));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) < 0) {
        const std::string why = std::strerror(errno);
        ::unlink(tmp.c_str());
        fatal(strf("rename ", tmp, " -> ", path, ": ", why));
    }

    // Make the rename itself durable: fsync the containing directory
    // so a crash cannot forget the new directory entry.
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        ::fsync(dirFd);  // best effort: some filesystems refuse
        ::close(dirFd);
    }
}

} // namespace xloops
