/**
 * @file
 * Fixed-width integer aliases and small helpers used across XLOOPS.
 */

#ifndef XLOOPS_COMMON_TYPES_H
#define XLOOPS_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace xloops {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation time unit: clock cycles. */
using Cycle = u64;

/** Byte address into the simulated memory space. */
using Addr = u32;

/** Architectural register specifier (0..31). */
using RegId = u8;

/** Number of architectural registers in the xrisc ISA. */
constexpr unsigned numArchRegs = 32;

/** Sign-extend the low @p bits of @p value to 32 bits. */
constexpr i32
signExtend(u32 value, unsigned bits)
{
    const u32 m = 1u << (bits - 1);
    const u32 masked = value & ((bits >= 32) ? ~0u : ((1u << bits) - 1));
    return static_cast<i32>((masked ^ m) - m);
}

/** True if @p value fits in a signed immediate of @p bits. */
constexpr bool
fitsSigned(i64 value, unsigned bits)
{
    const i64 lo = -(i64{1} << (bits - 1));
    const i64 hi = (i64{1} << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Extract bit field [hi:lo] from @p word. */
constexpr u32
bits(u32 word, unsigned hi, unsigned lo)
{
    return (word >> lo) & ((hi - lo >= 31) ? ~0u : ((1u << (hi - lo + 1)) - 1));
}

} // namespace xloops

#endif // XLOOPS_COMMON_TYPES_H
