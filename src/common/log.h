/**
 * @file
 * Error reporting in the gem5 tradition: panic() for simulator bugs,
 * fatal() for user errors (bad programs, bad configs).
 */

#ifndef XLOOPS_COMMON_LOG_H
#define XLOOPS_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace xloops {

/** Thrown when the simulated program or a configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown when the simulator itself reaches a state that should never
 *  happen regardless of user input (i.e., an xloops bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

[[noreturn]] void panic(const std::string &msg);
[[noreturn]] void fatal(const std::string &msg);
void warn(const std::string &msg);

/** Build a message from stream-style pieces: strf("x=", x, " y=", y). */
template <typename... Args>
std::string
strf(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace xloops

/** Assert an invariant of the simulator itself; throws PanicError. */
#define XL_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::xloops::panic(::xloops::strf("assertion failed: ", #cond,   \
                                           " at ", __FILE__, ":",         \
                                           __LINE__, " ", __VA_ARGS__));  \
        }                                                                 \
    } while (0)

#endif // XLOOPS_COMMON_LOG_H
