#include "common/rng.h"

#include "common/json.h"
#include "common/serialize.h"

namespace xloops {

void
RngPool::saveState(JsonWriter &w) const
{
    w.field("root", rootSeed);
    w.key("streams").beginObject();
    for (const auto &[name, rng] : streams)
        w.field(name, rng.rawState());
    w.endObject();
}

void
RngPool::loadState(const JsonValue &v)
{
    rootSeed = v.at("root").asU64();
    streams.clear();
    for (const auto &[name, state] : v.at("streams").members())
        stream(name).setRawState(state.asU64());
}

} // namespace xloops
