#include "common/pool.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sim_error.h"

namespace xloops {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("XLOOPS_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n > 256 ? 256 : n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

u64
taskSeed(u64 rootSeed, size_t taskIndex)
{
    const u64 s = mix64(mix64(rootSeed) ^ mix64(taskIndex + 1));
    return s ? s : 1;  // 0 means "injection off" to FaultConfig
}

WorkerPool::WorkerPool(unsigned jobs)
    : jobCount(jobs ? jobs : defaultJobs())
{
}

namespace {

/** One queue shard: task i is submitted to shard i % jobs; its owner
 *  pops from the front, thieves steal from the back. */
struct Shard
{
    std::mutex m;
    std::deque<size_t> q;
};

/** Pool metric handles, resolved once (stable for process lifetime). */
struct PoolMetrics
{
    Counter &tasks = metricsRegistry().counter("xloops_pool_tasks_total");
    Counter &steals = metricsRegistry().counter("xloops_pool_steals_total");
    Counter &batches =
        metricsRegistry().counter("xloops_pool_batches_total");
    HistogramMetric &idleUs =
        metricsRegistry().histogram("xloops_pool_worker_idle_us");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics pm;
    return pm;
}

bool
popTask(std::vector<Shard> &shards, unsigned self, size_t &out)
{
    {
        Shard &own = shards[self];
        std::lock_guard<std::mutex> lock(own.m);
        if (!own.q.empty()) {
            out = own.q.front();
            own.q.pop_front();
            return true;
        }
    }
    for (size_t off = 1; off < shards.size(); off++) {
        Shard &victim = shards[(self + off) % shards.size()];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.q.empty()) {
            out = victim.q.back();
            victim.q.pop_back();
            poolMetrics().steals.inc();
            return true;
        }
    }
    return false;
}

[[noreturn]] void
throwBatchStop(SimErrorKind kind, size_t ran, size_t skipped, size_t n)
{
    MachineSnapshot snap;
    snap.context = "worker pool batch";
    snap.occupancy.emplace_back("tasks_ran", ran);
    snap.occupancy.emplace_back("tasks_skipped", skipped);
    snap.occupancy.emplace_back("tasks_total", n);
    throw SimError(kind,
                   strf("batch stopped: ", ran, " of ", n,
                        " tasks ran, ", skipped, " skipped"),
                   snap);
}

} // namespace

void
WorkerPool::run(size_t n, const std::function<void(size_t)> &fn) const
{
    run(n, fn, RunControl{});
}

void
WorkerPool::run(size_t n, const std::function<void(size_t)> &fn,
                const RunControl &control) const
{
    if (n == 0)
        return;

    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(control.deadlineMs);
    const auto externallyStopped = [&]() -> SimErrorKind {
        // Cancellation is checked first: an explicit cancel is a
        // stronger (and more specific) signal than an expired budget.
        if (control.cancel && control.cancel->cancelled())
            return SimErrorKind::Cancelled;
        if (control.deadlineMs && Clock::now() >= deadline)
            return SimErrorKind::Deadline;
        return SimErrorKind::Watchdog;  // sentinel: not stopped
    };
    const auto isStop = [](SimErrorKind k) {
        return k == SimErrorKind::Cancelled || k == SimErrorKind::Deadline;
    };

    poolMetrics().batches.inc();

    if (jobCount <= 1 || n == 1) {
        // Inline execution: index order, first failure propagates
        // immediately (which also cancels every later task — the
        // same semantics the parallel path provides).
        for (size_t i = 0; i < n; i++) {
            const SimErrorKind stop = externallyStopped();
            if (isStop(stop))
                throwBatchStop(stop, i, n - i, n);
            fn(i);
            poolMetrics().tasks.inc();
        }
        return;
    }

    const unsigned workers =
        static_cast<unsigned>(n < jobCount ? n : jobCount);
    std::vector<Shard> shards(workers);
    for (size_t i = 0; i < n; i++)
        shards[i % workers].q.push_back(i);

    // One slot per task: a task only ever writes its own entry, so the
    // join below is the only synchronization results need.
    std::vector<std::exception_ptr> errors(n);

    // Lowest failing index seen so far; queued tasks above it are
    // doomed (their results would be discarded by the rethrow) and
    // are skipped instead of silently executed. Tasks *below* it
    // still run, so lowest-index propagation stays deterministic.
    std::atomic<size_t> lowestFailure{n};
    std::atomic<size_t> ran{0};
    std::atomic<size_t> skippedCancel{0};
    std::atomic<size_t> skippedDeadline{0};

    // Per-worker busy time: idle = batch wall clock minus busy, the
    // load-balance signal (a well-balanced batch has near-zero idle).
    const u64 batchStartUs = monotonicUs();
    std::vector<u64> busyUs(workers, 0);

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; w++) {
        threads.emplace_back([&, w] {
            size_t task;
            while (popTask(shards, w, task)) {
                const SimErrorKind stop = externallyStopped();
                if (stop == SimErrorKind::Cancelled) {
                    skippedCancel++;
                    continue;  // drain the queue without executing
                }
                if (stop == SimErrorKind::Deadline) {
                    skippedDeadline++;
                    continue;
                }
                if (task > lowestFailure.load(std::memory_order_acquire))
                    continue;  // cancelled by an earlier failure
                try {
                    const u64 t0 = monotonicUs();
                    fn(task);
                    busyUs[w] += monotonicUs() - t0;
                    poolMetrics().tasks.inc();
                    ran++;
                } catch (...) {
                    errors[task] = std::current_exception();
                    // CAS-min: remember the lowest failing index.
                    size_t prev =
                        lowestFailure.load(std::memory_order_relaxed);
                    while (task < prev &&
                           !lowestFailure.compare_exchange_weak(
                               prev, task, std::memory_order_release))
                        ;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const u64 batchWallUs = monotonicUs() - batchStartUs;
    for (unsigned w = 0; w < workers; w++)
        poolMetrics().idleUs.observe(
            batchWallUs > busyUs[w] ? batchWallUs - busyUs[w] : 0);

    // Deterministic propagation: the lowest-index failure wins, no
    // matter which worker hit it or when.
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }

    // External stops only surface when they actually cut work short;
    // a cancel that raced with the last task completing is a no-op.
    if (skippedCancel.load())
        throwBatchStop(SimErrorKind::Cancelled, ran.load(),
                       skippedCancel.load() + skippedDeadline.load(), n);
    if (skippedDeadline.load())
        throwBatchStop(SimErrorKind::Deadline, ran.load(),
                       skippedDeadline.load(), n);
}

} // namespace xloops
