#include "common/pool.h"

#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "common/rng.h"

namespace xloops {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("XLOOPS_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n > 256 ? 256 : n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

u64
taskSeed(u64 rootSeed, size_t taskIndex)
{
    const u64 s = mix64(mix64(rootSeed) ^ mix64(taskIndex + 1));
    return s ? s : 1;  // 0 means "injection off" to FaultConfig
}

WorkerPool::WorkerPool(unsigned jobs)
    : jobCount(jobs ? jobs : defaultJobs())
{
}

namespace {

/** One queue shard: task i is submitted to shard i % jobs; its owner
 *  pops from the front, thieves steal from the back. */
struct Shard
{
    std::mutex m;
    std::deque<size_t> q;
};

bool
popTask(std::vector<Shard> &shards, unsigned self, size_t &out)
{
    {
        Shard &own = shards[self];
        std::lock_guard<std::mutex> lock(own.m);
        if (!own.q.empty()) {
            out = own.q.front();
            own.q.pop_front();
            return true;
        }
    }
    for (size_t off = 1; off < shards.size(); off++) {
        Shard &victim = shards[(self + off) % shards.size()];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.q.empty()) {
            out = victim.q.back();
            victim.q.pop_back();
            return true;
        }
    }
    return false;
}

} // namespace

void
WorkerPool::run(size_t n, const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    if (jobCount <= 1 || n == 1) {
        // Inline execution: index order, first failure propagates.
        for (size_t i = 0; i < n; i++)
            fn(i);
        return;
    }

    const unsigned workers =
        static_cast<unsigned>(n < jobCount ? n : jobCount);
    std::vector<Shard> shards(workers);
    for (size_t i = 0; i < n; i++)
        shards[i % workers].q.push_back(i);

    // One slot per task: a task only ever writes its own entry, so the
    // join below is the only synchronization results need.
    std::vector<std::exception_ptr> errors(n);

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; w++) {
        threads.emplace_back([&, w] {
            size_t task;
            while (popTask(shards, w, task)) {
                try {
                    fn(task);
                } catch (...) {
                    errors[task] = std::current_exception();
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Deterministic propagation: the lowest-index failure wins, no
    // matter which worker hit it or when.
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace xloops
