#include "common/fault.h"

namespace xloops {

FaultConfig
FaultConfig::uniform(u64 seed, double rate)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.memJitterRate = rate;
    cfg.squashRate = rate;
    cfg.cibPressureRate = rate;
    cfg.lsqPressureRate = rate;
    cfg.broadcastDelayRate = rate;
    // Migration is triggered per committed iteration; a full-rate
    // trigger would migrate on the first commit of every loop, so it
    // is scaled down to keep the LPSU exercising specialized paths.
    cfg.migrationRate = rate / 8.0;
    return cfg;
}

} // namespace xloops
