#include "common/fault.h"

#include "common/json.h"

namespace xloops {

FaultConfig
FaultConfig::uniform(u64 seed, double rate)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.memJitterRate = rate;
    cfg.squashRate = rate;
    cfg.cibPressureRate = rate;
    cfg.lsqPressureRate = rate;
    cfg.broadcastDelayRate = rate;
    // Migration is triggered per committed iteration; a full-rate
    // trigger would migrate on the first commit of every loop, so it
    // is scaled down to keep the LPSU exercising specialized paths.
    cfg.migrationRate = rate / 8.0;
    return cfg;
}

void
FaultInjector::saveState(JsonWriter &w) const
{
    w.key("rng").beginObject();
    pool.saveState(w);
    w.endObject();
    w.key("counters").beginObject();
    w.field("jitters", jitters);
    w.field("squashes", squashes);
    w.field("cib_pressures", cibPressures);
    w.field("lsq_pressures", lsqPressures);
    w.field("broadcast_delays", broadcastDelays);
    w.field("migrations", migrations);
    w.field("arch_corruptions", archCorruptions);
    w.endObject();
}

void
FaultInjector::loadState(const JsonValue &v)
{
    pool.loadState(v.at("rng"));
    bindStreams();
    const JsonValue &c = v.at("counters");
    jitters = c.at("jitters").asU64();
    squashes = c.at("squashes").asU64();
    cibPressures = c.at("cib_pressures").asU64();
    lsqPressures = c.at("lsq_pressures").asU64();
    broadcastDelays = c.at("broadcast_delays").asU64();
    migrations = c.at("migrations").asU64();
    archCorruptions = c.at("arch_corruptions").asU64();
}

} // namespace xloops
