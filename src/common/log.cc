#include "common/log.h"

#include <iostream>

namespace xloops {

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

} // namespace xloops
