#include "common/metrics.h"

#include <chrono>
#include <sstream>

#include "common/json.h"

namespace xloops {

namespace {

std::atomic<bool> gEnabled{true};
std::atomic<unsigned> gNextShard{0};

} // namespace

unsigned
metricShardIndex()
{
    thread_local unsigned idx =
        gNextShard.fetch_add(1, std::memory_order_relaxed) % numMetricShards;
    return idx;
}

u64
monotonicUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              epoch)
            .count());
}

void
metricsEnable(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
#ifndef XLOOPS_METRICS_DISABLED
    return gEnabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

u64
Counter::value() const
{
    u64 total = 0;
    for (const Shard &s : shards)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::publish(u64 total)
{
    // Fold the externally consistent total into shard 0 and clear the
    // rest, so value() returns exactly @p total until the next inc().
    shards[0].v.store(total, std::memory_order_relaxed);
    for (unsigned i = 1; i < numMetricShards; ++i)
        shards[i].v.store(0, std::memory_order_relaxed);
}

void
HistogramMetric::observe(u64 value)
{
#ifndef XLOOPS_METRICS_DISABLED
    if (!metricsEnabled())
        return;
    buckets[Histogram::bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(value, std::memory_order_relaxed);
    u64 cur = lo.load(std::memory_order_relaxed);
    while (value < cur &&
           !lo.compare_exchange_weak(cur, value, std::memory_order_relaxed))
        ;
    cur = hi.load(std::memory_order_relaxed);
    while (value > cur &&
           !hi.compare_exchange_weak(cur, value, std::memory_order_relaxed))
        ;
#else
    (void)value;
#endif
}

HistSnapshot
HistogramMetric::snapshot() const
{
    HistSnapshot s;
    s.count = n.load(std::memory_order_relaxed);
    s.sum = total.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0 : lo.load(std::memory_order_relaxed);
    s.max = hi.load(std::memory_order_relaxed);
    unsigned last = 0;
    std::array<u64, numMetricBuckets> raw{};
    for (unsigned i = 0; i < numMetricBuckets; ++i) {
        raw[i] = buckets[i].load(std::memory_order_relaxed);
        if (raw[i] != 0)
            last = i + 1;
    }
    s.buckets.assign(raw.begin(), raw.begin() + last);
    return s;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<HistogramMetric>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(m);
    MetricsSnapshot s;
    for (const auto &[name, c] : counters)
        s.counters[name] = c->value();
    for (const auto &[name, g] : gauges)
        s.gauges[name] = g->value();
    for (const auto &[name, h] : histograms)
        s.histograms[name] = h->snapshot();
    return s;
}

namespace {

/** `xloops_retries_total{kind="watchdog"}` → `xloops_retries_total`. */
std::string
familyOf(const std::string &name)
{
    size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

/** Splice extra labels into a possibly-labelled series name:
 *  spliceLabels("f{kind=\"x\"}", "le=\"1\"") → `f{kind="x",le="1"}`. */
std::string
spliceLabels(const std::string &name, const std::string &extra)
{
    size_t brace = name.find('{');
    if (brace == std::string::npos)
        return name + "{" + extra + "}";
    std::string out = name.substr(0, name.size() - 1); // drop '}'
    return out + "," + extra + "}";
}

void
typeLineOnce(std::ostream &out, std::string &lastFamily,
             const std::string &name, const char *type)
{
    std::string fam = familyOf(name);
    if (fam != lastFamily) {
        out << "# TYPE " << fam << " " << type << "\n";
        lastFamily = fam;
    }
}

void
writeHistJson(JsonWriter &w, const HistSnapshot &h)
{
    w.beginObject();
    w.field("count", h.count);
    w.field("max", h.max);
    w.field("min", h.min);
    w.field("sum", h.sum);
    w.key("buckets").beginArray();
    for (u64 b : h.buckets)
        w.value(b);
    w.endArray();
    w.endObject();
}

} // namespace

void
MetricsRegistry::writeProm(std::ostream &out) const
{
    MetricsSnapshot s = snapshot();
    std::string lastFamily;
    for (const auto &[name, v] : s.counters) {
        typeLineOnce(out, lastFamily, name, "counter");
        out << name << " " << v << "\n";
    }
    lastFamily.clear();
    for (const auto &[name, v] : s.gauges) {
        typeLineOnce(out, lastFamily, name, "gauge");
        out << name << " " << v << "\n";
    }
    lastFamily.clear();
    for (const auto &[name, h] : s.histograms) {
        typeLineOnce(out, lastFamily, name, "histogram");
        // Cumulative counts at the log2 bucket upper edges: bucket 0
        // holds only the value 0 (le="0"); bucket k covers up to
        // 2^k - 1 inclusive.
        u64 cum = 0;
        for (size_t k = 0; k < h.buckets.size(); ++k) {
            cum += h.buckets[k];
            u64 le = k == 0 ? 0 : (u64{1} << k) - 1;
            out << spliceLabels(name + "_bucket",
                                "le=\"" + std::to_string(le) + "\"")
                << " " << cum << "\n";
        }
        out << spliceLabels(name + "_bucket", "le=\"+Inf\"") << " " << h.count
            << "\n";
        out << name << "_sum " << h.sum << "\n";
        out << name << "_count " << h.count << "\n";
    }
}

std::string
MetricsRegistry::promText() const
{
    std::ostringstream os;
    writeProm(os);
    return os.str();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    MetricsSnapshot s = snapshot();
    w.beginObject();
    w.field("schema", "xloops-metrics-1");
    w.field("at_us", monotonicUs());
    w.key("counters").beginObject();
    for (const auto &[name, v] : s.counters)
        w.field(name, v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : s.gauges)
        w.field(name, v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : s.histograms) {
        w.key(name);
        writeHistJson(w, h);
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::jsonText(bool pretty) const
{
    std::ostringstream os;
    JsonWriter w(os, pretty);
    writeJson(w);
    return os.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m);
    for (auto &[name, c] : counters)
        for (auto &shard : c->shards)
            shard.v.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges)
        g->v.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms) {
        for (auto &b : h->buckets)
            b.store(0, std::memory_order_relaxed);
        h->n.store(0, std::memory_order_relaxed);
        h->total.store(0, std::memory_order_relaxed);
        h->lo.store(~u64{0}, std::memory_order_relaxed);
        h->hi.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
metricsRegistry()
{
    static MetricsRegistry reg;
    return reg;
}

} // namespace xloops
