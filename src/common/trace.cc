#include "common/trace.h"

#include <algorithm>

#include "common/json.h"
#include "common/log.h"

namespace xloops {

const char *
stallKindName(StallKind kind)
{
    switch (kind) {
      case StallKind::None: return "none";
      case StallKind::Idle: return "idle";
      case StallKind::Raw: return "raw";
      case StallKind::Cir: return "cir";
      case StallKind::CibFull: return "cib-full";
      case StallKind::MemPort: return "mem-port";
      case StallKind::Llfu: return "llfu";
      case StallKind::LsqFull: return "lsq-full";
      case StallKind::CommitWait: return "commit-wait";
      case StallKind::AmoWait: return "amo-wait";
    }
    return "?";
}

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::ScanDone: return "scan";
      case TraceKind::IterBegin: return "iter-begin";
      case TraceKind::IterEnd: return "iter";
      case TraceKind::LaneStall: return "stall";
      case TraceKind::Squash: return "squash";
      case TraceKind::Replay: return "replay";
      case TraceKind::Commit: return "commit";
      case TraceKind::CibPush: return "cib-push";
      case TraceKind::CibConsume: return "cib-consume";
      case TraceKind::StoreBroadcast: return "store-broadcast";
      case TraceKind::LsqDrain: return "lsq-drain";
      case TraceKind::CacheMiss: return "cache-miss";
      case TraceKind::BranchRedirect: return "branch-redirect";
      case TraceKind::XloopSlice: return "xloop";
      case TraceKind::AdaptiveDecide: return "adaptive-decide";
      case TraceKind::StormSerialize: return "storm-serialize";
      case TraceKind::StormFallback: return "storm-fallback";
      case TraceKind::Migration: return "migration";
      case TraceKind::FaultInject: return "fault-inject";
      case TraceKind::JobAdmit: return "job-admit";
      case TraceKind::JobQueueWait: return "job-queue-wait";
      case TraceKind::JobCacheLookup: return "job-cache-lookup";
      case TraceKind::JobAttempt: return "job-attempt";
      case TraceKind::JobBackoff: return "job-backoff";
      case TraceKind::JobReply: return "job-reply";
    }
    return "?";
}

const char *
traceCompName(TraceComp comp)
{
    switch (comp) {
      case TraceComp::Gpp: return "GPP";
      case TraceComp::Lmu: return "LMU";
      case TraceComp::Lane: return "lane";
      case TraceComp::Cib: return "CIB";
      case TraceComp::Lsq: return "LSQ";
      case TraceComp::Mem: return "MEM";
      case TraceComp::Sys: return "SYS";
      case TraceComp::Svc: return "SVC";
    }
    return "?";
}

Tracer::Tracer(size_t capacity) : ring(std::max<size_t>(capacity, 16))
{
}

size_t
Tracer::size() const
{
    return total < ring.size() ? static_cast<size_t>(total) : ring.size();
}

const TraceEvent &
Tracer::at(size_t i) const
{
    XL_ASSERT(i < size(), "trace event index out of range");
    if (total <= ring.size())
        return ring[i];
    return ring[(head + i) % ring.size()];
}

std::vector<TraceEvent>
Tracer::lastEvents(size_t n) const
{
    const size_t have = size();
    const size_t take = std::min(n, have);
    std::vector<TraceEvent> out;
    out.reserve(take);
    for (size_t i = have - take; i < have; i++)
        out.push_back(at(i));
    return out;
}

void
Tracer::clear()
{
    head = 0;
    total = 0;
}

std::string
traceEventLine(const TraceEvent &ev)
{
    return strf("cycle ", ev.cycle, " ", traceCompName(ev.comp),
                (ev.comp == TraceComp::Lane || ev.comp == TraceComp::Lsq
                     ? strf(" ", unsigned{ev.index})
                     : ""),
                " ", traceKindName(ev.kind), " a0=", ev.a0,
                " a1=", ev.a1);
}

// ---------------------------------------------------------------------
// Chrome trace_event rendering.
// ---------------------------------------------------------------------

namespace {

constexpr int tracePid = 1;
constexpr int laneTidBase = 10;

int
tidFor(const TraceEvent &ev)
{
    switch (ev.comp) {
      case TraceComp::Gpp: return 0;
      case TraceComp::Lmu: return 1;
      case TraceComp::Cib: return 2;
      case TraceComp::Mem: return 3;
      case TraceComp::Sys: return 4;
      case TraceComp::Svc: return 5;
      case TraceComp::Lane:
      case TraceComp::Lsq: return laneTidBase + ev.index;
    }
    return 4;
}

/** Slice kinds are stamped at their end cycle with the length in a1
 *  (a0 for XloopSlice-style kinds where noted). */
bool
isSlice(TraceKind kind)
{
    return kind == TraceKind::IterEnd || kind == TraceKind::LaneStall ||
           kind == TraceKind::ScanDone || kind == TraceKind::XloopSlice ||
           kind == TraceKind::JobQueueWait ||
           kind == TraceKind::JobCacheLookup ||
           kind == TraceKind::JobAttempt || kind == TraceKind::JobBackoff;
}

std::string
sliceName(const TraceEvent &ev)
{
    switch (ev.kind) {
      case TraceKind::IterEnd: return strf("iter ", ev.a0);
      case TraceKind::LaneStall:
        return strf("stall:",
                    stallKindName(static_cast<StallKind>(ev.a0)));
      case TraceKind::ScanDone: return "scan";
      case TraceKind::XloopSlice:
        return strf("xloop@0x", std::hex, ev.a0);
      case TraceKind::JobQueueWait: return strf("queue j", ev.a0);
      case TraceKind::JobCacheLookup: return strf("cache j", ev.a0);
      case TraceKind::JobAttempt:
        return strf("run j", ev.a0, "#", unsigned{ev.index});
      case TraceKind::JobBackoff:
        return strf("backoff j", ev.a0, "#", unsigned{ev.index});
      default: return traceKindName(ev.kind);
    }
}

Cycle
sliceCycles(const TraceEvent &ev)
{
    return static_cast<Cycle>(
        ev.kind == TraceKind::ScanDone ? ev.a0 : ev.a1);
}

} // namespace

void
Tracer::writeChromeJson(std::ostream &out) const
{
    JsonWriter w(out, false);
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("otherData").beginObject();
    w.field("dropped_events", dropped());
    w.field("total_events", totalEmitted());
    w.endObject();
    w.key("traceEvents").beginArray();

    // Thread-name metadata: one track per lane plus the fixed tracks.
    // The SVC track appears only when service spans are present, so
    // pure simulator traces are unchanged byte for byte.
    int maxLane = -1;
    bool haveSvc = false;
    for (size_t i = 0; i < size(); i++) {
        const TraceEvent &ev = at(i);
        if (ev.comp == TraceComp::Lane || ev.comp == TraceComp::Lsq)
            maxLane = std::max(maxLane, static_cast<int>(ev.index));
        if (ev.comp == TraceComp::Svc)
            haveSvc = true;
    }
    auto meta = [&](int tid, const std::string &name) {
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", tracePid);
        w.field("tid", tid);
        w.field("name", "thread_name");
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
    };
    meta(0, "GPP");
    meta(1, "LMU");
    meta(2, "CIB");
    meta(3, "MEM");
    meta(4, "SYS");
    if (haveSvc)
        meta(5, "SVC");
    for (int l = 0; l <= maxLane; l++)
        meta(laneTidBase + l, strf("lane ", l));

    for (size_t i = 0; i < size(); i++) {
        const TraceEvent &ev = at(i);
        w.beginObject();
        w.field("pid", tracePid);
        w.field("tid", tidFor(ev));
        if (isSlice(ev.kind)) {
            const Cycle dur = std::max<Cycle>(sliceCycles(ev), 1);
            const Cycle begin = ev.cycle >= dur ? ev.cycle - dur : 0;
            w.field("ph", "X");
            w.field("ts", begin);
            w.field("dur", dur);
            w.field("name", sliceName(ev));
        } else {
            w.field("ph", "i");
            w.field("ts", ev.cycle);
            w.field("s", "t");
            w.field("name", traceKindName(ev.kind));
        }
        w.key("args")
            .beginObject()
            .field("a0", ev.a0)
            .field("a1", ev.a1)
            .endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
}

} // namespace xloops
