/**
 * @file
 * Flight recorder: a bounded in-memory ring of recent structured
 * service events (job admitted / started / retried / shed / finished,
 * each stamped with a correlation id and a monotonic timestamp).
 *
 * The ring is the service-plane analogue of the Tracer (common/trace):
 * always on, O(1) per event, and only ever *read* when something goes
 * wrong — the supervisor dumps it into every capsule it writes and
 * xloopsd dumps it to a file on SIGTERM, so crash artifacts carry the
 * fleet context that led up to the failure, not just the one job's
 * machine state.
 *
 * Dump format is the "xloops-flight-1" document: total events
 * recorded, how many the ring dropped, and the surviving events in
 * record order. docs/OBSERVABILITY.md §6.3 is the normative schema.
 */

#ifndef XLOOPS_COMMON_FLIGHT_H
#define XLOOPS_COMMON_FLIGHT_H

#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace xloops {

class JsonWriter;

/** What happened. Names render via flightKindName(). */
enum class FlightKind : u8 {
    JobAdmitted,   ///< validated and enqueued
    JobShed,       ///< validated but rejected — queue full
    JobInvalid,    ///< rejected at validation
    JobStarted,    ///< a worker picked it up
    JobCacheHit,   ///< served byte-identical from the result cache
    JobRetried,    ///< attempt failed retryably; backoff then re-run
    JobDeadline,   ///< watchdog armed the deadline stop
    JobFinished,   ///< terminal: done
    JobFailed,     ///< terminal: failed (capsule written when possible)
    JobCancelled,  ///< terminal: cancelled (drain or explicit)
    JobRecovered,  ///< re-enqueued from the journal after a crash
    JobResumed,    ///< recovered job restored from a mid-run checkpoint
    CacheCorrupt,  ///< cache entry failed its checksum; quarantined
    JournalTorn,   ///< journal replay truncated a torn/corrupt tail
    DrainBegin,    ///< graceful shutdown started
    DrainEnd,      ///< graceful shutdown finished
};

const char *flightKindName(FlightKind kind);

/** One recorded event. @p detail is small free-form context (error
 *  kind, retry attempt, shed reason) — never a full document. */
struct FlightEvent
{
    u64 seq = 0;    ///< global record index (monotone, never reused)
    u64 atUs = 0;   ///< monotonicUs() timestamp
    FlightKind kind = FlightKind::JobAdmitted;
    u64 jobId = 0;  ///< correlation id; 0 for service-level events
    std::string detail;
};

/**
 * The bounded ring. Thread-safe; record() is a mutex push into a
 * fixed vector (service events are rare next to simulated cycles, so
 * a mutex is cheap and keeps dump consistency trivial).
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(size_t capacity = 1024);

    void record(FlightKind kind, u64 jobId, const std::string &detail = "");

    /** Events currently held, oldest first. */
    std::vector<FlightEvent> events() const;

    u64 totalRecorded() const;
    u64 dropped() const;
    size_t capacity() const { return cap; }

    /** Emit the "xloops-flight-1" document as the writer's next value. */
    void writeJson(JsonWriter &w) const;

    /** The document as a string (pretty or compact). */
    std::string dumpJson(bool pretty = true) const;

  private:
    mutable std::mutex m;
    size_t cap;
    size_t head = 0;  ///< next write slot once the ring is full
    u64 nextSeq = 0;
    std::vector<FlightEvent> ring;
};

} // namespace xloops

#endif // XLOOPS_COMMON_FLIGHT_H
