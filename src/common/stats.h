/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package
 * but scoped per simulated component: u64 counters plus log2-bucketed
 * histograms, with text dumping for benches and a stable sorted JSON
 * serialization shared by `xsim --stats-json` and the bench reporters.
 */

#ifndef XLOOPS_COMMON_STATS_H
#define XLOOPS_COMMON_STATS_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace xloops {

class JsonWriter;
class JsonValue;

/**
 * Power-of-two-bucketed histogram: bucket 0 holds the value 0 and
 * bucket k (k >= 1) holds values in [2^(k-1), 2^k). Tracks count,
 * sum, min, max alongside the buckets, so mean is exact even though
 * buckets are coarse.
 */
class Histogram
{
  public:
    /** Bucket index for @p value (see class comment). */
    static unsigned bucketIndex(u64 value);

    /** Inclusive lower bound of bucket @p index. */
    static u64 bucketLo(unsigned index);

    void sample(u64 value, u64 weight = 1);

    u64 count() const { return n; }
    u64 sum() const { return total; }
    u64 min() const { return n == 0 ? 0 : lo; }
    u64 max() const { return hi; }
    double mean() const;

    /** Bucket counts, index 0 upward (trailing zero buckets trimmed). */
    const std::vector<u64> &buckets() const { return counts; }

    void merge(const Histogram &other);
    void clear();

    /** Compact one-line rendering for text dumps. */
    std::string dump() const;

    /** {"count":..,"min":..,"max":..,"mean":..,"buckets":[..]} */
    void writeJson(JsonWriter &w) const;

    /** Exact raw-state capture for checkpoints (unlike writeJson,
     *  which renders a lossy mean). */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    std::vector<u64> counts;
    u64 n = 0;
    u64 total = 0;
    u64 lo = ~u64{0};
    u64 hi = 0;
};

/** A bag of named u64 counters and histograms with string dumping. */
class StatGroup
{
  public:
    /** Increment counter @p name by @p delta. */
    void add(const std::string &name, u64 delta = 1) { counters[name] += delta; }

    /** Set counter @p name to an absolute value. */
    void set(const std::string &name, u64 value) { counters[name] = value; }

    /** Read counter @p name (0 if never touched). */
    u64 get(const std::string &name) const;

    /** The histogram @p name (created on first use). */
    Histogram &hist(const std::string &name) { return histograms[name]; }

    /** Record one histogram sample (shorthand for hist().sample()). */
    void sample(const std::string &name, u64 value)
    {
        histograms[name].sample(value);
    }

    /** Merge all counters and histograms from @p other into this. */
    void merge(const StatGroup &other);

    void clear()
    {
        counters.clear();
        histograms.clear();
    }

    const std::map<std::string, u64> &all() const { return counters; }
    const std::map<std::string, Histogram> &allHists() const
    {
        return histograms;
    }

    /** Render "name = value" lines (sorted), histograms last. */
    std::string dump(const std::string &prefix = "") const;

    /**
     * Emit `"counters": {...}, "histograms": {...}` into the writer's
     * current object — stable sorted key order, shared formatting for
     * every machine-readable stats consumer.
     */
    void writeJson(JsonWriter &w) const;

    /** Exact counter + histogram state capture for checkpoints. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    std::map<std::string, u64> counters;
    std::map<std::string, Histogram> histograms;
};

} // namespace xloops

#endif // XLOOPS_COMMON_STATS_H
