/**
 * @file
 * Lightweight named statistic counters, in the spirit of gem5's stats
 * package but scoped per simulated component.
 */

#ifndef XLOOPS_COMMON_STATS_H
#define XLOOPS_COMMON_STATS_H

#include <map>
#include <string>

#include "common/types.h"

namespace xloops {

/** A bag of named u64 counters with string dumping for benches. */
class StatGroup
{
  public:
    /** Increment counter @p name by @p delta. */
    void add(const std::string &name, u64 delta = 1) { counters[name] += delta; }

    /** Set counter @p name to an absolute value. */
    void set(const std::string &name, u64 value) { counters[name] = value; }

    /** Read counter @p name (0 if never touched). */
    u64 get(const std::string &name) const;

    /** Merge all counters from @p other into this group. */
    void merge(const StatGroup &other);

    void clear() { counters.clear(); }

    const std::map<std::string, u64> &all() const { return counters; }

    /** Render "name = value" lines, one per counter. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, u64> counters;
};

} // namespace xloops

#endif // XLOOPS_COMMON_STATS_H
