/**
 * @file
 * Per-loop profiler: rolls simulator activity up per `xloop` PC so the
 * paper's "where do the cycles go" questions (Figures 5–9, Table II)
 * can be answered for one loop at a time — iterations per execution
 * mode, the lane stall-cycle breakdown, CIB/LSQ occupancy histograms,
 * and the adaptive controller's migration decisions with the profiled
 * cycles-per-iteration that justified them.
 *
 * The profiler is passive: components update it when attached (see
 * XloopsSystem::setObserver); the simulated timing is identical with
 * or without it. Invariant (asserted in tests/test_trace.cc): for each
 * loop, busyCycles + sum(stallCycles) == lanes * engineCycles — every
 * lane-cycle of specialized execution is attributed to exactly one
 * category.
 */

#ifndef XLOOPS_COMMON_LOOP_PROFILE_H
#define XLOOPS_COMMON_LOOP_PROFILE_H

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"

namespace xloops {

class JsonWriter;

/** One adaptive-controller decision for a loop. */
struct MigrationRecord
{
    Cycle atCycle = 0;
    double gppCyclesPerIter = 0;   ///< profiled traditional CPI basis
    double lpsuCyclesPerIter = 0;  ///< profiled specialized CPI basis
    bool choseLpsu = false;
};

/** Everything the profiler knows about one xloop PC. */
struct LoopProfile
{
    Addr pc = 0;
    std::string pattern;   ///< "uc", "or", "om", ... ("+db"/"+de")
    u64 invocations = 0;   ///< LPSU specialized executions
    u64 specIters = 0;     ///< iterations committed on the LPSU
    u64 tradIters = 0;     ///< iterations executed traditionally
    u64 squashes = 0;
    u64 fallbacks = 0;     ///< storm / body-size hand-backs
    Cycle scanCycles = 0;
    Cycle engineCycles = 0;  ///< specialized-execution cycles
    Cycle busyCycles = 0;    ///< lane-cycles that made progress
    /** Lane-cycles lost per StallKind (index = StallKind). */
    std::array<Cycle, numStallKinds> stallCycles{};
    Histogram iterCycles;    ///< committed-iteration latency
    Histogram cibOccupancy;  ///< total queued CIB values, per cycle
    Histogram lsqOccupancy;  ///< total queued LSQ entries, per cycle
    std::vector<MigrationRecord> migrations;

    Cycle totalStallCycles() const;
};

/** PC-indexed roll-up over a whole run. */
class LoopProfiler
{
  public:
    /** The profile for @p pc (created on first use). */
    LoopProfile &loop(Addr pc);

    const std::map<Addr, LoopProfile> &loops() const { return table; }

    void clear() { table.clear(); }

    /** Human-readable per-loop report (benches, -v dumps). */
    std::string dump() const;

    /** Emit `"loops": {"0x...": {...}}` into the current object. */
    void writeJson(JsonWriter &w) const;

    /** Exact checkpoint capture/restore (bit-pattern doubles, raw
     *  histogram state), unlike the reporting-oriented writeJson. */
    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    std::map<Addr, LoopProfile> table;
};

} // namespace xloops

#endif // XLOOPS_COMMON_LOOP_PROFILE_H
