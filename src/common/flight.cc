#include "common/flight.h"

#include <sstream>

#include "common/json.h"
#include "common/metrics.h"

namespace xloops {

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
    case FlightKind::JobAdmitted: return "job-admitted";
    case FlightKind::JobShed: return "job-shed";
    case FlightKind::JobInvalid: return "job-invalid";
    case FlightKind::JobStarted: return "job-started";
    case FlightKind::JobCacheHit: return "job-cache-hit";
    case FlightKind::JobRetried: return "job-retried";
    case FlightKind::JobDeadline: return "job-deadline";
    case FlightKind::JobFinished: return "job-finished";
    case FlightKind::JobFailed: return "job-failed";
    case FlightKind::JobCancelled: return "job-cancelled";
    case FlightKind::JobRecovered: return "job-recovered";
    case FlightKind::JobResumed: return "job-resumed";
    case FlightKind::CacheCorrupt: return "cache-corrupt";
    case FlightKind::JournalTorn: return "journal-torn";
    case FlightKind::DrainBegin: return "drain-begin";
    case FlightKind::DrainEnd: return "drain-end";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : cap(capacity == 0 ? 1 : capacity)
{
    ring.reserve(cap);
}

void
FlightRecorder::record(FlightKind kind, u64 jobId, const std::string &detail)
{
    if (!metricsEnabled())
        return;
    FlightEvent ev;
    ev.atUs = monotonicUs();
    ev.kind = kind;
    ev.jobId = jobId;
    ev.detail = detail;

    std::lock_guard<std::mutex> lock(m);
    ev.seq = nextSeq++;
    if (ring.size() < cap) {
        ring.push_back(std::move(ev));
    } else {
        ring[head] = std::move(ev);
        head = (head + 1) % cap;
    }
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lock(m);
    std::vector<FlightEvent> out;
    out.reserve(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

u64
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(m);
    return nextSeq;
}

u64
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(m);
    return nextSeq - ring.size();
}

void
FlightRecorder::writeJson(JsonWriter &w) const
{
    // Snapshot under one lock so seq/dropped/events agree exactly.
    std::vector<FlightEvent> evs;
    u64 recorded, lost;
    {
        std::lock_guard<std::mutex> lock(m);
        recorded = nextSeq;
        lost = nextSeq - ring.size();
        evs.reserve(ring.size());
        for (size_t i = 0; i < ring.size(); ++i)
            evs.push_back(ring[(head + i) % ring.size()]);
    }

    w.beginObject();
    w.field("schema", "xloops-flight-1");
    w.field("capacity", static_cast<u64>(cap));
    w.field("recorded", recorded);
    w.field("dropped", lost);
    w.key("events").beginArray();
    for (const FlightEvent &ev : evs) {
        w.beginObject();
        w.field("seq", ev.seq);
        w.field("at_us", ev.atUs);
        w.field("kind", flightKindName(ev.kind));
        w.field("job", ev.jobId);
        if (!ev.detail.empty())
            w.field("detail", ev.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
FlightRecorder::dumpJson(bool pretty) const
{
    std::ostringstream os;
    JsonWriter w(os, pretty);
    writeJson(w);
    return os.str();
}

} // namespace xloops
