#include "common/sim_error.h"

#include <sstream>

namespace xloops {

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Watchdog: return "watchdog";
      case SimErrorKind::CycleLimit: return "cycle-limit";
      case SimErrorKind::InstLimit: return "inst-limit";
      case SimErrorKind::StructuralHang: return "structural-hang";
    }
    return "unknown";
}

std::string
MachineSnapshot::render() const
{
    std::ostringstream os;
    os << "machine snapshot (" << context << ")\n";
    os << "  cycle " << cycle << ", committed " << committedIters
       << " iterations, nextToCommit " << nextToCommit
       << ", nextDispatch " << nextDispatch
       << ", effBound " << effectiveBound
       << ", memPortsLeft " << memPortsLeft << "\n";
    if (gppPc || gppInsts) {
        os << "  gpp pc 0x" << std::hex << gppPc << std::dec
           << ", " << gppInsts << " insts retired\n";
    }
    for (const LaneSnapshot &l : lanes) {
        os << "  lane " << l.lane << "." << l.ctx << ": ";
        if (!l.active) {
            os << "idle\n";
            continue;
        }
        os << "iter " << l.iter << " pc 0x" << std::hex << l.pc
           << std::dec << (l.bodyDone ? " (body done)" : "")
           << " busyUntil " << l.busyUntil
           << " lsq " << l.lsqLoads << "ld/" << l.lsqStores << "st";
        if (l.lastStall[0])
            os << " stall=" << l.lastStall;
        os << "\n";
    }
    for (const auto &[name, count] : occupancy)
        os << "  " << name << " = " << count << "\n";
    if (!recentEvents.empty()) {
        os << "  last " << recentEvents.size() << " trace events:\n";
        for (const TraceEvent &ev : recentEvents)
            os << "    " << traceEventLine(ev) << "\n";
    }
    return os.str();
}

SimError::SimError(SimErrorKind error_kind, const std::string &msg,
                   MachineSnapshot snapshot)
    : FatalError(strf("fatal: [", simErrorKindName(error_kind), "] ", msg,
                      "\n", snapshot.render())),
      errorKind(error_kind), snap(std::move(snapshot))
{
}

} // namespace xloops
