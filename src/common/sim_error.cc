#include "common/sim_error.h"

#include <sstream>

namespace xloops {

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Watchdog: return "watchdog";
      case SimErrorKind::CycleLimit: return "cycle-limit";
      case SimErrorKind::InstLimit: return "inst-limit";
      case SimErrorKind::StructuralHang: return "structural-hang";
      case SimErrorKind::Divergence: return "divergence";
      case SimErrorKind::Interrupted: return "interrupted";
      case SimErrorKind::Deadline: return "deadline";
      case SimErrorKind::Cancelled: return "cancelled";
    }
    return "unknown";
}

std::string
DivergenceInfo::render() const
{
    std::ostringstream os;
    os << "divergence at " << site << " site, pc 0x" << std::hex << pc
       << std::dec << ", inst " << instIndex;
    if (iteration >= 0)
        os << ", loop iteration " << iteration;
    os << "\n";
    if (regMismatch) {
        os << "  first mismatching register: r" << unsigned{reg}
           << " timing=0x" << std::hex << mainValue << " golden=0x"
           << shadowValue << std::dec << "\n";
    }
    if (memMismatch) {
        os << "  first mismatching memory byte: 0x" << std::hex << memAddr
           << " timing=0x" << unsigned{mainByte} << " golden=0x"
           << unsigned{shadowByte} << std::dec << "\n";
    }
    return os.str();
}

bool
DivergenceInfo::sameAs(const DivergenceInfo &other) const
{
    return site == other.site && pc == other.pc &&
           iteration == other.iteration &&
           regMismatch == other.regMismatch && reg == other.reg &&
           mainValue == other.mainValue &&
           shadowValue == other.shadowValue &&
           memMismatch == other.memMismatch && memAddr == other.memAddr &&
           mainByte == other.mainByte && shadowByte == other.shadowByte;
}

DivergenceError::DivergenceError(const std::string &msg,
                                 DivergenceInfo divergence_info,
                                 MachineSnapshot snapshot)
    : SimError(SimErrorKind::Divergence,
               strf(msg, "\n", divergence_info.render()),
               std::move(snapshot)),
      info(std::move(divergence_info))
{
}

std::string
MachineSnapshot::render() const
{
    std::ostringstream os;
    os << "machine snapshot (" << context << ")\n";
    os << "  cycle " << cycle << ", committed " << committedIters
       << " iterations, nextToCommit " << nextToCommit
       << ", nextDispatch " << nextDispatch
       << ", effBound " << effectiveBound
       << ", memPortsLeft " << memPortsLeft << "\n";
    if (gppPc || gppInsts) {
        os << "  gpp pc 0x" << std::hex << gppPc << std::dec
           << ", " << gppInsts << " insts retired\n";
    }
    for (const LaneSnapshot &l : lanes) {
        os << "  lane " << l.lane << "." << l.ctx << ": ";
        if (!l.active) {
            os << "idle\n";
            continue;
        }
        os << "iter " << l.iter << " pc 0x" << std::hex << l.pc
           << std::dec << (l.bodyDone ? " (body done)" : "")
           << " busyUntil " << l.busyUntil
           << " lsq " << l.lsqLoads << "ld/" << l.lsqStores << "st";
        if (l.lastStall[0])
            os << " stall=" << l.lastStall;
        os << "\n";
    }
    for (const auto &[name, count] : occupancy)
        os << "  " << name << " = " << count << "\n";
    if (!recentEvents.empty()) {
        os << "  last " << recentEvents.size() << " trace events:\n";
        for (const TraceEvent &ev : recentEvents)
            os << "    " << traceEventLine(ev) << "\n";
    }
    return os.str();
}

SimError::SimError(SimErrorKind error_kind, const std::string &msg,
                   MachineSnapshot snapshot)
    : FatalError(strf("fatal: [", simErrorKindName(error_kind), "] ", msg,
                      "\n", snapshot.render())),
      errorKind(error_kind), snap(std::move(snapshot))
{
}

} // namespace xloops
