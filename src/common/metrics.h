/**
 * @file
 * Process-global service metrics registry: named counters, gauges,
 * and log2 histograms with a deterministic text exposition in the
 * Prometheus format plus an "xloops-metrics-1" JSON snapshot.
 *
 * This is the service plane's analogue of the per-run StatGroup
 * (common/stats.h): where StatGroup describes one simulated machine
 * and resets per run, the registry describes the *process* — queue
 * depths, cache hit rates, retries, wire traffic — and accumulates
 * monotonically for the daemon's lifetime so trend analysis across a
 * metrics log is meaningful.
 *
 * Hot-path cost discipline (the same contract XTRACE honors):
 *
 *  - Counter::inc is one relaxed fetch_add on a per-thread shard
 *    (cache-line padded, so concurrent workers never contend on one
 *    line); shards are summed only at scrape time.
 *  - Gauge::set/add are single relaxed atomic ops.
 *  - HistogramMetric::observe is a handful of relaxed atomic ops
 *    (bucket + count + sum, CAS loops for min/max).
 *  - Handle lookup by name takes the registry mutex — callers cache
 *    the returned reference (it is stable for the registry's
 *    lifetime) and pay the lookup once, not per event.
 *  - metricsEnabled(false) turns every mutation into a load+branch;
 *    compiling with -DXLOOPS_METRICS_DISABLED removes even that.
 *
 * Histogram buckets are the loop_profile shape: bucket 0 holds the
 * value 0 and bucket k (k >= 1) holds [2^(k-1), 2^k), so the
 * Prometheus `le` edges are 0, 1, 3, 7, ... 2^k - 1, +Inf.
 */

#ifndef XLOOPS_COMMON_METRICS_H
#define XLOOPS_COMMON_METRICS_H

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace xloops {

class JsonWriter;

/** Shard count for counters: enough that a worker fleet rarely lands
 *  two threads on one line, small enough that scrape is trivial. */
constexpr unsigned numMetricShards = 16;

/** The calling thread's stable shard index in [0, numMetricShards). */
unsigned metricShardIndex();

/** Monotonic microseconds since the first call in this process — the
 *  shared clock for service spans, flight events, and metric logs. */
u64 monotonicUs();

/** Runtime kill switch for every registry mutation (spans and flight
 *  recording follow it too). Defaults to enabled. */
void metricsEnable(bool on);
bool metricsEnabled();

/**
 * A monotone event counter, sharded per thread. Obtain via
 * MetricsRegistry::counter(); the reference stays valid for the
 * registry's lifetime.
 */
class Counter
{
  public:
    void
    inc(u64 delta = 1)
    {
#ifndef XLOOPS_METRICS_DISABLED
        if (metricsEnabled())
            shards[metricShardIndex()].v.fetch_add(
                delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    /** Sum over shards (scrape-time; racy reads are fine — each shard
     *  is itself atomic and the counter is monotone). */
    u64 value() const;

    /** Overwrite the counter with an externally consistent total (the
     *  supervisor publishes its mutex-guarded job accounting this way
     *  so the conservation invariant holds exactly at scrape time). */
    void publish(u64 total);

  private:
    friend class MetricsRegistry;
    struct alignas(64) Shard
    {
        std::atomic<u64> v{0};
    };
    std::array<Shard, numMetricShards> shards{};
};

/** A point-in-time value (queue depth, cache entries, bytes held). */
class Gauge
{
  public:
    void
    set(u64 value)
    {
#ifndef XLOOPS_METRICS_DISABLED
        if (metricsEnabled())
            v.store(value, std::memory_order_relaxed);
#else
        (void)value;
#endif
    }

    void
    add(u64 delta)
    {
#ifndef XLOOPS_METRICS_DISABLED
        if (metricsEnabled())
            v.fetch_add(delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    void
    sub(u64 delta)
    {
#ifndef XLOOPS_METRICS_DISABLED
        if (metricsEnabled())
            v.fetch_sub(delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    u64 value() const { return v.load(std::memory_order_relaxed); }

    /** Ungated set for scrape-time publication (like Counter::publish):
     *  works even while the runtime kill switch is off, so consistency
     *  invariants hold in overhead-measurement runs too. */
    void publish(u64 value) { v.store(value, std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    std::atomic<u64> v{0};
};

/** Maximum log2 bucket index tracked (2^63 is bucket 64). */
constexpr unsigned numMetricBuckets = 65;

/** Scraped histogram state (trailing zero buckets trimmed, matching
 *  Histogram::buckets()). */
struct HistSnapshot
{
    std::vector<u64> buckets;
    u64 count = 0;
    u64 sum = 0;
    u64 min = 0;
    u64 max = 0;
};

/**
 * A log2-bucketed histogram safe for concurrent observe(). Bucket
 * boundaries are exactly Histogram's (common/stats.h), so the two
 * report formats agree.
 */
class HistogramMetric
{
  public:
    void observe(u64 value);

    /** A consistent-enough snapshot for reporting (per-field atomic;
     *  a scrape racing an observe may be off by the in-flight sample,
     *  never corrupt). */
    HistSnapshot snapshot() const;

  private:
    friend class MetricsRegistry;
    std::array<std::atomic<u64>, numMetricBuckets> buckets{};
    std::atomic<u64> n{0};
    std::atomic<u64> total{0};
    std::atomic<u64> lo{~u64{0}};
    std::atomic<u64> hi{0};
};

/** One scrape: every metric's value at (approximately) one instant. */
struct MetricsSnapshot
{
    std::map<std::string, u64> counters;
    std::map<std::string, u64> gauges;
    std::map<std::string, HistSnapshot> histograms;
};

/**
 * The registry: named metric handles plus the two exposition formats.
 * Metric names follow the Prometheus convention — `xloops_` prefix,
 * `_total` suffix on counters, unit suffixes on histograms — and may
 * carry a label set in the name itself (`xloops_retries_total{kind=
 * "watchdog"}`); the text exposition groups label variants under one
 * `# TYPE` family line. docs/OBSERVABILITY.md §6 is the catalogue.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HistogramMetric &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /**
     * Deterministic Prometheus text exposition: families sorted by
     * name, one `# TYPE` line per family, histograms as cumulative
     * `_bucket{le=...}` series plus `_sum` and `_count`.
     */
    void writeProm(std::ostream &out) const;
    std::string promText() const;

    /** One-object "xloops-metrics-1" document (sorted keys). */
    void writeJson(JsonWriter &w) const;
    std::string jsonText(bool pretty = true) const;

    /** Zero every registered metric (tests; never the daemon). */
    void reset();

  private:
    mutable std::mutex m;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
};

/** The process-global registry every component instruments into. */
MetricsRegistry &metricsRegistry();

} // namespace xloops

#endif // XLOOPS_COMMON_METRICS_H
