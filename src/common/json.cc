#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace xloops {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); i++) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (i + 1 >= s.size())
            fatal("jsonUnescape: dangling backslash");
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size())
                fatal("jsonUnescape: truncated \\u escape");
            u32 cp = 0;
            for (unsigned k = 0; k < 4; k++) {
                const char h = s[++i];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<u32>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<u32>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<u32>(h - 'A' + 10);
                else
                    fatal("jsonUnescape: bad hex digit in \\u escape");
            }
            // UTF-8 encode (basic multilingual plane only — enough for
            // everything jsonEscape produces).
            if (cp < 0x80) {
                out += static_cast<char>(cp);
            } else if (cp < 0x800) {
                out += static_cast<char>(0xc0 | (cp >> 6));
                out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
                out += static_cast<char>(0xe0 | (cp >> 12));
                out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            fatal(strf("jsonUnescape: unknown escape '\\", e, "'"));
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Validating recursive-descent parser (structure only, no tree).
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    string()
    {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        pos++;
        while (pos < text.size() && text[pos] != '"') {
            if (static_cast<unsigned char>(text[pos]) < 0x20)
                return false;  // raw control character
            if (text[pos] == '\\') {
                pos++;
                if (pos >= text.size())
                    return false;
                const char e = text[pos];
                if (e == 'u') {
                    for (unsigned k = 0; k < 4; k++) {
                        pos++;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            pos++;
        }
        if (pos >= text.size())
            return false;
        pos++;  // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            pos++;
        size_t digits = 0;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            pos++;
            digits++;
        }
        if (digits == 0)
            return false;
        if (pos < text.size() && text[pos] == '.') {
            pos++;
            size_t frac = 0;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                pos++;
                frac++;
            }
            if (frac == 0)
                return false;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            pos++;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                pos++;
            size_t exp = 0;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                pos++;
                exp++;
            }
            if (exp == 0)
                return false;
        }
        return pos > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= text.size())
            return false;
        const char c = text[pos];
        if (c == '"')
            return string();
        if (c == '{') {
            pos++;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                pos++;
                return true;
            }
            while (true) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return false;
                pos++;
                if (!value())
                    return false;
                skipWs();
                if (pos >= text.size())
                    return false;
                if (text[pos] == ',') {
                    pos++;
                    continue;
                }
                if (text[pos] == '}') {
                    pos++;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            pos++;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                pos++;
                return true;
            }
            while (true) {
                if (!value())
                    return false;
                skipWs();
                if (pos >= text.size())
                    return false;
                if (text[pos] == ',') {
                    pos++;
                    continue;
                }
                if (text[pos] == ']') {
                    pos++;
                    return true;
                }
                return false;
            }
        }
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }
};

} // namespace

bool
jsonValidate(const std::string &text)
{
    Parser p{text};
    if (!p.value())
        return false;
    p.skipWs();
    return p.pos == text.size();
}

// ---------------------------------------------------------------------
// JsonValue / jsonParse.
// ---------------------------------------------------------------------

bool
JsonValue::asBool() const
{
    if (k != Kind::Bool)
        fatal("json: expected a boolean");
    return boolean;
}

u64
JsonValue::asU64() const
{
    if (k != Kind::Number || text.empty() || text[0] == '-' ||
        text.find_first_of(".eE") != std::string::npos)
        fatal(strf("json: expected an unsigned integer, got '", text, "'"));
    errno = 0;
    char *end = nullptr;
    const u64 v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        fatal(strf("json: integer out of range: '", text, "'"));
    return v;
}

i64
JsonValue::asI64() const
{
    if (k != Kind::Number || text.find_first_of(".eE") != std::string::npos)
        fatal(strf("json: expected an integer, got '", text, "'"));
    errno = 0;
    char *end = nullptr;
    const i64 v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        fatal(strf("json: integer out of range: '", text, "'"));
    return v;
}

double
JsonValue::asDouble() const
{
    if (k != Kind::Number)
        fatal("json: expected a number");
    return std::strtod(text.c_str(), nullptr);
}

const std::string &
JsonValue::asString() const
{
    if (k != Kind::String)
        fatal("json: expected a string");
    return text;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (k != Kind::Array)
        fatal("json: expected an array");
    return elems;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (k != Kind::Object)
        fatal("json: expected an object");
    return fields;
}

bool
JsonValue::has(const std::string &name) const
{
    if (k != Kind::Object)
        return false;
    for (const auto &[key, value] : fields)
        if (key == name)
            return true;
    return false;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    for (const auto &[key, value] : members())
        if (key == name)
            return value;
    fatal(strf("json: missing member '", name, "'"));
}

u64
JsonValue::getU64(const std::string &name, u64 fallback) const
{
    return has(name) ? at(name).asU64() : fallback;
}

/** Recursive-descent parser building JsonValue trees. */
struct ValueParser
{
    const std::string &text;
    size_t pos = 0;

    [[noreturn]] void
    err(const std::string &what)
    {
        fatal(strf("json parse error at offset ", pos, ": ", what));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= text.size())
            err("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            err(strf("expected '", c, "'"));
        pos++;
    }

    std::string
    stringBody()
    {
        expect('"');
        const size_t start = pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\')
                pos++;  // skip the escaped character
            pos++;
        }
        if (pos >= text.size())
            err("unterminated string");
        const std::string raw = text.substr(start, pos - start);
        pos++;  // closing quote
        return jsonUnescape(raw);
    }

    JsonValue
    parseValue(unsigned depth)
    {
        if (depth > 64)
            err("nesting too deep");
        skipWs();
        JsonValue v;
        const char c = peek();
        if (c == '{') {
            pos++;
            v.k = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                pos++;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = stringBody();
                skipWs();
                expect(':');
                v.fields.emplace_back(std::move(key),
                                      parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            pos++;
            v.k = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                pos++;
                return v;
            }
            while (true) {
                v.elems.push_back(parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.k = JsonValue::Kind::String;
            v.text = stringBody();
            return v;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            v.k = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            v.k = JsonValue::Kind::Bool;
            return v;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return v;
        }
        // Number: capture the lexeme verbatim.
        const size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            pos++;
        if (pos == start)
            err("expected a value");
        v.k = JsonValue::Kind::Number;
        v.text = text.substr(start, pos - start);
        return v;
    }
};

JsonValue
jsonParse(const std::string &text)
{
    ValueParser p{text};
    JsonValue v = p.parseValue(0);
    p.skipWs();
    if (p.pos != text.size())
        p.err("trailing characters after value");
    return v;
}

// ---------------------------------------------------------------------
// JsonWriter.
// ---------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream &out, bool pretty_print)
    : os(out), pretty(pretty_print)
{
}

void
JsonWriter::newline()
{
    if (!pretty)
        return;
    os << "\n";
    for (size_t i = 0; i < stack.size(); i++)
        os << "  ";
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return;  // value follows its key on the same line
    }
    if (stack.empty())
        return;
    if (stack.back().count > 0)
        os << ",";
    newline();
    stack.back().count++;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os << "{";
    stack.push_back({true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    XL_ASSERT(!stack.empty() && stack.back().isObject,
              "endObject outside an object");
    const bool empty = stack.back().count == 0;
    stack.pop_back();
    if (!empty)
        newline();
    os << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os << "[";
    stack.push_back({false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    XL_ASSERT(!stack.empty() && !stack.back().isObject,
              "endArray outside an array");
    const bool empty = stack.back().count == 0;
    stack.pop_back();
    if (!empty)
        newline();
    os << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    XL_ASSERT(!stack.empty() && stack.back().isObject,
              "key outside an object");
    separate();
    os << "\"" << jsonEscape(name) << "\":" << (pretty ? " " : "");
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(u64 v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(i64 v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os << "null";  // JSON has no NaN/Inf
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::rawNumber(const std::string &lexeme)
{
    separate();
    os << lexeme;
    return *this;
}

void
writeJsonValue(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        w.rawNumber("null");  // verbatim token, not a number
        return;
      case JsonValue::Kind::Bool:
        w.value(v.asBool());
        return;
      case JsonValue::Kind::Number:
        w.rawNumber(v.text);
        return;
      case JsonValue::Kind::String:
        w.value(v.asString());
        return;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &e : v.array())
            writeJsonValue(w, e);
        w.endArray();
        return;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[name, member] : v.members()) {
            w.key(name);
            writeJsonValue(w, member);
        }
        w.endObject();
        return;
    }
}

} // namespace xloops
