#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace xloops {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); i++) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (i + 1 >= s.size())
            fatal("jsonUnescape: dangling backslash");
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size())
                fatal("jsonUnescape: truncated \\u escape");
            u32 cp = 0;
            for (unsigned k = 0; k < 4; k++) {
                const char h = s[++i];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<u32>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<u32>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<u32>(h - 'A' + 10);
                else
                    fatal("jsonUnescape: bad hex digit in \\u escape");
            }
            // UTF-8 encode (basic multilingual plane only — enough for
            // everything jsonEscape produces).
            if (cp < 0x80) {
                out += static_cast<char>(cp);
            } else if (cp < 0x800) {
                out += static_cast<char>(0xc0 | (cp >> 6));
                out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
                out += static_cast<char>(0xe0 | (cp >> 12));
                out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            fatal(strf("jsonUnescape: unknown escape '\\", e, "'"));
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Validating recursive-descent parser (structure only, no tree).
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    string()
    {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        pos++;
        while (pos < text.size() && text[pos] != '"') {
            if (static_cast<unsigned char>(text[pos]) < 0x20)
                return false;  // raw control character
            if (text[pos] == '\\') {
                pos++;
                if (pos >= text.size())
                    return false;
                const char e = text[pos];
                if (e == 'u') {
                    for (unsigned k = 0; k < 4; k++) {
                        pos++;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            pos++;
        }
        if (pos >= text.size())
            return false;
        pos++;  // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            pos++;
        size_t digits = 0;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            pos++;
            digits++;
        }
        if (digits == 0)
            return false;
        if (pos < text.size() && text[pos] == '.') {
            pos++;
            size_t frac = 0;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                pos++;
                frac++;
            }
            if (frac == 0)
                return false;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            pos++;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                pos++;
            size_t exp = 0;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                pos++;
                exp++;
            }
            if (exp == 0)
                return false;
        }
        return pos > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= text.size())
            return false;
        const char c = text[pos];
        if (c == '"')
            return string();
        if (c == '{') {
            pos++;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                pos++;
                return true;
            }
            while (true) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return false;
                pos++;
                if (!value())
                    return false;
                skipWs();
                if (pos >= text.size())
                    return false;
                if (text[pos] == ',') {
                    pos++;
                    continue;
                }
                if (text[pos] == '}') {
                    pos++;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            pos++;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                pos++;
                return true;
            }
            while (true) {
                if (!value())
                    return false;
                skipWs();
                if (pos >= text.size())
                    return false;
                if (text[pos] == ',') {
                    pos++;
                    continue;
                }
                if (text[pos] == ']') {
                    pos++;
                    return true;
                }
                return false;
            }
        }
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }
};

} // namespace

bool
jsonValidate(const std::string &text)
{
    Parser p{text};
    if (!p.value())
        return false;
    p.skipWs();
    return p.pos == text.size();
}

// ---------------------------------------------------------------------
// JsonWriter.
// ---------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream &out, bool pretty_print)
    : os(out), pretty(pretty_print)
{
}

void
JsonWriter::newline()
{
    if (!pretty)
        return;
    os << "\n";
    for (size_t i = 0; i < stack.size(); i++)
        os << "  ";
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return;  // value follows its key on the same line
    }
    if (stack.empty())
        return;
    if (stack.back().count > 0)
        os << ",";
    newline();
    stack.back().count++;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os << "{";
    stack.push_back({true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    XL_ASSERT(!stack.empty() && stack.back().isObject,
              "endObject outside an object");
    const bool empty = stack.back().count == 0;
    stack.pop_back();
    if (!empty)
        newline();
    os << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os << "[";
    stack.push_back({false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    XL_ASSERT(!stack.empty() && !stack.back().isObject,
              "endArray outside an array");
    const bool empty = stack.back().count == 0;
    stack.pop_back();
    if (!empty)
        newline();
    os << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    XL_ASSERT(!stack.empty() && stack.back().isObject,
              "key outside an object");
    separate();
    os << "\"" << jsonEscape(name) << "\":" << (pretty ? " " : "");
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(u64 v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(i64 v)
{
    separate();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os << "null";  // JSON has no NaN/Inf
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    return *this;
}

} // namespace xloops
