/**
 * @file
 * Cycle-accurate structured event tracing.
 *
 * Components emit compact fixed-size TraceEvent records (cycle,
 * component, kind, two payload words) into a ring buffer through the
 * XTRACE macro. The disabled path is a single predictable
 * null-pointer/flag test (and compiles out entirely under
 * -DXLOOPS_TRACE_DISABLED), so tracing costs nothing when off and the
 * simulated timing is identical either way — the tracer only
 * *observes*.
 *
 * The buffer renders to Chrome trace_event JSON (`xsim --trace
 * out.json`) viewable in Perfetto / chrome://tracing: one track per
 * LPSU lane plus LMU, CIB, GPP, MEM, and SYS tracks. Iterations,
 * stalls, scans, and LPSU loop ownership appear as duration slices;
 * squashes, replays, CIB traffic, broadcasts, cache misses, and
 * adaptive decisions as instant events.
 *
 * Events are emitted in nondecreasing cycle order (duration-slice
 * records are stamped at their *end* cycle and carry the length, so
 * emission order stays monotone; the JSON writer converts them to
 * begin+duration form, which Perfetto re-sorts).
 */

#ifndef XLOOPS_COMMON_TRACE_H
#define XLOOPS_COMMON_TRACE_H

#include <ostream>
#include <vector>

#include "common/types.h"

namespace xloops {

/** Which hardware structure emitted an event (selects the track). */
enum class TraceComp : u8
{
    Gpp,   ///< the host general-purpose processor
    Lmu,   ///< lane management unit (scan, dispatch, commit, storms)
    Lane,  ///< one in-order lane (index = lane number)
    Cib,   ///< cross-iteration buffer network
    Lsq,   ///< a lane's load-store queue (index = lane number)
    Mem,   ///< memory hierarchy (cache misses)
    Sys,   ///< system / adaptive controller
    Svc,   ///< service plane (xloopsd job lifecycle spans)
};

/**
 * Why a lane could not make progress in a cycle (Figure 6 taxonomy).
 * Shared between the LPSU engine's per-cycle accounting, the per-loop
 * profiler, and trace stall slices so all three agree exactly.
 */
enum class StallKind : u8
{
    None,        ///< made progress
    Idle,        ///< no iteration available
    Raw,         ///< scoreboard RAW hazard
    Cir,         ///< waiting on a cross-iteration register value
    CibFull,     ///< outbound CIB has no free slot
    MemPort,     ///< shared data-memory ports exhausted
    Llfu,        ///< shared long-latency FUs busy
    LsqFull,     ///< LSQ structural (capacity / overflow-retry hold)
    CommitWait,  ///< speculative iteration waiting to become oldest
    AmoWait,     ///< AMO must wait for non-speculative execution
};

constexpr unsigned numStallKinds = 10;

const char *stallKindName(StallKind kind);

/** What happened. Payload meaning (a0/a1) is per kind. */
enum class TraceKind : u8
{
    ScanDone,       ///< Lmu: a0 = scan cycles, a1 = body insts (slice)
    IterBegin,      ///< Lane: a0 = iteration index
    IterEnd,        ///< Lane: a0 = iteration, a1 = cycles (slice)
    LaneStall,      ///< Lane: a0 = StallKind, a1 = cycles (slice)
    Squash,         ///< Lane: a0 = iteration, a1 = wasted cycles
    Replay,         ///< Lane: a0 = iteration (re-issue after a squash)
    Commit,         ///< Lmu: a0 = iteration
    CibPush,        ///< Cib: a0 = register, a1 = iteration
    CibConsume,     ///< Cib: a0 = register, a1 = iteration
    StoreBroadcast, ///< Lmu: a0 = address, a1 = iteration
    LsqDrain,       ///< Lsq: a0 = address, a1 = iteration
    CacheMiss,      ///< Mem: a0 = address, a1 = latency
    BranchRedirect, ///< Gpp: a0 = pc
    XloopSlice,     ///< Gpp: a0 = xloop pc, a1 = cycles (slice)
    AdaptiveDecide, ///< Sys: a0 = gpp cpi x1000, a1 = lpsu cpi x1000;
                    ///< index = 1 when the LPSU won
    StormSerialize, ///< Lmu: a0 = storm count, a1 = serialized until
    StormFallback,  ///< Lmu: a0 = fallback iteration cap
    Migration,      ///< Lmu: a0 = dispatch cap (injected migration)
    FaultInject,    ///< Lmu: a0 = kind-specific detail

    // Service-plane spans (TraceComp::Svc). The "cycle" field is
    // monotonicUs() and a0 is always the job correlation id, so one
    // job's whole lifetime lines up as adjacent slices in Perfetto.
    // Slices are stamped at their end time with the length (us) in
    // a1, exactly like the hardware slice kinds above; index holds
    // the attempt number where noted.
    JobAdmit,       ///< Svc: instant; a1 = 1 when shed at admission
    JobQueueWait,   ///< Svc: a1 = us from admission to worker pickup
    JobCacheLookup, ///< Svc: a1 = us spent probing the result cache
    JobAttempt,     ///< Svc: a1 = us simulating; index = attempt
    JobBackoff,     ///< Svc: a1 = us backing off; index = attempt
    JobReply,       ///< Svc: instant; terminal outcome recorded
};

const char *traceKindName(TraceKind kind);
const char *traceCompName(TraceComp comp);

/** One fixed-size trace record. */
struct TraceEvent
{
    Cycle cycle = 0;
    TraceComp comp = TraceComp::Sys;
    u8 index = 0;    ///< lane number for Lane/Lsq, else 0
    TraceKind kind = TraceKind::FaultInject;
    i64 a0 = 0;
    i64 a1 = 0;
};

/**
 * Bounded ring buffer of trace events. Oldest records are overwritten
 * once `capacity` is exceeded (`dropped()` reports how many); memory
 * use is therefore fixed no matter how long the run.
 */
class Tracer
{
  public:
    explicit Tracer(size_t capacity = size_t{1} << 20);

    bool enabled() const { return on; }
    void enable(bool e = true) { on = e; }

    void
    emit(Cycle cycle, TraceComp comp, unsigned index, TraceKind kind,
         i64 a0 = 0, i64 a1 = 0)
    {
        TraceEvent &ev = ring[head];
        ev.cycle = cycle;
        ev.comp = comp;
        ev.index = static_cast<u8>(index);
        ev.kind = kind;
        ev.a0 = a0;
        ev.a1 = a1;
        head = (head + 1) % ring.size();
        total++;
    }

    /** Events currently held (≤ capacity). */
    size_t size() const;

    /** Total events ever emitted (including overwritten ones). */
    u64 totalEmitted() const { return total; }

    /** Events lost to ring-buffer wrap. */
    u64 dropped() const { return total - size(); }

    /** The i-th held event, oldest first. */
    const TraceEvent &at(size_t i) const;

    /** The newest @p n events, oldest first (for post-mortems). */
    std::vector<TraceEvent> lastEvents(size_t n) const;

    void clear();

    /** Render the buffer as Chrome trace_event JSON. */
    void writeChromeJson(std::ostream &out) const;

  private:
    std::vector<TraceEvent> ring;
    size_t head = 0;
    u64 total = 0;
    bool on = false;
};

/** Render one event as a short human-readable line (post-mortems). */
std::string traceEventLine(const TraceEvent &ev);

} // namespace xloops

/**
 * Emission macro: `XTRACE(tracer, cycle, comp, index, kind, a0, a1)`.
 * `tracer` is a `Tracer *` that may be null; the whole statement
 * compiles away under -DXLOOPS_TRACE_DISABLED.
 */
#ifdef XLOOPS_TRACE_DISABLED
#define XTRACE(tr, ...) \
    do {                \
    } while (0)
#else
#define XTRACE(tr, ...)                    \
    do {                                   \
        if ((tr) && (tr)->enabled())       \
            (tr)->emit(__VA_ARGS__);       \
    } while (0)
#endif

#endif // XLOOPS_COMMON_TRACE_H
