#include "common/stats.h"

#include <sstream>

namespace xloops {

u64
StatGroup::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

} // namespace xloops
