#include "common/stats.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"
#include "common/serialize.h"

namespace xloops {

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

unsigned
Histogram::bucketIndex(u64 value)
{
    if (value == 0)
        return 0;
    unsigned index = 1;
    while (value > 1) {
        value >>= 1;
        index++;
    }
    return index;
}

u64
Histogram::bucketLo(unsigned index)
{
    return index == 0 ? 0 : u64{1} << (index - 1);
}

void
Histogram::sample(u64 value, u64 weight)
{
    const unsigned index = bucketIndex(value);
    if (index >= counts.size())
        counts.resize(index + 1, 0);
    counts[index] += weight;
    n += weight;
    total += value * weight;
    lo = std::min(lo, value);
    hi = std::max(hi, value);
}

double
Histogram::mean() const
{
    return n == 0 ? 0.0
                  : static_cast<double>(total) / static_cast<double>(n);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n == 0)
        return;
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (size_t i = 0; i < other.counts.size(); i++)
        counts[i] += other.counts[i];
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
Histogram::clear()
{
    counts.clear();
    n = 0;
    total = 0;
    lo = ~u64{0};
    hi = 0;
}

std::string
Histogram::dump() const
{
    std::ostringstream os;
    os << "count=" << n << " min=" << min() << " max=" << hi
       << " mean=" << mean();
    return os.str();
}

void
Histogram::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("count", n);
    w.field("sum", total);
    w.field("min", min());
    w.field("max", hi);
    w.field("mean", mean());
    w.key("buckets").beginArray();
    for (const u64 c : counts)
        w.value(c);
    w.endArray();
    w.endObject();
}

// ---------------------------------------------------------------------
// StatGroup.
// ---------------------------------------------------------------------

u64
StatGroup::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, histogram] : other.histograms)
        histograms[name].merge(histogram);
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << prefix << name << " = " << value << "\n";
    for (const auto &[name, histogram] : histograms)
        os << prefix << name << " = " << histogram.dump() << "\n";
    return os.str();
}

void
StatGroup::writeJson(JsonWriter &w) const
{
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.field(name, value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, histogram] : histograms) {
        w.key(name);
        histogram.writeJson(w);
    }
    w.endObject();
}

void
Histogram::saveState(JsonWriter &w) const
{
    w.field("n", n);
    w.field("total", total);
    w.field("lo", lo);
    w.field("hi", hi);
    w.key("buckets");
    writeU64Array(w, counts);
}

void
Histogram::loadState(const JsonValue &v)
{
    n = v.at("n").asU64();
    total = v.at("total").asU64();
    lo = v.at("lo").asU64();
    hi = v.at("hi").asU64();
    counts = readU64Array(v.at("buckets"));
}

void
StatGroup::saveState(JsonWriter &w) const
{
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.field(name, value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, histogram] : histograms) {
        w.key(name).beginObject();
        histogram.saveState(w);
        w.endObject();
    }
    w.endObject();
}

void
StatGroup::loadState(const JsonValue &v)
{
    clear();
    for (const auto &[name, value] : v.at("counters").members())
        counters[name] = value.asU64();
    for (const auto &[name, histogram] : v.at("histograms").members())
        histograms[name].loadState(histogram);
}

} // namespace xloops
