/**
 * @file
 * Fixed-size worker pool with a sharded work queue and deterministic
 * result collection, built for the experiment sweeps (system/sweep.h)
 * that dominate evaluation wall-clock.
 *
 * Determinism contract: a batch of N index-addressed tasks produces
 * the same merged output for any worker count. Each task writes only
 * its own result slot, results are merged in submission order, and
 * when tasks throw, the exception of the *lowest task index* is the
 * one rethrown (completion order never leaks). A pool of size 1
 * degenerates to plain inline execution — same results, same first
 * exception — which is what tests/test_pool.cc pins down.
 *
 * Tasks that need randomness must not share streams across tasks:
 * taskSeed() derives an independent per-task root seed from
 * (rootSeed, taskIndex), which tasks feed to their own RngPool (see
 * common/rng.h) so fault schedules are a function of the cell, never
 * of the worker that happened to run it.
 */

#ifndef XLOOPS_COMMON_POOL_H
#define XLOOPS_COMMON_POOL_H

#include <functional>
#include <vector>

#include "common/types.h"

namespace xloops {

/**
 * Worker count to use when the caller does not specify one: the
 * XLOOPS_JOBS environment variable when set (clamped to [1, 256]),
 * otherwise the hardware concurrency, otherwise 1.
 */
unsigned defaultJobs();

/**
 * Deterministic per-task RNG root seed: a well-mixed function of the
 * batch root seed and the task index, independent of worker count and
 * scheduling. Never returns 0 (a zero seed means "injection off" to
 * FaultConfig).
 */
u64 taskSeed(u64 rootSeed, size_t taskIndex);

/**
 * A fixed-size worker pool over index-addressed task batches.
 *
 * The queue is sharded one shard per worker (task i starts on shard
 * i % jobs); an idle worker steals from the other shards, so a few
 * slow tasks cannot strand the rest of the batch. Stealing reorders
 * *execution*, never *results*.
 */
class WorkerPool
{
  public:
    /** @p jobs worker threads; 0 means defaultJobs(). */
    explicit WorkerPool(unsigned jobs = 0);

    unsigned jobs() const { return jobCount; }

    /**
     * Run fn(0) .. fn(n-1) across the workers and wait for all of
     * them. With jobs() == 1 (or n <= 1) the tasks run inline on the
     * calling thread in index order.
     *
     * When one or more tasks throw, every remaining task still runs
     * (parallel workers may already be past the failing index), and
     * the exception of the lowest-index failing task is rethrown —
     * so the propagated error is deterministic too.
     */
    void run(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * Deterministic parallel map: out[i] = fn(i), collected per task
     * index and returned in submission order regardless of which
     * worker finished when.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t n, Fn &&fn) const
    {
        std::vector<T> out(n);
        run(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    unsigned jobCount;
};

} // namespace xloops

#endif // XLOOPS_COMMON_POOL_H
