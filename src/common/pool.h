/**
 * @file
 * Fixed-size worker pool with a sharded work queue and deterministic
 * result collection, built for the experiment sweeps (system/sweep.h)
 * that dominate evaluation wall-clock.
 *
 * Determinism contract: a batch of N index-addressed tasks produces
 * the same merged output for any worker count. Each task writes only
 * its own result slot, results are merged in submission order, and
 * when tasks throw, the exception of the *lowest task index* is the
 * one rethrown (completion order never leaks). A pool of size 1
 * degenerates to plain inline execution — same results, same first
 * exception — which is what tests/test_pool.cc pins down.
 *
 * Failure cancels doomed work: once a task at index F has thrown,
 * still-queued tasks with index > F are skipped rather than silently
 * executed (their results would be discarded by the rethrow anyway).
 * Tasks with index < F always run, so the lowest-index failure — the
 * one that propagates — is unaffected by the cancellation and stays
 * deterministic.
 *
 * Batches also accept external controls (RunControl): a CancelToken
 * the submitter can fire to stop dequeuing, and a wall-clock deadline
 * budget. Both skip remaining tasks cooperatively (a task already
 * running completes) and surface as SimError(Cancelled) /
 * SimError(Deadline) when they actually cut work short — the service
 * layer (src/service/) uses these as job-quota enforcement.
 *
 * Tasks that need randomness must not share streams across tasks:
 * taskSeed() derives an independent per-task root seed from
 * (rootSeed, taskIndex), which tasks feed to their own RngPool (see
 * common/rng.h) so fault schedules are a function of the cell, never
 * of the worker that happened to run it.
 */

#ifndef XLOOPS_COMMON_POOL_H
#define XLOOPS_COMMON_POOL_H

#include <atomic>
#include <functional>
#include <vector>

#include "common/types.h"

namespace xloops {

/**
 * Cooperative cancellation flag shared between a batch submitter and
 * the pool workers draining it. cancel() is safe from any thread
 * (including a signal-adjacent watchdog thread); workers observe it
 * before starting each task, never mid-task.
 */
class CancelToken
{
  public:
    void cancel() { flag.store(true, std::memory_order_relaxed); }
    bool cancelled() const
    {
        return flag.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

/** External controls on one run()/map() batch (both optional). */
struct RunControl
{
    /** Stop starting new tasks once fired; the batch then throws
     *  SimError(Cancelled) if any task was actually skipped. */
    const CancelToken *cancel = nullptr;

    /** Wall-clock budget in milliseconds measured from run() entry;
     *  0 disables. Tasks not started before the budget expires are
     *  skipped and the batch throws SimError(Deadline). */
    u64 deadlineMs = 0;
};

/**
 * Worker count to use when the caller does not specify one: the
 * XLOOPS_JOBS environment variable when set (clamped to [1, 256]),
 * otherwise the hardware concurrency, otherwise 1.
 */
unsigned defaultJobs();

/**
 * Deterministic per-task RNG root seed: a well-mixed function of the
 * batch root seed and the task index, independent of worker count and
 * scheduling. Never returns 0 (a zero seed means "injection off" to
 * FaultConfig).
 */
u64 taskSeed(u64 rootSeed, size_t taskIndex);

/**
 * A fixed-size worker pool over index-addressed task batches.
 *
 * The queue is sharded one shard per worker (task i starts on shard
 * i % jobs); an idle worker steals from the other shards, so a few
 * slow tasks cannot strand the rest of the batch. Stealing reorders
 * *execution*, never *results*.
 */
class WorkerPool
{
  public:
    /** @p jobs worker threads; 0 means defaultJobs(). */
    explicit WorkerPool(unsigned jobs = 0);

    unsigned jobs() const { return jobCount; }

    /**
     * Run fn(0) .. fn(n-1) across the workers and wait for all of
     * them. With jobs() == 1 (or n <= 1) the tasks run inline on the
     * calling thread in index order.
     *
     * When one or more tasks throw, the exception of the lowest-index
     * failing task is rethrown — deterministically, no matter which
     * worker hit which failure first. Still-queued tasks with a
     * higher index than a recorded failure are cancelled rather than
     * executed (see the file comment); tasks with a lower index
     * always run, so the propagated error cannot change.
     */
    void run(size_t n, const std::function<void(size_t)> &fn) const;

    /** run() under external controls (cancellation / deadline). */
    void run(size_t n, const std::function<void(size_t)> &fn,
             const RunControl &control) const;

    /**
     * Deterministic parallel map: out[i] = fn(i), collected per task
     * index and returned in submission order regardless of which
     * worker finished when.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t n, Fn &&fn, const RunControl &control = {}) const
    {
        std::vector<T> out(n);
        run(n, [&](size_t i) { out[i] = fn(i); }, control);
        return out;
    }

  private:
    unsigned jobCount;
};

} // namespace xloops

#endif // XLOOPS_COMMON_POOL_H
