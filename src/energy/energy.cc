#include "energy/energy.h"

namespace xloops {

EnergyBreakdown
EnergyModel::dynamicEnergy(const SysConfig &cfg,
                           const StatGroup &stats) const
{
    EnergyBreakdown out;

    // --- GPP -------------------------------------------------------------
    const double insts = static_cast<double>(stats.get("insts"));
    const double loads = static_cast<double>(stats.get("loads"));
    const double stores = static_cast<double>(stats.get("stores"));
    const double amos = static_cast<double>(stats.get("amos"));
    const double branches = static_cast<double>(stats.get("branches"));
    const double llfuOps = static_cast<double>(stats.get("llfu_ops"));

    double gpp = 0;
    gpp += insts * (tbl.icacheAccess + tbl.decode + 2 * tbl.rfRead +
                    tbl.rfWrite + tbl.alu);
    gpp += (loads + stores + amos) * tbl.dcacheAccess;
    gpp += amos * tbl.amoExtra;
    gpp += llfuOps * (tbl.llfuOp - tbl.alu);

    if (cfg.gpp.kind == GppConfig::Kind::OutOfOrder) {
        // Width scaling: wider machines have larger rename/IQ/ROB
        // structures (CAM/selection energy grows with width).
        const double widthScale = cfg.gpp.width == 2 ? 1.0 : 1.5;
        gpp += insts * widthScale *
               (tbl.renameOp + tbl.iqOp + tbl.robOp);
        gpp += branches * tbl.bpredAccess;
        gpp += (loads + stores) * tbl.lsqOp;
    }
    out.gppNj = gpp / 1000.0;

    // --- LPSU -------------------------------------------------------------
    const double laneInsts = static_cast<double>(stats.get("lane_insts"));
    const double laneMem =
        static_cast<double>(stats.get("lane_mem_accesses"));
    const double lsqOps = static_cast<double>(
        stats.get("lsq_loads") + stats.get("lsq_stores") +
        stats.get("lsq_drain_stores"));
    const double cibOps = static_cast<double>(stats.get("cib_pushes") +
                                              stats.get("cib_consumes"));
    const double mivs = static_cast<double>(stats.get("miv_fixups"));
    const double scanWrites =
        static_cast<double>(stats.get("scan_inst_writes"));
    const double scanRenames =
        static_cast<double>(stats.get("scan_renames"));
    const double scanLiveins =
        static_cast<double>(stats.get("scan_livein_writes"));

    double lpsu = 0;
    lpsu += laneInsts * (tbl.ibAccess + tbl.decode + 2 * tbl.rfRead +
                         tbl.rfWrite + tbl.alu);
    lpsu += laneMem * tbl.dcacheAccess;
    lpsu += lsqOps * tbl.lsqOp;
    lpsu += cibOps * tbl.cibOp;
    lpsu += mivs * tbl.mivMul;
    // One-time renaming during the scan, amortized over all
    // iterations (paper Section II-D).
    lpsu += scanWrites * tbl.scanWrite + scanRenames * tbl.renameOp +
            scanLiveins * tbl.rfWrite;
    lpsu *= 1.0 + tbl.lmuOverheadFrac;
    out.lpsuNj = lpsu / 1000.0;

    return out;
}

} // namespace xloops
