/**
 * @file
 * Event-based dynamic energy model in the spirit of the paper's
 * McPAT-1.0 methodology (45 nm). Each microarchitectural event has a
 * fixed energy; a run's merged statistics are folded against the
 * table. The key calibration points follow the paper:
 *
 *  - an LPSU instruction-buffer access is ~10x cheaper than an
 *    instruction-cache access (paper Section V-C);
 *  - xi execution is charged as a (narrow) multiply;
 *  - CIB transfers are charged as extra register-file read+write;
 *  - LSQ events use out-of-order-class LSQ energy (conservative);
 *  - the LMU/index queues/arbiters add a 5% overhead on the LPSU
 *    subtotal (paper Section IV-A);
 *  - OoO processors pay rename/issue-queue/ROB energy per
 *    instruction, scaled with issue width.
 */

#ifndef XLOOPS_ENERGY_ENERGY_H
#define XLOOPS_ENERGY_ENERGY_H

#include "common/stats.h"
#include "system/config.h"

namespace xloops {

/** Per-event dynamic energies in picojoules (45 nm class). */
struct EnergyTable
{
    double icacheAccess = 25.0;
    double ibAccess = 2.5;        ///< 10x cheaper than the icache
    double decode = 2.0;
    double rfRead = 1.0;
    double rfWrite = 1.5;
    double alu = 3.0;
    double llfuOp = 10.0;         ///< mul/fpu average; div folded in
    double dcacheAccess = 30.0;
    double amoExtra = 10.0;
    double lsqOp = 6.0;           ///< OoO-class LSQ energy per access
    double cibOp = 2.5;           ///< approx. one rf read + write
    double mivMul = 5.0;          ///< narrow multiplier
    double scanWrite = 3.0;       ///< IB write during scan
    double renameOp = 4.0;
    double iqOp = 6.0;
    double robOp = 4.0;
    double bpredAccess = 2.0;
    double lmuOverheadFrac = 0.05;
};

/** Breakdown of one run's dynamic energy (nanojoules). */
struct EnergyBreakdown
{
    double gppNj = 0;
    double lpsuNj = 0;
    double totalNj() const { return gppNj + lpsuNj; }
};

class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyTable &table = {}) : tbl(table) {}

    /**
     * Fold the merged statistics of a run against the event table.
     * @p cfg selects the GPP event profile (in-order vs OoO width).
     */
    EnergyBreakdown dynamicEnergy(const SysConfig &cfg,
                                  const StatGroup &stats) const;

    /** Energy efficiency of run b relative to run a:
     *  (energy_a / energy_b) for the same work. */
    static double
    relativeEfficiency(double base_nj, double other_nj)
    {
        return other_nj > 0 ? base_nj / other_nj : 0.0;
    }

    const EnergyTable &table() const { return tbl; }

  private:
    EnergyTable tbl;
};

} // namespace xloops

#endif // XLOOPS_ENERGY_ENERGY_H
