/**
 * @file
 * Disassembler for decoded xrisc instructions.
 */

#ifndef XLOOPS_ISA_DISASM_H
#define XLOOPS_ISA_DISASM_H

#include <string>

#include "isa/instruction.h"

namespace xloops {

/** Render @p inst in assembler syntax; @p pc resolves branch targets. */
std::string disassemble(const Instruction &inst, Addr pc = 0);

/** Register name ("r0".."r31"). */
std::string regName(RegId reg);

} // namespace xloops

#endif // XLOOPS_ISA_DISASM_H
