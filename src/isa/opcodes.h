/**
 * @file
 * The xrisc ISA opcode space, including the XLOOPS extensions
 * (xloop.{uc,or,om,orm,ua}[.db], addiu.xi, addu.xi).
 *
 * One X-macro table keeps the mnemonic, encoding format, functional
 * class, and nominal execute latency for every opcode in one place so
 * the assembler, decoder, disassembler, and timing models can never
 * disagree.
 */

#ifndef XLOOPS_ISA_OPCODES_H
#define XLOOPS_ISA_OPCODES_H

#include "common/types.h"

namespace xloops {

/** Instruction encoding formats. */
enum class Format : u8
{
    R,      ///< opcode rd, rs1, rs2
    I,      ///< opcode rd, rs1, imm14 (loads: rd, imm(rs1))
    S,      ///< stores: opcode rs2, imm14(rs1)
    U,      ///< opcode rd, imm19 (lui)
    B,      ///< opcode rs1, rs2, label (imm14 word offset)
    J,      ///< opcode rd, label (imm19 word offset)
    X,      ///< xloop: opcode rIdx, rBound, label (imm13 back offset)
    XI,     ///< addiu.xi rd, imm14 / addu.xi rd, rs2
    N,      ///< no operands (nop, halt, fence)
    C,      ///< csrr rd, imm (read cycle counter etc.)
    A,      ///< AMO: opcode rd, rs2, (rs1)
};

/** Functional unit class used by the timing models. */
enum class FuClass : u8
{
    Alu,        ///< 1-cycle integer op
    Mul,        ///< LLFU multiplier (pipelined)
    Div,        ///< LLFU divider (unpipelined)
    Fpu,        ///< LLFU floating point (pipelined)
    Load,
    Store,
    Amo,
    Branch,
    Jump,
    Xloop,      ///< xloop instruction itself
    Xi,         ///< cross-iteration add (MIV)
    Misc,
};

// X-macro: OP(enumerator, "mnemonic", Format, FuClass, latency)
#define XLOOPS_OPCODE_LIST(OP)                                   \
    /* integer register-register */                              \
    OP(ADD,     "add",      R, Alu, 1)                           \
    OP(SUB,     "sub",      R, Alu, 1)                           \
    OP(MUL,     "mul",      R, Mul, 3)                           \
    OP(MULH,    "mulh",     R, Mul, 3)                           \
    OP(DIV,     "div",      R, Div, 12)                          \
    OP(REM,     "rem",      R, Div, 12)                          \
    OP(AND,     "and",      R, Alu, 1)                           \
    OP(OR,      "or",       R, Alu, 1)                           \
    OP(XOR,     "xor",      R, Alu, 1)                           \
    OP(NOR,     "nor",      R, Alu, 1)                           \
    OP(SLL,     "sll",      R, Alu, 1)                           \
    OP(SRL,     "srl",      R, Alu, 1)                           \
    OP(SRA,     "sra",      R, Alu, 1)                           \
    OP(SLT,     "slt",      R, Alu, 1)                           \
    OP(SLTU,    "sltu",     R, Alu, 1)                           \
    /* integer register-immediate */                             \
    OP(ADDI,    "addi",     I, Alu, 1)                           \
    OP(ANDI,    "andi",     I, Alu, 1)                           \
    OP(ORI,     "ori",      I, Alu, 1)                           \
    OP(XORI,    "xori",     I, Alu, 1)                           \
    OP(SLLI,    "slli",     I, Alu, 1)                           \
    OP(SRLI,    "srli",     I, Alu, 1)                           \
    OP(SRAI,    "srai",     I, Alu, 1)                           \
    OP(SLTI,    "slti",     I, Alu, 1)                           \
    OP(SLTIU,   "sltiu",    I, Alu, 1)                           \
    OP(LUI,     "lui",      U, Alu, 1)                           \
    /* single-precision floating point in the unified regfile */ \
    OP(FADD,    "fadd",     R, Fpu, 4)                           \
    OP(FSUB,    "fsub",     R, Fpu, 4)                           \
    OP(FMUL,    "fmul",     R, Fpu, 4)                           \
    OP(FDIV,    "fdiv",     R, Fpu, 12)                          \
    OP(FMIN,    "fmin",     R, Fpu, 4)                           \
    OP(FMAX,    "fmax",     R, Fpu, 4)                           \
    OP(FLT,     "flt",      R, Fpu, 4)                           \
    OP(FLE,     "fle",      R, Fpu, 4)                           \
    OP(FEQ,     "feq",      R, Fpu, 4)                           \
    OP(FCVTSW,  "fcvt.s.w", R, Fpu, 4)                           \
    OP(FCVTWS,  "fcvt.w.s", R, Fpu, 4)                           \
    /* memory */                                                 \
    OP(LW,      "lw",       I, Load, 2)                          \
    OP(LH,      "lh",       I, Load, 2)                          \
    OP(LHU,     "lhu",      I, Load, 2)                          \
    OP(LB,      "lb",       I, Load, 2)                          \
    OP(LBU,     "lbu",      I, Load, 2)                          \
    OP(SW,      "sw",       S, Store, 1)                         \
    OP(SH,      "sh",       S, Store, 1)                         \
    OP(SB,      "sb",       S, Store, 1)                         \
    /* atomic memory operations: rd <- M[rs1]; M[rs1] op= rs2 */ \
    OP(AMOADD,  "amoadd",   A, Amo, 3)                           \
    OP(AMOAND,  "amoand",   A, Amo, 3)                           \
    OP(AMOOR,   "amoor",    A, Amo, 3)                           \
    OP(AMOXOR,  "amoxor",   A, Amo, 3)                           \
    OP(AMOSWAP, "amoswap",  A, Amo, 3)                           \
    OP(AMOMIN,  "amomin",   A, Amo, 3)                           \
    OP(AMOMAX,  "amomax",   A, Amo, 3)                           \
    OP(FENCE,   "fence",    N, Misc, 1)                          \
    /* control flow (no delay slots) */                          \
    OP(BEQ,     "beq",      B, Branch, 1)                        \
    OP(BNE,     "bne",      B, Branch, 1)                        \
    OP(BLT,     "blt",      B, Branch, 1)                        \
    OP(BGE,     "bge",      B, Branch, 1)                        \
    OP(BLTU,    "bltu",     B, Branch, 1)                        \
    OP(BGEU,    "bgeu",     B, Branch, 1)                        \
    OP(JAL,     "jal",      J, Jump, 1)                          \
    OP(JALR,    "jalr",     I, Jump, 1)                          \
    /* XLOOPS loop instructions */                               \
    OP(XLOOP_UC,     "xloop.uc",     X, Xloop, 1)                \
    OP(XLOOP_OR,     "xloop.or",     X, Xloop, 1)                \
    OP(XLOOP_OM,     "xloop.om",     X, Xloop, 1)                \
    OP(XLOOP_ORM,    "xloop.orm",    X, Xloop, 1)                \
    OP(XLOOP_UA,     "xloop.ua",     X, Xloop, 1)                \
    OP(XLOOP_UC_DB,  "xloop.uc.db",  X, Xloop, 1)                \
    OP(XLOOP_OR_DB,  "xloop.or.db",  X, Xloop, 1)                \
    OP(XLOOP_OM_DB,  "xloop.om.db",  X, Xloop, 1)                \
    OP(XLOOP_ORM_DB, "xloop.orm.db", X, Xloop, 1)                \
    OP(XLOOP_UA_DB,  "xloop.ua.db",  X, Xloop, 1)                \
    /* extension: data-dependent exit (paper future work). The      \
       second register is an exit flag, not a bound: traditional    \
       execution loops while it reads zero; specialized execution   \
       cancels buffered iterations beyond the first exiting one,    \
       which is why only the memory-ordered patterns support it. */ \
    OP(XLOOP_OM_DE,  "xloop.om.de",  X, Xloop, 1)                 \
    OP(XLOOP_ORM_DE, "xloop.orm.de", X, Xloop, 1)                 \
    /* XLOOPS cross-iteration (mutual induction variable) adds */\
    OP(ADDIU_XI, "addiu.xi", XI, Xi, 1)                          \
    OP(ADDU_XI,  "addu.xi",  XI, Xi, 1)                          \
    /* misc */                                                   \
    OP(NOP,     "nop",      N, Misc, 1)                          \
    OP(HALT,    "halt",     N, Misc, 1)                          \
    OP(CSRR,    "csrr",     C, Misc, 1)

/** All xrisc opcodes. The numeric value is the 8-bit encoding field. */
enum class Op : u8
{
#define XLOOPS_OP_ENUM(name, mnem, fmt, fu, lat) name,
    XLOOPS_OPCODE_LIST(XLOOPS_OP_ENUM)
#undef XLOOPS_OP_ENUM
    NumOpcodes
};

constexpr unsigned numOpcodes = static_cast<unsigned>(Op::NumOpcodes);

/** Inter-iteration data-dependence patterns an xloop can encode. */
enum class LoopPattern : u8
{
    UC,     ///< unordered concurrent
    OR,     ///< ordered through registers
    OM,     ///< ordered through memory
    ORM,    ///< ordered through registers and memory
    UA,     ///< unordered atomic
};

/** Static per-opcode properties. */
struct OpTraits
{
    const char *mnemonic;
    Format format;
    FuClass fuClass;
    u8 latency;
};

/** Trait lookup for opcode @p op. */
const OpTraits &opTraits(Op op);

/** True for all xloop.* opcodes. */
bool isXloopOp(Op op);

/** True for xloop.*.db opcodes. */
bool isDynamicBoundOp(Op op);

/** True for the xloop.*.de (data-dependent exit) extension opcodes. */
bool isDataDepExitOp(Op op);

/** Data-dependence pattern of an xloop opcode. Panics on non-xloop. */
LoopPattern xloopPattern(Op op);

/** Human-readable name of a loop pattern ("uc", "or", ...). */
const char *patternName(LoopPattern pattern);

/** True when the opcode's FU class executes on the shared LLFU. */
inline bool
isLlfuClass(FuClass fu)
{
    return fu == FuClass::Mul || fu == FuClass::Div || fu == FuClass::Fpu;
}

} // namespace xloops

#endif // XLOOPS_ISA_OPCODES_H
