#include "isa/disasm.h"

#include <sstream>

namespace xloops {

std::string
regName(RegId reg)
{
    return "r" + std::to_string(reg);
}

std::string
disassemble(const Instruction &inst, Addr pc)
{
    std::ostringstream os;
    os << inst.traits().mnemonic;
    auto target = [&](i32 words) {
        return static_cast<Addr>(static_cast<i64>(pc) + i64{words} * 4);
    };

    switch (inst.traits().format) {
      case Format::R:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << regName(inst.rs2);
        break;
      case Format::A:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs2)
           << ", (" << regName(inst.rs1) << ")";
        break;
      case Format::I:
        if (inst.isLoad()) {
            os << " " << regName(inst.rd) << ", " << inst.imm << "("
               << regName(inst.rs1) << ")";
        } else {
            os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
               << ", " << inst.imm;
        }
        break;
      case Format::S:
        os << " " << regName(inst.rs2) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Format::U:
      case Format::C:
        os << " " << regName(inst.rd) << ", " << inst.imm;
        break;
      case Format::B:
        os << " " << regName(inst.rs1) << ", " << regName(inst.rs2)
           << ", 0x" << std::hex << target(inst.imm);
        break;
      case Format::J:
        os << " " << regName(inst.rd) << ", 0x" << std::hex
           << target(inst.imm);
        break;
      case Format::X:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", 0x" << std::hex << target(inst.imm);
        if (inst.hint)
            os << " [hint]";
        break;
      case Format::XI:
        if (inst.op == Op::ADDIU_XI)
            os << " " << regName(inst.rd) << ", " << inst.imm;
        else
            os << " " << regName(inst.rd) << ", " << regName(inst.rs2);
        break;
      case Format::N:
        break;
    }
    return os.str();
}

} // namespace xloops
