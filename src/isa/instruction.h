/**
 * @file
 * Decoded xrisc instruction plus binary encode/decode.
 *
 * Encoding layout (32-bit word, opcode always in [31:24]):
 *
 *   R  : op[31:24] rd[23:19] rs1[18:14] rs2[13:9] 0[8:0]
 *   I  : op[31:24] rd[23:19] rs1[18:14] imm14[13:0]          (signed)
 *   S  : op[31:24] rs2[23:19] rs1[18:14] imm14[13:0]         (signed)
 *   U  : op[31:24] rd[23:19] imm19[18:0]                     (unsigned)
 *   B  : op[31:24] rs1[23:19] rs2[18:14] imm14[13:0]  word offset (signed)
 *   J  : op[31:24] rd[23:19] imm19[18:0]              word offset (signed)
 *   X  : op[31:24] rIdx[23:19] rBound[18:14] hint[13] imm13[12:0]
 *        imm13 is a signed word offset to the loop-body label L and must
 *        be negative (the body lies strictly before the xloop).
 *   XI : addiu.xi: op rd[23:19] 0[18:14] imm14[13:0]; rs1 == rd implicit
 *        addu.xi : op rd[23:19] rs2[18:14] 0
 *   A  : op[31:24] rd[23:19] rs1[18:14] rs2[13:9] 0[8:0]
 *   C  : op[31:24] rd[23:19] imm19[18:0] (CSR number)
 *   N  : op[31:24] 0
 */

#ifndef XLOOPS_ISA_INSTRUCTION_H
#define XLOOPS_ISA_INSTRUCTION_H

#include "common/types.h"
#include "isa/opcodes.h"

namespace xloops {

/** A decoded instruction; the unit the simulators operate on. */
struct Instruction
{
    Op op = Op::NOP;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    i32 imm = 0;
    bool hint = false;  ///< xloop specialization hint (X format only)

    /** Encode into the 32-bit binary form. Panics if fields overflow. */
    u32 encode() const;

    /** Decode a 32-bit word. Throws FatalError on an unknown opcode. */
    static Instruction decode(u32 word);

    const OpTraits &traits() const { return opTraits(op); }

    bool isXloop() const { return isXloopOp(op); }
    bool isDynamicBound() const { return isDynamicBoundOp(op); }
    bool isDataDepExit() const { return isDataDepExitOp(op); }
    LoopPattern pattern() const { return xloopPattern(op); }

    bool isLoad() const { return traits().fuClass == FuClass::Load; }
    bool isStore() const { return traits().fuClass == FuClass::Store; }
    bool isAmo() const { return traits().fuClass == FuClass::Amo; }
    bool isMem() const { return isLoad() || isStore() || isAmo(); }
    bool isBranch() const { return traits().fuClass == FuClass::Branch; }
    bool isJump() const { return traits().fuClass == FuClass::Jump; }
    bool isControl() const { return isBranch() || isJump() || isXloop(); }
    bool isLlfu() const { return isLlfuClass(traits().fuClass); }
    bool isXi() const { return traits().fuClass == FuClass::Xi; }

    /** Destination register, or 32 (invalid) when none is written. */
    RegId destReg() const;

    /** Source registers; count returned, regs written to @p out[0..1]. */
    unsigned srcRegs(RegId out[2]) const;

    bool operator==(const Instruction &other) const = default;
};

} // namespace xloops

#endif // XLOOPS_ISA_INSTRUCTION_H
