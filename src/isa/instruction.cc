#include "isa/instruction.h"

#include <array>

#include "common/log.h"

namespace xloops {

namespace {

constexpr std::array<OpTraits, numOpcodes> opTraitsTable = {{
#define XLOOPS_OP_TRAITS(name, mnem, fmt, fu, lat)                    \
    OpTraits{mnem, Format::fmt, FuClass::fu, lat},
    XLOOPS_OPCODE_LIST(XLOOPS_OP_TRAITS)
#undef XLOOPS_OP_TRAITS
}};

} // namespace

const OpTraits &
opTraits(Op op)
{
    const auto idx = static_cast<unsigned>(op);
    XL_ASSERT(idx < numOpcodes, "bad opcode ", idx);
    return opTraitsTable[idx];
}

bool
isXloopOp(Op op)
{
    return op >= Op::XLOOP_UC && op <= Op::XLOOP_ORM_DE;
}

bool
isDynamicBoundOp(Op op)
{
    return op >= Op::XLOOP_UC_DB && op <= Op::XLOOP_UA_DB;
}

bool
isDataDepExitOp(Op op)
{
    return op == Op::XLOOP_OM_DE || op == Op::XLOOP_ORM_DE;
}

LoopPattern
xloopPattern(Op op)
{
    switch (op) {
      case Op::XLOOP_UC: case Op::XLOOP_UC_DB: return LoopPattern::UC;
      case Op::XLOOP_OR: case Op::XLOOP_OR_DB: return LoopPattern::OR;
      case Op::XLOOP_OM: case Op::XLOOP_OM_DB: case Op::XLOOP_OM_DE:
        return LoopPattern::OM;
      case Op::XLOOP_ORM: case Op::XLOOP_ORM_DB: case Op::XLOOP_ORM_DE:
        return LoopPattern::ORM;
      case Op::XLOOP_UA: case Op::XLOOP_UA_DB: return LoopPattern::UA;
      default:
        panic(strf("xloopPattern on non-xloop opcode ",
                   opTraits(op).mnemonic));
    }
}

const char *
patternName(LoopPattern pattern)
{
    switch (pattern) {
      case LoopPattern::UC: return "uc";
      case LoopPattern::OR: return "or";
      case LoopPattern::OM: return "om";
      case LoopPattern::ORM: return "orm";
      case LoopPattern::UA: return "ua";
    }
    return "?";
}

u32
Instruction::encode() const
{
    const u32 opf = static_cast<u32>(op) << 24;
    auto reg = [](RegId r, unsigned lo) {
        XL_ASSERT(r < numArchRegs, "register out of range");
        return static_cast<u32>(r) << lo;
    };
    auto simm = [this](i32 v, unsigned bitCount) -> u32 {
        if (!fitsSigned(v, bitCount)) {
            fatal(strf("immediate ", v, " does not fit in ", bitCount,
                       " bits for ", traits().mnemonic));
        }
        return static_cast<u32>(v) & ((1u << bitCount) - 1);
    };

    switch (traits().format) {
      case Format::R:
      case Format::A:
        return opf | reg(rd, 19) | reg(rs1, 14) | reg(rs2, 9);
      case Format::I:
        return opf | reg(rd, 19) | reg(rs1, 14) | simm(imm, 14);
      case Format::S:
        return opf | reg(rs2, 19) | reg(rs1, 14) | simm(imm, 14);
      case Format::U:
      case Format::C:
        XL_ASSERT(imm >= 0 && imm < (1 << 19), "U imm out of range");
        return opf | reg(rd, 19) | static_cast<u32>(imm);
      case Format::B:
        return opf | reg(rs1, 19) | reg(rs2, 14) | simm(imm, 14);
      case Format::J:
        return opf | reg(rd, 19) | simm(imm, 19);
      case Format::X:
        if (imm >= 0)
            fatal("xloop body label must precede the xloop instruction");
        return opf | reg(rd, 19) | reg(rs1, 14) |
               (hint ? (1u << 13) : 0) | simm(imm, 13);
      case Format::XI:
        if (op == Op::ADDIU_XI)
            return opf | reg(rd, 19) | simm(imm, 14);
        return opf | reg(rd, 19) | reg(rs2, 14);
      case Format::N:
        return opf;
    }
    panic("unhandled format in encode");
}

Instruction
Instruction::decode(u32 word)
{
    const u32 opIdx = bits(word, 31, 24);
    if (opIdx >= numOpcodes)
        fatal(strf("illegal instruction word 0x", std::hex, word));

    Instruction inst;
    inst.op = static_cast<Op>(opIdx);

    switch (inst.traits().format) {
      case Format::R:
      case Format::A:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        inst.rs1 = static_cast<RegId>(bits(word, 18, 14));
        inst.rs2 = static_cast<RegId>(bits(word, 13, 9));
        break;
      case Format::I:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        inst.rs1 = static_cast<RegId>(bits(word, 18, 14));
        inst.imm = signExtend(bits(word, 13, 0), 14);
        break;
      case Format::S:
        inst.rs2 = static_cast<RegId>(bits(word, 23, 19));
        inst.rs1 = static_cast<RegId>(bits(word, 18, 14));
        inst.imm = signExtend(bits(word, 13, 0), 14);
        break;
      case Format::U:
      case Format::C:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        inst.imm = static_cast<i32>(bits(word, 18, 0));
        break;
      case Format::B:
        inst.rs1 = static_cast<RegId>(bits(word, 23, 19));
        inst.rs2 = static_cast<RegId>(bits(word, 18, 14));
        inst.imm = signExtend(bits(word, 13, 0), 14);
        break;
      case Format::J:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        inst.imm = signExtend(bits(word, 18, 0), 19);
        break;
      case Format::X:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        inst.rs1 = static_cast<RegId>(bits(word, 18, 14));
        inst.hint = bits(word, 13, 13) != 0;
        inst.imm = signExtend(bits(word, 12, 0), 13);
        break;
      case Format::XI:
        inst.rd = static_cast<RegId>(bits(word, 23, 19));
        if (inst.op == Op::ADDIU_XI) {
            inst.imm = signExtend(bits(word, 13, 0), 14);
        } else {
            inst.rs2 = static_cast<RegId>(bits(word, 18, 14));
        }
        break;
      case Format::N:
        break;
    }
    return inst;
}

RegId
Instruction::destReg() const
{
    switch (traits().format) {
      case Format::R:
      case Format::A:
      case Format::I:
      case Format::U:
      case Format::C:
      case Format::J:
      case Format::XI:
        return rd == 0 ? numArchRegs : rd;  // r0 writes are discarded
      case Format::X:
        return rd == 0 ? numArchRegs : rd;  // traditional exec writes rIdx
      case Format::S:
      case Format::B:
      case Format::N:
        return numArchRegs;
    }
    return numArchRegs;
}

unsigned
Instruction::srcRegs(RegId out[2]) const
{
    switch (traits().format) {
      case Format::R:
      case Format::A:
        out[0] = rs1; out[1] = rs2;
        return 2;
      case Format::I:
        out[0] = rs1;
        return 1;
      case Format::S:
      case Format::B:
        out[0] = rs1; out[1] = rs2;
        return 2;
      case Format::X:
        out[0] = rd; out[1] = rs1;  // rIdx and rBound
        return 2;
      case Format::XI:
        if (op == Op::ADDIU_XI) {
            out[0] = rd;
            return 1;
        }
        out[0] = rd; out[1] = rs2;
        return 2;
      case Format::U:
      case Format::C:
      case Format::J:
      case Format::N:
        return 0;
    }
    return 0;
}

} // namespace xloops
