/**
 * @file
 * Compile-time per-opcode metadata for the threaded-dispatch executor.
 *
 * The X-macro in opcodes.h is the single source of truth for the
 * opcode space; this header expands it a second time into a constexpr
 * table of *execution* metadata: which semantic handler implements the
 * opcode, which operand fields it reads and writes, what memory side
 * effects it has, and whether it terminates a superblock. The threaded
 * interpreter (cpu/threaded.cc) dispatches on the handler id with a
 * computed goto instead of a per-opcode switch, and the superblock
 * builder uses the side-effect flags to decide where decoded basic
 * blocks end.
 *
 * Everything here is derived at compile time — the handler mapping, the
 * operand classes (from the encoding Format), and the side-effect flags
 * (from the FuClass) — and cross-checked against the OpTraits table by
 * static_assert, so the metadata can never drift from the ISA
 * definition without failing the build.
 */

#ifndef XLOOPS_ISA_OP_META_H
#define XLOOPS_ISA_OP_META_H

#include <array>

#include "isa/opcodes.h"

namespace xloops {

/**
 * Semantic handler implementing an opcode in the threaded interpreter.
 * Opcodes whose semantics differ only by a metadata parameter share a
 * handler: the five loads share Load (size/sign from OpMeta), the three
 * stores share Store, the seven AMOs share Amo (the combine function is
 * selected by the opcode inside MainMemory::amo), the ten xloop.*[.db]
 * opcodes share Xloop (traditional increment-compare-branch), and the
 * two xloop.*.de extensions share XloopDe.
 */
enum class OpHandler : u8
{
    Add, Sub, Mul, Mulh, Div, Rem, And, Or, Xor, Nor,
    Sll, Srl, Sra, Slt, Sltu,
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu, Lui,
    Fadd, Fsub, Fmul, Fdiv, Fmin, Fmax, Flt, Fle, Feq, Fcvtsw, Fcvtws,
    Load, Store, Amo, Fence,
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr,
    Xloop, XloopDe, AddiuXi, AdduXi,
    Nop, Halt, Csrr,
    NumHandlers
};

constexpr unsigned numOpHandlers =
    static_cast<unsigned>(OpHandler::NumHandlers);

/** Static execution metadata of one opcode. */
struct OpMeta
{
    OpHandler handler = OpHandler::Nop;
    bool readsRs1 = false;   ///< consumes the rs1 field as a register
    bool readsRs2 = false;   ///< consumes the rs2 field as a register
    bool readsRd = false;    ///< rd is also a source (xloop index, xi)
    bool writesRd = false;   ///< architectural write to rd (r0 discarded)
    bool memRead = false;    ///< reads data memory (loads, AMOs)
    bool memWrite = false;   ///< writes data memory (stores, AMOs)
    bool isAmo = false;      ///< read-modify-write atomic
    bool endsBlock = false;  ///< control flow or halt: terminates a
                             ///< superblock (everything after it in the
                             ///< static text may never execute)
    bool usesCycle = false;  ///< observes the cycle counter (csrr)
    u8 memSize = 0;          ///< access bytes (1, 2, 4; 0 = no access)
    bool memSigned = false;  ///< loads: sign-extend sub-word values
};

namespace op_meta_detail {

// Second and third expansions of the ISA X-macro: the encoding format
// and functional class of every opcode, indexable at compile time
// (instruction.cc's OpTraits table is runtime-only by design).
constexpr std::array<Format, numOpcodes> formats = {{
#define XLOOPS_OP_FMT(name, mnem, fmt, fu, lat) Format::fmt,
    XLOOPS_OPCODE_LIST(XLOOPS_OP_FMT)
#undef XLOOPS_OP_FMT
}};

constexpr std::array<FuClass, numOpcodes> fuClasses = {{
#define XLOOPS_OP_FU(name, mnem, fmt, fu, lat) FuClass::fu,
    XLOOPS_OPCODE_LIST(XLOOPS_OP_FU)
#undef XLOOPS_OP_FU
}};

constexpr bool
isXloopAt(unsigned i)
{
    return i >= static_cast<unsigned>(Op::XLOOP_UC) &&
           i <= static_cast<unsigned>(Op::XLOOP_ORM_DE);
}

constexpr bool
isDataDepExitAt(unsigned i)
{
    return i == static_cast<unsigned>(Op::XLOOP_OM_DE) ||
           i == static_cast<unsigned>(Op::XLOOP_ORM_DE);
}

/** Handler id of @p op; the shared-handler groups are keyed off the
 *  functional class so a new load/store/AMO/xloop opcode added to the
 *  X-macro lands in the right handler automatically. */
constexpr OpHandler
handlerOf(Op op)
{
    const unsigned i = static_cast<unsigned>(op);
    switch (fuClasses[i]) {
      case FuClass::Load: return OpHandler::Load;
      case FuClass::Store: return OpHandler::Store;
      case FuClass::Amo: return OpHandler::Amo;
      case FuClass::Xloop:
        return isDataDepExitAt(i) ? OpHandler::XloopDe : OpHandler::Xloop;
      default:
        break;
    }
    switch (op) {
      case Op::ADD: return OpHandler::Add;
      case Op::SUB: return OpHandler::Sub;
      case Op::MUL: return OpHandler::Mul;
      case Op::MULH: return OpHandler::Mulh;
      case Op::DIV: return OpHandler::Div;
      case Op::REM: return OpHandler::Rem;
      case Op::AND: return OpHandler::And;
      case Op::OR: return OpHandler::Or;
      case Op::XOR: return OpHandler::Xor;
      case Op::NOR: return OpHandler::Nor;
      case Op::SLL: return OpHandler::Sll;
      case Op::SRL: return OpHandler::Srl;
      case Op::SRA: return OpHandler::Sra;
      case Op::SLT: return OpHandler::Slt;
      case Op::SLTU: return OpHandler::Sltu;
      case Op::ADDI: return OpHandler::Addi;
      case Op::ANDI: return OpHandler::Andi;
      case Op::ORI: return OpHandler::Ori;
      case Op::XORI: return OpHandler::Xori;
      case Op::SLLI: return OpHandler::Slli;
      case Op::SRLI: return OpHandler::Srli;
      case Op::SRAI: return OpHandler::Srai;
      case Op::SLTI: return OpHandler::Slti;
      case Op::SLTIU: return OpHandler::Sltiu;
      case Op::LUI: return OpHandler::Lui;
      case Op::FADD: return OpHandler::Fadd;
      case Op::FSUB: return OpHandler::Fsub;
      case Op::FMUL: return OpHandler::Fmul;
      case Op::FDIV: return OpHandler::Fdiv;
      case Op::FMIN: return OpHandler::Fmin;
      case Op::FMAX: return OpHandler::Fmax;
      case Op::FLT: return OpHandler::Flt;
      case Op::FLE: return OpHandler::Fle;
      case Op::FEQ: return OpHandler::Feq;
      case Op::FCVTSW: return OpHandler::Fcvtsw;
      case Op::FCVTWS: return OpHandler::Fcvtws;
      case Op::FENCE: return OpHandler::Fence;
      case Op::BEQ: return OpHandler::Beq;
      case Op::BNE: return OpHandler::Bne;
      case Op::BLT: return OpHandler::Blt;
      case Op::BGE: return OpHandler::Bge;
      case Op::BLTU: return OpHandler::Bltu;
      case Op::BGEU: return OpHandler::Bgeu;
      case Op::JAL: return OpHandler::Jal;
      case Op::JALR: return OpHandler::Jalr;
      case Op::ADDIU_XI: return OpHandler::AddiuXi;
      case Op::ADDU_XI: return OpHandler::AdduXi;
      case Op::NOP: return OpHandler::Nop;
      case Op::HALT: return OpHandler::Halt;
      case Op::CSRR: return OpHandler::Csrr;
      default: return OpHandler::NumHandlers;  // caught by static_assert
    }
}

/** Memory access width of @p op (0 for non-memory opcodes). */
constexpr u8
memSizeOf(Op op)
{
    switch (op) {
      case Op::LW: case Op::SW: return 4;
      case Op::LH: case Op::LHU: case Op::SH: return 2;
      case Op::LB: case Op::LBU: case Op::SB: return 1;
      case Op::AMOADD: case Op::AMOAND: case Op::AMOOR: case Op::AMOXOR:
      case Op::AMOSWAP: case Op::AMOMIN: case Op::AMOMAX:
        return 4;
      default: return 0;
    }
}

constexpr bool
memSignedOf(Op op)
{
    return op == Op::LH || op == Op::LB;
}

constexpr OpMeta
metaOf(unsigned i)
{
    const Op op = static_cast<Op>(i);
    const Format fmt = formats[i];
    const FuClass fu = fuClasses[i];
    OpMeta m;
    m.handler = handlerOf(op);
    // Operand classes follow the encoding format (the same derivation
    // Instruction::srcRegs/destReg make at run time).
    m.readsRs1 = fmt == Format::R || fmt == Format::A || fmt == Format::I ||
                 fmt == Format::S || fmt == Format::B || fmt == Format::X;
    m.readsRs2 = fmt == Format::R || fmt == Format::A || fmt == Format::S ||
                 fmt == Format::B || op == Op::ADDU_XI;
    m.readsRd = fmt == Format::X || fmt == Format::XI;
    m.writesRd = fmt == Format::R || fmt == Format::A || fmt == Format::I ||
                 fmt == Format::U || fmt == Format::C || fmt == Format::J ||
                 fmt == Format::X || fmt == Format::XI;
    m.memRead = fu == FuClass::Load || fu == FuClass::Amo;
    m.memWrite = fu == FuClass::Store || fu == FuClass::Amo;
    m.isAmo = fu == FuClass::Amo;
    m.endsBlock = fu == FuClass::Branch || fu == FuClass::Jump ||
                  fu == FuClass::Xloop || op == Op::HALT;
    m.usesCycle = op == Op::CSRR;
    m.memSize = memSizeOf(op);
    m.memSigned = memSignedOf(op);
    return m;
}

template <unsigned... Is>
constexpr std::array<OpMeta, numOpcodes>
buildTable(std::integer_sequence<unsigned, Is...>)
{
    return {{metaOf(Is)...}};
}

} // namespace op_meta_detail

/** The compile-time metadata table, indexed by opcode value. */
constexpr std::array<OpMeta, numOpcodes> opMetaTable =
    op_meta_detail::buildTable(
        std::make_integer_sequence<unsigned, numOpcodes>{});

/** Metadata of opcode @p op. */
constexpr const OpMeta &
opMeta(Op op)
{
    return opMetaTable[static_cast<unsigned>(op)];
}

namespace op_meta_detail {

// The table cannot drift from the ISA definition: every opcode must
// map to a real handler, memory flags must agree with the functional
// class, block termination must cover exactly the control opcodes plus
// halt, and the load metadata must be present exactly for loads.
constexpr bool
tableConsistent()
{
    for (unsigned i = 0; i < numOpcodes; i++) {
        const OpMeta &m = opMetaTable[i];
        const FuClass fu = fuClasses[i];
        if (m.handler == OpHandler::NumHandlers)
            return false;
        if (m.memRead != (fu == FuClass::Load || fu == FuClass::Amo))
            return false;
        if (m.memWrite != (fu == FuClass::Store || fu == FuClass::Amo))
            return false;
        if (m.isAmo != (fu == FuClass::Amo))
            return false;
        if ((m.memSize != 0) != (m.memRead || m.memWrite))
            return false;
        if (m.memSigned && !(fu == FuClass::Load && m.memSize < 4))
            return false;
        if (m.endsBlock != (fu == FuClass::Branch || fu == FuClass::Jump ||
                            fu == FuClass::Xloop ||
                            static_cast<Op>(i) == Op::HALT))
            return false;
        if ((m.handler == OpHandler::Xloop ||
             m.handler == OpHandler::XloopDe) != isXloopAt(i))
            return false;
        if (m.readsRd &&
            !(formats[i] == Format::X || formats[i] == Format::XI))
            return false;
    }
    return true;
}

static_assert(tableConsistent(),
              "op_meta.h metadata disagrees with the opcodes.h X-macro");
static_assert(opMeta(Op::LW).memSize == 4 && opMeta(Op::LB).memSigned &&
                  !opMeta(Op::LBU).memSigned,
              "load width/sign metadata wrong");
static_assert(opMeta(Op::XLOOP_UC).handler == OpHandler::Xloop &&
                  opMeta(Op::XLOOP_ORM_DE).handler == OpHandler::XloopDe,
              "xloop handler grouping wrong");
static_assert(opMeta(Op::HALT).endsBlock && !opMeta(Op::CSRR).endsBlock,
              "superblock termination flags wrong");

} // namespace op_meta_detail

} // namespace xloops

#endif // XLOOPS_ISA_OP_META_H
