#include "frontend/frontend.h"

#include "asm/assembler.h"
#include "compiler/fission.h"

namespace xloops {

namespace {

void
walkLoops(const std::vector<Stmt> &body, unsigned depth,
          std::vector<LoopReport> &out)
{
    for (const Stmt &s : body) {
        switch (s.kind) {
          case Stmt::Kind::Nested: {
            const Loop &loop = s.nested.front();
            const LoopSelection sel = selectPattern(loop);
            LoopReport r;
            r.iv = loop.iv;
            r.depth = depth;
            r.pragma = loop.pragma;
            r.selection = sel.describe();
            r.cirs = sel.cirs;
            r.speculative = sel.speculative;
            r.inconclusive = sel.inconclusive;
            out.push_back(std::move(r));
            walkLoops(loop.body, depth + 1, out);
            break;
          }
          case Stmt::Kind::If:
            walkLoops(s.thenBody, depth, out);
            walkLoops(s.elseBody, depth, out);
            break;
          default:
            break;
        }
    }
}

size_t
countLoops(const std::vector<Stmt> &body)
{
    size_t n = 0;
    for (const Stmt &s : body) {
        if (s.kind == Stmt::Kind::Nested)
            n += 1 + countLoops(s.nested.front().body);
        else if (s.kind == Stmt::Kind::If)
            n += countLoops(s.thenBody) + countLoops(s.elseBody);
    }
    return n;
}

} // namespace

std::vector<LoopReport>
reportLoops(const std::vector<Stmt> &topLevel)
{
    std::vector<LoopReport> out;
    walkLoops(topLevel, 0, out);
    return out;
}

CompiledModule
compileModule(const FrontendModule &mod, const FrontendOptions &opts)
{
    CompiledModule out;
    out.module = mod;
    if (opts.fission) {
        const size_t before = countLoops(out.module.topLevel);
        applyFission(out.module.topLevel);
        out.fissionApplied =
            countLoops(out.module.topLevel) != before;
    }
    out.loops = reportLoops(out.module.topLevel);

    CodeGen cg;
    cg.lsrEnabled(opts.lsr);
    for (const ArrayDeclInfo &a : out.module.arrays)
        cg.declareArray(a.name, a.words, a.init);
    out.assembly = cg.compile(out.module.topLevel);
    out.program = assemble(out.assembly);
    return out;
}

CompiledModule
compileSource(const std::string &source, const FrontendOptions &opts)
{
    return compileModule(parseModule(source), opts);
}

} // namespace xloops
