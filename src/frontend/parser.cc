#include "frontend/parser.h"

#include <set>

namespace xloops {

const ArrayDeclInfo *
FrontendModule::findArray(const std::string &name) const
{
    for (const ArrayDeclInfo &a : arrays)
        if (a.name == name)
            return &a;
    return nullptr;
}

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : tokens(std::move(toks)) {}

    FrontendModule
    run()
    {
        while (!atEnd()) {
            if (peek().is(Token::Kind::Ident, "array"))
                parseArrayDecl();
            else
                mod.topLevel.push_back(parseStmt());
        }
        return std::move(mod);
    }

  private:
    // --- token plumbing -------------------------------------------

    const Token &peek(size_t ahead = 0) const
    {
        const size_t idx = pos + ahead;
        return tokens[idx < tokens.size() ? idx : tokens.size() - 1];
    }

    bool atEnd() const { return peek().kind == Token::Kind::End; }

    const Token &take() { return tokens[pos++]; }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        const Token &t = peek();
        std::string got;
        switch (t.kind) {
          case Token::Kind::End: got = "end of input"; break;
          case Token::Kind::Number: got = "'" + t.text + "'"; break;
          default: got = "'" + t.text + "'"; break;
        }
        throw FrontendError(msg + " (got " + got + ")", t.line, t.col);
    }

    bool
    eat(const std::string &punct)
    {
        if (peek().is(Token::Kind::Punct, punct)) {
            take();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &punct)
    {
        if (!eat(punct))
            err("expected '" + punct + "'");
    }

    bool
    eatIdent(const std::string &word)
    {
        if (peek().is(Token::Kind::Ident, word)) {
            take();
            return true;
        }
        return false;
    }

    std::string
    expectIdent(const std::string &what)
    {
        if (peek().kind != Token::Kind::Ident)
            err("expected " + what);
        return take().text;
    }

    i32
    expectNumber()
    {
        const bool neg = eat("-");
        if (peek().kind != Token::Kind::Number)
            err("expected integer literal");
        const i64 v = take().value;
        return static_cast<i32>(neg ? -v : v);
    }

    // --- declarations ---------------------------------------------

    void
    parseArrayDecl()
    {
        const Token &kw = peek();
        take();  // "array"
        ArrayDeclInfo decl;
        decl.name = expectIdent("array name");
        if (mod.findArray(decl.name)) {
            throw FrontendError("duplicate array '" + decl.name + "'",
                                kw.line, kw.col);
        }
        expect("[");
        const i32 words = expectNumber();
        if (words <= 0)
            throw FrontendError("array '" + decl.name +
                                    "' must have positive size",
                                kw.line, kw.col);
        decl.words = static_cast<unsigned>(words);
        expect("]");
        if (eat("=")) {
            expect("{");
            if (!peek().is(Token::Kind::Punct, "}")) {
                decl.init.push_back(expectNumber());
                while (eat(","))
                    decl.init.push_back(expectNumber());
            }
            expect("}");
            if (decl.init.size() > decl.words) {
                throw FrontendError(
                    strf("array '", decl.name, "' initializer has ",
                         decl.init.size(), " words but the array holds ",
                         decl.words),
                    kw.line, kw.col);
            }
        }
        expect(";");
        mod.arrays.push_back(std::move(decl));
    }

    // --- statements -----------------------------------------------

    Stmt
    parseStmt()
    {
        const Token &t = peek();
        if (t.kind == Token::Kind::Punct && t.text == "#")
            return parsePragmaLoop();
        if (t.kind != Token::Kind::Ident)
            err("expected statement");
        if (t.text == "for")
            return parseFor(Pragma::None, true);
        if (t.text == "if")
            return parseIf();
        if (t.text == "break")
            return parseBreakWhen();
        if (t.text == "let") {
            take();
            const std::string name = expectIdent("scalar name");
            expect("=");
            ExprPtr value = parseExpr();
            expect(";");
            return assign(name, std::move(value));
        }

        // IDENT "=" expr ";"  |  IDENT "[" expr "]" "=" expr ";"
        const std::string name = take().text;
        if (eat("[")) {
            requireArray(name, t);
            ExprPtr index = parseExpr();
            expect("]");
            expect("=");
            ExprPtr value = parseExpr();
            expect(";");
            return store(name, std::move(index), std::move(value));
        }
        expect("=");
        ExprPtr value = parseExpr();
        expect(";");
        return assign(name, std::move(value));
    }

    Stmt
    parsePragmaLoop()
    {
        const Token &hash = peek();
        take();  // "#"
        if (!eatIdent("pragma") || !eatIdent("xloops"))
            throw FrontendError("expected '#pragma xloops <kind>'",
                                hash.line, hash.col);
        Pragma pragma;
        const std::string kind = expectIdent("pragma kind");
        if (kind == "unordered")
            pragma = Pragma::Unordered;
        else if (kind == "ordered")
            pragma = Pragma::Ordered;
        else if (kind == "atomic")
            pragma = Pragma::Atomic;
        else if (kind == "auto")
            pragma = Pragma::Auto;
        else
            throw FrontendError(
                "unknown pragma kind '" + kind +
                    "' (want unordered|ordered|atomic|auto)",
                hash.line, hash.col);
        const bool hint = !eatIdent("nohint");
        if (!peek().is(Token::Kind::Ident, "for"))
            err("expected 'for' after #pragma xloops");
        return parseFor(pragma, hint);
    }

    Stmt
    parseFor(Pragma pragma, bool hint)
    {
        const Token &kw = peek();
        take();  // "for"
        expect("(");
        Loop loop;
        loop.pragma = pragma;
        loop.hintSpecialize = hint;
        loop.iv = expectIdent("induction variable");
        expect("=");
        loop.lower = parseExpr();
        expect(";");
        const std::string cmpIv = expectIdent("induction variable");
        if (cmpIv != loop.iv)
            throw FrontendError("loop condition must test '" + loop.iv +
                                    "', not '" + cmpIv + "'",
                                kw.line, kw.col);
        expect("<");
        loop.upper = parseExpr();
        expect(";");
        const std::string stepIv = expectIdent("induction variable");
        if (stepIv != loop.iv)
            throw FrontendError("loop step must update '" + loop.iv +
                                    "', not '" + stepIv + "'",
                                kw.line, kw.col);
        if (!eat("++")) {
            // the long form: iv = iv + 1
            expect("=");
            if (expectIdent("induction variable") != loop.iv)
                throw FrontendError("loop step must update '" + loop.iv +
                                        "' by exactly one",
                                    kw.line, kw.col);
            expect("+");
            if (peek().kind != Token::Kind::Number || peek().value != 1)
                err("loop step must be +1");
            take();
        }
        expect(")");
        loop.body = parseBlock();
        return nested(std::move(loop));
    }

    Stmt
    parseIf()
    {
        take();  // "if"
        expect("(");
        ExprPtr cond = parseExpr();
        expect(")");
        std::vector<Stmt> thenBody = parseBlock();
        std::vector<Stmt> elseBody;
        if (eatIdent("else"))
            elseBody = parseBlock();
        return ifThen(std::move(cond), std::move(thenBody),
                      std::move(elseBody));
    }

    Stmt
    parseBreakWhen()
    {
        const Token &kw = peek();
        take();  // "break"
        if (!eatIdent("when"))
            throw FrontendError("expected 'when' after 'break'",
                                kw.line, kw.col);
        expect("(");
        ExprPtr cond = parseExpr();
        expect(")");
        expect(";");
        return exitWhen(std::move(cond));
    }

    std::vector<Stmt>
    parseBlock()
    {
        expect("{");
        std::vector<Stmt> body;
        while (!peek().is(Token::Kind::Punct, "}")) {
            if (atEnd())
                err("unterminated block; expected '}'");
            body.push_back(parseStmt());
        }
        take();  // "}"
        return body;
    }

    // --- expressions (C precedence, lowest binds last) ------------

    ExprPtr parseExpr() { return parseLogicalOr(); }

    ExprPtr
    parseLogicalOr()
    {
        ExprPtr e = parseLogicalAnd();
        while (eat("||"))
            e = bin(BinOp::Or, e, parseLogicalAnd());
        return e;
    }

    ExprPtr
    parseLogicalAnd()
    {
        ExprPtr e = parseBitOr();
        while (eat("&&"))
            e = bin(BinOp::And, e, parseBitOr());
        return e;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (eat("|"))
            e = bin(BinOp::Or, e, parseBitXor());
        return e;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (eat("^"))
            e = bin(BinOp::Xor, e, parseBitAnd());
        return e;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr e = parseEquality();
        while (eat("&"))
            e = bin(BinOp::And, e, parseEquality());
        return e;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr e = parseRelational();
        for (;;) {
            if (eat("=="))
                e = bin(BinOp::Eq, e, parseRelational());
            else if (eat("!="))
                e = bin(BinOp::Ne, e, parseRelational());
            else
                return e;
        }
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr e = parseShift();
        for (;;) {
            if (eat("<="))
                e = bin(BinOp::Le, e, parseShift());
            else if (eat(">="))
                e = bin(BinOp::Ge, e, parseShift());
            else if (eat("<"))
                e = bin(BinOp::Lt, e, parseShift());
            else if (eat(">"))
                e = bin(BinOp::Gt, e, parseShift());
            else
                return e;
        }
    }

    ExprPtr
    parseShift()
    {
        ExprPtr e = parseAdditive();
        for (;;) {
            if (eat("<<"))
                e = bin(BinOp::Shl, e, parseAdditive());
            else if (eat(">>"))
                e = bin(BinOp::Shr, e, parseAdditive());
            else
                return e;
        }
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        for (;;) {
            if (eat("+"))
                e = add(e, parseMultiplicative());
            else if (eat("-"))
                e = sub(e, parseMultiplicative());
            else
                return e;
        }
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr e = parseUnary();
        for (;;) {
            if (eat("*"))
                e = mul(e, parseUnary());
            else if (eat("/"))
                e = bin(BinOp::Div, e, parseUnary());
            else if (eat("%"))
                e = bin(BinOp::Rem, e, parseUnary());
            else
                return e;
        }
    }

    ExprPtr
    parseUnary()
    {
        if (eat("-")) {
            if (peek().kind == Token::Kind::Number) {
                const Token &t = take();
                return cst(static_cast<i32>(-t.value));
            }
            return sub(cst(0), parseUnary());
        }
        if (eat("!"))
            return bin(BinOp::Eq, parseUnary(), cst(0));
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = peek();
        if (t.kind == Token::Kind::Number) {
            take();
            return cst(static_cast<i32>(t.value));
        }
        if (eat("(")) {
            ExprPtr e = parseExpr();
            expect(")");
            return e;
        }
        if (t.kind != Token::Kind::Ident)
            err("expected expression");
        if ((t.text == "min" || t.text == "max") &&
            peek(1).is(Token::Kind::Punct, "(")) {
            const BinOp op = t.text == "min" ? BinOp::Min : BinOp::Max;
            take();
            take();  // "("
            ExprPtr lhs = parseExpr();
            expect(",");
            ExprPtr rhs = parseExpr();
            expect(")");
            return bin(op, std::move(lhs), std::move(rhs));
        }
        const std::string name = take().text;
        if (eat("[")) {
            requireArray(name, t);
            ExprPtr index = parseExpr();
            expect("]");
            return ld(name, std::move(index));
        }
        return var(name);
    }

    void
    requireArray(const std::string &name, const Token &at) const
    {
        if (!mod.findArray(name)) {
            throw FrontendError("undeclared array '" + name + "'",
                                at.line, at.col);
        }
    }

    std::vector<Token> tokens;
    size_t pos = 0;
    FrontendModule mod;
};

} // namespace

FrontendModule
parseModule(const std::string &source)
{
    return Parser(lex(source)).run();
}

} // namespace xloops
