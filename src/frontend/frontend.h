/**
 * @file
 * The xl frontend driver: source text -> parse -> optional loop
 * fission -> pattern selection -> assembly -> assembled Program, with
 * a per-loop report of what the analysis decided (the `xfc --report`
 * surface and the fuzzer's analyzer-verdict oracle).
 */

#ifndef XLOOPS_FRONTEND_FRONTEND_H
#define XLOOPS_FRONTEND_FRONTEND_H

#include "compiler/codegen.h"
#include "frontend/parser.h"

namespace xloops {

/** Frontend pipeline knobs. */
struct FrontendOptions
{
    bool fission = false;  ///< run the loop-fission prepass
    bool lsr = true;       ///< pointer-MIV loop strength reduction
};

/** What pattern selection decided for one loop (pre-order walk of
 *  the post-fission module; depth 0 = top level). */
struct LoopReport
{
    std::string iv;
    unsigned depth = 0;
    Pragma pragma = Pragma::None;
    std::string selection;   ///< LoopSelection::describe()
    std::vector<std::string> cirs;
    bool speculative = false;
    bool inconclusive = false;
};

/** A fully lowered module. */
struct CompiledModule
{
    FrontendModule module;   ///< post-fission IR (what was lowered)
    std::vector<LoopReport> loops;
    bool fissionApplied = false;  ///< fission split at least one loop
    std::string assembly;
    Program program;
};

/** Pre-order LoopReports for @p topLevel (no lowering; usable on any
 *  IR, fissioned or not). */
std::vector<LoopReport> reportLoops(const std::vector<Stmt> &topLevel);

/** Lower an already-parsed module. Throws FatalError (from pattern
 *  selection or codegen) on programs the backend rejects. */
CompiledModule compileModule(const FrontendModule &mod,
                             const FrontendOptions &opts = {});

/** parseModule + compileModule. */
CompiledModule compileSource(const std::string &source,
                             const FrontendOptions &opts = {});

} // namespace xloops

#endif // XLOOPS_FRONTEND_FRONTEND_H
