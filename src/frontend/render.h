/**
 * @file
 * Render a FrontendModule (or a bare expression) back to xl source.
 * The output is fully parenthesized and always re-parses to a
 * structurally identical module — the round-trip property the fuzzer
 * and tests lean on (a generated module is rendered to text, parsed
 * back, and must analyze identically).
 */

#ifndef XLOOPS_FRONTEND_RENDER_H
#define XLOOPS_FRONTEND_RENDER_H

#include "frontend/parser.h"

namespace xloops {

/** xl source for @p expr (fully parenthesized). */
std::string renderExpr(const ExprPtr &expr);

/** xl source for a whole module. */
std::string renderModule(const FrontendModule &mod);

} // namespace xloops

#endif // XLOOPS_FRONTEND_RENDER_H
