/**
 * @file
 * Lexer for the xl loop-nest language — the textual frontend whose
 * programs lower through xcc's dependence analysis and pattern
 * selection (see DESIGN.md Section 17 for the grammar). Tokens carry
 * source positions so parse errors point at the offending line.
 */

#ifndef XLOOPS_FRONTEND_LEXER_H
#define XLOOPS_FRONTEND_LEXER_H

#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace xloops {

/** A lex or parse error, positioned in the source text. Derives from
 *  FatalError so tool-level catch sites treat it as a user error. */
class FrontendError : public FatalError
{
  public:
    FrontendError(const std::string &msg, unsigned line, unsigned col)
        : FatalError(strf("xl:", line, ":", col, ": ", msg)),
          ln(line), cl(col)
    {
    }

    unsigned line() const { return ln; }
    unsigned col() const { return cl; }

  private:
    unsigned ln;
    unsigned cl;
};

/** One lexical token. */
struct Token
{
    enum class Kind
    {
        Ident,   ///< identifier or keyword (text)
        Number,  ///< decimal integer literal (value)
        Punct,   ///< operator / punctuator (text, maximal munch)
        End,     ///< end of input (always the last token)
    };

    Kind kind = Kind::End;
    std::string text;
    i64 value = 0;
    unsigned line = 1;
    unsigned col = 1;

    bool is(Kind k, const std::string &t) const
    {
        return kind == k && text == t;
    }
};

/** Tokenize @p source ("//" comments skipped); throws FrontendError
 *  on malformed input (bad characters, out-of-range literals). */
std::vector<Token> lex(const std::string &source);

} // namespace xloops

#endif // XLOOPS_FRONTEND_LEXER_H
