/**
 * @file
 * Recursive-descent parser for the xl loop-nest language (grammar in
 * DESIGN.md Section 17). Produces a FrontendModule: array
 * declarations plus a top-level statement list in the xcc loop IR,
 * ready for pattern selection and code generation. Loops carry their
 * `#pragma xloops` annotation (unordered / ordered / atomic / auto,
 * optionally `nohint`); expressions use C precedence with `min` and
 * `max` builtins.
 */

#ifndef XLOOPS_FRONTEND_PARSER_H
#define XLOOPS_FRONTEND_PARSER_H

#include "compiler/ir.h"
#include "frontend/lexer.h"

namespace xloops {

/** One `array NAME[words] = { ... };` declaration. */
struct ArrayDeclInfo
{
    std::string name;
    unsigned words = 0;
    std::vector<i32> init;   ///< leading words; the rest are zero
};

/** A parsed xl module: the frontend's output and the renderer's
 *  input. */
struct FrontendModule
{
    std::vector<ArrayDeclInfo> arrays;
    std::vector<Stmt> topLevel;

    const ArrayDeclInfo *findArray(const std::string &name) const;
};

/** Parse @p source into a module; throws FrontendError on syntax
 *  errors, undeclared arrays, duplicate or zero-sized arrays. */
FrontendModule parseModule(const std::string &source);

} // namespace xloops

#endif // XLOOPS_FRONTEND_PARSER_H
