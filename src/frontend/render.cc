#include "frontend/render.h"

#include <sstream>

namespace xloops {

namespace {

const char *
opSpelling(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Rem: return "%";
      case BinOp::And: return "&";
      case BinOp::Or:  return "|";
      case BinOp::Xor: return "^";
      case BinOp::Shl: return "<<";
      case BinOp::Shr: return ">>";
      case BinOp::Lt:  return "<";
      case BinOp::Le:  return "<=";
      case BinOp::Gt:  return ">";
      case BinOp::Ge:  return ">=";
      case BinOp::Eq:  return "==";
      case BinOp::Ne:  return "!=";
      case BinOp::Min: return "min";
      case BinOp::Max: return "max";
    }
    return "?";
}

void
renderExprTo(const ExprPtr &e, std::ostream &out)
{
    switch (e->kind) {
      case Expr::Kind::Const:
        out << e->cval;
        break;
      case Expr::Kind::Var:
        out << e->var;
        break;
      case Expr::Kind::Load:
        out << e->array << "[";
        renderExprTo(e->index, out);
        out << "]";
        break;
      case Expr::Kind::Bin:
        if (e->op == BinOp::Min || e->op == BinOp::Max) {
            out << opSpelling(e->op) << "(";
            renderExprTo(e->lhs, out);
            out << ", ";
            renderExprTo(e->rhs, out);
            out << ")";
        } else {
            out << "(";
            renderExprTo(e->lhs, out);
            out << " " << opSpelling(e->op) << " ";
            renderExprTo(e->rhs, out);
            out << ")";
        }
        break;
    }
}

class ModuleRenderer
{
  public:
    std::string
    run(const FrontendModule &mod)
    {
        for (const ArrayDeclInfo &a : mod.arrays) {
            out << "array " << a.name << "[" << a.words << "]";
            if (!a.init.empty()) {
                out << " = { ";
                for (size_t i = 0; i < a.init.size(); i++)
                    out << (i ? ", " : "") << a.init[i];
                out << " }";
            }
            out << ";\n";
        }
        if (!mod.arrays.empty())
            out << "\n";
        renderStmts(mod.topLevel);
        return out.str();
    }

  private:
    void
    indentLine()
    {
        for (unsigned i = 0; i < depth; i++)
            out << "    ";
    }

    void
    renderStmts(const std::vector<Stmt> &body)
    {
        for (const Stmt &s : body)
            renderStmt(s);
    }

    void
    renderStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::AssignScalar:
            indentLine();
            out << s.name << " = ";
            renderExprTo(s.value, out);
            out << ";\n";
            break;
          case Stmt::Kind::StoreArray:
            indentLine();
            out << s.array << "[";
            renderExprTo(s.index, out);
            out << "] = ";
            renderExprTo(s.value, out);
            out << ";\n";
            break;
          case Stmt::Kind::If:
            indentLine();
            out << "if (";
            renderExprTo(s.cond, out);
            out << ") {\n";
            depth++;
            renderStmts(s.thenBody);
            depth--;
            indentLine();
            out << "}";
            if (!s.elseBody.empty()) {
                out << " else {\n";
                depth++;
                renderStmts(s.elseBody);
                depth--;
                indentLine();
                out << "}";
            }
            out << "\n";
            break;
          case Stmt::Kind::ExitWhen:
            indentLine();
            out << "break when (";
            renderExprTo(s.cond, out);
            out << ");\n";
            break;
          case Stmt::Kind::Nested:
            renderLoop(s.nested.front());
            break;
        }
    }

    void
    renderLoop(const Loop &loop)
    {
        const char *kind = nullptr;
        switch (loop.pragma) {
          case Pragma::None: break;
          case Pragma::Unordered: kind = "unordered"; break;
          case Pragma::Ordered: kind = "ordered"; break;
          case Pragma::Atomic: kind = "atomic"; break;
          case Pragma::Auto: kind = "auto"; break;
        }
        if (kind) {
            indentLine();
            out << "#pragma xloops " << kind
                << (loop.hintSpecialize ? "" : " nohint") << "\n";
        }
        indentLine();
        out << "for (" << loop.iv << " = ";
        renderExprTo(loop.lower, out);
        out << "; " << loop.iv << " < ";
        renderExprTo(loop.upper, out);
        out << "; " << loop.iv << "++) {\n";
        depth++;
        renderStmts(loop.body);
        depth--;
        indentLine();
        out << "}\n";
    }

    std::ostringstream out;
    unsigned depth = 0;
};

} // namespace

std::string
renderExpr(const ExprPtr &expr)
{
    std::ostringstream out;
    renderExprTo(expr, out);
    return out.str();
}

std::string
renderModule(const FrontendModule &mod)
{
    return ModuleRenderer().run(mod);
}

} // namespace xloops
