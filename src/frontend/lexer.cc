#include "frontend/lexer.h"

#include <cctype>

namespace xloops {

namespace {

/** Two-character punctuators, tried before single characters. */
const char *const twoCharPuncts[] = {
    "&&", "||", "<<", ">>", "<=", ">=", "==", "!=", "++",
};

bool
singleCharPunct(char c)
{
    switch (c) {
      case '(': case ')': case '{': case '}': case '[': case ']':
      case ';': case ',': case '=': case '<': case '>': case '+':
      case '-': case '*': case '/': case '%': case '&': case '|':
      case '^': case '!': case '#':
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> out;
    unsigned line = 1;
    unsigned col = 1;
    size_t i = 0;
    const size_t n = source.size();

    auto advance = [&](size_t count) {
        for (size_t k = 0; k < count; k++) {
            if (source[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
            i++;
        }
    };

    while (i < n) {
        const char c = source[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                advance(1);
            continue;
        }

        Token tok;
        tok.line = line;
        tok.col = col;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(source[j])) ||
                    source[j] == '_'))
                j++;
            tok.kind = Token::Kind::Ident;
            tok.text = source.substr(i, j - i);
            advance(j - i);
            out.push_back(std::move(tok));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            i64 value = 0;
            bool overflow = false;
            while (j < n &&
                   std::isdigit(static_cast<unsigned char>(source[j]))) {
                value = value * 10 + (source[j] - '0');
                if (value > i64{1} << 40)
                    overflow = true;  // clamp; reject below
                j++;
            }
            if (overflow || value > 0x7fffffffLL) {
                throw FrontendError(
                    "integer literal out of i32 range: " +
                        source.substr(i, j - i),
                    line, col);
            }
            tok.kind = Token::Kind::Number;
            tok.text = source.substr(i, j - i);
            tok.value = value;
            advance(j - i);
            out.push_back(std::move(tok));
            continue;
        }

        bool matched = false;
        if (i + 1 < n) {
            const std::string two = source.substr(i, 2);
            for (const char *p : twoCharPuncts) {
                if (two == p) {
                    tok.kind = Token::Kind::Punct;
                    tok.text = two;
                    advance(2);
                    out.push_back(std::move(tok));
                    matched = true;
                    break;
                }
            }
        }
        if (matched)
            continue;

        if (singleCharPunct(c)) {
            tok.kind = Token::Kind::Punct;
            tok.text = std::string(1, c);
            advance(1);
            out.push_back(std::move(tok));
            continue;
        }

        throw FrontendError(strf("unexpected character '", c, "'"),
                            line, col);
    }

    Token end;
    end.kind = Token::Kind::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

} // namespace xloops
