/**
 * @file
 * Single-issue in-order 5-stage pipeline timing model (the paper's
 * "io" baseline). Full bypassing, static not-taken branch prediction,
 * blocking caches, unpipelined divide.
 */

#ifndef XLOOPS_CPU_INORDER_H
#define XLOOPS_CPU_INORDER_H

#include <array>

#include "cpu/gpp.h"

namespace xloops {

class InOrderCpu : public GppModel
{
  public:
    explicit InOrderCpu(const GppConfig &config);

    void retire(const Instruction &inst, Addr pc,
                const StepResult &step) override;
    Cycle now() const override { return lastComplete; }
    void advanceTo(Cycle cycle) override;
    void reset() override;

    L1Cache &dcacheModel() override { return dcache; }
    L1Cache &icacheModel() { return icache; }

    void saveState(JsonWriter &w) const override;
    void loadState(const JsonValue &v) override;

  private:
    GppConfig cfg;
    L1Cache icache;
    L1Cache dcache;

    Cycle nextIssue = 0;                     ///< next free issue slot
    Cycle llfuFree = 0;                      ///< unpipelined div/fdiv
    Cycle lastComplete = 0;
    std::array<Cycle, numArchRegs> regReady{};
};

} // namespace xloops

#endif // XLOOPS_CPU_INORDER_H
