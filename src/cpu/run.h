/**
 * @file
 * Minimal harness: run a program functionally while feeding a GPP
 * timing model — i.e., pure traditional execution. The full system
 * (system/system.h) layers specialized and adaptive execution on top;
 * this helper exists for unit tests and microbenchmarks of the GPP
 * models in isolation.
 */

#ifndef XLOOPS_CPU_RUN_H
#define XLOOPS_CPU_RUN_H

#include "asm/program.h"
#include "common/log.h"
#include "common/sim_error.h"
#include "cpu/gpp.h"
#include "mem/memory.h"

namespace xloops {

struct GppRunResult
{
    Cycle cycles = 0;
    u64 dynInsts = 0;
};

inline GppRunResult
runTraditional(const Program &prog, MainMemory &mem, GppModel &model,
               u64 maxInsts = 500'000'000)
{
    const DecodedProgram &dec = prog.decoded();
    RegFile regs;
    Addr pc = prog.entry;
    GppRunResult result;
    while (true) {
        const Instruction &inst = dec.fetch(pc);
        const StepResult step =
            ExecCore::step(inst, pc, regs, mem, model.now());
        model.retire(inst, pc, step);
        result.dynInsts++;
        if (step.halted)
            break;
        pc = step.nextPc;
        if (result.dynInsts >= maxInsts) {
            // Same diagnosable valve as the full system loop: a
            // program missing its halt surfaces as a recoverable
            // SimError with machine state, not an undifferentiated
            // FatalError (or an unbounded spin).
            MachineSnapshot snap;
            snap.context = "traditional-run instruction-limit valve";
            snap.cycle = model.now();
            snap.gppPc = pc;
            snap.gppInsts = result.dynInsts;
            throw SimError(
                SimErrorKind::InstLimit,
                strf("traditional execution exceeded ", maxInsts,
                     " instructions without halting"),
                snap);
        }
    }
    result.cycles = model.now();
    return result;
}

} // namespace xloops

#endif // XLOOPS_CPU_RUN_H
