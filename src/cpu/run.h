/**
 * @file
 * Minimal harness: run a program functionally while feeding a GPP
 * timing model — i.e., pure traditional execution. The full system
 * (system/system.h) layers specialized and adaptive execution on top;
 * this helper exists for unit tests and microbenchmarks of the GPP
 * models in isolation.
 */

#ifndef XLOOPS_CPU_RUN_H
#define XLOOPS_CPU_RUN_H

#include "asm/program.h"
#include "common/log.h"
#include "cpu/gpp.h"
#include "mem/memory.h"

namespace xloops {

struct GppRunResult
{
    Cycle cycles = 0;
    u64 dynInsts = 0;
};

inline GppRunResult
runTraditional(const Program &prog, MainMemory &mem, GppModel &model,
               u64 maxInsts = 500'000'000)
{
    RegFile regs;
    Addr pc = prog.entry;
    GppRunResult result;
    while (true) {
        const Instruction inst = prog.fetch(pc);
        const StepResult step =
            ExecCore::step(inst, pc, regs, mem, model.now());
        model.retire(inst, pc, step);
        result.dynInsts++;
        if (step.halted)
            break;
        pc = step.nextPc;
        if (result.dynInsts >= maxInsts)
            fatal("traditional execution exceeded instruction limit");
    }
    result.cycles = model.now();
    return result;
}

} // namespace xloops

#endif // XLOOPS_CPU_RUN_H
