#include "cpu/functional.h"

#include "common/log.h"

namespace xloops {

FuncResult
FunctionalExecutor::run(const Program &prog, u64 maxInsts)
{
    FuncResult result;
    const DecodedProgram &dec = prog.decoded();
    Addr pc = prog.entry;

    while (true) {
        const Instruction &inst = dec.fetch(pc);
        const StepResult step = ExecCore::step(inst, pc, regs, mem,
                                               result.dynInsts);
        result.dynInsts++;
        if (inst.isXloop())
            statGroup.add("xloop_insts");
        if (inst.isXi())
            statGroup.add("xi_insts");
        if (step.halted) {
            result.halted = true;
            break;
        }
        pc = step.nextPc;
        if (result.dynInsts >= maxInsts)
            fatal("functional execution exceeded instruction limit");
    }
    statGroup.set("dyn_insts", result.dynInsts);
    return result;
}

} // namespace xloops
