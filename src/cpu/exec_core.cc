#include "cpu/exec_core.h"

#include <cmath>

#include "common/log.h"
#include "cpu/fp.h"

namespace xloops {

namespace {

// FP results go through fp::canon/fp::toWord (cpu/fp.h) so NaN
// payloads and float→int edge cases are bit-identical across
// executors and compilers.
float
asFloat(u32 v)
{
    return fp::fromBits(v);
}

u32
asBits(float f)
{
    return fp::canon(f);
}

} // namespace

StepResult
ExecCore::step(const Instruction &inst, Addr pc, RegFile &regs,
               MemIface &mem, Cycle cycle)
{
    StepResult res;
    res.nextPc = pc + 4;

    const u32 a = regs.get(inst.rs1);
    const u32 b = regs.get(inst.rs2);
    const i32 sa = static_cast<i32>(a);
    const i32 sb = static_cast<i32>(b);
    const i32 imm = inst.imm;

    auto writeReg = [&](RegId reg, u32 value) {
        regs.set(reg, value);
        res.regWritten = reg != 0;
        res.writtenReg = reg;
        res.writtenValue = value;
    };
    auto doBranch = [&](bool taken) {
        res.branchTaken = taken;
        if (taken)
            res.nextPc = static_cast<Addr>(
                static_cast<i64>(pc) + i64{imm} * 4);
    };
    auto load = [&](unsigned size, bool sign) {
        const Addr addr = static_cast<Addr>(sa + imm);
        u32 v = mem.read(addr, size);
        if (sign && size < 4)
            v = static_cast<u32>(signExtend(v, 8 * size));
        res.memAccess = true;
        res.memAddr = addr;
        res.memSize = size;
        writeReg(inst.rd, v);
    };
    auto store = [&](unsigned size) {
        const Addr addr = static_cast<Addr>(sa + imm);
        mem.write(addr, size, b);
        res.memAccess = true;
        res.memAddr = addr;
        res.memSize = size;
    };

    switch (inst.op) {
      case Op::ADD: writeReg(inst.rd, a + b); break;
      case Op::SUB: writeReg(inst.rd, a - b); break;
      case Op::MUL: writeReg(inst.rd, a * b); break;
      case Op::MULH:
        writeReg(inst.rd, static_cast<u32>(
            (static_cast<i64>(sa) * static_cast<i64>(sb)) >> 32));
        break;
      case Op::DIV:
        writeReg(inst.rd, b == 0 ? ~0u : static_cast<u32>(sa / sb));
        break;
      case Op::REM:
        writeReg(inst.rd, b == 0 ? a : static_cast<u32>(sa % sb));
        break;
      case Op::AND: writeReg(inst.rd, a & b); break;
      case Op::OR: writeReg(inst.rd, a | b); break;
      case Op::XOR: writeReg(inst.rd, a ^ b); break;
      case Op::NOR: writeReg(inst.rd, ~(a | b)); break;
      case Op::SLL: writeReg(inst.rd, a << (b & 31)); break;
      case Op::SRL: writeReg(inst.rd, a >> (b & 31)); break;
      case Op::SRA: writeReg(inst.rd, static_cast<u32>(sa >> (b & 31))); break;
      case Op::SLT: writeReg(inst.rd, sa < sb ? 1 : 0); break;
      case Op::SLTU: writeReg(inst.rd, a < b ? 1 : 0); break;

      case Op::ADDI: writeReg(inst.rd, a + static_cast<u32>(imm)); break;
      case Op::ANDI: writeReg(inst.rd, a & static_cast<u32>(imm)); break;
      case Op::ORI: writeReg(inst.rd, a | static_cast<u32>(imm)); break;
      case Op::XORI: writeReg(inst.rd, a ^ static_cast<u32>(imm)); break;
      case Op::SLLI: writeReg(inst.rd, a << (imm & 31)); break;
      case Op::SRLI: writeReg(inst.rd, a >> (imm & 31)); break;
      case Op::SRAI:
        writeReg(inst.rd, static_cast<u32>(sa >> (imm & 31)));
        break;
      case Op::SLTI: writeReg(inst.rd, sa < imm ? 1 : 0); break;
      case Op::SLTIU:
        writeReg(inst.rd, a < static_cast<u32>(imm) ? 1 : 0);
        break;
      case Op::LUI:
        writeReg(inst.rd, static_cast<u32>(imm) << 13);
        break;

      case Op::FADD: writeReg(inst.rd, asBits(asFloat(a) + asFloat(b))); break;
      case Op::FSUB: writeReg(inst.rd, asBits(asFloat(a) - asFloat(b))); break;
      case Op::FMUL: writeReg(inst.rd, asBits(asFloat(a) * asFloat(b))); break;
      case Op::FDIV: writeReg(inst.rd, asBits(asFloat(a) / asFloat(b))); break;
      case Op::FMIN:
        writeReg(inst.rd, asBits(std::fmin(asFloat(a), asFloat(b))));
        break;
      case Op::FMAX:
        writeReg(inst.rd, asBits(std::fmax(asFloat(a), asFloat(b))));
        break;
      case Op::FLT: writeReg(inst.rd, asFloat(a) < asFloat(b) ? 1 : 0); break;
      case Op::FLE: writeReg(inst.rd, asFloat(a) <= asFloat(b) ? 1 : 0); break;
      case Op::FEQ: writeReg(inst.rd, asFloat(a) == asFloat(b) ? 1 : 0); break;
      case Op::FCVTSW:
        writeReg(inst.rd, asBits(static_cast<float>(sa)));
        break;
      case Op::FCVTWS:
        writeReg(inst.rd, fp::toWord(asFloat(a)));
        break;

      case Op::LW: load(4, false); break;
      case Op::LH: load(2, true); break;
      case Op::LHU: load(2, false); break;
      case Op::LB: load(1, true); break;
      case Op::LBU: load(1, false); break;
      case Op::SW: store(4); break;
      case Op::SH: store(2); break;
      case Op::SB: store(1); break;

      case Op::AMOADD:
      case Op::AMOAND:
      case Op::AMOOR:
      case Op::AMOXOR:
      case Op::AMOSWAP:
      case Op::AMOMIN:
      case Op::AMOMAX: {
        const Addr addr = a;
        const u32 old = mem.amo(inst.op, addr, b);
        res.memAccess = true;
        res.memAddr = addr;
        res.memSize = 4;
        writeReg(inst.rd, old);
        break;
      }
      case Op::FENCE:
        break;

      case Op::BEQ: doBranch(a == b); break;
      case Op::BNE: doBranch(a != b); break;
      case Op::BLT: doBranch(sa < sb); break;
      case Op::BGE: doBranch(sa >= sb); break;
      case Op::BLTU: doBranch(a < b); break;
      case Op::BGEU: doBranch(a >= b); break;
      case Op::JAL:
        writeReg(inst.rd, pc + 4);
        res.branchTaken = true;
        res.nextPc = static_cast<Addr>(static_cast<i64>(pc) + i64{imm} * 4);
        break;
      case Op::JALR:
        writeReg(inst.rd, pc + 4);
        res.branchTaken = true;
        res.nextPc = a + static_cast<u32>(imm);
        break;

      case Op::XLOOP_UC:
      case Op::XLOOP_OR:
      case Op::XLOOP_OM:
      case Op::XLOOP_ORM:
      case Op::XLOOP_UA:
      case Op::XLOOP_UC_DB:
      case Op::XLOOP_OR_DB:
      case Op::XLOOP_OM_DB:
      case Op::XLOOP_ORM_DB:
      case Op::XLOOP_UA_DB: {
        // Traditional execution: rIdx += 1; branch back while < bound.
        const u32 idx = regs.get(inst.rd) + 1;
        writeReg(inst.rd, idx);
        const u32 bound = regs.get(inst.rs1);
        res.branchTaken = static_cast<i32>(idx) < static_cast<i32>(bound);
        if (res.branchTaken)
            res.nextPc = static_cast<Addr>(
                static_cast<i64>(pc) + i64{imm} * 4);
        break;
      }

      case Op::XLOOP_OM_DE:
      case Op::XLOOP_ORM_DE: {
        // Data-dependent exit (extension): rIdx += 1; branch back
        // while the exit-flag register still reads zero.
        const u32 idx = regs.get(inst.rd) + 1;
        writeReg(inst.rd, idx);
        res.branchTaken = regs.get(inst.rs1) == 0;
        if (res.branchTaken)
            res.nextPc = static_cast<Addr>(
                static_cast<i64>(pc) + i64{imm} * 4);
        break;
      }

      case Op::ADDIU_XI:
        // Traditional execution: a plain immediate add to the MIV.
        writeReg(inst.rd, regs.get(inst.rd) + static_cast<u32>(imm));
        break;
      case Op::ADDU_XI:
        writeReg(inst.rd, regs.get(inst.rd) + b);
        break;

      case Op::NOP:
        break;
      case Op::HALT:
        res.halted = true;
        res.nextPc = pc;
        break;
      case Op::CSRR:
        // csr 0: cycle counter.
        writeReg(inst.rd, static_cast<u32>(cycle));
        break;

      case Op::NumOpcodes:
        panic("executed NumOpcodes sentinel");
    }
    return res;
}

} // namespace xloops
