#include "cpu/gpp.h"

#include "common/log.h"
#include "cpu/inorder.h"
#include "cpu/ooo.h"

namespace xloops {

std::unique_ptr<GppModel>
makeGppModel(const GppConfig &config)
{
    switch (config.kind) {
      case GppConfig::Kind::InOrder:
        return std::make_unique<InOrderCpu>(config);
      case GppConfig::Kind::OutOfOrder:
        return std::make_unique<OooCpu>(config);
    }
    panic("unknown gpp kind");
}

} // namespace xloops
