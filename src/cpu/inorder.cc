#include "cpu/inorder.h"

#include <algorithm>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"

namespace xloops {

InOrderCpu::InOrderCpu(const GppConfig &config)
    : cfg(config), icache(config.icache), dcache(config.dcache)
{
}

void
InOrderCpu::reset()
{
    nextIssue = 0;
    llfuFree = 0;
    lastComplete = 0;
    regReady.fill(0);
    icache.flush();
    dcache.flush();
    statGroup.clear();
}

void
InOrderCpu::advanceTo(Cycle cycle)
{
    if (cycle > nextIssue) {
        statGroup.add("ext_stall_cycles", cycle - nextIssue);
        nextIssue = cycle;
    }
    lastComplete = std::max(lastComplete, cycle);
}

void
InOrderCpu::retire(const Instruction &inst, Addr pc, const StepResult &step)
{
    statGroup.add("insts");

    // Fetch: instruction cache access; a miss stalls the front end.
    Cycle issue = nextIssue;
    const Cycle ifetch = icache.access(pc, false);
    if (ifetch > cfg.icache.hitLatency)
        issue += ifetch - cfg.icache.hitLatency;

    // Source operands via full bypass network.
    RegId srcs[2];
    const unsigned numSrcs = inst.srcRegs(srcs);
    for (unsigned i = 0; i < numSrcs; i++) {
        const Cycle ready = regReady[srcs[i]];
        if (ready > issue) {
            statGroup.add("raw_stall_cycles", ready - issue);
            issue = ready;
        }
    }

    // Structural hazard on the unpipelined divider.
    const FuClass fu = inst.traits().fuClass;
    const bool unpipelined = inst.op == Op::DIV || inst.op == Op::REM ||
                             inst.op == Op::FDIV;
    if (unpipelined && llfuFree > issue) {
        statGroup.add("llfu_stall_cycles", llfuFree - issue);
        issue = llfuFree;
    }

    // Execute latency (memory adds the data cache model). The L1 is
    // blocking: a miss stalls the whole pipeline, not just the user.
    Cycle latency = inst.traits().latency;
    Cycle blockCycles = 0;
    if (step.memAccess) {
        const bool isWrite = inst.isStore() || inst.isAmo();
        const Cycle dlat = dcache.access(step.memAddr, isWrite, issue);
        latency += dlat - 1;  // traits latency already includes 1 hit cycle
        if (dlat > cfg.dcache.hitLatency) {
            blockCycles = dlat - cfg.dcache.hitLatency;
            statGroup.add("mem_stall_cycles", blockCycles);
        }
        statGroup.add(inst.isLoad() ? "loads"
                                    : (inst.isStore() ? "stores" : "amos"));
    }
    if (unpipelined)
        llfuFree = issue + latency;
    if (fu == FuClass::Mul || fu == FuClass::Fpu || fu == FuClass::Div)
        statGroup.add("llfu_ops");

    // Writeback.
    const RegId dst = inst.destReg();
    if (dst < numArchRegs)
        regReady[dst] = issue + latency;

    // Next fetch: single issue; taken control flow redirects the
    // front end (static not-taken prediction resolved in EX).
    nextIssue = issue + 1 + blockCycles;
    if (step.branchTaken) {
        nextIssue += cfg.branchPenalty;
        statGroup.add("branch_redirects");
        statGroup.add("branch_stall_cycles", cfg.branchPenalty);
        XTRACE(tracer, issue, TraceComp::Gpp, 0,
               TraceKind::BranchRedirect, static_cast<i64>(pc), 0);
    }
    if (inst.isBranch() || inst.isXloop())
        statGroup.add("branches");

    lastComplete = std::max(lastComplete, issue + latency);
    statGroup.set("cycles", lastComplete);
}

void
InOrderCpu::saveState(JsonWriter &w) const
{
    w.field("kind", "io");
    w.field("next_issue", nextIssue);
    w.field("llfu_free", llfuFree);
    w.field("last_complete", lastComplete);
    w.key("reg_ready");
    writeU64Array(w, {regReady.begin(), regReady.end()});
    w.key("icache").beginObject();
    icache.saveState(w);
    w.endObject();
    w.key("dcache").beginObject();
    dcache.saveState(w);
    w.endObject();
    w.key("stats").beginObject();
    statGroup.saveState(w);
    w.endObject();
}

void
InOrderCpu::loadState(const JsonValue &v)
{
    if (v.at("kind").asString() != "io")
        fatal("checkpoint GPP kind does not match configuration (io)");
    nextIssue = v.at("next_issue").asU64();
    llfuFree = v.at("llfu_free").asU64();
    lastComplete = v.at("last_complete").asU64();
    const std::vector<u64> ready = readU64Array(v.at("reg_ready"));
    if (ready.size() != regReady.size())
        fatal("checkpoint regReady size mismatch");
    std::copy(ready.begin(), ready.end(), regReady.begin());
    icache.loadState(v.at("icache"));
    dcache.loadState(v.at("dcache"));
    statGroup.loadState(v.at("stats"));
}

} // namespace xloops
