/**
 * @file
 * Threaded-dispatch functional executor — the fast path twin of
 * FunctionalExecutor.
 *
 * Instead of re-deciding the opcode with a switch on every dynamic
 * instruction, the program text is carved into *superblocks*: decoded
 * straight-line runs keyed by entry pc, each ending at the first
 * control-flow or halt instruction (opMeta().endsBlock). Blocks are
 * built lazily on first entry, cached in a dense per-word table, and
 * executed with a computed-goto dispatch loop over constexpr handler
 * ids (isa/op_meta.h) on GCC/Clang — a portable fallback drives the
 * same superblocks through ExecCore::step, so the cache logic is
 * exercised identically everywhere.
 *
 * Equivalence contract: run() produces bit-identical architectural
 * state (register file, memory image, dynamic instruction counts,
 * stat counters) and identical FatalError text on trap paths to
 * FunctionalExecutor::run on every program. tests/test_threaded_exec.cc
 * proves this per opcode; tests/test_kernels.cc proves it per kernel.
 *
 * The block cache is bound to one program identity (content hash +
 * text geometry + predecoded image); executing a different or reloaded
 * program re-binds and drops every cached block. Checkpoint restore
 * must call invalidate() explicitly — the restored memory image may
 * disagree with a self-modifying program's text without changing the
 * Program object (see system/sampling.cc and the regression tests in
 * tests/test_predecode.cc).
 */

#ifndef XLOOPS_CPU_THREADED_H
#define XLOOPS_CPU_THREADED_H

#include <memory>
#include <vector>

#include "asm/program.h"
#include "common/stats.h"
#include "cpu/exec_core.h"
#include "cpu/functional.h"
#include "isa/op_meta.h"
#include "mem/memory.h"

namespace xloops {

/** Superblock-caching threaded interpreter. */
class ThreadedExecutor
{
  public:
    /**
     * Resumable execution position. dynInsts doubles as the cycle
     * value csrr observes, exactly like the legacy executor's running
     * count; it accumulates across execute() calls so a sampled
     * simulation sees a monotone instruction clock.
     */
    struct Cursor
    {
        Addr pc = 0;
        bool halted = false;
        u64 dynInsts = 0;
    };

    explicit ThreadedExecutor(MainMemory &memory) : mem(memory) {}

    /**
     * Run @p prog from its entry until halt — drop-in replacement for
     * FunctionalExecutor::run, including the safety-valve semantics
     * (throws the identical FatalError when @p maxInsts is exceeded)
     * and the xloop_insts / xi_insts / dyn_insts stat contract.
     */
    FuncResult run(const Program &prog, u64 maxInsts = 500'000'000);

    /**
     * Execute up to @p budget instructions of @p prog from @p cur,
     * advancing the cursor in place. Returns the number actually
     * executed (short only on halt). This is the sampled simulator's
     * fast-forward primitive: call it in chunks and interleave
     * cycle-accurate windows between chunks.
     */
    u64 execute(const Program &prog, Cursor &cur, u64 budget);

    /** Drop every cached superblock and unbind the program identity.
     *  Mandatory after checkpoint restore or any external mutation of
     *  the text image. */
    void invalidate();

    RegFile &regFile() { return regs; }
    StatGroup &stats() { return statGroup; }

    /** Bumps every time the cache is invalidated or rebound. */
    u64 cacheGeneration() const { return generation; }

    /** Number of superblocks currently materialized. */
    size_t cachedBlocks() const;

    /** Cache slots (== text words of the bound program; 0 unbound). */
    size_t cacheCapacity() const { return blocks.size(); }

  private:
    /** One predecoded op: instruction plus its dispatch metadata,
     *  flattened so the hot loop never indexes opMetaTable. */
    struct SbOp
    {
        Instruction inst;
        OpHandler h = OpHandler::Nop;
        u8 memSize = 0;
        bool memSigned = false;
    };

    /** A decoded straight-line run; ends at the first endsBlock op
     *  (inclusive), at an undecodable word (exclusive — the fault
     *  stays lazy), or at the end of text. Never empty. */
    struct Superblock
    {
        Addr entry = 0;
        std::vector<SbOp> ops;
    };

    void bind(const Program &prog);
    const Superblock &blockAt(const DecodedProgram &dec, Addr pc);
    std::unique_ptr<Superblock> buildBlock(const DecodedProgram &dec,
                                           Addr pc);
    u64 interp(const DecodedProgram &dec, Addr &pc, bool &halted, u64 budget,
               u64 cycle0, u64 &xloopCnt, u64 &xiCnt);

    MainMemory &mem;
    RegFile regs;
    StatGroup statGroup;

    std::vector<std::unique_ptr<Superblock>> blocks;
    bool isBound = false;
    const DecodedProgram *boundDec = nullptr;
    u64 boundHash = 0;
    Addr boundBase = 0;
    size_t boundInsts = 0;
    u64 generation = 0;
};

} // namespace xloops

#endif // XLOOPS_CPU_THREADED_H
