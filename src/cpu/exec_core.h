/**
 * @file
 * The shared functional semantics of the xrisc ISA: one architectural
 * step. Every engine (serial golden model, in-order GPP, out-of-order
 * GPP, LPSU lanes) funnels execution through ExecCore::step so the
 * instruction semantics exist exactly once.
 *
 * xloop instructions execute here with their *traditional* semantics
 * (increment-compare-branch) — the paper's minimal-decoder-change GPP
 * path. Specialized execution is layered on top by the LPSU, which
 * never lets a lane execute the xloop instruction itself.
 */

#ifndef XLOOPS_CPU_EXEC_CORE_H
#define XLOOPS_CPU_EXEC_CORE_H

#include <array>

#include "common/types.h"
#include "isa/instruction.h"
#include "mem/memory.h"

namespace xloops {

/** Architectural register file; r0 reads as zero, writes discarded. */
class RegFile
{
  public:
    u32
    get(RegId reg) const
    {
        return reg == 0 ? 0 : regs[reg];
    }

    void
    set(RegId reg, u32 value)
    {
        if (reg != 0)
            regs[reg] = value;
    }

    std::array<u32, numArchRegs> regs{};
};

/** Outcome of one architectural step. */
struct StepResult
{
    Addr nextPc = 0;
    bool halted = false;
    bool branchTaken = false;   ///< valid for control instructions
    bool memAccess = false;
    Addr memAddr = 0;
    unsigned memSize = 0;
    bool regWritten = false;
    RegId writtenReg = 0;
    u32 writtenValue = 0;
};

/** Stateless ISA semantics. */
class ExecCore
{
  public:
    /**
     * Execute @p inst at @p pc: read/write @p regs, access @p mem.
     *
     * @param cycle current cycle for csrr (cycle counter reads)
     */
    static StepResult step(const Instruction &inst, Addr pc, RegFile &regs,
                           MemIface &mem, Cycle cycle = 0);
};

} // namespace xloops

#endif // XLOOPS_CPU_EXEC_CORE_H
