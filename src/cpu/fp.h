/**
 * @file
 * Bit-deterministic single-precision FP semantics shared by every
 * executor (the legacy switch in exec_core.cc and the threaded
 * interpreter in threaded.cc).
 *
 * Plain C++ float expressions are *not* bit-deterministic at the
 * edges: when both operands of a commutative op are NaNs, x86 returns
 * the payload of whichever operand the compiler scheduled into the
 * destination slot — so two correct translation units of the same
 * source can disagree, and the differential test layer rightly fails.
 * Likewise float→int casts of NaN / out-of-range values are undefined
 * behavior in C++.
 *
 * The ISA therefore defines, as RISC-V does: every NaN-producing
 * operation returns the canonical quiet NaN (0x7fc00000, payload never
 * propagates), and float→int conversion of NaN or out-of-range values
 * returns the x86 "integer indefinite" 0x80000000. This makes every
 * executor bit-identical on every input, on every compiler.
 */

#ifndef XLOOPS_CPU_FP_H
#define XLOOPS_CPU_FP_H

#include <cmath>
#include <cstring>

#include "common/types.h"

namespace xloops {
namespace fp {

constexpr u32 canonicalNan = 0x7fc00000u;
constexpr u32 intIndefinite = 0x80000000u;

inline float
fromBits(u32 v)
{
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

inline u32
toBits(float f)
{
    u32 v;
    std::memcpy(&v, &f, 4);
    return v;
}

/** Result encoding of an FP arithmetic op: NaNs canonicalized. */
inline u32
canon(float f)
{
    return std::isnan(f) ? canonicalNan : toBits(f);
}

/** fcvt.w.s: truncating float→i32 with defined edge behavior. */
inline u32
toWord(float f)
{
    if (std::isnan(f) || f >= 2147483648.0f || f < -2147483648.0f)
        return intIndefinite;
    return static_cast<u32>(static_cast<i32>(f));
}

} // namespace fp
} // namespace xloops

#endif // XLOOPS_CPU_FP_H
