#include "cpu/ooo.h"

#include <algorithm>

#include "common/log.h"

namespace xloops {

GsharePredictor::GsharePredictor(unsigned table_bits)
    : tableBits(table_bits),
      counters(size_t{1} << table_bits, 1)  // weakly not-taken
{
}

void
GsharePredictor::reset()
{
    std::fill(counters.begin(), counters.end(), 1);
    history = 0;
}

bool
GsharePredictor::predictAndTrain(Addr pc, bool taken)
{
    const u32 mask = (1u << tableBits) - 1;
    const u32 index = ((pc >> 2) ^ history) & mask;
    u8 &ctr = counters[index];
    const bool predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    history = ((history << 1) | (taken ? 1 : 0)) & mask;
    return predicted == taken;
}

OooCpu::OooCpu(const GppConfig &config)
    : cfg(config), icache(config.icache), dcache(config.dcache)
{
    XL_ASSERT(cfg.width >= 1 && cfg.robSize >= cfg.width,
              "bad ooo config");
    robRetire.assign(cfg.robSize, 0);
    iqIssue.assign(cfg.iqSize, 0);
    issuePorts.assign(cfg.width, 0);
    memPorts.assign(cfg.memPorts, 0);
}

void
OooCpu::reset()
{
    fetchCycle = 0;
    fetchedThisCycle = 0;
    std::fill(robRetire.begin(), robRetire.end(), Cycle{0});
    std::fill(iqIssue.begin(), iqIssue.end(), Cycle{0});
    seq = 0;
    lastRetire = 0;
    retiredThisCycle = 0;
    retireCycle = 0;
    regReady.fill(0);
    std::fill(issuePorts.begin(), issuePorts.end(), Cycle{0});
    std::fill(memPorts.begin(), memPorts.end(), Cycle{0});
    divFree = 0;
    storeQueue.clear();
    bpred.reset();
    icache.flush();
    dcache.flush();
    statGroup.clear();
}

void
OooCpu::advanceTo(Cycle cycle)
{
    if (cycle > fetchCycle) {
        statGroup.add("ext_stall_cycles", cycle - fetchCycle);
        fetchCycle = cycle;
        fetchedThisCycle = 0;
    }
    lastRetire = std::max(lastRetire, cycle);
    retireCycle = std::max(retireCycle, cycle);
}

Cycle
OooCpu::allocPort(std::vector<Cycle> &ports, Cycle earliest)
{
    auto it = std::min_element(ports.begin(), ports.end());
    const Cycle slot = std::max(*it, earliest);
    *it = slot + 1;
    return slot;
}

void
OooCpu::retire(const Instruction &inst, Addr pc, const StepResult &step)
{
    statGroup.add("insts");

    // --- fetch/dispatch -------------------------------------------------
    const Cycle ifetch = icache.access(pc, false);
    if (ifetch > cfg.icache.hitLatency) {
        fetchCycle += ifetch - cfg.icache.hitLatency;
        fetchedThisCycle = 0;
    }
    if (fetchedThisCycle >= cfg.width) {
        fetchCycle++;
        fetchedThisCycle = 0;
    }

    // ROB window: the entry reused by this instruction must have
    // retired. IQ window: the entry reused must have issued.
    const size_t robSlot = seq % cfg.robSize;
    const size_t iqSlot = seq % cfg.iqSize;
    Cycle dispatch = fetchCycle;
    if (robRetire[robSlot] > dispatch) {
        statGroup.add("rob_stall_cycles", robRetire[robSlot] - dispatch);
        dispatch = robRetire[robSlot];
        fetchCycle = dispatch;
        fetchedThisCycle = 0;
    }
    if (iqIssue[iqSlot] > dispatch) {
        statGroup.add("iq_stall_cycles", iqIssue[iqSlot] - dispatch);
        dispatch = iqIssue[iqSlot];
        fetchCycle = dispatch;
        fetchedThisCycle = 0;
    }
    fetchedThisCycle++;

    // --- issue ------------------------------------------------------------
    Cycle operandsReady = dispatch + 1;
    RegId srcs[2];
    const unsigned numSrcs = inst.srcRegs(srcs);
    for (unsigned i = 0; i < numSrcs; i++)
        operandsReady = std::max(operandsReady, regReady[srcs[i]]);

    Cycle issue;
    Cycle latency = inst.traits().latency;
    const bool unpipelined = inst.op == Op::DIV || inst.op == Op::REM ||
                             inst.op == Op::FDIV;

    if (step.memAccess && (inst.isLoad() || inst.isAmo())) {
        issue = allocPort(memPorts, operandsReady);
        bool forwarded = false;
        for (auto it = storeQueue.rbegin(); it != storeQueue.rend(); ++it) {
            if (it->addr == step.memAddr && it->size == step.memSize) {
                // Store-to-load forwarding from the store queue.
                latency = 1;
                issue = std::max(issue, it->dataReady);
                forwarded = true;
                statGroup.add("stl_forwards");
                break;
            }
        }
        if (!forwarded) {
            // Trace events are stamped at the retire frontier, which
            // is monotone (issue times are not, out of order).
            const Cycle dlat =
                dcache.access(step.memAddr, false, retireCycle);
            latency += dlat - 1;
        }
        statGroup.add(inst.isAmo() ? "amos" : "loads");
        if (inst.isAmo())
            latency += 2;  // conservative AMO handling on OoO GPPs
    } else if (step.memAccess) {
        // Store: address/data ready at issue; cache written at commit.
        issue = allocPort(memPorts, operandsReady);
        dcache.access(step.memAddr, true, retireCycle);
        storeQueue.push_back({step.memAddr, step.memSize, issue + 1});
        if (storeQueue.size() > cfg.lsqEntries)
            storeQueue.pop_front();
        statGroup.add("stores");
    } else if (unpipelined) {
        issue = std::max({operandsReady, divFree});
        divFree = issue + latency;
        statGroup.add("llfu_ops");
    } else {
        issue = allocPort(issuePorts, operandsReady);
        if (inst.isLlfu())
            statGroup.add("llfu_ops");
    }

    const Cycle complete = issue + latency;
    iqIssue[iqSlot] = issue;

    const RegId dst = inst.destReg();
    if (dst < numArchRegs)
        regReady[dst] = complete;

    // --- branch resolution ----------------------------------------------
    if (inst.isBranch() || inst.isXloop()) {
        statGroup.add("branches");
        const bool correct = bpred.predictAndTrain(pc, step.branchTaken);
        if (!correct) {
            statGroup.add("mispredicts");
            XTRACE(tracer, retireCycle, TraceComp::Gpp, 0,
                   TraceKind::BranchRedirect, static_cast<i64>(pc), 0);
            const Cycle redirect = complete + cfg.branchPenalty;
            if (redirect > fetchCycle) {
                fetchCycle = redirect;
                fetchedThisCycle = 0;
            }
        }
    } else if (inst.isJump()) {
        statGroup.add("branches");  // predicted via BTB/RAS: no penalty
    }

    // --- in-order retire ---------------------------------------------------
    Cycle ret = std::max(complete + 1, retireCycle);
    if (ret == retireCycle && retiredThisCycle >= cfg.width)
        ret++;
    if (ret > retireCycle) {
        retireCycle = ret;
        retiredThisCycle = 0;
    }
    retiredThisCycle++;
    robRetire[robSlot] = ret;
    lastRetire = std::max(lastRetire, ret);
    seq++;
    statGroup.set("cycles", lastRetire);
}

} // namespace xloops
