#include "cpu/ooo.h"

#include <algorithm>

#include "common/json.h"
#include "common/log.h"
#include "common/serialize.h"

namespace xloops {

GsharePredictor::GsharePredictor(unsigned table_bits)
    : tableBits(table_bits),
      counters(size_t{1} << table_bits, 1)  // weakly not-taken
{
}

void
GsharePredictor::reset()
{
    std::fill(counters.begin(), counters.end(), 1);
    history = 0;
}

bool
GsharePredictor::predictAndTrain(Addr pc, bool taken)
{
    const u32 mask = (1u << tableBits) - 1;
    const u32 index = ((pc >> 2) ^ history) & mask;
    u8 &ctr = counters[index];
    const bool predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    history = ((history << 1) | (taken ? 1 : 0)) & mask;
    return predicted == taken;
}

OooCpu::OooCpu(const GppConfig &config)
    : cfg(config), icache(config.icache), dcache(config.dcache)
{
    XL_ASSERT(cfg.width >= 1 && cfg.robSize >= cfg.width,
              "bad ooo config");
    robRetire.assign(cfg.robSize, 0);
    iqIssue.assign(cfg.iqSize, 0);
    issuePorts.assign(cfg.width, 0);
    memPorts.assign(cfg.memPorts, 0);
}

void
OooCpu::reset()
{
    fetchCycle = 0;
    fetchedThisCycle = 0;
    std::fill(robRetire.begin(), robRetire.end(), Cycle{0});
    std::fill(iqIssue.begin(), iqIssue.end(), Cycle{0});
    seq = 0;
    lastRetire = 0;
    retiredThisCycle = 0;
    retireCycle = 0;
    regReady.fill(0);
    std::fill(issuePorts.begin(), issuePorts.end(), Cycle{0});
    std::fill(memPorts.begin(), memPorts.end(), Cycle{0});
    divFree = 0;
    storeQueue.clear();
    bpred.reset();
    icache.flush();
    dcache.flush();
    statGroup.clear();
}

void
OooCpu::advanceTo(Cycle cycle)
{
    if (cycle > fetchCycle) {
        statGroup.add("ext_stall_cycles", cycle - fetchCycle);
        fetchCycle = cycle;
        fetchedThisCycle = 0;
    }
    lastRetire = std::max(lastRetire, cycle);
    retireCycle = std::max(retireCycle, cycle);
}

Cycle
OooCpu::allocPort(std::vector<Cycle> &ports, Cycle earliest)
{
    auto it = std::min_element(ports.begin(), ports.end());
    const Cycle slot = std::max(*it, earliest);
    *it = slot + 1;
    return slot;
}

void
OooCpu::retire(const Instruction &inst, Addr pc, const StepResult &step)
{
    statGroup.add("insts");

    // --- fetch/dispatch -------------------------------------------------
    const Cycle ifetch = icache.access(pc, false);
    if (ifetch > cfg.icache.hitLatency) {
        fetchCycle += ifetch - cfg.icache.hitLatency;
        fetchedThisCycle = 0;
    }
    if (fetchedThisCycle >= cfg.width) {
        fetchCycle++;
        fetchedThisCycle = 0;
    }

    // ROB window: the entry reused by this instruction must have
    // retired. IQ window: the entry reused must have issued.
    const size_t robSlot = seq % cfg.robSize;
    const size_t iqSlot = seq % cfg.iqSize;
    Cycle dispatch = fetchCycle;
    if (robRetire[robSlot] > dispatch) {
        statGroup.add("rob_stall_cycles", robRetire[robSlot] - dispatch);
        dispatch = robRetire[robSlot];
        fetchCycle = dispatch;
        fetchedThisCycle = 0;
    }
    if (iqIssue[iqSlot] > dispatch) {
        statGroup.add("iq_stall_cycles", iqIssue[iqSlot] - dispatch);
        dispatch = iqIssue[iqSlot];
        fetchCycle = dispatch;
        fetchedThisCycle = 0;
    }
    fetchedThisCycle++;

    // --- issue ------------------------------------------------------------
    Cycle operandsReady = dispatch + 1;
    RegId srcs[2];
    const unsigned numSrcs = inst.srcRegs(srcs);
    for (unsigned i = 0; i < numSrcs; i++)
        operandsReady = std::max(operandsReady, regReady[srcs[i]]);

    Cycle issue;
    Cycle latency = inst.traits().latency;
    const bool unpipelined = inst.op == Op::DIV || inst.op == Op::REM ||
                             inst.op == Op::FDIV;

    if (step.memAccess && (inst.isLoad() || inst.isAmo())) {
        issue = allocPort(memPorts, operandsReady);
        bool forwarded = false;
        for (auto it = storeQueue.rbegin(); it != storeQueue.rend(); ++it) {
            if (it->addr == step.memAddr && it->size == step.memSize) {
                // Store-to-load forwarding from the store queue.
                latency = 1;
                issue = std::max(issue, it->dataReady);
                forwarded = true;
                statGroup.add("stl_forwards");
                break;
            }
        }
        if (!forwarded) {
            // Trace events are stamped at the retire frontier, which
            // is monotone (issue times are not, out of order).
            const Cycle dlat =
                dcache.access(step.memAddr, false, retireCycle);
            latency += dlat - 1;
        }
        statGroup.add(inst.isAmo() ? "amos" : "loads");
        if (inst.isAmo())
            latency += 2;  // conservative AMO handling on OoO GPPs
    } else if (step.memAccess) {
        // Store: address/data ready at issue; cache written at commit.
        issue = allocPort(memPorts, operandsReady);
        dcache.access(step.memAddr, true, retireCycle);
        storeQueue.push_back({step.memAddr, step.memSize, issue + 1});
        if (storeQueue.size() > cfg.lsqEntries)
            storeQueue.pop_front();
        statGroup.add("stores");
    } else if (unpipelined) {
        issue = std::max({operandsReady, divFree});
        divFree = issue + latency;
        statGroup.add("llfu_ops");
    } else {
        issue = allocPort(issuePorts, operandsReady);
        if (inst.isLlfu())
            statGroup.add("llfu_ops");
    }

    const Cycle complete = issue + latency;
    iqIssue[iqSlot] = issue;

    const RegId dst = inst.destReg();
    if (dst < numArchRegs)
        regReady[dst] = complete;

    // --- branch resolution ----------------------------------------------
    if (inst.isBranch() || inst.isXloop()) {
        statGroup.add("branches");
        const bool correct = bpred.predictAndTrain(pc, step.branchTaken);
        if (!correct) {
            statGroup.add("mispredicts");
            XTRACE(tracer, retireCycle, TraceComp::Gpp, 0,
                   TraceKind::BranchRedirect, static_cast<i64>(pc), 0);
            const Cycle redirect = complete + cfg.branchPenalty;
            if (redirect > fetchCycle) {
                fetchCycle = redirect;
                fetchedThisCycle = 0;
            }
        }
    } else if (inst.isJump()) {
        statGroup.add("branches");  // predicted via BTB/RAS: no penalty
    }

    // --- in-order retire ---------------------------------------------------
    Cycle ret = std::max(complete + 1, retireCycle);
    if (ret == retireCycle && retiredThisCycle >= cfg.width)
        ret++;
    if (ret > retireCycle) {
        retireCycle = ret;
        retiredThisCycle = 0;
    }
    retiredThisCycle++;
    robRetire[robSlot] = ret;
    lastRetire = std::max(lastRetire, ret);
    seq++;
    statGroup.set("cycles", lastRetire);
}

void
GsharePredictor::saveState(JsonWriter &w) const
{
    w.field("history", static_cast<u64>(history));
    w.field("counters", hexEncode(counters.data(), counters.size()));
}

void
GsharePredictor::loadState(const JsonValue &v)
{
    history = static_cast<u32>(v.at("history").asU64());
    const std::vector<u8> table = hexDecode(v.at("counters").asString());
    if (table.size() != counters.size())
        fatal("checkpoint gshare table size mismatch");
    counters = table;
}

void
OooCpu::saveState(JsonWriter &w) const
{
    w.field("kind", "ooo");
    w.field("fetch_cycle", fetchCycle);
    w.field("fetched_this_cycle", static_cast<u64>(fetchedThisCycle));
    w.field("seq", seq);
    w.field("last_retire", lastRetire);
    w.field("retired_this_cycle", static_cast<u64>(retiredThisCycle));
    w.field("retire_cycle", retireCycle);
    w.field("div_free", divFree);
    w.key("rob_retire");
    writeU64Array(w, robRetire);
    w.key("iq_issue");
    writeU64Array(w, iqIssue);
    w.key("reg_ready");
    writeU64Array(w, {regReady.begin(), regReady.end()});
    w.key("issue_ports");
    writeU64Array(w, issuePorts);
    w.key("mem_ports");
    writeU64Array(w, memPorts);
    w.key("store_queue").beginArray();
    for (const SqEntry &e : storeQueue) {
        w.beginObject();
        w.field("addr", static_cast<u64>(e.addr));
        w.field("size", static_cast<u64>(e.size));
        w.field("data_ready", e.dataReady);
        w.endObject();
    }
    w.endArray();
    w.key("bpred").beginObject();
    bpred.saveState(w);
    w.endObject();
    w.key("icache").beginObject();
    icache.saveState(w);
    w.endObject();
    w.key("dcache").beginObject();
    dcache.saveState(w);
    w.endObject();
    w.key("stats").beginObject();
    statGroup.saveState(w);
    w.endObject();
}

void
OooCpu::loadState(const JsonValue &v)
{
    if (v.at("kind").asString() != "ooo")
        fatal("checkpoint GPP kind does not match configuration (ooo)");
    fetchCycle = v.at("fetch_cycle").asU64();
    fetchedThisCycle = static_cast<unsigned>(
        v.at("fetched_this_cycle").asU64());
    seq = v.at("seq").asU64();
    lastRetire = v.at("last_retire").asU64();
    retiredThisCycle = static_cast<unsigned>(
        v.at("retired_this_cycle").asU64());
    retireCycle = v.at("retire_cycle").asU64();
    divFree = v.at("div_free").asU64();

    auto loadVec = [&](const char *key, std::vector<Cycle> &out) {
        const std::vector<u64> raw = readU64Array(v.at(key));
        if (raw.size() != out.size())
            fatal(strf("checkpoint ", key, " size mismatch"));
        std::copy(raw.begin(), raw.end(), out.begin());
    };
    loadVec("rob_retire", robRetire);
    loadVec("iq_issue", iqIssue);
    loadVec("issue_ports", issuePorts);
    loadVec("mem_ports", memPorts);
    const std::vector<u64> ready = readU64Array(v.at("reg_ready"));
    if (ready.size() != regReady.size())
        fatal("checkpoint regReady size mismatch");
    std::copy(ready.begin(), ready.end(), regReady.begin());

    storeQueue.clear();
    for (const JsonValue &e : v.at("store_queue").array()) {
        storeQueue.push_back({static_cast<Addr>(e.at("addr").asU64()),
                              static_cast<unsigned>(e.at("size").asU64()),
                              e.at("data_ready").asU64()});
    }
    bpred.loadState(v.at("bpred"));
    icache.loadState(v.at("icache"));
    dcache.loadState(v.at("dcache"));
    statGroup.loadState(v.at("stats"));
}

} // namespace xloops
