/**
 * @file
 * Out-of-order superscalar timing model (the paper's ooo/2 and ooo/4
 * baselines). Committed-stream dataflow model with: fetch/dispatch/
 * retire bandwidth, ROB occupancy window, per-port issue contention,
 * store-to-load forwarding through a store queue, a gshare branch
 * predictor with redirect penalties, and pipelined/unpipelined LLFUs.
 */

#ifndef XLOOPS_CPU_OOO_H
#define XLOOPS_CPU_OOO_H

#include <array>
#include <deque>
#include <vector>

#include "cpu/gpp.h"

namespace xloops {

/** gshare predictor: 2-bit counters indexed by pc ^ global history. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(unsigned table_bits = 12);

    /** Predict and then train on the actual outcome of one branch. */
    bool predictAndTrain(Addr pc, bool taken);

    void reset();

    void saveState(JsonWriter &w) const;
    void loadState(const JsonValue &v);

  private:
    unsigned tableBits;
    std::vector<u8> counters;
    u32 history = 0;
};

class OooCpu : public GppModel
{
  public:
    explicit OooCpu(const GppConfig &config);

    void retire(const Instruction &inst, Addr pc,
                const StepResult &step) override;
    Cycle now() const override { return lastRetire; }
    void advanceTo(Cycle cycle) override;
    void reset() override;

    L1Cache &dcacheModel() override { return dcache; }

    void saveState(JsonWriter &w) const override;
    void loadState(const JsonValue &v) override;

  private:
    /** Allocate a slot on the least-loaded of @p ports, >= @p earliest. */
    static Cycle allocPort(std::vector<Cycle> &ports, Cycle earliest);

    GppConfig cfg;
    L1Cache icache;
    L1Cache dcache;
    GsharePredictor bpred;

    // Front end.
    Cycle fetchCycle = 0;
    unsigned fetchedThisCycle = 0;

    // Window / retire.
    std::vector<Cycle> robRetire;   ///< ring: retire time per ROB slot
    std::vector<Cycle> iqIssue;     ///< ring: issue time per IQ slot
    u64 seq = 0;
    Cycle lastRetire = 0;
    unsigned retiredThisCycle = 0;
    Cycle retireCycle = 0;

    // Dataflow.
    std::array<Cycle, numArchRegs> regReady{};
    std::vector<Cycle> issuePorts;
    std::vector<Cycle> memPorts;
    Cycle divFree = 0;

    // Store queue for forwarding: (addr, size, dataReadyCycle).
    struct SqEntry
    {
        Addr addr;
        unsigned size;
        Cycle dataReady;
    };
    std::deque<SqEntry> storeQueue;
};

} // namespace xloops

#endif // XLOOPS_CPU_OOO_H
