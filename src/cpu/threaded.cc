#include "cpu/threaded.h"

#include <cmath>

#include "common/log.h"
#include "cpu/fp.h"

namespace xloops {

namespace {

// Shared bit-deterministic FP semantics (cpu/fp.h): NaN results are
// canonicalized identically in every executor.
float
asFloat(u32 v)
{
    return fp::fromBits(v);
}

u32
asBits(float f)
{
    return fp::canon(f);
}

Addr
branchTarget(Addr pc, i32 imm)
{
    return static_cast<Addr>(static_cast<i64>(pc) + i64{imm} * 4);
}

} // namespace

void
ThreadedExecutor::bind(const Program &prog)
{
    const DecodedProgram &dec = prog.decoded();
    const u64 h = prog.hash();
    if (isBound && boundDec == &dec && boundHash == h &&
        boundBase == dec.textBase() && boundInsts == dec.numInsts())
        return;
    blocks.clear();
    blocks.resize(dec.numInsts());
    isBound = true;
    boundDec = &dec;
    boundHash = h;
    boundBase = dec.textBase();
    boundInsts = dec.numInsts();
    generation++;
}

void
ThreadedExecutor::invalidate()
{
    blocks.clear();
    isBound = false;
    boundDec = nullptr;
    boundHash = 0;
    boundBase = 0;
    boundInsts = 0;
    generation++;
}

size_t
ThreadedExecutor::cachedBlocks() const
{
    size_t n = 0;
    for (const auto &b : blocks)
        if (b)
            n++;
    return n;
}

std::unique_ptr<ThreadedExecutor::Superblock>
ThreadedExecutor::buildBlock(const DecodedProgram &dec, Addr pc)
{
    auto sb = std::make_unique<Superblock>();
    sb->entry = pc;
    const Addr base = dec.textBase();
    for (Addr p = pc; (p - base) / 4 < dec.numInsts(); p += 4) {
        const Instruction *inst;
        try {
            inst = &dec.fetch(p);
        } catch (const FatalError &) {
            // Undecodable word: end the block before it so the decode
            // fault stays lazy — it only fires if execution actually
            // reaches p, via the (empty-block) path below.
            break;
        }
        const OpMeta &m = opMeta(inst->op);
        sb->ops.push_back({*inst, m.handler, m.memSize, m.memSigned});
        if (m.endsBlock)
            break;
    }
    if (sb->ops.empty())
        dec.fetch(pc);  // entry word undecodable: throw its exact error
    return sb;
}

const ThreadedExecutor::Superblock &
ThreadedExecutor::blockAt(const DecodedProgram &dec, Addr pc)
{
    const size_t idx = static_cast<size_t>((pc - boundBase) / 4);
    if (pc >= boundBase && pc % 4 == 0 && idx < blocks.size()) {
        auto &slot = blocks[idx];
        if (!slot)
            slot = buildBlock(dec, pc);
        return *slot;
    }
    dec.fetch(pc);  // throws the same FatalError the legacy path does
    panic(strf("DecodedProgram::fetch returned for invalid pc 0x", std::hex,
               pc));
}

/**
 * The dispatch loop. Executes up to @p budget (> 0) instructions from
 * @p pc, updating pc/halted in place and returning the count executed.
 * Semantics are a handler-by-handler transliteration of
 * ExecCore::step; every operand read/write order subtlety (xloop bound
 * read after the index write, jalr target from the pre-link rs1, ...)
 * is preserved so the differential tests can demand bit-equality.
 */
u64
ThreadedExecutor::interp(const DecodedProgram &dec, Addr &pc, bool &halted,
                         u64 budget, u64 cycle0, u64 &xloopCnt, u64 &xiCnt)
{
    u64 executed = 0;
    const Superblock *sb = &blockAt(dec, pc);
    const SbOp *op = sb->ops.data();
    const SbOp *end = op + sb->ops.size();

#if defined(__GNUC__) || defined(__clang__)

    static const void *table[numOpHandlers] = {
        &&h_Add, &&h_Sub, &&h_Mul, &&h_Mulh, &&h_Div, &&h_Rem,
        &&h_And, &&h_Or, &&h_Xor, &&h_Nor,
        &&h_Sll, &&h_Srl, &&h_Sra, &&h_Slt, &&h_Sltu,
        &&h_Addi, &&h_Andi, &&h_Ori, &&h_Xori,
        &&h_Slli, &&h_Srli, &&h_Srai, &&h_Slti, &&h_Sltiu, &&h_Lui,
        &&h_Fadd, &&h_Fsub, &&h_Fmul, &&h_Fdiv, &&h_Fmin, &&h_Fmax,
        &&h_Flt, &&h_Fle, &&h_Feq, &&h_Fcvtsw, &&h_Fcvtws,
        &&h_Load, &&h_Store, &&h_Amo, &&h_Fence,
        &&h_Beq, &&h_Bne, &&h_Blt, &&h_Bge, &&h_Bltu, &&h_Bgeu,
        &&h_Jal, &&h_Jalr,
        &&h_Xloop, &&h_XloopDe, &&h_AddiuXi, &&h_AdduXi,
        &&h_Nop, &&h_Halt, &&h_Csrr,
    };

#define DISPATCH() goto *table[static_cast<unsigned>(op->h)]

// Retire a sequential instruction: advance one word, refill the block
// pointer if this op closed the block (fall-through past a not-taken
// branch or straight off a truncated block).
#define NEXT_SEQ()                                                      \
    do {                                                                \
        pc += 4;                                                        \
        if (++executed == budget)                                       \
            goto out;                                                   \
        if (++op == end) {                                              \
            sb = &blockAt(dec, pc);                                     \
            op = sb->ops.data();                                        \
            end = op + sb->ops.size();                                  \
        }                                                               \
        DISPATCH();                                                     \
    } while (0)

// Retire a taken control transfer to @p target.
#define NEXT_JUMP(target)                                               \
    do {                                                                \
        pc = (target);                                                  \
        if (++executed == budget)                                       \
            goto out;                                                   \
        sb = &blockAt(dec, pc);                                         \
        op = sb->ops.data();                                            \
        end = op + sb->ops.size();                                      \
        DISPATCH();                                                     \
    } while (0)

    DISPATCH();

h_Add: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) + regs.get(i.rs2));
    NEXT_SEQ();
}
h_Sub: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) - regs.get(i.rs2));
    NEXT_SEQ();
}
h_Mul: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) * regs.get(i.rs2));
    NEXT_SEQ();
}
h_Mulh: {
    const Instruction &i = op->inst;
    const i32 sa = static_cast<i32>(regs.get(i.rs1));
    const i32 sb_ = static_cast<i32>(regs.get(i.rs2));
    regs.set(i.rd, static_cast<u32>(
        (static_cast<i64>(sa) * static_cast<i64>(sb_)) >> 32));
    NEXT_SEQ();
}
h_Div: {
    const Instruction &i = op->inst;
    const u32 a = regs.get(i.rs1);
    const u32 b = regs.get(i.rs2);
    regs.set(i.rd, b == 0 ? ~0u
                          : static_cast<u32>(static_cast<i32>(a) /
                                             static_cast<i32>(b)));
    NEXT_SEQ();
}
h_Rem: {
    const Instruction &i = op->inst;
    const u32 a = regs.get(i.rs1);
    const u32 b = regs.get(i.rs2);
    regs.set(i.rd, b == 0 ? a
                          : static_cast<u32>(static_cast<i32>(a) %
                                             static_cast<i32>(b)));
    NEXT_SEQ();
}
h_And: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) & regs.get(i.rs2));
    NEXT_SEQ();
}
h_Or: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) | regs.get(i.rs2));
    NEXT_SEQ();
}
h_Xor: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) ^ regs.get(i.rs2));
    NEXT_SEQ();
}
h_Nor: {
    const Instruction &i = op->inst;
    regs.set(i.rd, ~(regs.get(i.rs1) | regs.get(i.rs2)));
    NEXT_SEQ();
}
h_Sll: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) << (regs.get(i.rs2) & 31));
    NEXT_SEQ();
}
h_Srl: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) >> (regs.get(i.rs2) & 31));
    NEXT_SEQ();
}
h_Sra: {
    const Instruction &i = op->inst;
    regs.set(i.rd, static_cast<u32>(static_cast<i32>(regs.get(i.rs1)) >>
                                    (regs.get(i.rs2) & 31)));
    NEXT_SEQ();
}
h_Slt: {
    const Instruction &i = op->inst;
    regs.set(i.rd, static_cast<i32>(regs.get(i.rs1)) <
                           static_cast<i32>(regs.get(i.rs2))
                       ? 1 : 0);
    NEXT_SEQ();
}
h_Sltu: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) < regs.get(i.rs2) ? 1 : 0);
    NEXT_SEQ();
}
h_Addi: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) + static_cast<u32>(i.imm));
    NEXT_SEQ();
}
h_Andi: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) & static_cast<u32>(i.imm));
    NEXT_SEQ();
}
h_Ori: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) | static_cast<u32>(i.imm));
    NEXT_SEQ();
}
h_Xori: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) ^ static_cast<u32>(i.imm));
    NEXT_SEQ();
}
h_Slli: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) << (i.imm & 31));
    NEXT_SEQ();
}
h_Srli: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) >> (i.imm & 31));
    NEXT_SEQ();
}
h_Srai: {
    const Instruction &i = op->inst;
    regs.set(i.rd, static_cast<u32>(static_cast<i32>(regs.get(i.rs1)) >>
                                    (i.imm & 31)));
    NEXT_SEQ();
}
h_Slti: {
    const Instruction &i = op->inst;
    regs.set(i.rd, static_cast<i32>(regs.get(i.rs1)) < i.imm ? 1 : 0);
    NEXT_SEQ();
}
h_Sltiu: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rs1) < static_cast<u32>(i.imm) ? 1 : 0);
    NEXT_SEQ();
}
h_Lui: {
    const Instruction &i = op->inst;
    regs.set(i.rd, static_cast<u32>(i.imm) << 13);
    NEXT_SEQ();
}
h_Fadd: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(asFloat(regs.get(i.rs1)) +
                          asFloat(regs.get(i.rs2))));
    NEXT_SEQ();
}
h_Fsub: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(asFloat(regs.get(i.rs1)) -
                          asFloat(regs.get(i.rs2))));
    NEXT_SEQ();
}
h_Fmul: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(asFloat(regs.get(i.rs1)) *
                          asFloat(regs.get(i.rs2))));
    NEXT_SEQ();
}
h_Fdiv: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(asFloat(regs.get(i.rs1)) /
                          asFloat(regs.get(i.rs2))));
    NEXT_SEQ();
}
h_Fmin: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(std::fmin(asFloat(regs.get(i.rs1)),
                                    asFloat(regs.get(i.rs2)))));
    NEXT_SEQ();
}
h_Fmax: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(std::fmax(asFloat(regs.get(i.rs1)),
                                    asFloat(regs.get(i.rs2)))));
    NEXT_SEQ();
}
h_Flt: {
    const Instruction &i = op->inst;
    regs.set(i.rd,
             asFloat(regs.get(i.rs1)) < asFloat(regs.get(i.rs2)) ? 1 : 0);
    NEXT_SEQ();
}
h_Fle: {
    const Instruction &i = op->inst;
    regs.set(i.rd,
             asFloat(regs.get(i.rs1)) <= asFloat(regs.get(i.rs2)) ? 1 : 0);
    NEXT_SEQ();
}
h_Feq: {
    const Instruction &i = op->inst;
    regs.set(i.rd,
             asFloat(regs.get(i.rs1)) == asFloat(regs.get(i.rs2)) ? 1 : 0);
    NEXT_SEQ();
}
h_Fcvtsw: {
    const Instruction &i = op->inst;
    regs.set(i.rd, asBits(static_cast<float>(
        static_cast<i32>(regs.get(i.rs1)))));
    NEXT_SEQ();
}
h_Fcvtws: {
    const Instruction &i = op->inst;
    regs.set(i.rd, fp::toWord(asFloat(regs.get(i.rs1))));
    NEXT_SEQ();
}
h_Load: {
    const SbOp &o = *op;
    const Instruction &i = o.inst;
    const Addr addr = static_cast<Addr>(
        static_cast<i32>(regs.get(i.rs1)) + i.imm);
    u32 v = mem.read(addr, o.memSize);
    if (o.memSigned)
        v = static_cast<u32>(signExtend(v, 8u * o.memSize));
    regs.set(i.rd, v);
    NEXT_SEQ();
}
h_Store: {
    const SbOp &o = *op;
    const Instruction &i = o.inst;
    const Addr addr = static_cast<Addr>(
        static_cast<i32>(regs.get(i.rs1)) + i.imm);
    mem.write(addr, o.memSize, regs.get(i.rs2));
    NEXT_SEQ();
}
h_Amo: {
    const Instruction &i = op->inst;
    const Addr addr = regs.get(i.rs1);
    const u32 operand = regs.get(i.rs2);
    regs.set(i.rd, mem.amo(i.op, addr, operand));
    NEXT_SEQ();
}
h_Fence:
    NEXT_SEQ();
h_Beq: {
    const Instruction &i = op->inst;
    if (regs.get(i.rs1) == regs.get(i.rs2))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Bne: {
    const Instruction &i = op->inst;
    if (regs.get(i.rs1) != regs.get(i.rs2))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Blt: {
    const Instruction &i = op->inst;
    if (static_cast<i32>(regs.get(i.rs1)) <
        static_cast<i32>(regs.get(i.rs2)))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Bge: {
    const Instruction &i = op->inst;
    if (static_cast<i32>(regs.get(i.rs1)) >=
        static_cast<i32>(regs.get(i.rs2)))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Bltu: {
    const Instruction &i = op->inst;
    if (regs.get(i.rs1) < regs.get(i.rs2))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Bgeu: {
    const Instruction &i = op->inst;
    if (regs.get(i.rs1) >= regs.get(i.rs2))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_Jal: {
    const Instruction &i = op->inst;
    regs.set(i.rd, pc + 4);
    NEXT_JUMP(branchTarget(pc, i.imm));
}
h_Jalr: {
    const Instruction &i = op->inst;
    // Target from rs1 *before* the link write (rd may alias rs1).
    const u32 target = regs.get(i.rs1) + static_cast<u32>(i.imm);
    regs.set(i.rd, pc + 4);
    NEXT_JUMP(target);
}
h_Xloop: {
    const Instruction &i = op->inst;
    // Traditional semantics: rIdx += 1; branch back while idx < bound.
    // The bound is read *after* the index write (rs1 may alias rd).
    const u32 idx = regs.get(i.rd) + 1;
    regs.set(i.rd, idx);
    const u32 bound = regs.get(i.rs1);
    xloopCnt++;
    if (static_cast<i32>(idx) < static_cast<i32>(bound))
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_XloopDe: {
    const Instruction &i = op->inst;
    const u32 idx = regs.get(i.rd) + 1;
    regs.set(i.rd, idx);
    xloopCnt++;
    if (regs.get(i.rs1) == 0)
        NEXT_JUMP(branchTarget(pc, i.imm));
    NEXT_SEQ();
}
h_AddiuXi: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rd) + static_cast<u32>(i.imm));
    xiCnt++;
    NEXT_SEQ();
}
h_AdduXi: {
    const Instruction &i = op->inst;
    regs.set(i.rd, regs.get(i.rd) + regs.get(i.rs2));
    xiCnt++;
    NEXT_SEQ();
}
h_Nop:
    NEXT_SEQ();
h_Halt:
    executed++;
    halted = true;  // pc stays at the halt, like StepResult.nextPc = pc
    goto out;
h_Csrr: {
    const Instruction &i = op->inst;
    // csr 0: cycle counter == instructions retired so far.
    regs.set(i.rd, static_cast<u32>(cycle0 + executed));
    NEXT_SEQ();
}

out:
    return executed;

#undef DISPATCH
#undef NEXT_SEQ
#undef NEXT_JUMP

#else // portable fallback: same superblocks, switch semantics

    size_t idx = 0;
    while (true) {
        if (idx == sb->ops.size()) {
            sb = &blockAt(dec, pc);
            idx = 0;
        }
        const SbOp &o = sb->ops[idx];
        const StepResult st =
            ExecCore::step(o.inst, pc, regs, mem, cycle0 + executed);
        executed++;
        if (o.h == OpHandler::Xloop || o.h == OpHandler::XloopDe)
            xloopCnt++;
        else if (o.h == OpHandler::AddiuXi || o.h == OpHandler::AdduXi)
            xiCnt++;
        if (st.halted) {
            halted = true;
            break;
        }
        if (st.nextPc == pc + 4) {
            idx++;
        } else {
            sb = &blockAt(dec, st.nextPc);
            idx = 0;
        }
        pc = st.nextPc;
        if (executed == budget)
            break;
    }
    return executed;

#endif
}

u64
ThreadedExecutor::execute(const Program &prog, Cursor &cur, u64 budget)
{
    if (cur.halted || budget == 0)
        return 0;
    bind(prog);
    const DecodedProgram &dec = prog.decoded();

    Addr pc = cur.pc;
    bool halted = false;
    u64 executed = 0;
    u64 xloopCnt = 0;
    u64 xiCnt = 0;

    // Stat deltas and the cursor are published on *every* exit — the
    // legacy executor counts per instruction as it goes, so a trap
    // raised at a fetch must leave behind the counts of everything
    // already executed for the stat dumps to compare equal.
    auto flush = [&] {
        if (xloopCnt)
            statGroup.add("xloop_insts", xloopCnt);
        if (xiCnt)
            statGroup.add("xi_insts", xiCnt);
        cur.pc = pc;
        cur.halted = halted;
        cur.dynInsts += executed;
    };

    try {
        executed = interp(dec, pc, halted, budget, cur.dynInsts, xloopCnt,
                          xiCnt);
    } catch (...) {
        flush();
        throw;
    }
    flush();
    return executed;
}

FuncResult
ThreadedExecutor::run(const Program &prog, u64 maxInsts)
{
    Cursor cur;
    cur.pc = prog.entry;
    // The legacy valve checks *after* each non-halting instruction, so
    // even maxInsts == 0 executes one instruction before tripping.
    execute(prog, cur, maxInsts > 0 ? maxInsts : 1);
    if (!cur.halted)
        fatal("functional execution exceeded instruction limit");

    FuncResult result;
    result.dynInsts = cur.dynInsts;
    result.halted = true;
    statGroup.set("dyn_insts", result.dynInsts);
    return result;
}

} // namespace xloops
