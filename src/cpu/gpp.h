/**
 * @file
 * Abstract cycle-level GPP timing model.
 *
 * The timing models are committed-stream estimators: the system runs
 * the functional semantics (ExecCore) and feeds each committed
 * instruction to the model, which tracks pipeline/dataflow timing and
 * reports the running cycle count. Wrong-path work is modelled by the
 * branch-redirect penalty — the same altitude as the paper's gem5
 * models for the relative comparisons the evaluation makes.
 */

#ifndef XLOOPS_CPU_GPP_H
#define XLOOPS_CPU_GPP_H

#include <memory>

#include "common/stats.h"
#include "common/trace.h"
#include "cpu/exec_core.h"
#include "mem/cache.h"

namespace xloops {

class JsonValue;

/** Configuration of a general-purpose processor model. */
struct GppConfig
{
    enum class Kind { InOrder, OutOfOrder };

    Kind kind = Kind::InOrder;
    unsigned width = 1;             ///< fetch/issue/retire width (OoO)
    unsigned robSize = 64;          ///< OoO reorder buffer entries
    unsigned iqSize = 32;           ///< OoO issue queue entries
    unsigned lsqEntries = 16;       ///< OoO load and store queue entries
    unsigned memPorts = 1;          ///< data cache ports
    unsigned branchPenalty = 2;     ///< redirect penalty (cycles)
    CacheConfig icache;
    CacheConfig dcache;
};

/** Shared interface of the in-order and out-of-order timing models. */
class GppModel
{
  public:
    virtual ~GppModel() = default;

    /** Account one committed instruction (functional work already done). */
    virtual void retire(const Instruction &inst, Addr pc,
                        const StepResult &step) = 0;

    /** Cycle at which all work so far completes. */
    virtual Cycle now() const = 0;

    /** Stall the front end until @p cycle (e.g., LPSU owns the loop). */
    virtual void advanceTo(Cycle cycle) = 0;

    /** Clear all timing state and statistics. */
    virtual void reset() = 0;

    /** The data cache timing model (shared with the LPSU). */
    virtual L1Cache &dcacheModel() = 0;

    /**
     * Checkpoint capture of the complete timing state (pipeline
     * occupancy, predictor tables, caches, statistics): a restored
     * model continues cycle-for-cycle identically.
     */
    virtual void saveState(JsonWriter &w) const = 0;
    virtual void loadState(const JsonValue &v) = 0;

    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    /** Stream pipeline events (branch redirects, cache misses) to
     *  @p t; nullptr disables. Timing is unaffected either way. */
    void
    setTracer(Tracer *t)
    {
        tracer = t;
        dcacheModel().setTracer(t);
    }

  protected:
    StatGroup statGroup;
    Tracer *tracer = nullptr;
};

/** Build the model described by @p config. */
std::unique_ptr<GppModel> makeGppModel(const GppConfig &config);

} // namespace xloops

#endif // XLOOPS_CPU_GPP_H
