/**
 * @file
 * Serial functional executor — the golden reference model. Executes a
 * program (including XLOOPS binaries, via traditional xloop semantics)
 * to completion and counts dynamic instructions per class.
 */

#ifndef XLOOPS_CPU_FUNCTIONAL_H
#define XLOOPS_CPU_FUNCTIONAL_H

#include "asm/program.h"
#include "common/stats.h"
#include "cpu/exec_core.h"
#include "mem/memory.h"

namespace xloops {

/** Result of a functional run. */
struct FuncResult
{
    u64 dynInsts = 0;
    bool halted = false;
};

/** Golden-model executor. */
class FunctionalExecutor
{
  public:
    explicit FunctionalExecutor(MainMemory &memory) : mem(memory) {}

    /**
     * Run @p prog from its entry until halt.
     *
     * @param maxInsts safety valve; throws FatalError when exceeded.
     */
    FuncResult run(const Program &prog, u64 maxInsts = 500'000'000);

    RegFile &regFile() { return regs; }
    StatGroup &stats() { return statGroup; }

  private:
    MainMemory &mem;
    RegFile regs;
    StatGroup statGroup;
};

} // namespace xloops

#endif // XLOOPS_CPU_FUNCTIONAL_H
