/**
 * @file
 * Table II kernels dominated by the unordered-concurrent (uc)
 * inter-iteration pattern: rgb2cmyk, sgemm, ssearch (KMP), symm,
 * viterbi, and war (Floyd-Warshall with the inner j-loop
 * specialized). All are race-free, so every valid parallel execution
 * must reproduce the serial memory image exactly.
 */

#include "common/rng.h"
#include "kernels/kernel.h"

namespace xloops {

namespace {

// ---------------------------------------------------------------- rgb2cmyk

constexpr unsigned rgbPixels = 512;

const char *rgb2cmykSrc = R"(
  li r1, 0
  li r2, 512
  la r5, rsrc
  la r6, gsrc
  la r7, bsrc
  la r8, cdst
  la r9, mdst
  la r20, ydst
  la r21, kdst
body:
  lw r10, 0(r5)
  lw r11, 0(r6)
  lw r12, 0(r7)
  mov r13, r10           # mx = max(r, g, b)
  bge r13, r11, mxa
  mov r13, r11
mxa:
  bge r13, r12, mxb
  mov r13, r12
mxb:
  li r14, 255
  sub r14, r14, r13      # k = 255 - mx
  sub r15, r13, r10      # c = mx - r
  sub r16, r13, r11      # m = mx - g
  sub r17, r13, r12      # y = mx - b
  sw r15, 0(r8)
  sw r16, 0(r9)
  sw r17, 0(r20)
  sw r14, 0(r21)
  addiu.xi r5, 4
  addiu.xi r6, 4
  addiu.xi r7, 4
  addiu.xi r8, 4
  addiu.xi r9, 4
  addiu.xi r20, 4
  addiu.xi r21, 4
  xloop.uc r1, r2, body
  halt
  .data
rsrc: .space 2048
gsrc: .space 2048
bsrc: .space 2048
cdst: .space 2048
mdst: .space 2048
ydst: .space 2048
kdst: .space 2048
)";

Kernel
rgb2cmyk()
{
    Kernel k;
    k.name = "rgb2cmyk-uc";
    k.suite = "C";
    k.patterns = "uc";
    k.source = rgb2cmykSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0xc0102);
        for (unsigned i = 0; i < rgbPixels; i++) {
            mem.writeWord(prog.symbol("rsrc") + 4 * i, rng.nextBelow(256));
            mem.writeWord(prog.symbol("gsrc") + 4 * i, rng.nextBelow(256));
            mem.writeWord(prog.symbol("bsrc") + 4 * i, rng.nextBelow(256));
        }
    };
    k.outputs = {{"cdst", rgbPixels}, {"mdst", rgbPixels},
                 {"ydst", rgbPixels}, {"kdst", rgbPixels}};
    return k;
}

// ------------------------------------------------------------------- sgemm

constexpr unsigned gemmN = 16;

const char *sgemmSrc = R"(
  li r1, 0
  li r2, 16
  la r3, mata
  la r4, matb
  la r5, matc
bodyi:
  slli r10, r1, 6        # i * 64 bytes (row stride)
  add r11, r3, r10       # &A[i][0]
  add r12, r5, r10       # &C[i][0]
  li r13, 0              # j
bodyj:
  li r14, 0              # acc = 0.0f
  li r15, 0              # kk
  slli r16, r13, 2
  add r16, r4, r16       # &B[0][j]
  mov r17, r11
bodyk:
  lw r18, 0(r17)
  lw r19, 0(r16)
  fmul r20, r18, r19
  fadd r14, r14, r20
  addi r17, r17, 4
  addi r16, r16, 64
  addi r15, r15, 1
  blt r15, r2, bodyk
  slli r21, r13, 2
  add r21, r12, r21
  sw r14, 0(r21)
  addi r13, r13, 1
  blt r13, r2, bodyj
  xloop.uc r1, r2, bodyi
  halt
  .data
mata: .space 1024
matb: .space 1024
matc: .space 1024
)";

Kernel
sgemm()
{
    Kernel k;
    k.name = "sgemm-uc";
    k.suite = "C";
    k.patterns = "uc";
    k.source = sgemmSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x59e88);
        for (unsigned i = 0; i < gemmN * gemmN; i++) {
            mem.writeFloat(prog.symbol("mata") + 4 * i,
                           rng.nextFloat() * 4.0f - 2.0f);
            mem.writeFloat(prog.symbol("matb") + 4 * i,
                           rng.nextFloat() * 4.0f - 2.0f);
        }
    };
    k.outputs = {{"matc", gemmN * gemmN}};
    return k;
}

// ----------------------------------------------------------------- ssearch

constexpr unsigned searchStreams = 16;
constexpr unsigned streamBytes = 128;

const char *ssearchSrc = R"(
  li r1, 0
  li r2, 16
  la r5, text
  la r6, pat
  la r7, fail
  la r8, matches
body:
  slli r10, r1, 7        # stream * 128 bytes
  add r10, r5, r10
  li r11, 0              # position in stream
  li r12, 0              # q: KMP state
  li r13, 0              # match count
loopt:
  add r14, r10, r11
  lbu r15, 0(r14)        # ch
kmp:
  beqz r12, tryq
  add r16, r6, r12
  lbu r17, 0(r16)
  beq r17, r15, tryq
  slli r18, r12, 2
  add r18, r7, r18
  lw r12, -4(r18)        # q = fail[q-1]
  j kmp
tryq:
  add r16, r6, r12
  lbu r17, 0(r16)
  bne r17, r15, nomatch
  addi r12, r12, 1
nomatch:
  li r19, 4
  bne r12, r19, cont
  addi r13, r13, 1
  slli r18, r12, 2
  add r18, r7, r18
  lw r12, -4(r18)        # restart from fail[len-1]
cont:
  addi r11, r11, 1
  li r20, 128
  blt r11, r20, loopt
  slli r21, r1, 2
  add r21, r8, r21
  sw r13, 0(r21)
  xloop.uc r1, r2, body
  halt
  .data
text:    .space 2048
pat:     .space 8
fail:    .space 16
matches: .space 64
)";

Kernel
ssearch()
{
    Kernel k;
    k.name = "ssearch-uc";
    k.suite = "C";
    k.patterns = "uc";
    k.source = ssearchSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x55ea);
        const std::vector<u8> pattern = {'a', 'b', 'a', 'b'};
        // Text drawn from a 3-letter alphabet so matches are common.
        std::vector<u8> text(searchStreams * streamBytes);
        for (auto &c : text)
            c = static_cast<u8>('a' + rng.nextBelow(3));
        mem.loadBytes(prog.symbol("text"), text);
        mem.loadBytes(prog.symbol("pat"), pattern);
        // KMP failure function, word-sized entries.
        std::vector<u32> fail(pattern.size(), 0);
        for (unsigned q = 1; q < pattern.size(); q++) {
            u32 kk = fail[q - 1];
            while (kk > 0 && pattern[kk] != pattern[q])
                kk = fail[kk - 1];
            if (pattern[kk] == pattern[q])
                kk++;
            fail[q] = kk;
        }
        for (unsigned i = 0; i < fail.size(); i++)
            mem.writeWord(prog.symbol("fail") + 4 * i, fail[i]);
    };
    k.outputs = {{"matches", searchStreams}};
    return k;
}

// -------------------------------------------------------------- symm (uc)

// Integer triple loop C = A*B; symm-uc specializes the outer i loop,
// symm-or (kernels_or.cc) the inner accumulation loop.
constexpr unsigned symmN = 12;

const char *symmUcSrc = R"(
  li r1, 0
  li r2, 12
  la r3, syma
  la r4, symb
  la r5, symc
bodyi:
  li r10, 48
  mul r11, r1, r10
  add r12, r3, r11       # &A[i][0]
  add r13, r5, r11       # &C[i][0]
  li r14, 0              # j
bodyj:
  li r15, 0              # acc
  li r16, 0              # kk
  slli r17, r14, 2
  add r17, r4, r17       # &B[0][j]
  mov r18, r12
bodyk:
  lw r19, 0(r18)
  lw r20, 0(r17)
  mul r21, r19, r20
  add r15, r15, r21
  addi r18, r18, 4
  addi r17, r17, 48
  addi r16, r16, 1
  blt r16, r2, bodyk
  slli r22, r14, 2
  add r22, r13, r22
  sw r15, 0(r22)
  addi r14, r14, 1
  blt r14, r2, bodyj
  xloop.uc r1, r2, bodyi
  halt
  .data
syma: .space 576
symb: .space 576
symc: .space 576
)";

void
symmSetup(MainMemory &mem, const Program &prog)
{
    Rng rng(0x5e33);
    // A symmetric, B general (Polybench symm flavour).
    for (unsigned i = 0; i < symmN; i++) {
        for (unsigned j = 0; j <= i; j++) {
            const u32 v = rng.nextBelow(100);
            mem.writeWord(prog.symbol("syma") + 4 * (i * symmN + j), v);
            mem.writeWord(prog.symbol("syma") + 4 * (j * symmN + i), v);
        }
        for (unsigned j = 0; j < symmN; j++)
            mem.writeWord(prog.symbol("symb") + 4 * (i * symmN + j),
                          rng.nextBelow(100));
    }
}

Kernel
symmUc()
{
    Kernel k;
    k.name = "symm-uc";
    k.suite = "Po";
    k.patterns = "uc";
    k.source = symmUcSrc;
    k.setup = symmSetup;
    k.outputs = {{"symc", symmN * symmN}};
    return k;
}

// ----------------------------------------------------------------- viterbi

constexpr unsigned vitFrames = 16;
constexpr unsigned vitSteps = 32;

const char *viterbiSrc = R"(
  li r1, 0
  li r2, 16
  la r5, obs
  la r6, metric
body:
  slli r10, r1, 7        # frame * 32 steps * 4B
  add r10, r5, r10
  li r11, 0              # pm0..pm3
  li r12, 0
  li r13, 0
  li r14, 0
  li r15, 0              # t
steps:
  lw r16, 0(r10)         # ob
  # npm0 = min(pm0 + ((ob^0)&3), pm1 + ((ob>>2^0)&3))
  andi r17, r16, 3
  add r17, r11, r17
  srli r18, r16, 2
  andi r18, r18, 3
  add r18, r12, r18
  blt r17, r18, n0
  mov r17, r18
n0:
  # npm1 = min(pm2 + ((ob^1)&3), pm3 + ((ob>>2^1)&3))
  xori r19, r16, 1
  andi r19, r19, 3
  add r19, r13, r19
  srli r20, r16, 2
  xori r20, r20, 1
  andi r20, r20, 3
  add r20, r14, r20
  blt r19, r20, n1
  mov r19, r20
n1:
  # npm2 = min(pm0 + ((ob^2)&3), pm1 + ((ob>>2^2)&3))
  xori r21, r16, 2
  andi r21, r21, 3
  add r21, r11, r21
  srli r22, r16, 2
  xori r22, r22, 2
  andi r22, r22, 3
  add r22, r12, r22
  blt r21, r22, n2
  mov r21, r22
n2:
  # npm3 = min(pm2 + ((ob^3)&3), pm3 + ((ob>>2^3)&3))
  xori r23, r16, 3
  andi r23, r23, 3
  add r23, r13, r23
  srli r24, r16, 2
  xori r24, r24, 3
  andi r24, r24, 3
  add r24, r14, r24
  blt r23, r24, n3
  mov r23, r24
n3:
  mov r11, r17
  mov r12, r19
  mov r13, r21
  mov r14, r23
  addi r10, r10, 4
  addi r15, r15, 1
  li r25, 32
  blt r15, r25, steps
  # survivor metric = min(pm0..pm3)
  blt r11, r12, m0
  mov r11, r12
m0:
  blt r11, r13, m1
  mov r11, r13
m1:
  blt r11, r14, m2
  mov r11, r14
m2:
  slli r26, r1, 2
  add r26, r6, r26
  sw r11, 0(r26)
  xloop.uc r1, r2, body
  halt
  .data
obs:    .space 2048
metric: .space 64
)";

Kernel
viterbi()
{
    Kernel k;
    k.name = "viterbi-uc";
    k.suite = "C";
    k.patterns = "uc";
    k.source = viterbiSrc;
    k.setup = [](MainMemory &mem, const Program &prog) {
        Rng rng(0x71728b1);
        for (unsigned i = 0; i < vitFrames * vitSteps; i++)
            mem.writeWord(prog.symbol("obs") + 4 * i, rng.nextBelow(16));
    };
    k.outputs = {{"metric", vitFrames}};
    return k;
}

// -------------------------------------------------------------------- war

constexpr unsigned warN = 16;

/** Shared Floyd-Warshall source; @p innerHint selects war-uc (inner
 *  j-loop specialized) vs war-om (outer i-loop specialized). */
std::string
warSource(bool inner_hint)
{
    std::string src = R"(
  la r3, path
  li r2, 16
  li r20, 0              # k
kloop:
  slli r27, r20, 6
  add r25, r3, r27       # &path[k][0]
  li r21, 0              # i
bodyi:
  slli r27, r21, 6
  add r24, r3, r27       # &path[i][0]
  slli r28, r20, 2
  add r28, r24, r28
  lw r26, 0(r28)         # path[i][k]
  li r23, 0              # j
bodyj:
  slli r10, r23, 2
  add r11, r24, r10      # &path[i][j]
  add r12, r25, r10      # &path[k][j]
  lw r13, 0(r11)
  lw r14, 0(r12)
  add r15, r26, r14
  blt r13, r15, skipj
  sw r15, 0(r11)
skipj:
)";
    src += inner_hint ? "  xloop.uc r23, r2, bodyj\n"
                      : "  xloop.uc r23, r2, bodyj, nohint\n";
    src += inner_hint ? "  xloop.om r21, r2, bodyi, nohint\n"
                      : "  xloop.om r21, r2, bodyi\n";
    src += R"(
  addi r20, r20, 1
  blt r20, r2, kloop
  halt
  .data
path: .space 1024
)";
    return src;
}

void
warSetup(MainMemory &mem, const Program &prog)
{
    Rng rng(0x3a12);
    for (unsigned i = 0; i < warN; i++)
        for (unsigned j = 0; j < warN; j++)
            mem.writeWord(prog.symbol("path") + 4 * (i * warN + j),
                          i == j ? 0 : 1 + rng.nextBelow(64));
}

Kernel
warUc()
{
    Kernel k;
    k.name = "war-uc";
    k.suite = "Po";
    k.patterns = "uc";
    k.source = warSource(true);
    k.setup = warSetup;
    k.outputs = {{"path", warN * warN}};
    return k;
}

Kernel
warOm()
{
    Kernel k;
    k.name = "war-om";
    k.suite = "Po";
    k.patterns = "om,uc";
    k.source = warSource(false);
    k.setup = warSetup;
    k.outputs = {{"path", warN * warN}};
    return k;
}

} // namespace

std::vector<Kernel>
makeUcKernels()
{
    return {rgb2cmyk(), sgemm(), ssearch(), symmUc(), viterbi(), warUc(),
            warOm()};
}

} // namespace xloops
