#include "kernels/kernel.h"

#include <algorithm>
#include <sstream>

#include "asm/assembler.h"
#include "common/log.h"
#include "cpu/threaded.h"
#include "system/capsule.h"

namespace xloops {

// Registered by the per-pattern kernel translation units.
std::vector<Kernel> makeUcKernels();
std::vector<Kernel> makeOrKernels();
std::vector<Kernel> makeOmKernels();
std::vector<Kernel> makeUaKernels();
std::vector<Kernel> makeDbKernels();
std::vector<Kernel> makeOptKernels();

const std::vector<Kernel> &
kernelRegistry()
{
    static const std::vector<Kernel> all = [] {
        std::vector<Kernel> v;
        for (auto maker : {makeUcKernels, makeOrKernels, makeOmKernels,
                           makeUaKernels, makeDbKernels, makeOptKernels}) {
            auto part = maker();
            v.insert(v.end(), std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
        }
        return v;
    }();
    return all;
}

const Kernel &
kernelByName(const std::string &name)
{
    for (const Kernel &k : kernelRegistry())
        if (k.name == name)
            return k;
    fatal(strf("unknown kernel '", name, "'"));
}

std::vector<std::string>
tableIIKernelNames()
{
    return {
        "rgb2cmyk-uc", "sgemm-uc",   "ssearch-uc",  "symm-uc",
        "viterbi-uc",  "war-uc",     "adpcm-or",    "covar-or",
        "dither-or",   "kmeans-or",  "sha-or",      "symm-or",
        "dynprog-om",  "knn-om",     "ksack-sm-om", "ksack-lg-om",
        "war-om",      "mm-orm",     "stencil-om",  "btree-ua",
        "hsort-ua",    "huffman-ua", "rsort-ua",    "bfs-uc-db",
        "qsort-uc-db",
    };
}

std::string
serializeToGpIsa(const std::string &source)
{
    std::ostringstream out;
    std::istringstream in(source);
    std::string line;
    while (std::getline(in, line)) {
        // Find the mnemonic (first token).
        const size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] == '#' || line[b] == '.') {
            out << line << "\n";
            continue;
        }
        const size_t e = line.find_first_of(" \t", b);
        const std::string head =
            line.substr(b, e == std::string::npos ? std::string::npos
                                                  : e - b);
        if (head.rfind("xloop.", 0) == 0) {
            // xloop.<pat> rI, rB, L [, nohint]
            std::string rest =
                e == std::string::npos ? "" : line.substr(e);
            // Strip comments and the nohint flag.
            const size_t hash = rest.find('#');
            if (hash != std::string::npos)
                rest.resize(hash);
            const size_t nh = rest.find(", nohint");
            if (nh != std::string::npos)
                rest.erase(nh, 8);
            std::istringstream ops(rest);
            std::string ri, rb, label;
            std::getline(ops, ri, ',');
            std::getline(ops, rb, ',');
            std::getline(ops, label, ',');
            auto trim = [](std::string s) {
                const size_t x = s.find_first_not_of(" \t");
                const size_t y = s.find_last_not_of(" \t");
                return x == std::string::npos
                           ? std::string()
                           : s.substr(x, y - x + 1);
            };
            out << "  addi " << trim(ri) << ", " << trim(ri) << ", 1\n";
            out << "  blt " << trim(ri) << ", " << trim(rb) << ", "
                << trim(label) << "\n";
        } else if (head == "addiu.xi") {
            std::string rest = line.substr(e);
            std::istringstream ops(rest);
            std::string rx, imm;
            std::getline(ops, rx, ',');
            std::getline(ops, imm, ',');
            out << "  addi" << rx << "," << rx << "," << imm << "\n";
        } else if (head == "addu.xi") {
            std::string rest = line.substr(e);
            std::istringstream ops(rest);
            std::string rx, rt;
            std::getline(ops, rx, ',');
            std::getline(ops, rt, ',');
            out << "  add" << rx << "," << rx << "," << rt << "\n";
        } else {
            out << line << "\n";
        }
    }
    return out.str();
}

KernelRun
runKernel(const Kernel &kernel, const SysConfig &cfg, ExecMode mode,
          bool useGpIsaBinary, const RunHooks &hooks)
{
    KernelRun run;
    const std::string src =
        useGpIsaBinary ? serializeToGpIsa(kernel.source) : kernel.source;
    const Program prog = assemble(src);

    XloopsSystem sys(cfg);
    sys.loadProgram(prog);
    if (kernel.setup)
        kernel.setup(sys.memory(), prog);
    sys.setObserver(hooks.tracer, hooks.profiler);
    if (hooks.traceText)
        sys.setTrace(hooks.traceText);
    if (hooks.capsule) {
        // Capture the context a capsule needs *before* running: the
        // initial image includes kernel input data written after the
        // program load, which a Program alone cannot reproduce.
        hooks.capsule->valid = true;
        hooks.capsule->program = prog;
        hooks.capsule->initialMem.copyFrom(sys.memory());
    }
    const auto captureCheckpoint = [&] {
        if (hooks.capsule) {
            hooks.capsule->lastCheckpoint = sys.lastCheckpoint();
            hooks.capsule->lastCheckpointInst = sys.lastCheckpointInst();
        }
    };
    try {
        run.result =
            sys.run(prog, mode, hooks.maxInsts,
                    hooks.runOptions ? *hooks.runOptions : RunOptions{});
    } catch (...) {
        captureCheckpoint();
        throw;
    }
    captureCheckpoint();

    // Serial golden model on an identical memory image. The threaded
    // executor is bit-equivalent to the legacy switch (proven by
    // tests/test_threaded_exec.cc and the kernel equivalence sweep) and
    // runs the golden pass several times faster.
    MainMemory golden;
    prog.loadInto(golden);
    if (kernel.setup)
        kernel.setup(golden, prog);
    ThreadedExecutor exec(golden);
    run.xlDynInsts = exec.run(prog).dynInsts;

    run.passed = true;
    if (kernel.deterministic) {
        for (const auto &[symbol, words] : kernel.outputs) {
            const Addr base = prog.symbol(symbol);
            for (unsigned i = 0; i < words && run.passed; i++) {
                if (sys.memory().readWord(base + 4 * i) !=
                    golden.readWord(base + 4 * i)) {
                    run.passed = false;
                    run.error = strf(kernel.name, ": ", symbol, "[", i,
                                     "] = ",
                                     sys.memory().readWord(base + 4 * i),
                                     ", serial = ",
                                     golden.readWord(base + 4 * i));
                }
            }
        }
    }
    if (run.passed && kernel.check) {
        std::string why;
        if (!kernel.check(sys.memory(), prog, why)) {
            run.passed = false;
            run.error = kernel.name + ": " + why;
        }
    }
    return run;
}

} // namespace xloops
